#!/usr/bin/env bash
# Crash-recovery smoke test: kill -9 a checkpointed parallel search at a
# random moment, resume it, and require the resumed run to produce exactly
# the tree and likelihood of an uninterrupted run.
#
#   scripts/crash_recovery_smoke.sh [BINARY] [ITERATIONS]
#
# BINARY defaults to build/examples/parallel_search, ITERATIONS to 10.
# Exit 0 = every kill/resume cycle converged to the reference result.
set -u

BINARY=${1:-build/examples/parallel_search}
ITERATIONS=${2:-10}
TAXA=${TAXA:-16}
SITES=${SITES:-300}
SEED=${SEED:-3}
WORKERS=${WORKERS:-4}

if [[ ! -x "$BINARY" ]]; then
  echo "error: $BINARY not found or not executable" >&2
  exit 2
fi

WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

COMMON=(--workers="$WORKERS" --taxa="$TAXA" --sites="$SITES" --seed="$SEED")

echo "== reference run (uninterrupted) =="
"$BINARY" "${COMMON[@]}" --out="$WORKDIR/reference.out" >/dev/null || {
  echo "FAIL: reference run exited $?" >&2
  exit 1
}

# Time the reference so the kill lands somewhere inside the run, not after.
START=$(date +%s%N)
"$BINARY" "${COMMON[@]}" >/dev/null
REFERENCE_NS=$(( $(date +%s%N) - START ))
REFERENCE_MS=$(( REFERENCE_NS / 1000000 ))
echo "reference wall time: ${REFERENCE_MS} ms"

FAILURES=0
for i in $(seq 1 "$ITERATIONS"); do
  CKPT="$WORKDIR/run$i.ckpt"
  OUT="$WORKDIR/run$i.out"
  rm -f "$WORKDIR"/run"$i".ckpt*

  # Kill between 10% and 90% of the reference wall time (bash RANDOM is
  # fine here: the checkpoint machinery must cope with ANY kill point).
  KILL_MS=$(( REFERENCE_MS / 10 + RANDOM % (REFERENCE_MS * 8 / 10 + 1) ))

  "$BINARY" "${COMMON[@]}" --checkpoint="$CKPT" >/dev/null &
  PID=$!
  # Sleep in ms via the only portable trick: fractional seconds.
  sleep "$(printf '0%d.%03d' $(( KILL_MS / 1000 )) $(( KILL_MS % 1000 )))"
  if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null
    STATE="killed at ${KILL_MS} ms"
  else
    wait "$PID" 2>/dev/null
    STATE="finished before the ${KILL_MS} ms kill"
  fi

  if [[ -e "$CKPT" || -n "$(ls "$CKPT".gen-* 2>/dev/null)" ]]; then
    "$BINARY" "${COMMON[@]}" --resume="$CKPT" --out="$OUT" >/dev/null || {
      echo "iteration $i: FAIL (resume exited $?; $STATE)"
      FAILURES=$(( FAILURES + 1 ))
      continue
    }
  else
    # Killed before the first checkpoint committed: a fresh run must still
    # reproduce the reference.
    "$BINARY" "${COMMON[@]}" --out="$OUT" >/dev/null || {
      echo "iteration $i: FAIL (rerun exited $?; $STATE)"
      FAILURES=$(( FAILURES + 1 ))
      continue
    }
  fi

  if cmp -s "$WORKDIR/reference.out" "$OUT"; then
    echo "iteration $i: OK ($STATE)"
  else
    echo "iteration $i: FAIL (result differs from reference; $STATE)"
    diff "$WORKDIR/reference.out" "$OUT" | head -4
    FAILURES=$(( FAILURES + 1 ))
  fi
done

if (( FAILURES > 0 )); then
  echo "crash-recovery smoke: $FAILURES/$ITERATIONS iterations FAILED"
  exit 1
fi
echo "crash-recovery smoke: all $ITERATIONS iterations recovered exactly"
