#!/usr/bin/env bash
# Stands up one multi-process socket-transport run: spawns SIZE OS processes
# (rank 0 = master/hub, 1 = foreman, 2 = monitor, 3+ = workers), each the
# given BINARY with --transport=socket --rank=R --port=P --fabric-size=SIZE
# appended, and exits with rank 0's exit code.
#
#   scripts/launch_cluster.sh [options] -- BINARY [binary args...]
#
#   --size=N          total process count (default 6: 3 workers)
#   --port=P          hub TCP port (default: random in 20000..39999)
#   --logdir=DIR      per-rank stdout/stderr logs (default: a mktemp dir)
#   --kill-rank=R     kill -9 rank R after --kill-after seconds (fault drill)
#   --kill-after=S    delay before the kill (default 1)
#
# Examples:
#   scripts/launch_cluster.sh --size=6 -- \
#       build/examples/parallel_search --taxa=12 --sites=300 --out=best.nwk
#   scripts/launch_cluster.sh --size=7 --kill-rank=4 --kill-after=2 -- \
#       build/examples/parallel_search --taxa=16 --sites=500 --timeout-ms=5000
set -u

SIZE=6
PORT=$((20000 + RANDOM % 20000))
LOGDIR=""
KILL_RANK=""
KILL_AFTER=1

while [ $# -gt 0 ]; do
  case "$1" in
    --size=*)       SIZE="${1#*=}" ;;
    --size)         SIZE="$2"; shift ;;
    --port=*)       PORT="${1#*=}" ;;
    --port)         PORT="$2"; shift ;;
    --logdir=*)     LOGDIR="${1#*=}" ;;
    --logdir)       LOGDIR="$2"; shift ;;
    --kill-rank=*)  KILL_RANK="${1#*=}" ;;
    --kill-rank)    KILL_RANK="$2"; shift ;;
    --kill-after=*) KILL_AFTER="${1#*=}" ;;
    --kill-after)   KILL_AFTER="$2"; shift ;;
    --) shift; break ;;
    *) echo "launch_cluster.sh: unknown option $1" >&2; exit 2 ;;
  esac
  shift
done

if [ $# -lt 1 ]; then
  echo "usage: launch_cluster.sh [--size=N] [--port=P] [--logdir=DIR]" >&2
  echo "           [--kill-rank=R --kill-after=S] -- BINARY [args...]" >&2
  exit 2
fi
BINARY=$1
shift

if [ "$SIZE" -lt 4 ]; then
  echo "launch_cluster.sh: --size must be >= 4 (master+foreman+monitor+worker)" >&2
  exit 2
fi
if [ -z "$LOGDIR" ]; then
  LOGDIR=$(mktemp -d /tmp/fdml_cluster.XXXXXX)
fi
mkdir -p "$LOGDIR"

echo "launch_cluster: $SIZE processes on port $PORT, logs in $LOGDIR" >&2

# Each rank runs in its own session (= its own process group) via setsid,
# so a rank that forks helpers can still be reaped as a unit: killing the
# negated pid reaches the whole group, not just the direct child. Without
# this, a wedged rank 0 used to leave orphaned peer processes behind on CI.
declare -a PIDS
sweep() {
  # TERM the whole group of every rank, give them a moment, then KILL.
  for pid in "${PIDS[@]:-}"; do
    kill -TERM -- "-$pid" 2>/dev/null || kill -TERM "$pid" 2>/dev/null || true
  done
  for _ in 1 2 3 4 5; do
    local alive=0
    for pid in "${PIDS[@]:-}"; do
      kill -0 "$pid" 2>/dev/null && alive=1
    done
    [ "$alive" -eq 0 ] && break
    sleep 0.2
  done
  for pid in "${PIDS[@]:-}"; do
    kill -KILL -- "-$pid" 2>/dev/null || kill -KILL "$pid" 2>/dev/null || true
  done
}
trap sweep EXIT INT TERM

# Non-master ranks first (they retry the connect until the hub binds, so
# launch order does not actually matter — this just shortens rendezvous).
for ((r = 1; r < SIZE; ++r)); do
  setsid "$BINARY" "$@" --transport=socket --rank="$r" --port="$PORT" \
      --fabric-size="$SIZE" > "$LOGDIR/rank$r.log" 2>&1 &
  PIDS[$r]=$!
done

setsid "$BINARY" "$@" --transport=socket --rank=0 --port="$PORT" \
    --fabric-size="$SIZE" > "$LOGDIR/rank0.log" 2>&1 &
RANK0_PID=$!
PIDS[0]=$RANK0_PID

if [ -n "$KILL_RANK" ]; then
  (
    sleep "$KILL_AFTER"
    # The process may have finished already; a failed kill is not an error.
    # Direct -9 to the single pid: this is the fault drill, not cleanup.
    kill -9 "${PIDS[$KILL_RANK]}" 2>/dev/null || true
  ) &
fi

wait "$RANK0_PID"
STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  # Rank 0 failed: do not wait politely for peers that may now never hear a
  # shutdown — reap every rank's process group immediately.
  echo "launch_cluster: rank 0 failed ($STATUS); sweeping peer groups" >&2
  sweep
else
  # Give the peers a moment to drain off the hub's EOF, then sweep them.
  for ((r = 1; r < SIZE; ++r)); do
    for _ in 1 2 3 4 5 6 7 8 9 10; do
      kill -0 "${PIDS[$r]}" 2>/dev/null || break
      sleep 0.2
    done
  done
  sweep
fi
trap - EXIT INT TERM

cat "$LOGDIR/rank0.log"
echo "launch_cluster: rank 0 exited $STATUS" >&2
exit $STATUS
