#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out (live
runs) or the simulator's virtual-time replay.

Checks, beyond well-formedness:
  - every event carries the required fields for its phase;
  - B/E duration events balance per thread with matching names (stack
    discipline, the invariant chrome://tracing needs to render spans);
  - every flow arc that starts (ph 's') also finishes (ph 'f'), and steps
    ('t') never appear without a start;
  - thread_name metadata is present, and at least --min-workers threads are
    named worker-*;
  - at least --min-tasks worker task spans completed.

Usage: check_trace.py TRACE.json [--min-workers N] [--min-tasks N]
Exits 1 with a diagnostic on the first violated invariant.
"""
import argparse
import json
import sys

REQUIRED_PHASES = {"B", "E", "i", "s", "t", "f", "C", "M"}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--min-workers", type=int, default=0)
    parser.add_argument("--min-tasks", type=int, default=0)
    args = parser.parse_args()

    try:
        with open(args.trace) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {args.trace}: {error}")

    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list) or not events:
        fail("no traceEvents")

    open_spans = {}  # tid -> stack of names
    flows = {}  # id -> [starts, steps, ends]
    thread_names = {}
    completed_tasks = 0

    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        ph = event.get("ph")
        if ph not in REQUIRED_PHASES:
            fail(f"{where}: unexpected phase {ph!r}")
        if "tid" not in event or "pid" not in event:
            fail(f"{where}: missing pid/tid")
        tid = event["tid"]
        if ph == "M":
            if event.get("name") == "thread_name":
                thread_names[tid] = event.get("args", {}).get("name", "")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            fail(f"{where}: missing numeric ts")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing name")

        if ph == "B":
            open_spans.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = open_spans.get(tid)
            if not stack:
                fail(f"{where}: E without B on tid {tid} ({name})")
            top = stack.pop()
            if top != name:
                fail(f"{where}: span mismatch on tid {tid}: "
                     f"B {top!r} closed by E {name!r}")
            if event.get("cat") == "worker" and name == "task":
                completed_tasks += 1
        elif ph in ("s", "t", "f"):
            flow_id = event.get("id")
            if flow_id is None:
                fail(f"{where}: flow event without id")
            counts = flows.setdefault(str(flow_id), [0, 0, 0])
            counts["stf".index(ph)] += 1
        elif ph == "C":
            if "args" not in event or not event["args"]:
                fail(f"{where}: counter without args")

    for tid, stack in open_spans.items():
        if stack:
            fail(f"unclosed span(s) on tid {tid}: {stack}")
    for flow_id, (starts, steps, ends) in flows.items():
        if starts != 1 or ends != 1:
            fail(f"flow {flow_id}: {starts} start(s), {ends} end(s)")
        if steps < 1:
            fail(f"flow {flow_id}: no execute step between dispatch and accept")

    if not thread_names:
        fail("no thread_name metadata")
    workers = [n for n in thread_names.values() if n.startswith("worker")]
    if len(workers) < args.min_workers:
        fail(f"{len(workers)} worker thread(s), need {args.min_workers}")
    if completed_tasks < args.min_tasks:
        fail(f"{completed_tasks} completed task span(s), need {args.min_tasks}")

    print(f"check_trace: OK: {len(events)} events, {len(thread_names)} threads "
          f"({len(workers)} workers), {completed_tasks} task spans, "
          f"{len(flows)} flow arcs")


if __name__ == "__main__":
    main()
