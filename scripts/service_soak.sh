#!/usr/bin/env bash
# Chaos soak for the fdmld service.
#
# Stands up a 6-rank socket deployment in which every non-master rank dials
# the hub through a seeded ChaosProxy (injected latency, byte corruption,
# mid-stream closes, and one transient partition), then pushes more
# concurrent jobs at the service than admission control will hold while a
# worker is kill -9'd and restarted mid-run.
#
# Passes iff:
#   * every admitted job completes with a tree bit-for-bit equal to the
#     serial reference for its seed (zero jobs lost),
#   * at least one submission is shed by admission control and the shed
#     count shows up in the metrics snapshot,
#   * mid-run Prometheus scrapes (fdmld --mode=scrape) show live nonzero
#     kernel counters for every worker rank, the killed worker goes stale
#     within one telemetry window, and a later scrape shows monotonic
#     counters plus advancing per-job progress (check_metrics.py),
#   * the rotating --trace-dir segments stitch back into one valid
#     timeline (trace_report --stitch-out + check_trace.py),
#   * the SIGTERM'd service drains cleanly with zero jobs in flight.
#
#   scripts/service_soak.sh [BUILD_DIR]
set -u

BUILD_DIR=${1:-build}
FDMLD=$BUILD_DIR/apps/fdmld
if [ ! -x "$FDMLD" ]; then
  echo "service_soak: $FDMLD not built" >&2
  exit 2
fi

TAXA=16
SITES=400
SIZE=6
JOBS=13           # capacity is max_active=2 + max_queued=8, so >=3 shed
MAX_ACTIVE=2
MAX_QUEUED=8
VICTIM_RANK=4     # a worker (ranks 3+ are workers)
TELEMETRY_MS=250  # per-rank metric shipping period (stale after 2x this)
HUB_PORT=$((20000 + RANDOM % 10000))
PROXY_PORT=$((HUB_PORT + 10000))
SVC_PORT=$((HUB_PORT + 15000))
# Deterministic socket-layer fault plan: background latency/corruption/close
# chaos plus a 600 ms partition window that severs every rank from the hub.
PLAN="chaos-plan v1 seed=101 sock_latency=0.08 delay_min_ms=1 delay_max_ms=4"
PLAN="$PLAN sock_corrupt=0.0005 sock_close=0.001"
PLAN="$PLAN sock_partition_at_ms=4500 sock_partition_ms=600"

WORKDIR=$(mktemp -d /tmp/fdml_soak.XXXXXX)
echo "service_soak: hub=$HUB_PORT proxy=$PROXY_PORT service=$SVC_PORT workdir=$WORKDIR" >&2

declare -a PIDS
sweep() {
  for pid in "${PIDS[@]:-}"; do
    kill -TERM -- "-$pid" 2>/dev/null || kill -TERM "$pid" 2>/dev/null || true
  done
  sleep 0.5
  for pid in "${PIDS[@]:-}"; do
    kill -KILL -- "-$pid" 2>/dev/null || kill -KILL "$pid" 2>/dev/null || true
  done
}
trap sweep EXIT INT TERM

fail() {
  echo "service_soak: FAIL: $*" >&2
  echo "service_soak: logs in $WORKDIR" >&2
  exit 1
}

# Poll a log file until a line matches (the service and proxy announce
# readiness on stdout), so launch order never races the first submission.
wait_for_line() {
  local file=$1 pattern=$2 deadline=$((SECONDS + ${3:-30}))
  while [ "$SECONDS" -lt "$deadline" ]; do
    grep -q "$pattern" "$file" 2>/dev/null && return 0
    sleep 0.2
  done
  return 1
}

# --- serial references, one per seed, before any chaos exists ------------
for ((i = 0; i < JOBS; ++i)); do
  seed=$((11 + i))
  "$FDMLD" --mode=reference --seed=$seed --taxa=$TAXA --sites=$SITES \
      --out="$WORKDIR/ref$seed.nwk" > /dev/null \
      || fail "reference run for seed $seed"
done

# --- server: fabric hub + scheduler + service endpoint -------------------
setsid "$FDMLD" --mode=serve --port=$HUB_PORT --fabric-size=$SIZE \
    --service-port=$SVC_PORT --taxa=$TAXA --sites=$SITES \
    --max-active=$MAX_ACTIVE --max-queued=$MAX_QUEUED \
    --round-retries=4 --watchdog-ms=5000 \
    --telemetry-ms=$TELEMETRY_MS \
    --trace-dir="$WORKDIR/trace" --trace-segment-bytes=8192 \
    --trace-segments=4096 \
    --checkpoint-dir="$WORKDIR/ckpts" \
    --metrics-out="$WORKDIR/metrics.json" \
    > "$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!
PIDS+=("$SERVE_PID")

# --- chaos proxy between every non-master rank and the hub ---------------
setsid "$FDMLD" --mode=proxy --listen-port=$PROXY_PORT \
    --target-port=$HUB_PORT --chaos="$PLAN" \
    > "$WORKDIR/proxy.log" 2>&1 &
PIDS+=("$!")
wait_for_line "$WORKDIR/proxy.log" "chaos proxy ready" 10 \
    || fail "proxy never came up"

# --- the other ranks, reconnect-hardened, dialing through the proxy ------
role() {
  local rank=$1 log=$2
  setsid "$FDMLD" --mode=role --rank=$rank --port=$PROXY_PORT \
      --fabric-size=$SIZE --taxa=$TAXA --sites=$SITES \
      --reconnect --reconnect-budget-ms=20000 --heartbeat-ms=250 \
      --telemetry-ms=$TELEMETRY_MS \
      --timeout-ms=2000 > "$log" 2>&1 &
  echo $!
}
declare -a ROLE_PIDS
for ((r = 1; r < SIZE; ++r)); do
  ROLE_PIDS[$r]=$(role "$r" "$WORKDIR/rank$r.log")
  PIDS+=("${ROLE_PIDS[$r]}")
done

wait_for_line "$WORKDIR/serve.log" "service ready" 30 \
    || fail "service never became ready (see serve.log)"

# --- submit a burst that overflows admission -----------------------------
declare -a SUBMIT_PIDS
for ((i = 0; i < JOBS; ++i)); do
  seed=$((11 + i))
  (
    "$FDMLD" --mode=submit --service-port=$SVC_PORT --seed=$seed \
        --taxa=$TAXA --sites=$SITES --wait-timeout-ms=120000 \
        --out="$WORKDIR/job$seed.nwk" > "$WORKDIR/submit$seed.log" 2>&1
    echo $? > "$WORKDIR/submit$seed.rc"
  ) &
  SUBMIT_PIDS+=("$!")
done

# --- telemetry drill 1: mid-soak scrape, all worker ranks live -----------
# Two telemetry periods in, every worker rank must be shipping nonzero
# kernel counters and per-job progress must already be visible.
sleep 2
"$FDMLD" --mode=scrape --service-port=$SVC_PORT \
    --out="$WORKDIR/scrape1.prom" || fail "mid-soak scrape 1"
python3 scripts/check_metrics.py "$WORKDIR/scrape1.prom" \
    --require-worker-ranks 3,4,5 \
    || fail "scrape 1 rejected by check_metrics.py"

# --- fault drills while the jobs run -------------------------------------
# 1) kill -9 the victim worker; before reviving it, a scrape must show the
#    rank marked stale (dead ranks are flagged, never silently frozen).
#    Then restart it with the same rank; the foreman must walk it through
#    suspect -> probation -> healthy.
#    (The transient partition fires on the proxy's own clock, from PLAN.)
echo "service_soak: kill -9 worker rank $VICTIM_RANK" >&2
kill -9 "${ROLE_PIDS[$VICTIM_RANK]}" 2>/dev/null || true
sleep 1.2   # > stale_after (2 x telemetry period) before the scrape
"$FDMLD" --mode=scrape --service-port=$SVC_PORT \
    --out="$WORKDIR/scrape_stale.prom" || fail "stale-window scrape"
python3 scripts/check_metrics.py "$WORKDIR/scrape_stale.prom" \
    --require-stale-ranks $VICTIM_RANK \
    || fail "killed rank $VICTIM_RANK not marked stale in scrape"
ROLE_PIDS[$VICTIM_RANK]=$(role "$VICTIM_RANK" "$WORKDIR/rank${VICTIM_RANK}b.log")
PIDS+=("${ROLE_PIDS[$VICTIM_RANK]}")

# --- telemetry drill 2: later scrape, counters monotonic, progress moves --
sleep 3
"$FDMLD" --mode=scrape --service-port=$SVC_PORT \
    --out="$WORKDIR/scrape2.prom" || fail "mid-soak scrape 2"
python3 scripts/check_metrics.py "$WORKDIR/scrape2.prom" \
    --advance-from "$WORKDIR/scrape1.prom" \
    || fail "scrape 2 rejected by check_metrics.py"

for pid in "${SUBMIT_PIDS[@]}"; do wait "$pid"; done

# --- tally: every job either completed correctly or was shed -------------
DONE=0
SHED=0
LOST=0
for ((i = 0; i < JOBS; ++i)); do
  seed=$((11 + i))
  rc=$(cat "$WORKDIR/submit$seed.rc" 2>/dev/null || echo 99)
  case "$rc" in
    0)
      cmp -s "$WORKDIR/job$seed.nwk" "$WORKDIR/ref$seed.nwk" \
          || fail "seed $seed tree differs from serial reference"
      DONE=$((DONE + 1)) ;;
    3) SHED=$((SHED + 1)) ;;
    *) echo "service_soak: seed $seed exit $rc" >&2; LOST=$((LOST + 1)) ;;
  esac
done
echo "service_soak: $DONE done (all bit-for-bit), $SHED shed, $LOST lost" >&2
[ "$LOST" -eq 0 ] || fail "$LOST jobs lost or failed"
[ "$DONE" -ge 8 ] || fail "only $DONE jobs completed (need >= 8)"
[ "$SHED" -ge 1 ] || fail "admission control never shed a job"

# --- live stats: shed count visible, nothing still in flight -------------
metric() {  # metric FILE NAME -> value (0 if absent)
  local v
  v=$(grep -o "\"name\":\"$2\",\"value\":[0-9.-]*" "$1" | head -1 \
      | grep -o '[0-9.-]*$')
  echo "${v:-0}"
}
"$FDMLD" --mode=stats --service-port=$SVC_PORT --out="$WORKDIR/stats.json" \
    || fail "stats query"
REJECTED=$(metric "$WORKDIR/stats.json" service.jobs_rejected_full)
ACTIVE=$(metric "$WORKDIR/stats.json" service.jobs_active)
COMPLETED=$(metric "$WORKDIR/stats.json" service.jobs_completed)
echo "service_soak: stats: completed=$COMPLETED rejected_full=$REJECTED active=$ACTIVE" >&2
[ "${REJECTED%%.*}" -ge 1 ] || fail "metrics do not report the shed jobs"
[ "${COMPLETED%%.*}" -eq "$DONE" ] || fail "metrics completed=$COMPLETED, submitters saw $DONE"

# --- graceful drain ------------------------------------------------------
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_STATUS=$?
grep -q "drained" "$WORKDIR/serve.log" || fail "no drain line in serve.log"
[ "$SERVE_STATUS" -eq 0 ] || fail "serve exited $SERVE_STATUS (jobs in flight?)"
[ -s "$WORKDIR/metrics.json" ] || fail "no metrics snapshot written"
REJECTED_FINAL=$(metric "$WORKDIR/metrics.json" service.jobs_rejected_full)
[ "${REJECTED_FINAL%%.*}" -ge 1 ] || fail "final snapshot lost the shed count"

# --- rotating trace segments stitch back into one valid timeline ---------
SEGMENTS=$(ls "$WORKDIR/trace"/segment-*.json 2>/dev/null | wc -l)
echo "service_soak: $SEGMENTS trace segment(s) in $WORKDIR/trace" >&2
[ "$SEGMENTS" -ge 2 ] || fail "expected >= 2 rotated trace segments, got $SEGMENTS"
"$BUILD_DIR/apps/trace_report" "$WORKDIR/trace" \
    --stitch-out="$WORKDIR/stitched.json" > "$WORKDIR/trace_report.txt" \
    || fail "trace_report could not stitch the segment directory"
python3 scripts/check_trace.py "$WORKDIR/stitched.json" \
    || fail "stitched trace rejected by check_trace.py"

sweep
trap - EXIT INT TERM
grep "chunks" "$WORKDIR/proxy.log" >&2 || true
echo "service_soak: PASS ($DONE jobs bit-for-bit, $SHED shed, clean drain)" >&2
exit 0
