#!/usr/bin/env bash
# Perf smoke: build Release, run the kernel benchmarks, and fail if SIMD
# kernel throughput regressed against the tracked baseline.
#
#   scripts/bench_smoke.sh [BUILD_DIR]
#
# BUILD_DIR defaults to build-bench. Environment knobs:
#   FDML_BENCH_TOLERANCE   allowed fractional regression (default 0.2)
#   FDML_BENCH_ABSOLUTE=1  also compare raw patterns/s against the baseline
#                          (only meaningful when the baseline was produced
#                          on this host; by default only the host-portable
#                          speedup-vs-scalar ratios and the >= 2x headline
#                          contract are checked)
#   FDML_BENCH_UPDATE=1    rewrite BENCH_kernels.json from this run instead
#                          of checking against it (refresh the baseline on
#                          a quiet machine, then commit the file)
#
# Artifacts land in BUILD_DIR/BENCH_kernels.json; the tracked baseline is
# BENCH_kernels.json at the repository root.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build-bench}
BASELINE=BENCH_kernels.json
TOLERANCE=${FDML_BENCH_TOLERANCE:-0.2}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_kernels bench_transition_cache

echo "== transition-cache counters =="
"$BUILD_DIR/bench/bench_transition_cache" --passes=2 --evals=5000

echo "== SIMD kernel sweep =="
if [[ "${FDML_BENCH_UPDATE:-0}" == "1" ]]; then
  "$BUILD_DIR/bench/bench_kernels" --json="$BASELINE"
  echo "baseline $BASELINE rewritten; review and commit it"
else
  CHECK_FLAGS=(--json="$BUILD_DIR/BENCH_kernels.json" --check="$BASELINE"
               --tolerance="$TOLERANCE")
  if [[ "${FDML_BENCH_ABSOLUTE:-0}" == "1" ]]; then
    CHECK_FLAGS+=(--check-absolute)
  fi
  "$BUILD_DIR/bench/bench_kernels" "${CHECK_FLAGS[@]}"
fi
