#!/usr/bin/env python3
"""Validate a Prometheus text exposition produced by `fdmld --mode=scrape`.

Checks, beyond line-level well-formedness:
  - every metric name matches the exposition grammar
    [a-zA-Z_:][a-zA-Z0-9_:]*, and label values are properly quoted;
  - every histogram (any *_bucket family) ends in a le="+Inf" bucket whose
    value equals the family's *_count, and bucket counts are cumulative
    (non-decreasing as le increases);
  - with --require-worker-ranks R1,R2,...: each listed rank reports at
    least one nonzero fdml_kernel_* series (live per-rank telemetry) and is
    not marked stale (fdml_rank_stale{rank="R"} == 0);
  - with --require-stale-ranks R1,...: each listed rank IS marked stale
    (the dead-worker drill);
  - with --advance-from EARLIER.prom: every counter-like series present in
    both scrapes is monotonic (never decreases), and at least one
    fdml_job_* progress series strictly advanced — a live run must move.

Usage: check_metrics.py SCRAPE.prom [--require-worker-ranks 3,4,5]
           [--require-stale-ranks 4] [--advance-from EARLIER.prom]
Exits 1 with a diagnostic on the first violated invariant.
"""
import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value
LINE_RE = re.compile(r"^([^\s{]+)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

# Prefixes whose series are counters by construction (summed deltas, task
# tallies) and must therefore never decrease between scrapes. The format
# itself cannot distinguish counters from gauges, so the check is an
# allowlist rather than "everything but the known gauges".
MONOTONIC_PREFIXES = (
    "fdml_kernel_",
    "fdml_worker_",
    "fdml_job_",
    "fdml_rank_frames",
    "fdml_rank_incarnations",
    "fdml_telemetry_frames_",
    "fdml_service_jobs_completed",
    "fdml_service_jobs_failed",
    "fdml_service_jobs_interrupted",
)
# Carve-outs within those prefixes that are not monotonic after all: phase
# flips between addition/rearrange, and best lnL legitimately *decreases*
# as taxa are added (each addition step evaluates more data).
NON_MONOTONIC = ("fdml_job_phase", "fdml_job_best_log_likelihood")


def fail(message):
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(raw, where):
    if raw == "+Inf":
        return float("inf")
    try:
        return float(raw)
    except ValueError:
        fail(f"{where}: unparseable sample value {raw!r}")


def parse_exposition(path):
    """-> dict mapping (name, frozenset(labels)) -> float value."""
    samples = {}
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        fail(f"cannot load {path}: {error}")
    for number, line in enumerate(lines, 1):
        where = f"{path}:{number}"
        if not line.strip() or line.startswith("#"):
            continue
        match = LINE_RE.match(line)
        if not match:
            fail(f"{where}: unparseable sample line {line!r}")
        name, raw_labels, raw_value = match.groups()
        if not NAME_RE.match(name):
            fail(f"{where}: invalid metric name {name!r}")
        labels = {}
        if raw_labels:
            body = raw_labels[1:-1]
            for label_match in LABEL_RE.finditer(body):
                labels[label_match.group(1)] = label_match.group(2)
            # Everything in the braces must be consumed by valid pairs.
            rebuilt = ",".join(
                f'{k}="{v}"' for k, v in
                ((m.group(1), m.group(2)) for m in LABEL_RE.finditer(body)))
            stripped = body.replace(" ", "")
            if rebuilt.replace(" ", "") != stripped:
                fail(f"{where}: malformed labels {raw_labels!r}")
        key = (name, frozenset(labels.items()))
        if key in samples:
            fail(f"{where}: duplicate series {name}{raw_labels or ''}")
        samples[key] = parse_value(raw_value, where)
    if not samples:
        fail(f"{path}: no samples")
    return samples


def check_histograms(samples):
    """Every *_bucket family: cumulative buckets, +Inf present == _count."""
    families = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        le = dict(labels).get("le")
        if le is None:
            fail(f"{name}: bucket series without le label")
        rest = frozenset(kv for kv in labels if kv[0] != "le")
        families.setdefault((name, rest), {})[le] = value
    for (name, rest), buckets in families.items():
        if "+Inf" not in buckets:
            fail(f"{name}{dict(rest)}: histogram without a +Inf bucket")
        finite = sorted(
            ((float(le), v) for le, v in buckets.items() if le != "+Inf"))
        previous = 0.0
        for le, value in finite:
            if value < previous:
                fail(f"{name}{dict(rest)}: bucket le={le} not cumulative")
            previous = value
        if buckets["+Inf"] < previous:
            fail(f"{name}{dict(rest)}: +Inf below the largest finite bucket")
        base = name[: -len("_bucket")]
        count = samples.get((base + "_count", rest))
        if count is not None and count != buckets["+Inf"]:
            fail(f"{base}: _count {count} != +Inf bucket {buckets['+Inf']}")
    return len(families)


def rank_of(labels):
    return dict(labels).get("rank")


def check_worker_ranks(samples, ranks):
    for rank in ranks:
        kernel = [
            value for (name, labels), value in samples.items()
            if name.startswith("fdml_kernel_") and rank_of(labels) == rank
            and not name.endswith(("_bucket", "_sum"))
        ]
        if not any(value > 0 for value in kernel):
            fail(f"rank {rank}: no nonzero fdml_kernel_* series "
                 f"({len(kernel)} seen)")
        stale = samples.get(("fdml_rank_stale", frozenset({("rank", rank)})))
        if stale is None:
            fail(f"rank {rank}: no fdml_rank_stale series")
        if stale != 0:
            fail(f"rank {rank}: marked stale in a scrape that requires it live")


def check_stale_ranks(samples, ranks):
    for rank in ranks:
        stale = samples.get(("fdml_rank_stale", frozenset({("rank", rank)})))
        if stale is None:
            fail(f"rank {rank}: no fdml_rank_stale series")
        if stale != 1:
            fail(f"rank {rank}: expected stale after the kill, got {stale}")


def check_advance(earlier, later):
    regressed = []
    for key, before in earlier.items():
        name = key[0]
        if not name.startswith(MONOTONIC_PREFIXES):
            continue
        if name.startswith(NON_MONOTONIC):
            continue
        after = later.get(key)
        if after is not None and after < before:
            regressed.append(f"{name}{dict(key[1])}: {before} -> {after}")
    if regressed:
        fail("counters regressed between scrapes:\n  " +
             "\n  ".join(regressed))

    progress = [
        key for key in later
        if key[0].startswith("fdml_job_")
        and not key[0].startswith(NON_MONOTONIC)
    ]
    if not progress:
        fail("later scrape has no fdml_job_* progress series")
    advanced = any(
        later[key] > earlier.get(key, 0) for key in progress)
    if not advanced:
        fail("no fdml_job_* series advanced between scrapes "
             "(is the run actually making progress?)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("scrape")
    parser.add_argument("--require-worker-ranks", default="")
    parser.add_argument("--require-stale-ranks", default="")
    parser.add_argument("--advance-from")
    args = parser.parse_args()

    samples = parse_exposition(args.scrape)
    histograms = check_histograms(samples)

    if args.require_worker_ranks:
        check_worker_ranks(samples, args.require_worker_ranks.split(","))
    if args.require_stale_ranks:
        check_stale_ranks(samples, args.require_stale_ranks.split(","))
    if args.advance_from:
        check_advance(parse_exposition(args.advance_from), samples)

    print(f"check_metrics: OK ({len(samples)} samples, "
          f"{histograms} histogram families)")


if __name__ == "__main__":
    main()
