# Empty dependencies file for protein_and_gaps.
# This may be replaced when dependencies are built.
