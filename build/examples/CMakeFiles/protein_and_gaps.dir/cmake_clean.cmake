file(REMOVE_RECURSE
  "CMakeFiles/protein_and_gaps.dir/protein_and_gaps.cpp.o"
  "CMakeFiles/protein_and_gaps.dir/protein_and_gaps.cpp.o.d"
  "protein_and_gaps"
  "protein_and_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_and_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
