file(REMOVE_RECURSE
  "CMakeFiles/rate_estimation.dir/rate_estimation.cpp.o"
  "CMakeFiles/rate_estimation.dir/rate_estimation.cpp.o.d"
  "rate_estimation"
  "rate_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
