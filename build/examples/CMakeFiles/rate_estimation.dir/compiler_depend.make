# Empty compiler generated dependencies file for rate_estimation.
# This may be replaced when dependencies are built.
