# Empty compiler generated dependencies file for consensus_study.
# This may be replaced when dependencies are built.
