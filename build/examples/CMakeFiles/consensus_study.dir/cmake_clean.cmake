file(REMOVE_RECURSE
  "CMakeFiles/consensus_study.dir/consensus_study.cpp.o"
  "CMakeFiles/consensus_study.dir/consensus_study.cpp.o.d"
  "consensus_study"
  "consensus_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
