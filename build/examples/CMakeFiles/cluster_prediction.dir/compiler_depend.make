# Empty compiler generated dependencies file for cluster_prediction.
# This may be replaced when dependencies are built.
