file(REMOVE_RECURSE
  "CMakeFiles/cluster_prediction.dir/cluster_prediction.cpp.o"
  "CMakeFiles/cluster_prediction.dir/cluster_prediction.cpp.o.d"
  "cluster_prediction"
  "cluster_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
