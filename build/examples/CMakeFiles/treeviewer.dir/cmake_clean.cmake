file(REMOVE_RECURSE
  "CMakeFiles/treeviewer.dir/treeviewer.cpp.o"
  "CMakeFiles/treeviewer.dir/treeviewer.cpp.o.d"
  "treeviewer"
  "treeviewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treeviewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
