# Empty compiler generated dependencies file for treeviewer.
# This may be replaced when dependencies are built.
