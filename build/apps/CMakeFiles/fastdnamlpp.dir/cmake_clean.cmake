file(REMOVE_RECURSE
  "CMakeFiles/fastdnamlpp.dir/fastdnamlpp.cpp.o"
  "CMakeFiles/fastdnamlpp.dir/fastdnamlpp.cpp.o.d"
  "fastdnamlpp"
  "fastdnamlpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastdnamlpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
