# Empty dependencies file for fastdnamlpp.
# This may be replaced when dependencies are built.
