# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_seq "/root/repo/build/tests/test_seq")
set_tests_properties(test_seq PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tree "/root/repo/build/tests/test_tree")
set_tests_properties(test_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_likelihood "/root/repo/build/tests/test_likelihood")
set_tests_properties(test_likelihood PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_search "/root/repo/build/tests/test_search")
set_tests_properties(test_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_parallel "/root/repo/build/tests/test_parallel")
set_tests_properties(test_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simcluster "/root/repo/build/tests/test_simcluster")
set_tests_properties(test_simcluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_viz "/root/repo/build/tests/test_viz")
set_tests_properties(test_viz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baseline "/root/repo/build/tests/test_baseline")
set_tests_properties(test_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/tests/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nstate "/root/repo/build/tests/test_nstate")
set_tests_properties(test_nstate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_checkpoint "/root/repo/build/tests/test_checkpoint")
set_tests_properties(test_checkpoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;fdml_add_test;/root/repo/tests/CMakeLists.txt;0;")
