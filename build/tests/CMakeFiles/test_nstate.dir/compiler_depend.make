# Empty compiler generated dependencies file for test_nstate.
# This may be replaced when dependencies are built.
