file(REMOVE_RECURSE
  "CMakeFiles/test_nstate.dir/test_nstate.cpp.o"
  "CMakeFiles/test_nstate.dir/test_nstate.cpp.o.d"
  "test_nstate"
  "test_nstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
