# Empty compiler generated dependencies file for bench_tree_counts.
# This may be replaced when dependencies are built.
