file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_counts.dir/bench_tree_counts.cpp.o"
  "CMakeFiles/bench_tree_counts.dir/bench_tree_counts.cpp.o.d"
  "bench_tree_counts"
  "bench_tree_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
