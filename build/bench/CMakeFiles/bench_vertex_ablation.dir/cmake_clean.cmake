file(REMOVE_RECURSE
  "CMakeFiles/bench_vertex_ablation.dir/bench_vertex_ablation.cpp.o"
  "CMakeFiles/bench_vertex_ablation.dir/bench_vertex_ablation.cpp.o.d"
  "bench_vertex_ablation"
  "bench_vertex_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vertex_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
