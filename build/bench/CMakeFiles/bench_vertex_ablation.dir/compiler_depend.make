# Empty compiler generated dependencies file for bench_vertex_ablation.
# This may be replaced when dependencies are built.
