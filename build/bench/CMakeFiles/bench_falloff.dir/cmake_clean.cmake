file(REMOVE_RECURSE
  "CMakeFiles/bench_falloff.dir/bench_falloff.cpp.o"
  "CMakeFiles/bench_falloff.dir/bench_falloff.cpp.o.d"
  "bench_falloff"
  "bench_falloff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_falloff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
