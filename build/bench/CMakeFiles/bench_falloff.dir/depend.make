# Empty dependencies file for bench_falloff.
# This may be replaced when dependencies are built.
