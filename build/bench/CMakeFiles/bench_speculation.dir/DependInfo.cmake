
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_speculation.cpp" "bench/CMakeFiles/bench_speculation.dir/bench_speculation.cpp.o" "gcc" "bench/CMakeFiles/bench_speculation.dir/bench_speculation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_likelihood.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_nstate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
