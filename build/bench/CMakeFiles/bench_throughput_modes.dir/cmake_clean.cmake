file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_modes.dir/bench_throughput_modes.cpp.o"
  "CMakeFiles/bench_throughput_modes.dir/bench_throughput_modes.cpp.o.d"
  "bench_throughput_modes"
  "bench_throughput_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
