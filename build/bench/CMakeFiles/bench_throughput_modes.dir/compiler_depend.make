# Empty compiler generated dependencies file for bench_throughput_modes.
# This may be replaced when dependencies are built.
