# Empty compiler generated dependencies file for bench_ml_vs_parsimony.
# This may be replaced when dependencies are built.
