file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_vs_parsimony.dir/bench_ml_vs_parsimony.cpp.o"
  "CMakeFiles/bench_ml_vs_parsimony.dir/bench_ml_vs_parsimony.cpp.o.d"
  "bench_ml_vs_parsimony"
  "bench_ml_vs_parsimony.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_vs_parsimony.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
