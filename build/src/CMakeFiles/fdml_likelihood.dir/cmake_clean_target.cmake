file(REMOVE_RECURSE
  "libfdml_likelihood.a"
)
