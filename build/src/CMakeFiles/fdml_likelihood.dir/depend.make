# Empty dependencies file for fdml_likelihood.
# This may be replaced when dependencies are built.
