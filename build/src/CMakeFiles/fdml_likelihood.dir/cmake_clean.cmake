file(REMOVE_RECURSE
  "CMakeFiles/fdml_likelihood.dir/likelihood/engine.cpp.o"
  "CMakeFiles/fdml_likelihood.dir/likelihood/engine.cpp.o.d"
  "CMakeFiles/fdml_likelihood.dir/likelihood/evaluator.cpp.o"
  "CMakeFiles/fdml_likelihood.dir/likelihood/evaluator.cpp.o.d"
  "CMakeFiles/fdml_likelihood.dir/likelihood/optimize.cpp.o"
  "CMakeFiles/fdml_likelihood.dir/likelihood/optimize.cpp.o.d"
  "CMakeFiles/fdml_likelihood.dir/likelihood/site_rates.cpp.o"
  "CMakeFiles/fdml_likelihood.dir/likelihood/site_rates.cpp.o.d"
  "libfdml_likelihood.a"
  "libfdml_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
