
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/likelihood/engine.cpp" "src/CMakeFiles/fdml_likelihood.dir/likelihood/engine.cpp.o" "gcc" "src/CMakeFiles/fdml_likelihood.dir/likelihood/engine.cpp.o.d"
  "/root/repo/src/likelihood/evaluator.cpp" "src/CMakeFiles/fdml_likelihood.dir/likelihood/evaluator.cpp.o" "gcc" "src/CMakeFiles/fdml_likelihood.dir/likelihood/evaluator.cpp.o.d"
  "/root/repo/src/likelihood/optimize.cpp" "src/CMakeFiles/fdml_likelihood.dir/likelihood/optimize.cpp.o" "gcc" "src/CMakeFiles/fdml_likelihood.dir/likelihood/optimize.cpp.o.d"
  "/root/repo/src/likelihood/site_rates.cpp" "src/CMakeFiles/fdml_likelihood.dir/likelihood/site_rates.cpp.o" "gcc" "src/CMakeFiles/fdml_likelihood.dir/likelihood/site_rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
