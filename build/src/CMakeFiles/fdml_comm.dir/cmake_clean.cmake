file(REMOVE_RECURSE
  "CMakeFiles/fdml_comm.dir/comm/transport.cpp.o"
  "CMakeFiles/fdml_comm.dir/comm/transport.cpp.o.d"
  "libfdml_comm.a"
  "libfdml_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
