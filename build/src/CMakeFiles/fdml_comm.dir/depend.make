# Empty dependencies file for fdml_comm.
# This may be replaced when dependencies are built.
