file(REMOVE_RECURSE
  "libfdml_comm.a"
)
