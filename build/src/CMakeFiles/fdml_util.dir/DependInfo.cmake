
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/fdml_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/linalg.cpp" "src/CMakeFiles/fdml_util.dir/util/linalg.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/linalg.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/fdml_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/lognumber.cpp" "src/CMakeFiles/fdml_util.dir/util/lognumber.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/lognumber.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/fdml_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/special.cpp" "src/CMakeFiles/fdml_util.dir/util/special.cpp.o" "gcc" "src/CMakeFiles/fdml_util.dir/util/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
