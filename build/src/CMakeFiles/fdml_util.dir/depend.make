# Empty dependencies file for fdml_util.
# This may be replaced when dependencies are built.
