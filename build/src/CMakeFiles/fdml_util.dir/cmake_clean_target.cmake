file(REMOVE_RECURSE
  "libfdml_util.a"
)
