file(REMOVE_RECURSE
  "CMakeFiles/fdml_util.dir/util/cli.cpp.o"
  "CMakeFiles/fdml_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/fdml_util.dir/util/linalg.cpp.o"
  "CMakeFiles/fdml_util.dir/util/linalg.cpp.o.d"
  "CMakeFiles/fdml_util.dir/util/log.cpp.o"
  "CMakeFiles/fdml_util.dir/util/log.cpp.o.d"
  "CMakeFiles/fdml_util.dir/util/lognumber.cpp.o"
  "CMakeFiles/fdml_util.dir/util/lognumber.cpp.o.d"
  "CMakeFiles/fdml_util.dir/util/rng.cpp.o"
  "CMakeFiles/fdml_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/fdml_util.dir/util/special.cpp.o"
  "CMakeFiles/fdml_util.dir/util/special.cpp.o.d"
  "libfdml_util.a"
  "libfdml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
