# Empty dependencies file for fdml_seq.
# This may be replaced when dependencies are built.
