file(REMOVE_RECURSE
  "CMakeFiles/fdml_seq.dir/seq/alignment.cpp.o"
  "CMakeFiles/fdml_seq.dir/seq/alignment.cpp.o.d"
  "CMakeFiles/fdml_seq.dir/seq/alphabet.cpp.o"
  "CMakeFiles/fdml_seq.dir/seq/alphabet.cpp.o.d"
  "CMakeFiles/fdml_seq.dir/seq/phylip.cpp.o"
  "CMakeFiles/fdml_seq.dir/seq/phylip.cpp.o.d"
  "libfdml_seq.a"
  "libfdml_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
