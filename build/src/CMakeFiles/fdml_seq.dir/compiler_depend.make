# Empty compiler generated dependencies file for fdml_seq.
# This may be replaced when dependencies are built.
