file(REMOVE_RECURSE
  "libfdml_seq.a"
)
