
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/alignment.cpp" "src/CMakeFiles/fdml_seq.dir/seq/alignment.cpp.o" "gcc" "src/CMakeFiles/fdml_seq.dir/seq/alignment.cpp.o.d"
  "/root/repo/src/seq/alphabet.cpp" "src/CMakeFiles/fdml_seq.dir/seq/alphabet.cpp.o" "gcc" "src/CMakeFiles/fdml_seq.dir/seq/alphabet.cpp.o.d"
  "/root/repo/src/seq/phylip.cpp" "src/CMakeFiles/fdml_seq.dir/seq/phylip.cpp.o" "gcc" "src/CMakeFiles/fdml_seq.dir/seq/phylip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
