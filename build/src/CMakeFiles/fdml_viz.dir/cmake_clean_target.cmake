file(REMOVE_RECURSE
  "libfdml_viz.a"
)
