file(REMOVE_RECURSE
  "CMakeFiles/fdml_viz.dir/viz/ascii.cpp.o"
  "CMakeFiles/fdml_viz.dir/viz/ascii.cpp.o.d"
  "CMakeFiles/fdml_viz.dir/viz/layout.cpp.o"
  "CMakeFiles/fdml_viz.dir/viz/layout.cpp.o.d"
  "CMakeFiles/fdml_viz.dir/viz/svg.cpp.o"
  "CMakeFiles/fdml_viz.dir/viz/svg.cpp.o.d"
  "libfdml_viz.a"
  "libfdml_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
