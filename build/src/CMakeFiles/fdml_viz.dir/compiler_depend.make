# Empty compiler generated dependencies file for fdml_viz.
# This may be replaced when dependencies are built.
