
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nstate/alphabet.cpp" "src/CMakeFiles/fdml_nstate.dir/nstate/alphabet.cpp.o" "gcc" "src/CMakeFiles/fdml_nstate.dir/nstate/alphabet.cpp.o.d"
  "/root/repo/src/nstate/data.cpp" "src/CMakeFiles/fdml_nstate.dir/nstate/data.cpp.o" "gcc" "src/CMakeFiles/fdml_nstate.dir/nstate/data.cpp.o.d"
  "/root/repo/src/nstate/engine.cpp" "src/CMakeFiles/fdml_nstate.dir/nstate/engine.cpp.o" "gcc" "src/CMakeFiles/fdml_nstate.dir/nstate/engine.cpp.o.d"
  "/root/repo/src/nstate/model.cpp" "src/CMakeFiles/fdml_nstate.dir/nstate/model.cpp.o" "gcc" "src/CMakeFiles/fdml_nstate.dir/nstate/model.cpp.o.d"
  "/root/repo/src/nstate/simulate.cpp" "src/CMakeFiles/fdml_nstate.dir/nstate/simulate.cpp.o" "gcc" "src/CMakeFiles/fdml_nstate.dir/nstate/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
