# Empty compiler generated dependencies file for fdml_nstate.
# This may be replaced when dependencies are built.
