file(REMOVE_RECURSE
  "libfdml_nstate.a"
)
