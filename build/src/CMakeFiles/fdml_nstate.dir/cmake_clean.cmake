file(REMOVE_RECURSE
  "CMakeFiles/fdml_nstate.dir/nstate/alphabet.cpp.o"
  "CMakeFiles/fdml_nstate.dir/nstate/alphabet.cpp.o.d"
  "CMakeFiles/fdml_nstate.dir/nstate/data.cpp.o"
  "CMakeFiles/fdml_nstate.dir/nstate/data.cpp.o.d"
  "CMakeFiles/fdml_nstate.dir/nstate/engine.cpp.o"
  "CMakeFiles/fdml_nstate.dir/nstate/engine.cpp.o.d"
  "CMakeFiles/fdml_nstate.dir/nstate/model.cpp.o"
  "CMakeFiles/fdml_nstate.dir/nstate/model.cpp.o.d"
  "CMakeFiles/fdml_nstate.dir/nstate/simulate.cpp.o"
  "CMakeFiles/fdml_nstate.dir/nstate/simulate.cpp.o.d"
  "libfdml_nstate.a"
  "libfdml_nstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_nstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
