# Empty dependencies file for fdml_tree.
# This may be replaced when dependencies are built.
