file(REMOVE_RECURSE
  "libfdml_tree.a"
)
