
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/consensus.cpp" "src/CMakeFiles/fdml_tree.dir/tree/consensus.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/consensus.cpp.o.d"
  "/root/repo/src/tree/counting.cpp" "src/CMakeFiles/fdml_tree.dir/tree/counting.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/counting.cpp.o.d"
  "/root/repo/src/tree/general_tree.cpp" "src/CMakeFiles/fdml_tree.dir/tree/general_tree.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/general_tree.cpp.o.d"
  "/root/repo/src/tree/neighborhood.cpp" "src/CMakeFiles/fdml_tree.dir/tree/neighborhood.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/neighborhood.cpp.o.d"
  "/root/repo/src/tree/newick.cpp" "src/CMakeFiles/fdml_tree.dir/tree/newick.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/newick.cpp.o.d"
  "/root/repo/src/tree/random.cpp" "src/CMakeFiles/fdml_tree.dir/tree/random.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/random.cpp.o.d"
  "/root/repo/src/tree/splits.cpp" "src/CMakeFiles/fdml_tree.dir/tree/splits.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/splits.cpp.o.d"
  "/root/repo/src/tree/tree.cpp" "src/CMakeFiles/fdml_tree.dir/tree/tree.cpp.o" "gcc" "src/CMakeFiles/fdml_tree.dir/tree/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
