file(REMOVE_RECURSE
  "CMakeFiles/fdml_tree.dir/tree/consensus.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/consensus.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/counting.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/counting.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/general_tree.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/general_tree.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/neighborhood.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/neighborhood.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/newick.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/newick.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/random.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/random.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/splits.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/splits.cpp.o.d"
  "CMakeFiles/fdml_tree.dir/tree/tree.cpp.o"
  "CMakeFiles/fdml_tree.dir/tree/tree.cpp.o.d"
  "libfdml_tree.a"
  "libfdml_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
