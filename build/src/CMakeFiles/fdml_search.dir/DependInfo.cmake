
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/bootstrap.cpp" "src/CMakeFiles/fdml_search.dir/search/bootstrap.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/bootstrap.cpp.o.d"
  "/root/repo/src/search/runner.cpp" "src/CMakeFiles/fdml_search.dir/search/runner.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/runner.cpp.o.d"
  "/root/repo/src/search/search.cpp" "src/CMakeFiles/fdml_search.dir/search/search.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/search.cpp.o.d"
  "/root/repo/src/search/task.cpp" "src/CMakeFiles/fdml_search.dir/search/task.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/task.cpp.o.d"
  "/root/repo/src/search/task_evaluator.cpp" "src/CMakeFiles/fdml_search.dir/search/task_evaluator.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/task_evaluator.cpp.o.d"
  "/root/repo/src/search/trace.cpp" "src/CMakeFiles/fdml_search.dir/search/trace.cpp.o" "gcc" "src/CMakeFiles/fdml_search.dir/search/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_likelihood.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
