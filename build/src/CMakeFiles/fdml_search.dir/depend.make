# Empty dependencies file for fdml_search.
# This may be replaced when dependencies are built.
