file(REMOVE_RECURSE
  "CMakeFiles/fdml_search.dir/search/bootstrap.cpp.o"
  "CMakeFiles/fdml_search.dir/search/bootstrap.cpp.o.d"
  "CMakeFiles/fdml_search.dir/search/runner.cpp.o"
  "CMakeFiles/fdml_search.dir/search/runner.cpp.o.d"
  "CMakeFiles/fdml_search.dir/search/search.cpp.o"
  "CMakeFiles/fdml_search.dir/search/search.cpp.o.d"
  "CMakeFiles/fdml_search.dir/search/task.cpp.o"
  "CMakeFiles/fdml_search.dir/search/task.cpp.o.d"
  "CMakeFiles/fdml_search.dir/search/task_evaluator.cpp.o"
  "CMakeFiles/fdml_search.dir/search/task_evaluator.cpp.o.d"
  "CMakeFiles/fdml_search.dir/search/trace.cpp.o"
  "CMakeFiles/fdml_search.dir/search/trace.cpp.o.d"
  "libfdml_search.a"
  "libfdml_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
