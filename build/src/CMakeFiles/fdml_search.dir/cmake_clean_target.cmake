file(REMOVE_RECURSE
  "libfdml_search.a"
)
