file(REMOVE_RECURSE
  "CMakeFiles/fdml_baseline.dir/baseline/nj.cpp.o"
  "CMakeFiles/fdml_baseline.dir/baseline/nj.cpp.o.d"
  "CMakeFiles/fdml_baseline.dir/baseline/parsimony.cpp.o"
  "CMakeFiles/fdml_baseline.dir/baseline/parsimony.cpp.o.d"
  "libfdml_baseline.a"
  "libfdml_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
