# Empty compiler generated dependencies file for fdml_baseline.
# This may be replaced when dependencies are built.
