
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/nj.cpp" "src/CMakeFiles/fdml_baseline.dir/baseline/nj.cpp.o" "gcc" "src/CMakeFiles/fdml_baseline.dir/baseline/nj.cpp.o.d"
  "/root/repo/src/baseline/parsimony.cpp" "src/CMakeFiles/fdml_baseline.dir/baseline/parsimony.cpp.o" "gcc" "src/CMakeFiles/fdml_baseline.dir/baseline/parsimony.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
