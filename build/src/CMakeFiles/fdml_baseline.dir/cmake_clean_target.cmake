file(REMOVE_RECURSE
  "libfdml_baseline.a"
)
