file(REMOVE_RECURSE
  "CMakeFiles/fdml_parallel.dir/parallel/cluster.cpp.o"
  "CMakeFiles/fdml_parallel.dir/parallel/cluster.cpp.o.d"
  "CMakeFiles/fdml_parallel.dir/parallel/foreman.cpp.o"
  "CMakeFiles/fdml_parallel.dir/parallel/foreman.cpp.o.d"
  "CMakeFiles/fdml_parallel.dir/parallel/monitor.cpp.o"
  "CMakeFiles/fdml_parallel.dir/parallel/monitor.cpp.o.d"
  "CMakeFiles/fdml_parallel.dir/parallel/protocol.cpp.o"
  "CMakeFiles/fdml_parallel.dir/parallel/protocol.cpp.o.d"
  "CMakeFiles/fdml_parallel.dir/parallel/worker.cpp.o"
  "CMakeFiles/fdml_parallel.dir/parallel/worker.cpp.o.d"
  "libfdml_parallel.a"
  "libfdml_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
