file(REMOVE_RECURSE
  "libfdml_parallel.a"
)
