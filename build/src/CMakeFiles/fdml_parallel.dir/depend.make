# Empty dependencies file for fdml_parallel.
# This may be replaced when dependencies are built.
