file(REMOVE_RECURSE
  "libfdml_simcluster.a"
)
