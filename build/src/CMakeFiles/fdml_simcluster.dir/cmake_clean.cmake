file(REMOVE_RECURSE
  "CMakeFiles/fdml_simcluster.dir/simcluster/simulator.cpp.o"
  "CMakeFiles/fdml_simcluster.dir/simcluster/simulator.cpp.o.d"
  "CMakeFiles/fdml_simcluster.dir/simcluster/workload.cpp.o"
  "CMakeFiles/fdml_simcluster.dir/simcluster/workload.cpp.o.d"
  "libfdml_simcluster.a"
  "libfdml_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
