# Empty compiler generated dependencies file for fdml_simcluster.
# This may be replaced when dependencies are built.
