file(REMOVE_RECURSE
  "libfdml_model.a"
)
