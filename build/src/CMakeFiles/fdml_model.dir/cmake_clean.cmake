file(REMOVE_RECURSE
  "CMakeFiles/fdml_model.dir/model/rates.cpp.o"
  "CMakeFiles/fdml_model.dir/model/rates.cpp.o.d"
  "CMakeFiles/fdml_model.dir/model/simulate.cpp.o"
  "CMakeFiles/fdml_model.dir/model/simulate.cpp.o.d"
  "CMakeFiles/fdml_model.dir/model/submodel.cpp.o"
  "CMakeFiles/fdml_model.dir/model/submodel.cpp.o.d"
  "libfdml_model.a"
  "libfdml_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdml_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
