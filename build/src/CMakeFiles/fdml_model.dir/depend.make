# Empty dependencies file for fdml_model.
# This may be replaced when dependencies are built.
