
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/rates.cpp" "src/CMakeFiles/fdml_model.dir/model/rates.cpp.o" "gcc" "src/CMakeFiles/fdml_model.dir/model/rates.cpp.o.d"
  "/root/repo/src/model/simulate.cpp" "src/CMakeFiles/fdml_model.dir/model/simulate.cpp.o" "gcc" "src/CMakeFiles/fdml_model.dir/model/simulate.cpp.o.d"
  "/root/repo/src/model/submodel.cpp" "src/CMakeFiles/fdml_model.dir/model/submodel.cpp.o" "gcc" "src/CMakeFiles/fdml_model.dir/model/submodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fdml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fdml_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
