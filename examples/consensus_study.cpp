// Consensus workflow: the paper's "analyze tens to thousands of different
// randomizations, then compare the best of the resulting trees to determine
// a consensus tree", plus the Figure 5 visualization — multiple final trees
// side by side with taxon traces, written as SVG.
//
//   ./consensus_study --jumbles=6 --taxa=14 --sites=400
//   ./consensus_study --svg=trees.svg --trace=T0001,T0002
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  const int taxa = static_cast<int>(args.get_int("taxa", 14));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 400));
  const int jumbles = static_cast<int>(args.get_int("jumbles", 6));
  Alignment alignment = args.has("input")
                            ? read_phylip_file(args.get("input", ""))
                            : make_paper_like_dataset(taxa, sites, 77);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  SerialTaskRunner runner(data, model, rates);

  std::printf("Running %d random addition orders...\n", jumbles);
  const JumbleResult result = run_jumbles(data, options, jumbles, runner);

  std::vector<Tree> trees;
  std::vector<GeneralTree> displays;
  std::vector<std::string> titles;
  for (std::size_t k = 0; k < result.runs.size(); ++k) {
    const auto& run = result.runs[k];
    trees.push_back(tree_from_newick(run.best_newick, data.names()));
    displays.push_back(GeneralTree::from_tree(trees.back(), data.names()));
    std::ostringstream title;
    title << "order " << k << "  lnL " << run.best_log_likelihood;
    titles.push_back(title.str());
    std::printf("  order %zu: ln L = %.4f%s\n", k, run.best_log_likelihood,
                k == result.best_index ? "   <- best" : "");
  }

  // Pairwise topological agreement.
  std::printf("\nRobinson-Foulds distances between runs:\n     ");
  for (std::size_t j = 0; j < trees.size(); ++j) std::printf("%4zu", j);
  std::printf("\n");
  for (std::size_t i = 0; i < trees.size(); ++i) {
    std::printf("  %2zu ", i);
    for (std::size_t j = 0; j < trees.size(); ++j) {
      std::printf("%4d", robinson_foulds(trees[i], trees[j]));
    }
    std::printf("\n");
  }

  const GeneralTree consensus = consensus_tree(trees, data.names());
  std::printf("\nMajority-rule consensus (internal labels = %% support):\n");
  AsciiOptions ascii;
  ascii.show_support = true;
  std::printf("%s\n", render_ascii(consensus, ascii).c_str());

  // Figure-5-style comparison SVG.
  std::vector<std::string> traced;
  {
    std::stringstream list(args.get("trace", data.names().front() + "," +
                                                 data.names().back()));
    std::string item;
    while (std::getline(list, item, ',')) {
      if (!item.empty()) traced.push_back(item);
    }
  }
  const std::string path = args.get("svg", "consensus_comparison.svg");
  std::ofstream out(path);
  out << render_comparison_svg(displays, traced, titles);
  std::printf("Wrote %zu-panel comparison with %zu traced taxa to %s\n",
              displays.size(), traced.size(), path.c_str());
  return 0;
}
