// Beyond DNA: the generalized N-state engine running the paper's two
// headline future-work models — 20-state protein likelihoods and the
// 5-state DNA model that treats alignment gaps as a character state.
//
//   ./protein_and_gaps --taxa=10 --sites=250
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);
  const int taxa = static_cast<int>(args.get_int("taxa", 10));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 250));

  // --- protein ---
  Rng rng(2718);
  const Tree truth = random_yule_tree(taxa, rng);
  const StateAlphabet protein = StateAlphabet::protein();
  const GeneralModel poisson = GeneralModel::poisson(20);
  const StateAlignment protein_alignment = simulate_states(
      truth, default_taxon_names(taxa), protein, poisson,
      RateModel::discrete_gamma(1.0, 4), sites, rng);
  const StatePatterns protein_data(protein_alignment);
  std::printf("Protein dataset: %d taxa x %zu sites -> %zu patterns\n", taxa,
              sites, protein_data.num_patterns());

  // Evaluate under Poisson vs Proportional (empirical frequencies).
  GeneralEngine poisson_engine(protein_data, poisson, RateModel::discrete_gamma(1.0, 4));
  Tree poisson_tree = truth;
  const double poisson_lnl = poisson_engine.smooth(poisson_tree, 4);
  const GeneralModel proportional =
      GeneralModel::proportional(protein_data.frequencies());
  GeneralEngine prop_engine(protein_data, proportional, RateModel::discrete_gamma(1.0, 4));
  Tree prop_tree = truth;
  const double prop_lnl = prop_engine.smooth(prop_tree, 4);
  std::printf("  ln L Poisson:            %12.3f\n", poisson_lnl);
  std::printf("  ln L Proportional(+F):   %12.3f\n", prop_lnl);

  // --- gaps as a character state ---
  Rng gap_rng(37);
  const Tree gap_truth = random_yule_tree(taxa, gap_rng);
  const GeneralModel gap_model =
      GeneralModel::dna_with_gap({0.28, 0.21, 0.26, 0.25}, 1.2, 0.12, 0.5);
  const StateAlignment gap_alignment = simulate_states(
      gap_truth, default_taxon_names(taxa), StateAlphabet::dna_with_gap(),
      gap_model, RateModel::uniform(), sites, gap_rng);
  const StatePatterns gap_data(gap_alignment);
  const auto freq = gap_data.frequencies();
  std::printf("\nDNA+gap dataset: %zu patterns; empirical gap frequency %.3f\n",
              gap_data.num_patterns(), freq[4]);

  GeneralEngine gap_engine(gap_data, gap_model, RateModel::uniform());
  Tree gap_tree = gap_truth;
  const double gap_lnl = gap_engine.smooth(gap_tree, 4);
  std::printf("  ln L 5-state (gap = character): %12.3f\n", gap_lnl);

  // Compare with the classic treatment: strip gaps to missing data and run
  // the 4-state core engine.
  Alignment missing;
  for (std::size_t t = 0; t < gap_alignment.num_taxa(); ++t) {
    std::string row;
    for (std::size_t s = 0; s < gap_alignment.num_sites(); ++s) {
      const std::uint32_t mask = gap_alignment.at(t, s);
      row.push_back(mask == (1u << 4) ? 'N' : StateAlphabet::dna_with_gap().decode({mask})[0]);
    }
    missing.add_sequence(gap_alignment.name(t), string_to_codes(row));
  }
  const PatternAlignment missing_data(missing);
  TreeEvaluator evaluator(missing_data,
                          SubstModel::f84_from_tstv(missing_data.base_frequencies(), 1.2),
                          RateModel::uniform());
  Tree missing_tree = gap_truth;
  const double missing_lnl = evaluator.evaluate(missing_tree).log_likelihood;
  std::printf("  ln L 4-state (gap = missing):   %12.3f\n", missing_lnl);
  std::printf("\n(The likelihoods are not directly comparable — different\n"
              "state spaces — but the 5-state model *uses* indel phylogenetic\n"
              "signal the missing-data treatment throws away; see the\n"
              "GapStateExtractsSignal test.)\n");
  return 0;
}
