// The DNArates workflow: estimate per-site evolutionary rates on a fixed
// tree, bin them into categories, and show that re-scoring with the
// estimated categories improves the likelihood over the uniform-rate model
// when the data are genuinely heterogeneous.
//
//   ./rate_estimation --taxa=12 --sites=300 --alpha=0.5 --categories=6
#include <algorithm>
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  const int taxa = static_cast<int>(args.get_int("taxa", 12));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 300));
  const double alpha = args.get_double("alpha", 0.5);
  const int categories = static_cast<int>(args.get_int("categories", 6));

  // Simulate heterogeneous data: gamma-distributed site rates.
  Rng rng(99);
  const Tree truth = random_yule_tree(taxa, rng);
  const Vec4 pi{0.28, 0.21, 0.26, 0.25};
  const SubstModel model = SubstModel::f84_from_tstv(pi, 2.0);
  SimulateOptions sim;
  sim.num_sites = sites;
  const Alignment alignment =
      simulate_alignment(truth, default_taxon_names(taxa), model,
                         RateModel::discrete_gamma(alpha, 8), sim, rng);
  const PatternAlignment data(alignment);
  std::printf("Simulated %d taxa x %zu sites under gamma(alpha=%.2f) rates\n",
              taxa, sites, alpha);

  // Baseline likelihood with uniform rates on the true topology.
  TreeEvaluator uniform_eval(data, model, RateModel::uniform());
  Tree uniform_tree = truth;
  const double uniform_lnl = uniform_eval.evaluate(uniform_tree).log_likelihood;
  std::printf("ln L (uniform rates):        %.4f\n", uniform_lnl);

  // Estimate per-site rates on that tree (DNArates role).
  Timer timer;
  const SiteRateResult estimated = estimate_site_rates(uniform_tree, data, model);
  std::printf("Estimated %zu site rates (%zu unique patterns) in %.2fs\n",
              estimated.site_rates.size(), estimated.pattern_rates.size(),
              timer.seconds());
  const auto [lo, hi] = std::minmax_element(estimated.site_rates.begin(),
                                            estimated.site_rates.end());
  std::printf("Site-rate range: %.3f .. %.3f\n", *lo, *hi);

  // Bin into categories and re-evaluate.
  const RateCategorization categorized =
      categorize_rates(estimated.site_rates, categories);
  std::printf("Categories:");
  for (std::size_t c = 0; c < categorized.model.num_categories(); ++c) {
    std::printf("  %.3f(p=%.2f)", categorized.model.rate(c),
                categorized.model.probability(c));
  }
  std::printf("\n");

  TreeEvaluator category_eval(data, model, categorized.model);
  Tree category_tree = truth;
  const double category_lnl = category_eval.evaluate(category_tree).log_likelihood;
  std::printf("ln L (estimated categories): %.4f\n", category_lnl);
  std::printf("Improvement:                 %+.4f\n", category_lnl - uniform_lnl);

  // A simple rate profile along the alignment.
  std::printf("\nRate profile (one char per site, '.' slow -> '#' fast):\n");
  const double span = std::max(1e-9, *hi - *lo);
  const char* glyphs = ".:-=+*%#";
  for (std::size_t s = 0; s < estimated.site_rates.size(); ++s) {
    const double norm = (estimated.site_rates[s] - *lo) / span;
    const int g = std::min(7, static_cast<int>(norm * 8.0));
    std::putchar(glyphs[g]);
    if ((s + 1) % 80 == 0) std::putchar('\n');
  }
  std::putchar('\n');
  return 0;
}
