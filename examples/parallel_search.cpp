// Parallel search: the paper's master/foreman/worker/monitor layout running
// over the in-process thread transport.
//
//   ./parallel_search --workers=4 --taxa=20 --sites=600 --seed=3
//   ./parallel_search --timeout-ms=5000        # fault-tolerance timeout
//   ./parallel_search --chaos="chaos-plan v1 seed=7 drop=0.05 delay=0.2"
//                                              # seeded fault injection
//   ./parallel_search --checkpoint=run.ckpt --keep=3
//                                              # durable restart checkpoints
//   ./parallel_search --resume=run.ckpt --out=best.nwk
//                                              # continue after a kill -9
//   ./parallel_search --trace-out=run.json --log-level=info
//                                              # Chrome trace + live logs
//   ./parallel_search --sim-trace-out=sim.json --sim-procs=7
//                                              # simulated replay trace
//
// Prints the result plus the monitor's instrumentation: per-worker task
// counts, round count, and the barrier slack that limits scalability (the
// paper's "loosely synchronized" comparison barriers).
#include <cstdio>
#include <fstream>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level.has_value()) {
      std::fprintf(stderr, "error: bad --log-level (debug|info|warn|error|off)\n");
      return 1;
    }
    set_log_level(*level);
  }
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  const int taxa = static_cast<int>(args.get_int("taxa", 20));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 600));
  Alignment alignment = args.has("input")
                            ? read_phylip_file(args.get("input", ""))
                            : make_paper_like_dataset(taxa, sites, 4242);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  ClusterOptions cluster_options;
  cluster_options.num_workers = static_cast<int>(args.get_int("workers", 4));
  cluster_options.foreman.worker_timeout =
      std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  if (args.has("chaos")) {
    // A serialized FaultPlan, e.g. "chaos-plan v1 seed=7 drop=0.05". The
    // same plan line replays the same fault schedule on every run.
    cluster_options.chaos = FaultPlan::parse(args.get("chaos", ""));
  }
  InProcessCluster cluster(data, model, rates, cluster_options);
  std::printf("Cluster: 1 master + 1 foreman + 1 monitor + %d workers "
              "(%d \"processors\")\n",
              cluster.num_workers(), cluster.num_workers() + 3);

  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  options.checkpoint_path = args.get("checkpoint", "");
  options.checkpoint_keep = static_cast<std::uint64_t>(args.get_int("keep", 3));
  options.dataset_fingerprint = alignment_fingerprint(data);

  Timer timer;
  SearchResult result;
  if (args.has("resume")) {
    // Crash recovery: roll back to the newest valid checkpoint generation
    // (fingerprint-checked against this alignment) and continue from there.
    // The completed result is bit-for-bit the uninterrupted run's.
    const std::string resume_path = args.get("resume", "");
    const auto recovered =
        recover_checkpoint(resume_path, options.dataset_fingerprint);
    if (!recovered.has_value()) {
      std::fprintf(stderr, "error: no usable checkpoint at %s\n",
                   resume_path.c_str());
      return 1;
    }
    std::printf("resuming from %s (generation %llu, %d of %zu taxa placed)\n",
                recovered->path.c_str(),
                static_cast<unsigned long long>(recovered->generation),
                recovered->checkpoint.next_order_index, data.num_taxa());
    if (options.checkpoint_path.empty()) options.checkpoint_path = resume_path;
    options.seed = recovered->checkpoint.seed;
    result = StepwiseSearch(data, options)
                 .resume(cluster.runner(), recovered->checkpoint);
  } else {
    result = StepwiseSearch(data, options).run(cluster.runner());
  }
  const double wall = timer.seconds();
  cluster.shutdown();  // joins the role threads; final stats are now stable

  if (!trace_out.empty()) {
    obs::Tracer::instance().disable();
    const obs::TraceLog log = obs::Tracer::instance().drain();
    std::ofstream out(trace_out);
    log.write_chrome(out);
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote trace: %s (%zu events, %llu dropped)\n",
                trace_out.c_str(), log.events.size(),
                static_cast<unsigned long long>(log.dropped_events));
  }
  if (args.has("sim-trace-out")) {
    // Replay the recorded search trace through the discrete-event cluster
    // and emit the same Chrome-trace vocabulary with virtual timestamps.
    const std::string sim_out = args.get("sim-trace-out", "");
    obs::TraceLog sim_log;
    SimClusterConfig sim_config;
    sim_config.processors = static_cast<int>(args.get_int("sim-procs", 7));
    sim_config.trace = &sim_log;
    const SimResult sim = simulate_trace(result.trace, sim_config);
    std::ofstream out(sim_out);
    sim_log.write_chrome(out);
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", sim_out.c_str());
      return 1;
    }
    std::printf("wrote simulated trace: %s (%d procs, %.3fs virtual wall, "
                "utilization %.2f)\n",
                sim_out.c_str(), sim_config.processors, sim.wall_seconds,
                sim.worker_utilization);
  }

  std::printf("\nBest ln L = %.4f after %zu candidate trees in %.2fs wall\n",
              result.best_log_likelihood, result.trees_evaluated, wall);

  const MonitorReport report = cluster.monitor_report();
  std::printf("\nMonitor report\n");
  std::printf("  rounds (barriers):      %llu\n",
              static_cast<unsigned long long>(report.rounds));
  std::printf("  tasks completed:        %llu\n",
              static_cast<unsigned long long>(report.completions));
  std::printf("  worker CPU total:       %.2fs\n", report.total_worker_cpu_seconds);
  std::printf("  requeues / delinquent:  %llu / %llu\n",
              static_cast<unsigned long long>(report.requeues),
              static_cast<unsigned long long>(report.delinquencies));
  double slack = 0.0;
  for (double s : report.round_slack_seconds) slack += s;
  if (!report.round_slack_seconds.empty()) {
    slack /= static_cast<double>(report.round_slack_seconds.size());
  }
  std::printf("  mean barrier slack:     %.4fs\n", slack);
  std::printf("  tasks per worker:      ");
  for (const auto& [worker, count] : report.tasks_per_worker) {
    std::printf(" w%d:%llu", worker, static_cast<unsigned long long>(count));
  }
  std::printf("\n  fabric traffic:         %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(cluster.fabric_messages()),
              static_cast<unsigned long long>(cluster.fabric_bytes()));

  if (const auto totals = cluster.chaos_totals()) {
    std::printf("\nChaos harness (%s)\n",
                cluster_options.chaos->serialize().c_str());
    std::printf("  dropped/duplicated:     %llu / %llu\n",
                static_cast<unsigned long long>(totals->drops.load()),
                static_cast<unsigned long long>(totals->duplicates.load()));
    std::printf("  corrupted/task-corrupt: %llu / %llu\n",
                static_cast<unsigned long long>(totals->corruptions.load()),
                static_cast<unsigned long long>(totals->task_corruptions.load()));
    std::printf("  delayed/reordered:      %llu / %llu\n",
                static_cast<unsigned long long>(totals->delays.load()),
                static_cast<unsigned long long>(totals->reorders.load()));
    std::printf("  crashes:                %llu\n",
                static_cast<unsigned long long>(totals->crashes.load()));
    std::printf("  quarantines/probations: %llu / %llu\n",
                static_cast<unsigned long long>(
                    cluster.foreman_stats().quarantines),
                static_cast<unsigned long long>(
                    cluster.foreman_stats().probations));
    std::printf("  rounds failed/fallback: %llu / %llu\n",
                static_cast<unsigned long long>(
                    cluster.master_stats().rounds_failed),
                static_cast<unsigned long long>(
                    cluster.master_stats().serial_fallbacks));
  }

  const Tree best = tree_from_newick(result.best_newick, data.names());
  std::printf("\nNewick: %s\n", to_newick(best, data.names(), 6).c_str());
  if (args.has("out")) {
    // Canonical result file for the crash-recovery smoke test: the resumed
    // run's file must compare byte-identical to the uninterrupted run's.
    std::ofstream out(args.get("out", ""));
    out << to_newick(best, data.names(), 10) << "\n";
    char lnl[64];
    std::snprintf(lnl, sizeof lnl, "lnL %.6f\n", result.best_log_likelihood);
    out << lnl;
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", args.get("out", "").c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.get("out", "").c_str());
  }
  return 0;
}
