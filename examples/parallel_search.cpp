// Parallel search: the paper's master/foreman/worker/monitor layout running
// over the in-process thread transport, or across real OS processes over
// the TCP socket transport.
//
//   ./parallel_search --workers=4 --taxa=20 --sites=600 --seed=3
//   ./parallel_search --timeout-ms=5000        # fault-tolerance timeout
//   ./parallel_search --chaos="chaos-plan v1 seed=7 drop=0.05 delay=0.2"
//                                              # seeded fault injection
//   ./parallel_search --checkpoint=run.ckpt --keep=3
//                                              # durable restart checkpoints
//   ./parallel_search --resume=run.ckpt --out=best.nwk
//                                              # continue after a kill -9
//   ./parallel_search --trace-out=run.json --log-level=info
//                                              # Chrome trace + live logs
//   ./parallel_search --sim-trace-out=sim.json --sim-procs=7
//                                              # simulated replay trace
//
//   # Multi-process: one rank per process (0=master, 1=foreman, 2=monitor,
//   # 3..=workers); scripts/launch_cluster.sh spawns all of them.
//   ./parallel_search --transport=socket --rank=N --port=P --fabric-size=6
//
// Prints the result plus the monitor's instrumentation: per-worker task
// counts, round count, and the barrier slack that limits scalability (the
// paper's "loosely synchronized" comparison barriers).
#include <cstdio>
#include <fstream>
#include <string>

#include "fdml.hpp"

namespace {

using namespace fdml;

/// Runs (or resumes) the search over whichever runner the transport mode
/// built. Returns false on a usage error (bad --resume path).
bool run_search(const PatternAlignment& data, const Alignment& alignment,
                const CliArgs& args, TaskRunner& runner, SearchResult& result) {
  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  options.checkpoint_path = args.get("checkpoint", "");
  options.checkpoint_keep = static_cast<std::uint64_t>(args.get_int("keep", 3));
  options.dataset_fingerprint = alignment_fingerprint(data);
  (void)alignment;

  if (args.has("resume")) {
    // Crash recovery: roll back to the newest valid checkpoint generation
    // (fingerprint-checked against this alignment) and continue from there.
    // The completed result is bit-for-bit the uninterrupted run's.
    const std::string resume_path = args.get("resume", "");
    const auto recovered =
        recover_checkpoint(resume_path, options.dataset_fingerprint);
    if (!recovered.has_value()) {
      std::fprintf(stderr, "error: no usable checkpoint at %s\n",
                   resume_path.c_str());
      return false;
    }
    std::printf("resuming from %s (generation %llu, %d of %zu taxa placed)\n",
                recovered->path.c_str(),
                static_cast<unsigned long long>(recovered->generation),
                recovered->checkpoint.next_order_index, data.num_taxa());
    if (options.checkpoint_path.empty()) options.checkpoint_path = resume_path;
    options.seed = recovered->checkpoint.seed;
    result = StepwiseSearch(data, options).resume(runner, recovered->checkpoint);
  } else {
    result = StepwiseSearch(data, options).run(runner);
  }
  return true;
}

bool write_trace_file(const std::string& path) {
  obs::Tracer::instance().disable();
  const obs::TraceLog log = obs::Tracer::instance().drain();
  std::ofstream out(path);
  log.write_chrome(out);
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  std::printf("wrote trace: %s (%zu events, %llu dropped)\n", path.c_str(),
              log.events.size(),
              static_cast<unsigned long long>(log.dropped_events));
  return true;
}

bool write_result_file(const std::string& path, const Tree& best,
                       const PatternAlignment& data, double log_likelihood) {
  // Canonical result file for the recovery/equivalence smoke tests: runs
  // that must agree are compared byte-for-byte on this file.
  std::ofstream out(path);
  out << to_newick(best, data.names(), 10) << "\n";
  char lnl[64];
  std::snprintf(lnl, sizeof lnl, "lnL %.6f\n", log_likelihood);
  out << lnl;
  if (!out) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

SocketRunOptions socket_options_from_args(const CliArgs& args) {
  SocketRunOptions options;
  options.socket.rank = static_cast<int>(args.get_int("rank", 0));
  options.socket.size = static_cast<int>(args.get_int("fabric-size", 0));
  options.socket.host = args.get("host", "127.0.0.1");
  options.socket.port =
      static_cast<std::uint16_t>(args.get_int("port", 0));
  options.socket.connect_timeout =
      std::chrono::milliseconds(args.get_int("connect-timeout-ms", 15000));
  options.foreman.worker_timeout =
      std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  return options;
}

/// A non-master rank of a multi-process run: execute the role loop until
/// the fabric shuts down, then print a one-line summary.
int run_socket_peer(const CliArgs& args, const PatternAlignment& data,
                    const SubstModel& model, const RateModel& rates,
                    const std::string& trace_out) {
  const SocketRunOptions options = socket_options_from_args(args);
  SocketRoleResult role;
  try {
    role = run_socket_role(data, model, rates, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "rank %lld: %s\n",
                 static_cast<long long>(args.get_int("rank", 0)), error.what());
    return 1;
  }
  if (role.foreman.has_value()) {
    std::printf("foreman: %llu rounds, %llu tasks, %llu requeues, "
                "%llu quarantines\n",
                static_cast<unsigned long long>(role.foreman->rounds),
                static_cast<unsigned long long>(role.foreman->tasks_completed),
                static_cast<unsigned long long>(role.foreman->requeues),
                static_cast<unsigned long long>(role.foreman->quarantines));
  } else if (role.monitor.has_value()) {
    std::printf("monitor: %llu rounds, %llu completions, %.2fs worker CPU\n",
                static_cast<unsigned long long>(role.monitor->rounds),
                static_cast<unsigned long long>(role.monitor->completions),
                role.monitor->total_worker_cpu_seconds);
  } else if (role.worker.has_value()) {
    std::printf("worker %d: %llu tasks, %.2fs CPU\n", role.rank,
                static_cast<unsigned long long>(role.worker->tasks_evaluated),
                role.worker->cpu_seconds);
  }
  if (!trace_out.empty()) {
    // Every process traces itself; suffix by rank so a cluster launched
    // with one argv does not clobber a shared path.
    if (!write_trace_file(trace_out + ".rank" + std::to_string(role.rank))) {
      return 1;
    }
  }
  return 0;
}

/// The master rank of a multi-process run: hub + search + result output.
int run_socket_master(const CliArgs& args, const PatternAlignment& data,
                      const Alignment& alignment, const SubstModel& model,
                      const RateModel& rates, const std::string& trace_out) {
  SocketRunOptions options = socket_options_from_args(args);
  options.socket.rank = 0;
  SocketCluster cluster(data, model, rates, options);
  std::printf("Socket cluster: hub on port %u, 1 master + 1 foreman + "
              "1 monitor + %d workers (%d processes)\n",
              static_cast<unsigned>(options.socket.port),
              cluster.num_workers(), options.socket.size);
  if (!cluster.wait_ready(options.socket.connect_timeout)) {
    std::fprintf(stderr, "error: fabric incomplete after %lld ms (some rank "
                 "never announced)\n",
                 static_cast<long long>(options.socket.connect_timeout.count()));
    return 1;
  }
  std::printf("fabric ready: all %d ranks announced\n", options.socket.size);

  Timer timer;
  SearchResult result;
  if (!run_search(data, alignment, args, cluster.runner(), result)) return 1;
  const double wall = timer.seconds();
  cluster.shutdown();

  std::printf("\nBest ln L = %.4f after %zu candidate trees in %.2fs wall\n",
              result.best_log_likelihood, result.trees_evaluated, wall);
  const SocketFabricStats fabric = cluster.fabric_stats();
  std::printf("fabric traffic: %llu frames out / %llu in, %llu bytes out / "
              "%llu in, %llu peer deaths, %llu dropped\n",
              static_cast<unsigned long long>(fabric.frames_sent),
              static_cast<unsigned long long>(fabric.frames_received),
              static_cast<unsigned long long>(fabric.bytes_sent),
              static_cast<unsigned long long>(fabric.bytes_received),
              static_cast<unsigned long long>(fabric.peer_deaths),
              static_cast<unsigned long long>(fabric.frames_dropped));
  const MasterStats master = cluster.master_stats();
  if (master.serial_fallbacks > 0 || master.rounds_failed > 0) {
    std::printf("degradation: %llu failed rounds, %llu serial fallbacks\n",
                static_cast<unsigned long long>(master.rounds_failed),
                static_cast<unsigned long long>(master.serial_fallbacks));
  }

  const Tree best = tree_from_newick(result.best_newick, data.names());
  std::printf("\nNewick: %s\n", to_newick(best, data.names(), 6).c_str());
  if (args.has("out") &&
      !write_result_file(args.get("out", ""), best, data,
                         result.best_log_likelihood)) {
    return 1;
  }
  if (!trace_out.empty() && !write_trace_file(trace_out)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  if (args.has("log-level")) {
    const auto level = parse_log_level(args.get("log-level", ""));
    if (!level.has_value()) {
      std::fprintf(stderr, "error: bad --log-level (debug|info|warn|error|off)\n");
      return 1;
    }
    set_log_level(*level);
  }
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  const int taxa = static_cast<int>(args.get_int("taxa", 20));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 600));
  // Every process of a socket run rebuilds the identical dataset from the
  // same flags (or reads the same file), exactly like the paper's PVM
  // processes each loading the alignment.
  Alignment alignment = args.has("input")
                            ? read_phylip_file(args.get("input", ""))
                            : make_paper_like_dataset(taxa, sites, 4242);
  const PatternAlignment data(alignment);
  const SubstModel model = SubstModel::f84_from_tstv(data.base_frequencies(), 2.0);
  const RateModel rates = RateModel::uniform();

  const std::string transport = args.get("transport", "thread");
  if (transport == "socket") {
    if (!args.has("port") || !args.has("fabric-size")) {
      std::fprintf(stderr,
                   "error: --transport=socket needs --port and --fabric-size "
                   "(and --rank, 0 for the master)\n");
      return 2;
    }
    const int rank = static_cast<int>(args.get_int("rank", 0));
    return rank == 0
               ? run_socket_master(args, data, alignment, model, rates, trace_out)
               : run_socket_peer(args, data, model, rates, trace_out);
  }
  if (transport != "thread") {
    std::fprintf(stderr, "error: unknown --transport=%s (thread|socket)\n",
                 transport.c_str());
    return 2;
  }

  ClusterOptions cluster_options;
  cluster_options.num_workers = static_cast<int>(args.get_int("workers", 4));
  cluster_options.foreman.worker_timeout =
      std::chrono::milliseconds(args.get_int("timeout-ms", 30000));
  if (args.has("chaos")) {
    // A serialized FaultPlan, e.g. "chaos-plan v1 seed=7 drop=0.05". The
    // same plan line replays the same fault schedule on every run.
    cluster_options.chaos = FaultPlan::parse(args.get("chaos", ""));
  }
  InProcessCluster cluster(data, model, rates, cluster_options);
  std::printf("Cluster: 1 master + 1 foreman + 1 monitor + %d workers "
              "(%d \"processors\")\n",
              cluster.num_workers(), cluster.num_workers() + 3);

  Timer timer;
  SearchResult result;
  if (!run_search(data, alignment, args, cluster.runner(), result)) return 1;
  const double wall = timer.seconds();
  cluster.shutdown();  // joins the role threads; final stats are now stable

  if (!trace_out.empty() && !write_trace_file(trace_out)) return 1;
  if (args.has("sim-trace-out")) {
    // Replay the recorded search trace through the discrete-event cluster
    // and emit the same Chrome-trace vocabulary with virtual timestamps.
    const std::string sim_out = args.get("sim-trace-out", "");
    obs::TraceLog sim_log;
    SimClusterConfig sim_config;
    sim_config.processors = static_cast<int>(args.get_int("sim-procs", 7));
    sim_config.trace = &sim_log;
    const SimResult sim = simulate_trace(result.trace, sim_config);
    std::ofstream out(sim_out);
    sim_log.write_chrome(out);
    if (!out) {
      std::fprintf(stderr, "error writing %s\n", sim_out.c_str());
      return 1;
    }
    std::printf("wrote simulated trace: %s (%d procs, %.3fs virtual wall, "
                "utilization %.2f)\n",
                sim_out.c_str(), sim_config.processors, sim.wall_seconds,
                sim.worker_utilization);
  }

  std::printf("\nBest ln L = %.4f after %zu candidate trees in %.2fs wall\n",
              result.best_log_likelihood, result.trees_evaluated, wall);

  const MonitorReport report = cluster.monitor_report();
  std::printf("\nMonitor report\n");
  std::printf("  rounds (barriers):      %llu\n",
              static_cast<unsigned long long>(report.rounds));
  std::printf("  tasks completed:        %llu\n",
              static_cast<unsigned long long>(report.completions));
  std::printf("  worker CPU total:       %.2fs\n", report.total_worker_cpu_seconds);
  std::printf("  requeues / delinquent:  %llu / %llu\n",
              static_cast<unsigned long long>(report.requeues),
              static_cast<unsigned long long>(report.delinquencies));
  double slack = 0.0;
  for (double s : report.round_slack_seconds) slack += s;
  if (!report.round_slack_seconds.empty()) {
    slack /= static_cast<double>(report.round_slack_seconds.size());
  }
  std::printf("  mean barrier slack:     %.4fs\n", slack);
  std::printf("  tasks per worker:      ");
  for (const auto& [worker, count] : report.tasks_per_worker) {
    std::printf(" w%d:%llu", worker, static_cast<unsigned long long>(count));
  }
  std::printf("\n  fabric traffic:         %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(cluster.fabric_messages()),
              static_cast<unsigned long long>(cluster.fabric_bytes()));

  if (const auto totals = cluster.chaos_totals()) {
    std::printf("\nChaos harness (%s)\n",
                cluster_options.chaos->serialize().c_str());
    std::printf("  dropped/duplicated:     %llu / %llu\n",
                static_cast<unsigned long long>(totals->drops.load()),
                static_cast<unsigned long long>(totals->duplicates.load()));
    std::printf("  corrupted/task-corrupt: %llu / %llu\n",
                static_cast<unsigned long long>(totals->corruptions.load()),
                static_cast<unsigned long long>(totals->task_corruptions.load()));
    std::printf("  delayed/reordered:      %llu / %llu\n",
                static_cast<unsigned long long>(totals->delays.load()),
                static_cast<unsigned long long>(totals->reorders.load()));
    std::printf("  crashes:                %llu\n",
                static_cast<unsigned long long>(totals->crashes.load()));
    std::printf("  quarantines/probations: %llu / %llu\n",
                static_cast<unsigned long long>(
                    cluster.foreman_stats().quarantines),
                static_cast<unsigned long long>(
                    cluster.foreman_stats().probations));
    std::printf("  rounds failed/fallback: %llu / %llu\n",
                static_cast<unsigned long long>(
                    cluster.master_stats().rounds_failed),
                static_cast<unsigned long long>(
                    cluster.master_stats().serial_fallbacks));
  }

  const Tree best = tree_from_newick(result.best_newick, data.names());
  std::printf("\nNewick: %s\n", to_newick(best, data.names(), 6).c_str());
  if (args.has("out") &&
      !write_result_file(args.get("out", ""), best, data,
                         result.best_log_likelihood)) {
    return 1;
  }
  return 0;
}
