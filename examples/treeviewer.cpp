// Tree viewer: the companion tool from the paper's Section 4, as a CLI.
// Loads one or more Newick files (or generates a demo), renders ASCII and
// SVG (rectangular or radial), normalizes branch orderings via the "pivot"
// canonicalization, traces taxa across trees, and reports which trees are
// topologically identical.
//
//   ./treeviewer trees1.nwk trees2.nwk --svg=view.svg --trace=Homo,Pan
//   ./treeviewer --demo --radial
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  std::vector<GeneralTree> trees;
  std::vector<std::string> titles;
  if (args.positional().empty()) {
    std::printf("No input files; showing a generated demo "
                "(pass Newick files as arguments).\n\n");
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));
    const auto names = default_taxon_names(10);
    for (int k = 0; k < 3; ++k) {
      const Tree tree = random_tree(10, rng);
      trees.push_back(GeneralTree::from_tree(tree, names));
      titles.push_back("demo " + std::to_string(k));
    }
  } else {
    for (const std::string& path : args.positional()) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
      }
      std::string line;
      int index = 0;
      while (std::getline(in, line, ';')) {
        // Re-append the separator the splitter consumed.
        std::string text = line + ";";
        bool blank = true;
        for (char c : line) {
          if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
        }
        if (blank) continue;
        trees.push_back(parse_newick(text));
        titles.push_back(path + "#" + std::to_string(index++));
      }
    }
  }
  if (trees.empty()) {
    std::fprintf(stderr, "no trees loaded\n");
    return 1;
  }

  // Pivot normalization, then ASCII for each tree.
  for (std::size_t t = 0; t < trees.size(); ++t) {
    trees[t].canonicalize();
    std::printf("=== %s  (%zu leaves, depth %.4f)\n", titles[t].c_str(),
                trees[t].leaf_count(), trees[t].max_depth());
    std::printf("%s\n", render_ascii(trees[t]).c_str());
  }

  // Topological identity groups (after canonicalization, identical
  // topologies print identical Newick without lengths — compare via splits
  // by converting back through a shared namespace when leaf sets match).
  std::printf("Canonical Newick:\n");
  for (std::size_t t = 0; t < trees.size(); ++t) {
    std::printf("  [%zu] %s\n", t, to_newick(trees[t], 4).c_str());
  }

  // Comparison SVG with traces.
  std::vector<std::string> traced;
  if (args.has("trace")) {
    std::stringstream list(args.get("trace", ""));
    std::string item;
    while (std::getline(list, item, ',')) {
      if (!item.empty()) traced.push_back(item);
    }
  } else if (!trees.front().leaves().empty()) {
    traced.push_back(
        trees.front().node(trees.front().leaves().front()).label);
  }
  SvgOptions svg_options;
  svg_options.radial = args.get_bool("radial");
  svg_options.show_support = args.get_bool("support");
  const std::string path = args.get("svg", "treeviewer.svg");
  std::ofstream out(path);
  out << render_comparison_svg(trees, traced, titles, svg_options);
  std::printf("\nWrote %s (%zu panels, traced:", path.c_str(), trees.size());
  for (const auto& t : traced) std::printf(" %s", t.c_str());
  std::printf(")\n");
  return 0;
}
