// Capacity planning with the discrete-event cluster model: calibrate the
// likelihood kernel on this machine, synthesize the full search workload
// for a target dataset, and predict wall time and speedup across processor
// counts — answering "how many CPUs do I need for this analysis?" the same
// way the paper's Section 3 does, plus its Section 6 arithmetic (9 days
// serial vs <4 hours at 64 processors for 150 taxa, ~200 orderings total).
//
//   ./cluster_prediction --taxa=150 --sites=1269 --cross=5 --orderings=200
#include <cstdio>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  const int taxa = static_cast<int>(args.get_int("taxa", 150));
  const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 1269));
  const int cross = static_cast<int>(args.get_int("cross", 5));
  const int orderings = static_cast<int>(args.get_int("orderings", 200));
  const double slowdown = args.get_double("slowdown", 1.0);

  // Calibrate the per-task cost model against this machine's real kernel.
  std::printf("Calibrating likelihood kernel (%d taxa x %zu sites sample)...\n",
              12, static_cast<std::size_t>(200));
  const Alignment sample = make_paper_like_dataset(12, 200, 7);
  const PatternAlignment sample_data(sample);
  const SubstModel model =
      SubstModel::f84_from_tstv(sample_data.base_frequencies(), 2.0);
  WorkloadModel workload =
      calibrate_workload(sample_data, model, RateModel::uniform());
  std::printf("  full-eval coefficient:  %.3g s/(site*edge*pass)\n",
              workload.full_cost_coefficient);
  std::printf("  quick-add coefficient:  %.3g s/site\n",
              workload.quickadd_cost_coefficient);

  Rng rng(11);
  SearchTrace trace = synthesize_trace(taxa, sites, cross, workload, rng);
  if (slowdown != 1.0) trace.scale_costs(slowdown);
  std::printf("\nSynthesized workload: %d taxa x %zu sites, k=%d -> %zu rounds, "
              "%zu tasks, %.1f CPU-hours serial\n",
              taxa, sites, cross, trace.rounds.size(), trace.total_tasks(),
              trace.total_task_seconds() / 3600.0);

  SimClusterConfig config;
  config.processors = 1;
  const double serial = simulate_trace(trace, config).wall_seconds;

  std::printf("\n%11s %9s %12s %9s %12s\n", "processors", "workers",
              "wall", "speedup", "utilization");
  std::printf("%11d %9d %12s %9s %12s\n", 1, 1,
              (std::to_string(serial / 3600.0) + "h").c_str(), "1.00", "-");
  for (int p : args.get_int_list("procs", {4, 8, 16, 32, 64, 128, 256})) {
    config.processors = static_cast<int>(p);
    const SimResult r = simulate_trace(trace, config);
    std::printf("%11d %9d %11.2fh %9.2f %11.0f%%\n", config.processors,
                config.workers(), r.wall_seconds / 3600.0,
                serial / r.wall_seconds, 100.0 * r.worker_utilization);
  }

  config.processors = 64;
  const double at64 = simulate_trace(trace, config).wall_seconds;
  std::printf("\nFull study of %d orderings: %.0f days serial vs %.1f days on "
              "64 processors\n", orderings,
              orderings * serial / 86400.0, orderings * at64 / 86400.0);
  return 0;
}
