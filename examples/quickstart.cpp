// Quickstart: infer a maximum-likelihood tree from a PHYLIP alignment.
//
//   ./quickstart                       # demo data, generated on the fly
//   ./quickstart --input=my.phy        # your own PHYLIP file
//   ./quickstart --taxa=20 --sites=800 --seed=7 --tstv=2.0 --cross=2
//
// This is the serial fastDNAml workflow: read the alignment, take empirical
// base frequencies as the equilibrium frequencies (the fastDNAml default),
// build an F84 model with the requested transition/transversion ratio,
// run stepwise addition with local rearrangements, print the best tree.
#include <cstdio>
#include <iostream>

#include "fdml.hpp"

int main(int argc, char** argv) {
  using namespace fdml;
  const CliArgs args(argc, argv);

  Alignment alignment;
  if (args.has("input")) {
    alignment = read_phylip_file(args.get("input", ""));
    std::printf("Loaded %zu taxa x %zu sites from %s\n", alignment.num_taxa(),
                alignment.num_sites(), args.get("input", "").c_str());
  } else {
    const int taxa = static_cast<int>(args.get_int("taxa", 16));
    const std::size_t sites = static_cast<std::size_t>(args.get_int("sites", 600));
    alignment = make_paper_like_dataset(taxa, sites, 2026);
    std::printf("Simulated demo dataset: %d taxa x %zu sites "
                "(pass --input=FILE.phy for real data)\n", taxa, sites);
  }

  const PatternAlignment data(alignment);
  std::printf("Compressed to %zu site patterns\n", data.num_patterns());
  const Vec4 pi = data.base_frequencies();
  std::printf("Empirical base frequencies: A=%.3f C=%.3f G=%.3f T=%.3f\n",
              pi[0], pi[1], pi[2], pi[3]);
  std::printf("Unrooted topologies for %zu taxa: %s\n", data.num_taxa(),
              count_unrooted_topologies(static_cast<int>(data.num_taxa()))
                  .to_string().c_str());

  const SubstModel model =
      SubstModel::f84_from_tstv(pi, args.get_double("tstv", 2.0));
  const RateModel rates = RateModel::uniform();

  SearchOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.rearrange_cross = static_cast<int>(args.get_int("cross", 1));
  options.final_rearrange_cross = static_cast<int>(
      args.get_int("final-cross", args.get_int("cross", 1)));

  SerialTaskRunner runner(data, model, rates);
  Timer timer;
  const SearchResult result = StepwiseSearch(data, options).run(runner);
  std::printf("\nEvaluated %zu candidate trees in %.2fs; ln L = %.4f\n",
              result.trees_evaluated, timer.seconds(),
              result.best_log_likelihood);

  const Tree best = tree_from_newick(result.best_newick, data.names());
  GeneralTree display = GeneralTree::from_tree(best, data.names());
  display.canonicalize();
  std::printf("\n%s\n", render_ascii(display).c_str());
  std::printf("Newick: %s\n", to_newick(best, data.names(), 6).c_str());
  return 0;
}
