// The fdmld service endpoint: a TCP listener speaking the repo's length-
// framed wire protocol (comm/wire.hpp) with the service-plane tags.
//
// One connection, one request — the protocol a shell script can drive:
//
//   submit:  client kSubmit(sealed JobSpec)
//            server kJobAccepted(u64 job id) | kJobRejected(u8 reason)
//            ... job runs ...
//            server kJobDone(sealed JobOutcome), connection closes
//   stats:   client kStatsQuery()
//            server kStatsReply(sealed metrics-snapshot JSON), closes
//
// Malformed traffic (bad framing, failed integrity, unknown tag) is a
// counted reject/close, never a crash: the service outlives its clients.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hpp"

namespace fdml {

struct ServiceServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read back with port().
  std::uint16_t port = 0;
  /// Cluster telemetry aggregate rendered into the kMetricsQuery
  /// Prometheus exposition (per-rank kernel counters, staleness). Null =
  /// hub-process metrics and job progress only. Must outlive the server.
  const obs::TelemetryAggregator* telemetry = nullptr;
};

/// A client call gave up waiting on the server (connect or read deadline).
/// Distinct from protocol/connection errors so callers can tell "the
/// service is wedged" (retry later, alert) from "the service answered
/// garbage" (a bug).
class ServiceTimeoutError : public std::runtime_error {
 public:
  ServiceTimeoutError(const std::string& operation,
                      std::chrono::milliseconds timeout)
      : std::runtime_error("service: " + operation + " timed out after " +
                           std::to_string(timeout.count()) + " ms"),
        operation_(operation),
        timeout_(timeout) {}

  const std::string& operation() const { return operation_; }
  std::chrono::milliseconds timeout() const { return timeout_; }

 private:
  std::string operation_;
  std::chrono::milliseconds timeout_;
};

class ServiceServer {
 public:
  /// Binds and starts serving immediately. `scheduler` must outlive the
  /// server; `registry` is what kStatsQuery snapshots.
  ServiceServer(JobScheduler& scheduler, obs::MetricsRegistry& registry,
                ServiceServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Stops accepting and joins every connection handler. Handlers blocked
  /// on an in-flight job return once the scheduler resolves it (drain the
  /// scheduler first, or this can wait a full job). Idempotent.
  void close();

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Metrics-snapshot JSON extended with one job_progress row per job.
  std::string stats_reply_json() const;
  /// Prometheus text: hub-process registry (rank 0) + cluster telemetry
  /// aggregate + per-job progress series.
  std::string prometheus_exposition() const;

  JobScheduler& scheduler_;
  obs::MetricsRegistry& registry_;
  ServiceServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> closing_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
};

/// What a blocking client call observed.
struct ServiceReply {
  /// Set when the submission was shed; `outcome` is then empty.
  std::optional<RejectReason> rejected;
  std::uint64_t job_id = 0;
  /// Set when the job was admitted and reached a terminal status.
  std::optional<JobOutcome> outcome;
};

/// Submits a job and blocks until it is rejected or terminal. Throws
/// ServiceTimeoutError when the server accepts the connection but never
/// answers within `timeout` (which bounds the whole exchange, including the
/// search itself), std::runtime_error on connect/protocol failure.
ServiceReply service_submit(const std::string& host, std::uint16_t port,
                            const JobSpec& spec,
                            std::chrono::milliseconds timeout);

/// Fetches the service's metrics snapshot (one-object-per-line JSON, with
/// job_progress rows). Throws ServiceTimeoutError on a wedged server.
std::string service_query_stats(const std::string& host, std::uint16_t port,
                                std::chrono::milliseconds timeout);

/// Fetches the Prometheus text exposition (kMetricsQuery). Throws
/// ServiceTimeoutError on a wedged server.
std::string service_scrape(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds timeout);

}  // namespace fdml
