#include "service/server.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "comm/integrity.hpp"
#include "comm/wire.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_service_frame(int fd, MessageTag tag,
                        std::vector<std::uint8_t> payload) {
  WireFrame frame;
  frame.kind = FrameKind::kData;
  frame.tag = tag;
  frame.source = -1;
  frame.dest = -1;
  frame.payload = std::move(payload);
  const auto bytes = encode_frame(frame);
  return write_all(fd, bytes.data(), bytes.size());
}

/// Why recv_service_frame returned without a frame. A wedged server (open
/// connection, no bytes) and a dead one (EOF) used to be indistinguishable
/// nullopts; clients then blocked forever or reported the wrong failure.
enum class RecvStatus {
  kFrame,     ///< a complete frame was delivered
  kTimeout,   ///< deadline passed with the connection still open
  kClosed,    ///< peer closed (EOF) or the read failed
  kProtocol,  ///< the byte stream failed wire framing
};

/// Blocks until one complete frame arrives, the deadline passes, or the
/// connection dies; `out` is set only on kFrame.
RecvStatus recv_service_frame(int fd, FrameParser& parser,
                              Clock::time_point deadline,
                              std::optional<WireFrame>& out) {
  std::vector<std::uint8_t> buffer(16 * 1024);
  std::vector<WireFrame> frames;
  while (true) {
    const auto now = Clock::now();
    if (now >= deadline) return RecvStatus::kTimeout;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const auto wait =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return RecvStatus::kClosed;
    if (ready == 0) return RecvStatus::kTimeout;
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return RecvStatus::kClosed;
    if (!parser.feed(buffer.data(), static_cast<std::size_t>(n), frames)) {
      return RecvStatus::kProtocol;
    }
    if (!frames.empty()) {
      out = std::move(frames.front());
      return RecvStatus::kFrame;
    }
  }
}

/// Bounded connect: non-blocking connect + poll, so a black-holed host
/// (SYN never answered) times out at `deadline` instead of the kernel's
/// minutes-long default. Throws ServiceTimeoutError/runtime_error.
int dial(const std::string& host, std::uint16_t port,
         Clock::time_point deadline, std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    throw std::runtime_error("service: cannot resolve " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  bool timed_out = false;
  if (fd >= 0) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, resolved->ai_addr, resolved->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      for (;;) {
        const auto now = Clock::now();
        if (now >= deadline) {
          timed_out = true;
          rc = -1;
          break;
        }
        const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - now);
        const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) {
          timed_out = ready == 0;
          rc = -1;
          break;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
        break;
      }
    }
    if (rc != 0) {
      ::close(fd);
      fd = -1;
    } else {
      ::fcntl(fd, F_SETFL, flags);
    }
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) {
    if (timed_out) throw ServiceTimeoutError("connect to " + host, timeout);
    throw std::runtime_error("service: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

ServiceServer::ServiceServer(JobScheduler& scheduler,
                             obs::MetricsRegistry& registry,
                             ServiceServerOptions options)
    : scheduler_(scheduler), registry_(registry), options_(std::move(options)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("ServiceServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ServiceServer: cannot bind port " +
                             std::to_string(options_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  FDML_INFO("service") << "listening on port " << port_;
}

ServiceServer::~ServiceServer() { close(); }

void ServiceServer::accept_loop() {
  obs::set_thread_name("service-accept");
  while (!closing_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (closing_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(conn_mutex_);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ServiceServer::serve_connection(int fd) {
  obs::set_thread_name("service-conn");
  FrameParser parser;
  // A connection gets 30s to state its request; the *reply* (which may
  // carry a whole search) is not under this deadline.
  std::optional<WireFrame> request;
  recv_service_frame(fd, parser, Clock::now() + std::chrono::seconds(30),
                     request);
  if (!request.has_value() || request->kind != FrameKind::kData) {
    registry_.counter("service.bad_requests").add();
    ::close(fd);
    return;
  }
  switch (request->tag) {
    case MessageTag::kSubmit: {
      std::vector<std::uint8_t> payload = request->payload;
      JobSpec spec;
      bool ok = open_payload(payload);
      if (ok) {
        try {
          spec = JobSpec::decode(payload);
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok) {
        registry_.counter("service.bad_requests").add();
        send_service_frame(
            fd, MessageTag::kJobRejected,
            {static_cast<std::uint8_t>(RejectReason::kBadRequest)});
        break;
      }
      const auto submission = scheduler_.submit(spec);
      if (submission.rejected.has_value()) {
        send_service_frame(
            fd, MessageTag::kJobRejected,
            {static_cast<std::uint8_t>(*submission.rejected)});
        break;
      }
      {
        Packer p;
        p.put_u64(submission.job_id);
        if (!send_service_frame(fd, MessageTag::kJobAccepted, p.take())) break;
      }
      JobOutcome outcome = scheduler_.wait(submission.job_id);
      std::vector<std::uint8_t> encoded = outcome.encode();
      seal_payload(encoded);
      send_service_frame(fd, MessageTag::kJobDone, std::move(encoded));
      break;
    }
    case MessageTag::kStatsQuery: {
      const std::string json = stats_reply_json();
      std::vector<std::uint8_t> payload(json.begin(), json.end());
      seal_payload(payload);
      send_service_frame(fd, MessageTag::kStatsReply, std::move(payload));
      break;
    }
    case MessageTag::kMetricsQuery: {
      const std::string text = prometheus_exposition();
      std::vector<std::uint8_t> payload(text.begin(), text.end());
      seal_payload(payload);
      send_service_frame(fd, MessageTag::kMetricsReply, std::move(payload));
      break;
    }
    default:
      registry_.counter("service.bad_requests").add();
      break;
  }
  ::close(fd);
}

std::string ServiceServer::stats_reply_json() const {
  const std::string json = registry_.snapshot().to_json();
  const std::string rows = obs::job_progress_json(scheduler_.progress());
  if (rows.empty()) return json;
  // to_json emits "[\n" <objects joined ",\n"> "\n]\n"; splice the per-job
  // progress rows in as extra array elements before the closing bracket.
  const auto close = json.rfind("\n]");
  if (close == std::string::npos) return json;
  std::string head = json.substr(0, close);
  bool first = head.find('{') == std::string::npos;
  std::ostringstream out;
  out << head;
  std::istringstream lines(rows);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!first) out << ",\n";
    out << line;
    first = false;
  }
  out << "\n]\n";
  return out.str();
}

std::string ServiceServer::prometheus_exposition() const {
  std::ostringstream out;
  // The hub process's own registry is rank 0 of the cluster.
  out << obs::to_prometheus(registry_.snapshot(), "fdml_", "rank=\"0\"");
  if (options_.telemetry != nullptr) {
    out << obs::to_prometheus(*options_.telemetry, Clock::now());
  }
  out << obs::to_prometheus(scheduler_.progress());
  return out.str();
}

void ServiceServer::close() {
  if (closing_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (auto& thread : conns) {
    if (thread.joinable()) thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

namespace {

/// Receives one frame or throws: ServiceTimeoutError on deadline (the wedged
/// server the read deadline exists for), runtime_error on close/garbage.
WireFrame recv_or_throw(int fd, FrameParser& parser, Clock::time_point deadline,
                        std::chrono::milliseconds timeout,
                        const std::string& operation) {
  std::optional<WireFrame> frame;
  switch (recv_service_frame(fd, parser, deadline, frame)) {
    case RecvStatus::kFrame:
      return std::move(*frame);
    case RecvStatus::kTimeout:
      ::close(fd);
      throw ServiceTimeoutError(operation, timeout);
    case RecvStatus::kClosed:
      ::close(fd);
      throw std::runtime_error("service: connection closed awaiting " +
                               operation);
    case RecvStatus::kProtocol:
    default:
      ::close(fd);
      throw std::runtime_error("service: malformed reply to " + operation);
  }
}

/// One-shot query/reply exchange returning the reply's opened payload as
/// text (the stats and scrape clients differ only in tags).
std::string query_text(const std::string& host, std::uint16_t port,
                       MessageTag query, MessageTag reply_tag,
                       const std::string& operation,
                       std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  const int fd = dial(host, port, deadline, timeout);
  if (!send_service_frame(fd, query, {})) {
    ::close(fd);
    throw std::runtime_error("service: " + operation + " write failed");
  }
  FrameParser parser;
  const WireFrame frame =
      recv_or_throw(fd, parser, deadline, timeout, operation + " reply");
  ::close(fd);
  if (frame.tag != reply_tag) {
    throw std::runtime_error("service: unexpected reply to " + operation);
  }
  std::vector<std::uint8_t> body = frame.payload;
  if (!open_payload(body)) {
    throw std::runtime_error("service: " + operation +
                             " reply failed integrity check");
  }
  return std::string(body.begin(), body.end());
}

}  // namespace

ServiceReply service_submit(const std::string& host, std::uint16_t port,
                            const JobSpec& spec,
                            std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  const int fd = dial(host, port, deadline, timeout);
  std::vector<std::uint8_t> payload = spec.encode();
  seal_payload(payload);
  if (!send_service_frame(fd, MessageTag::kSubmit, std::move(payload))) {
    ::close(fd);
    throw std::runtime_error("service: submit write failed");
  }
  FrameParser parser;
  ServiceReply reply;
  const WireFrame first =
      recv_or_throw(fd, parser, deadline, timeout, "submit reply");
  if (first.tag == MessageTag::kJobRejected) {
    ::close(fd);
    reply.rejected = first.payload.empty()
                         ? RejectReason::kBadRequest
                         : static_cast<RejectReason>(first.payload[0]);
    return reply;
  }
  if (first.tag != MessageTag::kJobAccepted || first.payload.size() != 8) {
    ::close(fd);
    throw std::runtime_error("service: unexpected reply to submit");
  }
  reply.job_id = Unpacker(first.payload).get_u64();
  const WireFrame done = recv_or_throw(
      fd, parser, deadline, timeout,
      "job " + std::to_string(reply.job_id) + " outcome");
  ::close(fd);
  if (done.tag != MessageTag::kJobDone) {
    throw std::runtime_error("service: job " + std::to_string(reply.job_id) +
                             " outcome never arrived");
  }
  std::vector<std::uint8_t> body = done.payload;
  if (!open_payload(body)) {
    throw std::runtime_error("service: outcome failed integrity check");
  }
  reply.outcome = JobOutcome::decode(body);
  return reply;
}

std::string service_query_stats(const std::string& host, std::uint16_t port,
                                std::chrono::milliseconds timeout) {
  return query_text(host, port, MessageTag::kStatsQuery,
                    MessageTag::kStatsReply, "stats query", timeout);
}

std::string service_scrape(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds timeout) {
  return query_text(host, port, MessageTag::kMetricsQuery,
                    MessageTag::kMetricsReply, "scrape", timeout);
}

}  // namespace fdml
