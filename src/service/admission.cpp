#include "service/admission.hpp"

namespace fdml {

AdmissionController::AdmissionController(AdmissionOptions options,
                                         obs::MetricsRegistry& registry)
    : options_(options),
      submitted_(registry.counter("service.jobs_submitted")),
      admitted_total_(registry.counter("service.jobs_admitted")),
      rejected_full_(registry.counter("service.jobs_rejected_full")),
      rejected_draining_(registry.counter("service.jobs_rejected_draining")) {}

std::optional<RejectReason> AdmissionController::try_admit() {
  std::lock_guard lock(mutex_);
  submitted_.add();
  if (draining_) {
    rejected_draining_.add();
    return RejectReason::kDraining;
  }
  if (admitted_ >= options_.max_active + options_.max_queued) {
    rejected_full_.add();
    return RejectReason::kQueueFull;
  }
  ++admitted_;
  admitted_total_.add();
  return std::nullopt;
}

void AdmissionController::release() {
  std::lock_guard lock(mutex_);
  if (admitted_ > 0) --admitted_;
}

void AdmissionController::drain() {
  std::lock_guard lock(mutex_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard lock(mutex_);
  return draining_;
}

int AdmissionController::admitted() const {
  std::lock_guard lock(mutex_);
  return admitted_;
}

}  // namespace fdml
