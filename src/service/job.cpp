#include "service/job.hpp"

#include "util/packer.hpp"

namespace fdml {

namespace {
constexpr std::uint8_t kJobSpecVersion = 1;
constexpr std::uint8_t kJobOutcomeVersion = 1;
}  // namespace

std::vector<std::uint8_t> JobSpec::encode() const {
  Packer p;
  p.put_u8(kJobSpecVersion);
  p.put_u64(seed);
  p.put_i32(rearrange_cross);
  p.put_i32(final_rearrange_cross);
  p.put_string(name);
  return p.take();
}

JobSpec JobSpec::decode(const std::vector<std::uint8_t>& payload) {
  Unpacker u(payload);
  if (u.get_u8() != kJobSpecVersion) {
    throw std::runtime_error("JobSpec: unknown version");
  }
  JobSpec spec;
  spec.seed = u.get_u64();
  spec.rearrange_cross = u.get_i32();
  spec.final_rearrange_cross = u.get_i32();
  spec.name = u.get_string();
  if (!u.exhausted()) throw std::runtime_error("JobSpec: trailing bytes");
  return spec;
}

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kDraining: return "draining";
    case RejectReason::kBadRequest: return "bad_request";
  }
  return "unknown";
}

std::vector<std::uint8_t> JobOutcome::encode() const {
  Packer p;
  p.put_u8(kJobOutcomeVersion);
  p.put_u64(job_id);
  p.put_u8(static_cast<std::uint8_t>(status));
  p.put_string(newick);
  p.put_f64(log_likelihood);
  p.put_u64(resume_generation);
  p.put_u32(retries);
  p.put_string(error);
  return p.take();
}

JobOutcome JobOutcome::decode(const std::vector<std::uint8_t>& payload) {
  Unpacker u(payload);
  if (u.get_u8() != kJobOutcomeVersion) {
    throw std::runtime_error("JobOutcome: unknown version");
  }
  JobOutcome outcome;
  outcome.job_id = u.get_u64();
  const auto status = u.get_u8();
  if (status > static_cast<std::uint8_t>(JobStatus::kFailed)) {
    throw std::runtime_error("JobOutcome: bad status");
  }
  outcome.status = static_cast<JobStatus>(status);
  outcome.newick = u.get_string();
  outcome.log_likelihood = u.get_f64();
  outcome.resume_generation = u.get_u64();
  outcome.retries = u.get_u32();
  outcome.error = u.get_string();
  if (!u.exhausted()) throw std::runtime_error("JobOutcome: trailing bytes");
  return outcome;
}

}  // namespace fdml
