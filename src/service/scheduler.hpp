// The job scheduler: many concurrent searches multiplexed over one shared
// worker pool, each under its own supervisor.
//
//   - Fairness: the shared TaskRunner evaluates one round at a time (the
//     round is the protocol's barrier), so RoundGate serializes rounds in
//     FIFO ticket order. A job has at most one round outstanding, which
//     makes FIFO arrival order effectively round-robin across active jobs —
//     no job can occupy the pool for two consecutive rounds while another
//     is waiting.
//   - Supervision: each job runs in its own thread under a retry loop with
//     bounded exponential backoff + jitter, reusing the durable checkpoint
//     machinery (PR 3): every attempt first tries to recover the job's
//     checkpoint, so a retry — or a resubmission after a drain — resumes
//     instead of starting over, and the finished tree is bit-for-bit the
//     uninterrupted run's. One job's failure never touches its neighbors.
//   - Drain: stop admitting (the admission gate rejects with kDraining),
//     flip every in-flight job's stop flag so it checkpoints durably at the
//     next boundary and reports its resumable generation, and let queued
//     jobs return kInterrupted untouched.
//
// Observability: aggregate counters under service.*, per-job counters and
// trace spans under job.<id>.*.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "search/search.hpp"
#include "service/admission.hpp"
#include "service/job.hpp"

namespace fdml {

/// FIFO-ticket serialization of a shared TaskRunner. run_round is not
/// thread-safe on any backend (the round protocol is a barrier), so every
/// job's rounds pass through this gate; ticket order is arrival order,
/// which with one-round-at-a-time jobs is round-robin service.
class RoundGate final : public TaskRunner {
 public:
  explicit RoundGate(TaskRunner& inner) : inner_(inner) {}

  RoundOutcome run_round(const std::vector<TreeTask>& tasks) override;
  int worker_count() const override { return inner_.worker_count(); }

 private:
  TaskRunner& inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;
};

struct SchedulerOptions {
  AdmissionOptions admission;
  /// Supervisor retry budget per job: attempts beyond the first. Retries
  /// resume from the job's newest checkpoint when one exists.
  int max_retries = 2;
  /// Retry n waits retry_backoff * 2^(n-1) (jittered), capped.
  std::chrono::milliseconds retry_backoff{100};
  std::chrono::milliseconds retry_backoff_max{2000};
  /// Directory for per-job durable checkpoints; empty disables them (drain
  /// then cannot promise resumability). Checkpoints are keyed by jumble
  /// seed, so resubmitting the same spec after a drain resumes it.
  std::string checkpoint_dir;
  /// Base search options; the spec's seed and rearrangement fields overlay.
  SearchOptions search;
  Vfs* vfs = nullptr;
  /// null = the process registry.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t interrupted = 0;
  std::uint64_t retries = 0;
  /// Admitted jobs with no terminal outcome — the "zero lost jobs"
  /// invariant the soak asserts on. Nonzero only while jobs are in flight.
  std::uint64_t in_flight = 0;
};

class JobScheduler {
 public:
  /// `data` and `shared_runner` must outlive the scheduler.
  JobScheduler(const PatternAlignment& data, TaskRunner& shared_runner,
               SchedulerOptions options);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  struct Submission {
    std::uint64_t job_id = 0;
    /// Empty = admitted; otherwise the shed reason (job_id is 0).
    std::optional<RejectReason> rejected;
  };

  /// Admission-checked submit; an admitted job starts (or queues for an
  /// active slot) immediately on its own supervisor thread.
  Submission submit(const JobSpec& spec);

  /// Blocks until the job reaches a terminal outcome.
  JobOutcome wait(std::uint64_t job_id);

  /// Stop admitting and interrupt every job at its next durable checkpoint
  /// boundary. Queued jobs finish as kInterrupted without starting.
  void drain();
  bool draining() const { return admission_.draining(); }

  /// Blocks until every admitted job has a terminal outcome.
  void wait_all();

  /// Terminal outcomes so far, in job-id order.
  std::vector<JobOutcome> outcomes() const;

  /// Live per-job progress (telemetry plane): one row per admitted job,
  /// read from each job's ProgressProbe — current phase, rearrangement
  /// round, task counts, best lnL, last committed checkpoint generation.
  /// Finished jobs keep their final row so a scrape straddling completion
  /// still sees monotonic values.
  std::vector<obs::JobProgressRow> progress() const;

  SchedulerStats stats() const;

 private:
  void run_job(JobSpec spec, std::uint64_t job_id);
  JobOutcome attempt_loop(const JobSpec& spec, std::uint64_t job_id);
  std::string checkpoint_path_for(const JobSpec& spec) const;
  void finish(std::uint64_t job_id, JobOutcome outcome);

  const PatternAlignment& data_;
  RoundGate gate_;
  SchedulerOptions options_;
  obs::MetricsRegistry& registry_;
  AdmissionController admission_;
  std::uint64_t dataset_fingerprint_ = 0;

  std::atomic<bool> stop_flag_{false};

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  /// Active-slot accounting (bounded by admission.max_active).
  std::condition_variable slot_cv_;
  int active_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::map<std::uint64_t, JobOutcome> done_;
  /// One probe per admitted job, created at submit and kept after the job
  /// finishes. shared_ptr: the supervisor thread holds a reference across
  /// the attempt, so progress() never races a map rehash.
  std::map<std::uint64_t, std::shared_ptr<ProgressProbe>> probes_;
  std::vector<std::thread> supervisors_;
};

}  // namespace fdml
