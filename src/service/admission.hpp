// Admission control for the job service: a bounded gate in front of the
// scheduler. The service's load-shedding contract is explicit — beyond
// `max_active` running jobs plus `max_queued` waiting ones, a submission is
// rejected with a reason, never parked on an unbounded queue (the failure
// mode long-lived services die of is growth, not load).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"
#include "service/job.hpp"

namespace fdml {

struct AdmissionOptions {
  /// Jobs running concurrently (each multiplexes rounds over the shared
  /// worker pool through the round gate).
  int max_active = 2;
  /// Admitted jobs waiting for an active slot.
  int max_queued = 8;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options,
                               obs::MetricsRegistry& registry);

  /// nullopt = admitted (a slot or queue position is reserved; pair every
  /// admit with exactly one release()). Otherwise the reject reason.
  std::optional<RejectReason> try_admit();

  /// Returns an admitted job's reservation (on completion, failure, or
  /// interruption).
  void release();

  /// Stop admitting: every subsequent try_admit is kDraining.
  void drain();
  bool draining() const;

  int admitted() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mutex_;
  int admitted_ = 0;
  bool draining_ = false;
  obs::Counter& submitted_;
  obs::Counter& admitted_total_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_draining_;
};

}  // namespace fdml
