#include "service/scheduler.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/trace.hpp"
#include "seq/fingerprint.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace fdml {

namespace {

std::chrono::milliseconds jittered(std::chrono::milliseconds backoff,
                                   Rng& rng) {
  const auto half = backoff.count() / 2;
  return std::chrono::milliseconds(
      half + static_cast<long long>(rng.below(
                 static_cast<std::uint64_t>(backoff.count() - half + 1))));
}

}  // namespace

RoundOutcome RoundGate::run_round(const std::vector<TreeTask>& tasks) {
  std::uint64_t ticket;
  {
    std::unique_lock lock(mutex_);
    ticket = next_ticket_++;
    cv_.wait(lock, [&] { return serving_ == ticket; });
  }
  // The inner round runs unlocked (it blocks on the fabric); the ticket is
  // what excludes other jobs. An exception still advances the line.
  std::exception_ptr error;
  RoundOutcome outcome;
  try {
    outcome = inner_.run_round(tasks);
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard lock(mutex_);
    ++serving_;
  }
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return outcome;
}

JobScheduler::JobScheduler(const PatternAlignment& data,
                           TaskRunner& shared_runner, SchedulerOptions options)
    : data_(data),
      gate_(shared_runner),
      options_(std::move(options)),
      registry_(options_.metrics != nullptr ? *options_.metrics
                                            : obs::MetricsRegistry::process()),
      admission_(options_.admission, registry_),
      dataset_fingerprint_(alignment_fingerprint(data)) {
  if (!options_.checkpoint_dir.empty()) {
    // Durable checkpoints are the whole point of the supervisor; a missing
    // directory must not turn every attempt into an instant failure.
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      FDML_WARN("service") << "could not create checkpoint dir "
                           << options_.checkpoint_dir << ": " << ec.message();
    }
  }
}

JobScheduler::~JobScheduler() {
  drain();
  for (auto& thread : supervisors_) {
    if (thread.joinable()) thread.join();
  }
}

std::string JobScheduler::checkpoint_path_for(const JobSpec& spec) const {
  if (options_.checkpoint_dir.empty()) return {};
  // Keyed by seed, not job id: a resubmission of the same spec after a
  // drain (a fresh job id) finds and resumes the interrupted checkpoint.
  return options_.checkpoint_dir + "/job-seed-" + std::to_string(spec.seed) +
         ".ckpt";
}

JobScheduler::Submission JobScheduler::submit(const JobSpec& spec) {
  if (const auto reject = admission_.try_admit()) {
    obs::instant("service", "job_rejected", "reason",
                 static_cast<int>(*reject));
    FDML_INFO("service") << "job shed (" << reject_reason_name(*reject)
                         << "): seed " << spec.seed;
    return Submission{0, *reject};
  }
  std::lock_guard lock(mutex_);
  const std::uint64_t job_id = next_job_id_++;
  registry_.counter("job." + std::to_string(job_id) + ".admitted").add();
  probes_.emplace(job_id, std::make_shared<ProgressProbe>());
  supervisors_.emplace_back(
      [this, spec, job_id] { run_job(spec, job_id); });
  return Submission{job_id, std::nullopt};
}

void JobScheduler::run_job(JobSpec spec, std::uint64_t job_id) {
  obs::set_thread_name("job-" + std::to_string(job_id));
  {
    std::unique_lock lock(mutex_);
    slot_cv_.wait(lock, [&] {
      return active_ < options_.admission.max_active ||
             stop_flag_.load(std::memory_order_acquire);
    });
    if (stop_flag_.load(std::memory_order_acquire)) {
      // Drained before this job ever ran a round: it never touched the
      // pool, so it is resumable from scratch (generation 0) or from the
      // checkpoint a previous incarnation of its seed left behind.
      lock.unlock();
      JobOutcome outcome;
      outcome.job_id = job_id;
      outcome.status = JobStatus::kInterrupted;
      finish(job_id, std::move(outcome));
      admission_.release();
      return;
    }
    ++active_;
  }
  registry_.gauge("service.jobs_active").add(1);
  JobOutcome outcome = attempt_loop(spec, job_id);
  registry_.gauge("service.jobs_active").add(-1);
  {
    std::lock_guard lock(mutex_);
    --active_;
  }
  slot_cv_.notify_one();
  finish(job_id, std::move(outcome));
  admission_.release();
}

JobOutcome JobScheduler::attempt_loop(const JobSpec& spec,
                                      std::uint64_t job_id) {
  const std::string prefix = "job." + std::to_string(job_id);
  std::shared_ptr<ProgressProbe> probe;
  {
    std::lock_guard lock(mutex_);
    probe = probes_.at(job_id);
  }
  JobOutcome out;
  out.job_id = job_id;
  Rng rng(spec.seed ^ (job_id * 0x9e3779b97f4a7c15ULL));
  auto backoff = std::max(options_.retry_backoff, std::chrono::milliseconds(1));
  int attempt = 0;
  for (;;) {
    ++attempt;
    try {
      SearchOptions o = options_.search;
      o.seed = spec.seed;
      o.rearrange_cross = spec.rearrange_cross;
      o.final_rearrange_cross = spec.final_rearrange_cross;
      o.record_trace = false;
      o.vfs = options_.vfs;
      o.dataset_fingerprint = dataset_fingerprint_;
      o.checkpoint_path = checkpoint_path_for(spec);
      o.stop_requested = [this] {
        return stop_flag_.load(std::memory_order_acquire);
      };
      o.progress = probe.get();
      // Every attempt starts from the newest durable checkpoint: a retry
      // after a mid-round failure repeats only the interrupted stretch, and
      // a resubmission after a drain continues where the drain stopped.
      std::optional<RecoveredCheckpoint> recovered;
      if (!o.checkpoint_path.empty()) {
        recovered =
            recover_checkpoint(o.checkpoint_path, dataset_fingerprint_, o.vfs);
        if (recovered && recovered->checkpoint.seed != o.seed) {
          // A different spec's leftovers at a colliding path; never resume
          // a foreign search state.
          recovered.reset();
        }
      }
      obs::Span span("job", "attempt", "job", static_cast<int>(job_id));
      registry_.counter(prefix + ".attempts").add();
      StepwiseSearch search(data_, o);
      const SearchResult result = recovered
                                      ? search.resume(gate_, recovered->checkpoint)
                                      : search.run(gate_);
      out.status = JobStatus::kDone;
      out.newick = result.best_newick;
      out.log_likelihood = result.best_log_likelihood;
      return out;
    } catch (const SearchInterrupted& interrupted) {
      out.status = JobStatus::kInterrupted;
      out.resume_generation = interrupted.generation();
      FDML_INFO("service") << "job " << job_id
                           << " interrupted; resumable at generation "
                           << interrupted.generation();
      return out;
    } catch (const std::exception& e) {
      out.error = e.what();
      if (attempt > options_.max_retries) {
        out.status = JobStatus::kFailed;
        return out;
      }
      out.retries = static_cast<std::uint32_t>(attempt);
      registry_.counter(prefix + ".retries").add();
      registry_.counter("service.job_retries").add();
      FDML_WARN("service") << "job " << job_id << " attempt " << attempt
                           << " failed (" << e.what() << "); retrying";
      std::this_thread::sleep_for(jittered(backoff, rng));
      backoff = std::min(backoff * 2, options_.retry_backoff_max);
    }
  }
}

void JobScheduler::finish(std::uint64_t job_id, JobOutcome outcome) {
  const char* status = outcome.status == JobStatus::kDone ? "completed"
                       : outcome.status == JobStatus::kInterrupted
                           ? "interrupted"
                           : "failed";
  registry_.counter(std::string("service.jobs_") + status).add();
  registry_.counter("job." + std::to_string(job_id) + "." + status).add();
  obs::instant("job", status, "job", static_cast<int>(job_id));
  {
    std::lock_guard lock(mutex_);
    done_[job_id] = std::move(outcome);
  }
  done_cv_.notify_all();
}

JobOutcome JobScheduler::wait(std::uint64_t job_id) {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return done_.count(job_id) != 0; });
  return done_.at(job_id);
}

void JobScheduler::drain() {
  admission_.drain();
  stop_flag_.store(true, std::memory_order_release);
  slot_cv_.notify_all();
}

void JobScheduler::wait_all() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return done_.size() + 1 == next_job_id_; });
}

std::vector<JobOutcome> JobScheduler::outcomes() const {
  std::lock_guard lock(mutex_);
  std::vector<JobOutcome> all;
  all.reserve(done_.size());
  for (const auto& [id, outcome] : done_) all.push_back(outcome);
  return all;
}

std::vector<obs::JobProgressRow> JobScheduler::progress() const {
  std::lock_guard lock(mutex_);
  std::vector<obs::JobProgressRow> rows;
  rows.reserve(probes_.size());
  for (const auto& [id, probe] : probes_) {
    obs::JobProgressRow row;
    row.job_id = id;
    const int phase = probe->phase.load(std::memory_order_relaxed);
    row.phase = phase == static_cast<int>(SearchPhase::kRearrange)
                    ? "rearrange"
                    : (phase == static_cast<int>(SearchPhase::kAddition)
                           ? "addition"
                           : "idle");
    row.taxa_in_tree = probe->taxa_in_tree.load(std::memory_order_relaxed);
    row.round = probe->round.load(std::memory_order_relaxed);
    row.tasks_done = probe->tasks_done.load(std::memory_order_relaxed);
    row.tasks_total = probe->tasks_total.load(std::memory_order_relaxed);
    if (const auto best = probe->best()) {
      row.best_log_likelihood = *best;
      row.has_best = true;
    }
    row.checkpoint_generation =
        probe->checkpoint_generation.load(std::memory_order_relaxed);
    rows.push_back(std::move(row));
  }
  return rows;
}

SchedulerStats JobScheduler::stats() const {
  const auto snapshot = registry_.snapshot();
  SchedulerStats s;
  s.submitted = snapshot.counter("service.jobs_submitted");
  s.admitted = snapshot.counter("service.jobs_admitted");
  s.rejected_full = snapshot.counter("service.jobs_rejected_full");
  s.rejected_draining = snapshot.counter("service.jobs_rejected_draining");
  s.completed = snapshot.counter("service.jobs_completed");
  s.failed = snapshot.counter("service.jobs_failed");
  s.interrupted = snapshot.counter("service.jobs_interrupted");
  s.retries = snapshot.counter("service.job_retries");
  s.in_flight = s.admitted - s.completed - s.failed - s.interrupted;
  return s;
}

}  // namespace fdml
