// Service-plane job vocabulary: what a client submits to fdmld, what it
// gets back, and why a submission may be refused. Codecs follow the
// parallel protocol's discipline (util/packer.hpp endian-stable fields,
// sealed with the integrity footer on the wire) so a corrupt submission is
// a counted reject, never a crash.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fdml {

/// One search job: a stepwise-addition run over the service's dataset with
/// this jumble seed and rearrangement settings. Many concurrent jobs with
/// different seeds are exactly the paper's "tens to thousands of
/// randomizations" workload, arriving as traffic instead of a batch loop.
struct JobSpec {
  std::uint64_t seed = 1;
  int rearrange_cross = 1;
  int final_rearrange_cross = 1;
  /// Optional client label, carried into logs (job ids, not names, key the
  /// job.<id>.* metrics so two clients cannot collide).
  std::string name;

  std::vector<std::uint8_t> encode() const;
  /// Throws std::runtime_error on a malformed payload.
  static JobSpec decode(const std::vector<std::uint8_t>& payload);
};

/// Why the admission controller refused a submission.
enum class RejectReason : std::uint8_t {
  /// Active + queued jobs are at capacity; resubmit later. The bound is the
  /// load-shedding contract: the service degrades by refusing, never by
  /// growing an unbounded queue.
  kQueueFull = 1,
  /// The service is draining (SIGTERM): no new work, in-flight jobs are
  /// being checkpointed.
  kDraining = 2,
  /// The submission payload failed integrity or decoding.
  kBadRequest = 3,
};

const char* reject_reason_name(RejectReason reason);

enum class JobStatus : std::uint8_t {
  /// Search ran to completion; tree and likelihood are authoritative.
  kDone = 0,
  /// Drain interrupted the job after a durable checkpoint;
  /// resume_generation names the checkpoint a resubmit resumes from.
  kInterrupted = 1,
  /// The supervisor exhausted its retry budget; `error` says why.
  kFailed = 2,
};

struct JobOutcome {
  std::uint64_t job_id = 0;
  JobStatus status = JobStatus::kFailed;
  std::string newick;
  double log_likelihood = 0.0;
  /// kInterrupted: checkpoint generation to resume from (0 = none written).
  std::uint64_t resume_generation = 0;
  /// Supervisor retries this job consumed (attempts beyond the first).
  std::uint32_t retries = 0;
  std::string error;

  std::vector<std::uint8_t> encode() const;
  static JobOutcome decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace fdml
