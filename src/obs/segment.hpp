// Rotating trace segments: traces that survive long service lifetimes.
//
// The one-shot dump-at-exit model (drain once, write one JSON file) cannot
// serve a week-long fdmld process — either the rings are sized for the whole
// run (OOM) or sized sanely and everything before the tail is lost. The
// TraceSegmentWriter instead drains the process tracer on a short period,
// appends into the current segment, and rotates to a new size-capped
// `segment-<N>.json` when the cap is hit. Each segment is a complete,
// independently loadable Chrome trace (written to a temp name, fsync'd, then
// renamed into place so a crash never leaves a torn segment visible), and
// retention is bounded: the oldest segments are pruned past `max_segments`.
// trace_report stitches a segment directory back into one timeline.
//
// Layering: obs sits below durable, so this writes with direct POSIX I/O
// rather than the Vfs seam.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace fdml::obs {

struct TraceSegmentOptions {
  /// Rotate once the current segment's serialized size reaches this.
  std::size_t max_segment_bytes = 4u << 20;
  /// Keep at most this many segments on disk (oldest pruned first).
  std::size_t max_segments = 16;
  /// How often the background thread drains the tracer.
  std::chrono::milliseconds flush_interval{500};
};

/// Background writer draining Tracer::instance() into rotating segments
/// under `dir`. start() spawns the thread; stop() (or destruction) drains
/// one final time and writes the trailing partial segment.
class TraceSegmentWriter {
 public:
  TraceSegmentWriter(std::string dir, TraceSegmentOptions options = {});
  ~TraceSegmentWriter();

  TraceSegmentWriter(const TraceSegmentWriter&) = delete;
  TraceSegmentWriter& operator=(const TraceSegmentWriter&) = delete;

  /// Creates `dir` if needed and spawns the flush thread. Throws on I/O
  /// failure creating the directory.
  void start();

  /// Final drain + flush, then joins the thread. Idempotent.
  void stop();

  /// Segments written so far (monotonic; pruned segments still count).
  std::uint64_t segments_written() const;

  /// Ring-overflow drops observed across all drains (mirrors the
  /// obs.trace_dropped counter).
  std::uint64_t dropped_seen() const;

  /// One synchronous drain+append (the flush thread's body; exposed so
  /// tests can drive rotation deterministically without sleeping).
  void flush_now();

 private:
  void run();
  void append(TraceLog&& drained);
  void rotate_locked();
  void prune_locked();
  std::string segment_path(std::uint64_t index) const;

  std::string dir_;
  TraceSegmentOptions options_;

  mutable std::mutex mutex_;
  TraceLog pending_;            // events accumulated for the current segment
  std::size_t pending_bytes_ = 0;
  std::uint64_t next_index_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t dropped_seen_ = 0;

  std::thread thread_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace fdml::obs
