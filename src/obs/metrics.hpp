// Process metrics registry: named counters, gauges, and fixed-bucket
// histograms. Instruments register once (under a mutex, addresses stable for
// the registry's lifetime) and bump lock-free with relaxed atomics, so hot
// paths pay one uncontended atomic add. snapshot() reads everything
// consistently enough for reporting (each cell is read atomically; the set
// of cells is frozen under the registration mutex).
//
// The runtime stats structs (ForemanStats, MasterStats) are *views* over
// this registry: each role records the counter values at its start and
// reports end-minus-start deltas, so per-incarnation semantics survive
// foreman revival while the registry accumulates whole-run totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fdml::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when the counter was never registered.
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;

  /// One-object-per-line JSON (same dialect as BENCH_kernels.json).
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named instrument, registering it on first use. References
  /// stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is only consulted on first registration.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Process-wide default used when a role is run without an explicit
  /// registry (e.g. foreman_main driven directly by a test).
  static MetricsRegistry& process();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fdml::obs
