#include "obs/segment.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace fdml::obs {

namespace {

void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Write-fsync-rename-fsync(dir): the standard torn-write-proof publish. A
// crash mid-write leaves only the .tmp, which loaders never look at.
void write_file_durably(const std::string& dir, const std::string& name,
                        const std::string& content) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write " + tmp);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename " + tmp);
  }
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

TraceSegmentWriter::TraceSegmentWriter(std::string dir,
                                       TraceSegmentOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.max_segment_bytes == 0) options_.max_segment_bytes = 1;
  if (options_.max_segments == 0) options_.max_segments = 1;
}

TraceSegmentWriter::~TraceSegmentWriter() { stop(); }

void TraceSegmentWriter::start() {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno("mkdir " + dir_);
  }
  {
    std::lock_guard lock(mutex_);
    stopping_ = false;
    started_ = true;
  }
  thread_ = std::thread([this] { run(); });
}

void TraceSegmentWriter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush_now();
  // The trailing partial segment still holds the run's tail — publish it
  // even below the size cap.
  std::lock_guard lock(mutex_);
  if (!pending_.events.empty() || pending_.dropped_events > 0) {
    rotate_locked();
  }
  started_ = false;
}

void TraceSegmentWriter::run() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, options_.flush_interval, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

void TraceSegmentWriter::flush_now() {
  TraceLog drained = Tracer::instance().drain_and_reset();
  if (drained.dropped_events > 0) {
    // Ring overflow used to be counted and thrown away; surface it — a
    // trace with silent holes reads as a healthy one.
    MetricsRegistry::process()
        .counter("obs.trace_dropped")
        .add(drained.dropped_events);
    FDML_WARN("obs") << "trace ring overflow: " << drained.dropped_events
                     << " events dropped before this flush (raise the ring "
                        "capacity or shorten the flush interval)";
  }
  if (drained.events.empty() && drained.dropped_events == 0) return;
  append(std::move(drained));
}

void TraceSegmentWriter::append(TraceLog&& drained) {
  std::lock_guard lock(mutex_);
  dropped_seen_ += drained.dropped_events;
  for (auto& [tid, name] : drained.threads) {
    pending_.set_thread(tid, std::move(name));
  }
  for (auto& event : drained.events) {
    pending_.events.push_back(std::move(event));
    // Serialized rows run ~120-200 bytes; a conservative floor keeps the
    // rotation check O(1) instead of reserializing the pending log.
    pending_bytes_ += 128;
  }
  pending_.dropped_events += drained.dropped_events;
  if (pending_bytes_ >= options_.max_segment_bytes) rotate_locked();
}

void TraceSegmentWriter::rotate_locked() {
  pending_.sort_events();
  std::ostringstream out;
  pending_.write_chrome(out);
  const std::uint64_t index = next_index_++;
  write_file_durably(dir_, "segment-" + std::to_string(index) + ".json",
                     out.str());
  ++written_;
  pending_ = TraceLog{};
  pending_bytes_ = 0;
  prune_locked();
}

void TraceSegmentWriter::prune_locked() {
  if (next_index_ < options_.max_segments) return;
  // Everything below the retention window goes; unlink is idempotent so
  // re-pruning an already-removed index is harmless.
  const std::uint64_t keep_from = next_index_ - options_.max_segments;
  for (std::uint64_t i = keep_from; i-- > 0;) {
    if (::unlink(segment_path(i).c_str()) != 0 && errno == ENOENT) break;
  }
}

std::string TraceSegmentWriter::segment_path(std::uint64_t index) const {
  return dir_ + "/segment-" + std::to_string(index) + ".json";
}

std::uint64_t TraceSegmentWriter::segments_written() const {
  std::lock_guard lock(mutex_);
  return written_;
}

std::uint64_t TraceSegmentWriter::dropped_seen() const {
  std::lock_guard lock(mutex_);
  return dropped_seen_;
}

}  // namespace fdml::obs
