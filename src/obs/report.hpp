// Report generator: turns a TraceLog (live drain, loaded Chrome JSON, or
// simulator replay) into the paper's tables — per-worker utilization
// timeline, serial fraction, queue depth over time, per-round slack, task
// time histograms, and speedup/efficiency against a baseline run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fdml::obs {

struct WorkerRow {
  int tid = 0;
  std::string name;
  double busy_seconds = 0.0;
  std::uint64_t tasks = 0;
  double utilization = 0.0;          // busy / wall
  std::vector<double> timeline;      // busy fraction per time bin
};

struct RoundRow {
  std::int64_t round_id = 0;
  double begin_seconds = 0.0;        // relative to trace start
  double duration_seconds = 0.0;
  std::uint64_t tasks = 0;           // task executions ending in the window
  double slack_seconds = 0.0;        // barrier slack: spread of last per-worker finishes
};

struct TraceReport {
  double wall_seconds = 0.0;
  int workers = 0;
  std::uint64_t tasks = 0;
  double busy_seconds = 0.0;         // sum of worker task-span time
  double covered_seconds = 0.0;      // union of worker busy intervals
  double serial_fraction = 0.0;      // 1 - covered / wall
  double utilization = 0.0;          // busy / (wall * workers)
  double mean_task_seconds = 0.0;

  std::vector<WorkerRow> per_worker;
  std::vector<RoundRow> rounds;

  double bin_seconds = 0.0;
  std::vector<double> utilization_bins;  // all-worker busy fraction per bin

  double mean_queue_depth = 0.0;     // time-weighted
  std::int64_t max_queue_depth = 0;

  // Edge-batch occupancy: one batch_fill counter sample per multi-edge
  // capture (BatchEdgeEvaluator). Buckets are <=1, <=2, <=4, <=8, <=16,
  // <=32, overflow — how full the batched kernel actually ran.
  std::uint64_t batch_samples = 0;
  double mean_batch_fill = 0.0;
  std::vector<std::uint64_t> batch_fill_hist;

  std::vector<double> task_hist_bounds;     // seconds, ascending
  std::vector<std::uint64_t> task_hist;     // bounds.size() + 1 (overflow)

  std::uint64_t flow_begins = 0;
  std::uint64_t flow_steps = 0;
  std::uint64_t flow_ends = 0;
  std::uint64_t dropped_events = 0;
};

/// Computes the report. `bins` is the timeline resolution.
TraceReport analyze_trace(const TraceLog& log, int bins = 24);

/// Human-readable report (the paper-style tables).
std::string render_report(const TraceReport& report);

/// Speedup/efficiency of `run` against a (typically 1-worker) baseline.
struct ScalingRow {
  int workers = 0;
  double baseline_wall_seconds = 0.0;
  double wall_seconds = 0.0;
  double speedup = 0.0;              // baseline wall / run wall
  double efficiency = 0.0;           // speedup / workers
};

ScalingRow scaling_row(const TraceReport& baseline, const TraceReport& run);
std::string render_scaling(const ScalingRow& row);

/// Parses Chrome trace_event JSON (the dialect TraceLog::write_chrome
/// emits; tolerant of extra fields). Throws std::runtime_error on malformed
/// input.
TraceLog load_chrome_trace(std::istream& in);
TraceLog load_chrome_trace(const std::string& text);

/// Stitches rotated trace segments (obs/segment.hpp) back into one
/// timeline: thread tables union by tid (first name wins), events
/// concatenate and re-sort, drop counts sum. Segments share one process's
/// monotonic clock, so timestamps interleave correctly in order.
TraceLog merge_trace_logs(const std::vector<TraceLog>& logs);

}  // namespace fdml::obs
