#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace fdml::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

// Per-thread ring pointer. Rings are owned by the Tracer and never freed
// while the process lives (reset() clears contents, not objects), so a
// cached pointer can't dangle even across enable/disable cycles.
thread_local Tracer::Ring* t_ring = nullptr;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceLog::set_thread(int tid, std::string name) {
  for (auto& [existing, existing_name] : threads) {
    if (existing == tid) {
      existing_name = std::move(name);
      return;
    }
  }
  threads.emplace_back(tid, std::move(name));
}

LogEvent& TraceLog::add(int tid, Phase ph, double ts_ns, std::string cat,
                        std::string name, std::uint64_t id) {
  LogEvent event;
  event.tid = tid;
  event.ph = ph;
  event.ts_ns = ts_ns;
  event.id = id;
  event.cat = std::move(cat);
  event.name = std::move(name);
  events.push_back(std::move(event));
  return events.back();
}

void TraceLog::sort_events() {
  std::stable_sort(events.begin(), events.end(),
                   [](const LogEvent& a, const LogEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
}

void TraceLog::write_chrome(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [tid, name] : threads) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  }
  char ts_buf[40];
  for (const auto& event : events) {
    sep();
    // Chrome ts is in microseconds; three decimals keep ns precision.
    std::snprintf(ts_buf, sizeof ts_buf, "%.3f", event.ts_ns / 1000.0);
    out << "{\"ph\":\"" << static_cast<char>(event.ph) << "\",\"pid\":1,\"tid\":"
        << event.tid << ",\"ts\":" << ts_buf << ",\"cat\":\""
        << json_escape(event.cat) << "\",\"name\":\"" << json_escape(event.name)
        << "\"";
    if (event.ph == Phase::kFlowBegin || event.ph == Phase::kFlowStep ||
        event.ph == Phase::kFlowEnd) {
      char id_buf[24];
      std::snprintf(id_buf, sizeof id_buf, "0x%llx",
                    static_cast<unsigned long long>(event.id));
      out << ",\"id\":\"" << id_buf << "\"";
      if (event.ph == Phase::kFlowEnd) out << ",\"bp\":\"e\"";
    }
    if (event.ph == Phase::kInstant) out << ",\"s\":\"t\"";
    if (!event.arg0_name.empty() || !event.arg1_name.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (!event.arg0_name.empty()) {
        out << "\"" << json_escape(event.arg0_name) << "\":" << event.arg0;
        first_arg = false;
      }
      if (!event.arg1_name.empty()) {
        if (!first_arg) out << ",";
        out << "\"" << json_escape(event.arg1_name) << "\":" << event.arg1;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"otherData\":{\"droppedEvents\":" << dropped_events << "}}\n";
}

void Tracer::enable(std::size_t events_per_thread) {
  {
    std::lock_guard lock(mutex_);
    capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
    for (auto& ring : rings_) {
      std::lock_guard ring_lock(ring->mutex);
      ring->slots.assign(capacity_, TraceEvent{});
      ring->head = 0;
      ring->size = 0;
      ring->dropped = 0;
    }
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  for (auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

Tracer::Ring& Tracer::local_ring() {
  if (t_ring != nullptr) return *t_ring;
  std::lock_guard lock(mutex_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<int>(rings_.size());
  ring->slots.assign(capacity_, TraceEvent{});
  t_ring = ring.get();
  rings_.push_back(std::move(ring));
  return *t_ring;
}

void Tracer::set_thread_name(std::string name) {
  set_log_thread_label(name);
  Ring& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  ring.name = std::move(name);
}

void Tracer::record(TraceEvent event) {
  if (!trace_enabled()) return;
  if (event.ts_ns == 0) event.ts_ns = monotonic_ns();
  Ring& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  if (ring.slots.empty()) return;
  if (ring.size < ring.slots.size()) {
    ring.slots[(ring.head + ring.size) % ring.slots.size()] = event;
    ++ring.size;
  } else {
    // Full: overwrite the oldest slot so the newest events survive.
    ring.slots[ring.head] = event;
    ring.head = (ring.head + 1) % ring.slots.size();
    ++ring.dropped;
  }
}

TraceLog Tracer::drain() const {
  TraceLog log;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    std::string name = ring->name.empty()
                           ? "thread-" + std::to_string(ring->tid)
                           : ring->name;
    log.set_thread(ring->tid, std::move(name));
    for (std::size_t i = 0; i < ring->size; ++i) {
      const TraceEvent& e = ring->slots[(ring->head + i) % ring->slots.size()];
      LogEvent& out = log.add(ring->tid, e.ph, static_cast<double>(e.ts_ns),
                              e.cat ? e.cat : "", e.name ? e.name : "", e.id);
      if (e.arg0_name != nullptr) {
        out.arg0_name = e.arg0_name;
        out.arg0 = e.arg0;
      }
      if (e.arg1_name != nullptr) {
        out.arg1_name = e.arg1_name;
        out.arg1 = e.arg1;
      }
    }
    log.dropped_events += ring->dropped;
  }
  log.sort_events();
  return log;
}

TraceLog Tracer::drain_and_reset() {
  TraceLog log;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    std::string name = ring->name.empty()
                           ? "thread-" + std::to_string(ring->tid)
                           : ring->name;
    log.set_thread(ring->tid, std::move(name));
    for (std::size_t i = 0; i < ring->size; ++i) {
      const TraceEvent& e = ring->slots[(ring->head + i) % ring->slots.size()];
      LogEvent& out = log.add(ring->tid, e.ph, static_cast<double>(e.ts_ns),
                              e.cat ? e.cat : "", e.name ? e.name : "", e.id);
      if (e.arg0_name != nullptr) {
        out.arg0_name = e.arg0_name;
        out.arg0 = e.arg0;
      }
      if (e.arg1_name != nullptr) {
        out.arg1_name = e.arg1_name;
        out.arg1 = e.arg1;
      }
    }
    log.dropped_events += ring->dropped;
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
  log.sort_events();
  return log;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void set_thread_name(std::string name) {
  Tracer::instance().set_thread_name(std::move(name));
}

void Span::start(const char* cat, const char* name, const char* arg0_name,
                 std::int64_t arg0, const char* arg1_name, std::int64_t arg1) {
  cat_ = cat;
  name_ = name;
  active_ = true;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ph = Phase::kBegin;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  Tracer::instance().record(e);
}

void Span::finish() {
  active_ = false;
  TraceEvent e;
  e.cat = cat_;
  e.name = name_;
  e.ph = Phase::kEnd;
  e.arg0_name = end_arg0_name_;
  e.arg0 = end_arg0_;
  e.arg1_name = end_arg1_name_;
  e.arg1 = end_arg1_;
  Tracer::instance().record(e);
}

}  // namespace fdml::obs
