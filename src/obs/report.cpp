#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace fdml::obs {

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser: just enough for the trace dialect
// we emit (objects, arrays, strings with escapes, numbers, true/false/null).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = object.find(std::string(key));
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // We only ever emit \u00xx control escapes; anything wider is
          // replaced rather than UTF-8 encoded.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

double number_or(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : fallback;
}

std::string string_or(const JsonValue* v, std::string fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->string
                                                               : fallback;
}

std::uint64_t parse_flow_id(const JsonValue* v) {
  if (v == nullptr) return 0;
  if (v->kind == JsonValue::Kind::kNumber) {
    return static_cast<std::uint64_t>(v->number);
  }
  if (v->kind == JsonValue::Kind::kString) {
    return std::strtoull(v->string.c_str(), nullptr, 0);  // handles 0x...
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Analysis helpers
// ---------------------------------------------------------------------------

struct Interval {
  double begin = 0.0;
  double end = 0.0;
};

double union_length(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  double total = 0.0;
  double cur_begin = 0.0;
  double cur_end = -std::numeric_limits<double>::infinity();
  for (const Interval& iv : intervals) {
    if (iv.begin > cur_end) {
      if (cur_end > cur_begin) total += cur_end - cur_begin;
      cur_begin = iv.begin;
      cur_end = iv.end;
    } else {
      cur_end = std::max(cur_end, iv.end);
    }
  }
  if (cur_end > cur_begin) total += cur_end - cur_begin;
  return total;
}

/// Overlap of [begin,end) with time bin `b` of width `bin` starting at `t0`.
double bin_overlap(const Interval& iv, double t0, double bin, int b) {
  const double lo = t0 + bin * b;
  const double hi = lo + bin;
  return std::max(0.0, std::min(iv.end, hi) - std::max(iv.begin, lo));
}

std::optional<std::int64_t> event_arg(const LogEvent& e,
                                      std::string_view name) {
  if (e.arg0_name == name) return e.arg0;
  if (e.arg1_name == name) return e.arg1;
  return std::nullopt;
}

bool is_worker_task_span(const LogEvent& e) {
  return e.cat == "worker" && e.name == "task";
}

const char* util_ramp(double frac) {
  static const char* kRamp[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
  int idx = static_cast<int>(std::lround(frac * 9.0));
  idx = std::clamp(idx, 0, 9);
  return kRamp[idx];
}

std::string format_seconds(double s) {
  char buf[48];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  }
  return buf;
}

}  // namespace

TraceLog load_chrome_trace(const std::string& text) {
  JsonParser parser(text);
  const JsonValue root = parser.parse();
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("trace JSON has no traceEvents array");
  }
  TraceLog log;
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("traceEvents entry is not an object");
    }
    const std::string ph = string_or(ev.find("ph"), "");
    const int tid = static_cast<int>(number_or(ev.find("tid"), 0));
    const std::string name = string_or(ev.find("name"), "");
    if (ph == "M") {
      if (name == "thread_name") {
        const JsonValue* args = ev.find("args");
        log.set_thread(tid, args ? string_or(args->find("name"), "") : "");
      }
      continue;
    }
    if (ph.size() != 1) continue;
    const char p = ph[0];
    if (p != 'B' && p != 'E' && p != 'i' && p != 's' && p != 't' && p != 'f' &&
        p != 'C') {
      continue;  // tolerate phases we never emit (X, counters from other tools)
    }
    const double ts_us = number_or(ev.find("ts"), 0.0);
    LogEvent& out =
        log.add(tid, static_cast<Phase>(p), ts_us * 1000.0,
                string_or(ev.find("cat"), ""), name,
                parse_flow_id(ev.find("id")));
    if (const JsonValue* args = ev.find("args");
        args != nullptr && args->kind == JsonValue::Kind::kObject) {
      int slot = 0;
      for (const auto& [key, value] : args->object) {
        if (value.kind != JsonValue::Kind::kNumber) continue;
        if (slot == 0) {
          out.arg0_name = key;
          out.arg0 = static_cast<std::int64_t>(value.number);
        } else if (slot == 1) {
          out.arg1_name = key;
          out.arg1 = static_cast<std::int64_t>(value.number);
        }
        ++slot;
      }
    }
  }
  if (const JsonValue* other = root.find("otherData")) {
    log.dropped_events =
        static_cast<std::uint64_t>(number_or(other->find("droppedEvents"), 0));
  }
  log.sort_events();
  return log;
}

TraceLog load_chrome_trace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_chrome_trace(buffer.str());
}

TraceReport analyze_trace(const TraceLog& log, int bins) {
  TraceReport report;
  report.dropped_events = log.dropped_events;
  if (bins < 1) bins = 1;
  if (log.events.empty()) return report;

  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  for (const LogEvent& e : log.events) {
    t0 = std::min(t0, e.ts_ns);
    t1 = std::max(t1, e.ts_ns);
  }
  const double wall_ns = std::max(t1 - t0, 1.0);
  report.wall_seconds = wall_ns * 1e-9;

  // Worker busy intervals from task execution spans.
  std::map<int, std::vector<Interval>> busy;
  std::map<int, std::vector<double>> open;
  std::map<int, std::uint64_t> tasks_by_tid;
  std::vector<double> task_seconds;

  // Queue depth: piecewise-constant between counter samples.
  double depth_integral_ns = 0.0;
  double depth_prev_ts = 0.0;
  std::int64_t depth_prev = 0;
  bool depth_seen = false;

  for (const LogEvent& e : log.events) {
    if (is_worker_task_span(e)) {
      if (e.ph == Phase::kBegin) {
        open[e.tid].push_back(e.ts_ns);
      } else if (e.ph == Phase::kEnd) {
        auto& stack = open[e.tid];
        if (!stack.empty()) {
          const double begin = stack.back();
          stack.pop_back();
          busy[e.tid].push_back({begin, e.ts_ns});
          ++tasks_by_tid[e.tid];
          task_seconds.push_back((e.ts_ns - begin) * 1e-9);
        }
      }
    } else if (e.cat == "flow") {
      if (e.ph == Phase::kFlowBegin) ++report.flow_begins;
      if (e.ph == Phase::kFlowStep) ++report.flow_steps;
      if (e.ph == Phase::kFlowEnd) ++report.flow_ends;
    } else if (e.ph == Phase::kCounter && e.name == "queue_depth") {
      const std::int64_t value = event_arg(e, "value").value_or(0);
      if (depth_seen) depth_integral_ns += depth_prev * (e.ts_ns - depth_prev_ts);
      depth_prev_ts = e.ts_ns;
      depth_prev = value;
      depth_seen = true;
      report.max_queue_depth = std::max(report.max_queue_depth, value);
    } else if (e.ph == Phase::kCounter && e.name == "batch_fill") {
      // One sample per multi-edge capture: how many candidate edges the
      // batched kernel pass actually carried.
      const std::int64_t value = event_arg(e, "value").value_or(0);
      if (report.batch_fill_hist.empty()) report.batch_fill_hist.assign(7, 0);
      static constexpr std::int64_t kFillBounds[6] = {1, 2, 4, 8, 16, 32};
      std::size_t bucket = 6;
      for (std::size_t b = 0; b < 6; ++b) {
        if (value <= kFillBounds[b]) {
          bucket = b;
          break;
        }
      }
      ++report.batch_fill_hist[bucket];
      report.mean_batch_fill += static_cast<double>(value);
      ++report.batch_samples;
    }
  }
  // Spans still open at trace end extend to the end of the trace.
  for (auto& [tid, stack] : open) {
    for (const double begin : stack) busy[tid].push_back({begin, t1});
  }
  if (depth_seen && t1 > depth_prev_ts) {
    depth_integral_ns += depth_prev * (t1 - depth_prev_ts);
  }
  if (depth_seen) report.mean_queue_depth = depth_integral_ns / wall_ns;
  if (report.batch_samples > 0) {
    report.mean_batch_fill /= static_cast<double>(report.batch_samples);
  }

  // The worker population: threads with task spans plus threads named
  // worker-* (so an idle worker still lowers utilization).
  std::map<int, std::string> workers;
  for (const auto& [tid, intervals] : busy) {
    workers[tid] = "worker-?";
    (void)intervals;
  }
  for (const auto& [tid, name] : log.threads) {
    if (name.rfind("worker", 0) == 0) workers[tid] = name;
    else if (workers.count(tid)) workers[tid] = name;
  }
  report.workers = static_cast<int>(workers.size());

  const double bin_ns = wall_ns / bins;
  report.bin_seconds = bin_ns * 1e-9;
  report.utilization_bins.assign(static_cast<std::size_t>(bins), 0.0);

  std::vector<Interval> all_busy;
  for (const auto& [tid, name] : workers) {
    WorkerRow row;
    row.tid = tid;
    row.name = name;
    row.timeline.assign(static_cast<std::size_t>(bins), 0.0);
    const auto it = busy.find(tid);
    if (it != busy.end()) {
      for (const Interval& iv : it->second) {
        row.busy_seconds += (iv.end - iv.begin) * 1e-9;
        all_busy.push_back(iv);
        for (int b = 0; b < bins; ++b) {
          row.timeline[static_cast<std::size_t>(b)] +=
              bin_overlap(iv, t0, bin_ns, b) / bin_ns;
        }
      }
    }
    const auto tasks_it = tasks_by_tid.find(tid);
    row.tasks = tasks_it == tasks_by_tid.end() ? 0 : tasks_it->second;
    row.utilization = row.busy_seconds / report.wall_seconds;
    for (int b = 0; b < bins; ++b) {
      const auto idx = static_cast<std::size_t>(b);
      row.timeline[idx] = std::min(row.timeline[idx], 1.0);
      report.utilization_bins[idx] += row.timeline[idx];
    }
    report.busy_seconds += row.busy_seconds;
    report.tasks += row.tasks;
    report.per_worker.push_back(std::move(row));
  }
  if (report.workers > 0) {
    for (double& frac : report.utilization_bins) frac /= report.workers;
    report.utilization =
        report.busy_seconds / (report.wall_seconds * report.workers);
  }
  report.covered_seconds = union_length(all_busy) * 1e-9;
  report.serial_fraction =
      std::clamp(1.0 - report.covered_seconds / report.wall_seconds, 0.0, 1.0);
  if (report.tasks > 0) {
    report.mean_task_seconds = report.busy_seconds / report.tasks;
  }

  // Rounds: foreman round spans; slack = spread of each worker's last finish.
  std::vector<LogEvent> round_begins;
  for (const LogEvent& e : log.events) {
    if (e.cat != "foreman" || e.name != "round") continue;
    if (e.ph == Phase::kBegin) {
      round_begins.push_back(e);
    } else if (e.ph == Phase::kEnd && !round_begins.empty()) {
      const LogEvent begin = round_begins.back();
      round_begins.pop_back();
      RoundRow row;
      row.round_id = event_arg(begin, "round").value_or(-1);
      row.begin_seconds = (begin.ts_ns - t0) * 1e-9;
      row.duration_seconds = (e.ts_ns - begin.ts_ns) * 1e-9;
      std::map<int, double> last_finish;
      for (const auto& [tid, intervals] : busy) {
        for (const Interval& iv : intervals) {
          if (iv.end >= begin.ts_ns && iv.end <= e.ts_ns) {
            ++row.tasks;
            auto [it, inserted] = last_finish.emplace(tid, iv.end);
            if (!inserted) it->second = std::max(it->second, iv.end);
          }
        }
      }
      if (last_finish.size() > 1) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const auto& [tid, ts] : last_finish) {
          lo = std::min(lo, ts);
          hi = std::max(hi, ts);
        }
        row.slack_seconds = (hi - lo) * 1e-9;
      }
      report.rounds.push_back(row);
    }
  }
  std::sort(report.rounds.begin(), report.rounds.end(),
            [](const RoundRow& a, const RoundRow& b) {
              return a.begin_seconds < b.begin_seconds;
            });

  // Task-time histogram (fixed log-ish bounds, seconds).
  report.task_hist_bounds = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                             1e-1, 3e-1, 1.0,  3.0};
  report.task_hist.assign(report.task_hist_bounds.size() + 1, 0);
  for (const double s : task_seconds) {
    const auto it = std::lower_bound(report.task_hist_bounds.begin(),
                                     report.task_hist_bounds.end(), s);
    ++report.task_hist[static_cast<std::size_t>(
        it - report.task_hist_bounds.begin())];
  }
  return report;
}

std::string render_report(const TraceReport& r) {
  std::ostringstream out;
  char buf[160];
  out << "== trace report ==\n";
  out << "wall time          " << format_seconds(r.wall_seconds) << "\n";
  out << "workers            " << r.workers << "\n";
  out << "tasks executed     " << r.tasks << "\n";
  out << "worker busy (sum)  " << format_seconds(r.busy_seconds) << "\n";
  std::snprintf(buf, sizeof buf, "parallel coverage  %s  (%.1f%% of wall)\n",
                format_seconds(r.covered_seconds).c_str(),
                100.0 * (1.0 - r.serial_fraction));
  out << buf;
  std::snprintf(buf, sizeof buf, "serial fraction    %.4f\n",
                r.serial_fraction);
  out << buf;
  std::snprintf(buf, sizeof buf, "aggregate util     %.1f%%\n",
                100.0 * r.utilization);
  out << buf;
  if (r.tasks > 0) {
    out << "mean task time     " << format_seconds(r.mean_task_seconds) << "\n";
  }
  std::snprintf(buf, sizeof buf, "queue depth        mean %.2f, max %lld\n",
                r.mean_queue_depth,
                static_cast<long long>(r.max_queue_depth));
  out << buf;
  if (r.batch_samples > 0 && r.batch_fill_hist.size() == 7) {
    std::snprintf(buf, sizeof buf,
                  "edge-batch fill    mean %.1f over %llu captures\n",
                  r.mean_batch_fill,
                  static_cast<unsigned long long>(r.batch_samples));
    out << buf;
    std::snprintf(
        buf, sizeof buf,
        "                   <=1:%llu <=2:%llu <=4:%llu <=8:%llu <=16:%llu "
        "<=32:%llu >32:%llu\n",
        static_cast<unsigned long long>(r.batch_fill_hist[0]),
        static_cast<unsigned long long>(r.batch_fill_hist[1]),
        static_cast<unsigned long long>(r.batch_fill_hist[2]),
        static_cast<unsigned long long>(r.batch_fill_hist[3]),
        static_cast<unsigned long long>(r.batch_fill_hist[4]),
        static_cast<unsigned long long>(r.batch_fill_hist[5]),
        static_cast<unsigned long long>(r.batch_fill_hist[6]));
    out << buf;
  }
  std::snprintf(buf, sizeof buf,
                "flow arcs          dispatched %llu, executed %llu, "
                "completed %llu\n",
                static_cast<unsigned long long>(r.flow_begins),
                static_cast<unsigned long long>(r.flow_steps),
                static_cast<unsigned long long>(r.flow_ends));
  out << buf;
  out << "dropped events     " << r.dropped_events << "\n";

  if (!r.per_worker.empty()) {
    out << "\nper-worker utilization (bin = "
        << format_seconds(r.bin_seconds) << ")\n";
    out << "  tid  name          busy       tasks   util   timeline\n";
    for (const WorkerRow& w : r.per_worker) {
      std::snprintf(buf, sizeof buf, "  %3d  %-12s  %-9s  %5llu  %5.1f%%  |",
                    w.tid, w.name.c_str(),
                    format_seconds(w.busy_seconds).c_str(),
                    static_cast<unsigned long long>(w.tasks),
                    100.0 * w.utilization);
      out << buf;
      for (const double frac : w.timeline) out << util_ramp(frac);
      out << "|\n";
    }
    out << "  all  workers" << std::string(32, ' ') << "|";
    for (const double frac : r.utilization_bins) out << util_ramp(frac);
    out << "|\n";
  }

  if (!r.rounds.empty()) {
    out << "\nrounds\n";
    out << "  round      t0         duration    tasks   slack\n";
    for (const RoundRow& round : r.rounds) {
      std::snprintf(buf, sizeof buf, "  %5lld  %-10s  %-10s  %5llu   %s\n",
                    static_cast<long long>(round.round_id),
                    format_seconds(round.begin_seconds).c_str(),
                    format_seconds(round.duration_seconds).c_str(),
                    static_cast<unsigned long long>(round.tasks),
                    format_seconds(round.slack_seconds).c_str());
      out << buf;
    }
  }

  if (r.tasks > 0) {
    out << "\ntask time histogram\n";
    for (std::size_t i = 0; i < r.task_hist.size(); ++i) {
      if (i < r.task_hist_bounds.size()) {
        std::snprintf(buf, sizeof buf, "  <= %-9s %llu\n",
                      format_seconds(r.task_hist_bounds[i]).c_str(),
                      static_cast<unsigned long long>(r.task_hist[i]));
      } else {
        std::snprintf(buf, sizeof buf, "   > %-9s %llu\n",
                      format_seconds(r.task_hist_bounds.back()).c_str(),
                      static_cast<unsigned long long>(r.task_hist[i]));
      }
      out << buf;
    }
  }
  return out.str();
}

ScalingRow scaling_row(const TraceReport& baseline, const TraceReport& run) {
  ScalingRow row;
  row.workers = run.workers;
  row.baseline_wall_seconds = baseline.wall_seconds;
  row.wall_seconds = run.wall_seconds;
  if (run.wall_seconds > 0.0) {
    row.speedup = baseline.wall_seconds / run.wall_seconds;
  }
  if (run.workers > 0) row.efficiency = row.speedup / run.workers;
  return row;
}

std::string render_scaling(const ScalingRow& row) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "scaling: %d workers, wall %s vs baseline %s -> speedup "
                "%.2fx, efficiency %.1f%%\n",
                row.workers, format_seconds(row.wall_seconds).c_str(),
                format_seconds(row.baseline_wall_seconds).c_str(), row.speedup,
                100.0 * row.efficiency);
  return buf;
}

TraceLog merge_trace_logs(const std::vector<TraceLog>& logs) {
  TraceLog merged;
  for (const auto& log : logs) {
    for (const auto& [tid, name] : log.threads) {
      // First name wins: a thread renamed mid-run keeps its original label.
      bool known = false;
      for (const auto& [existing, unused] : merged.threads) {
        if (existing == tid) {
          known = true;
          break;
        }
      }
      if (!known) merged.threads.emplace_back(tid, name);
    }
    merged.events.insert(merged.events.end(), log.events.begin(),
                         log.events.end());
    merged.dropped_events += log.dropped_events;
  }
  merged.sort_events();
  return merged;
}

}  // namespace fdml::obs
