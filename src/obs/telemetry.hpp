// The live telemetry plane (DESIGN.md §5i).
//
// Long fdmld runs host many concurrent searches for days; point-in-time
// stats queries only see the hub process's registry, and worker-rank kernel
// counters used to arrive only in the kGoodbye report at job end. This
// module makes the cluster observable *while it runs*:
//
//   - TelemetryEmitter: each rank periodically snapshots its local
//     MetricsRegistry, diffs it against the previous snapshot, and ships
//     the delta as a TelemetryFrame (kTelemetry on the fabric). Deltas keep
//     frames small and make rank-0 totals additive across emitter
//     incarnations — a revived foreman restarts its sequence under a fresh
//     incarnation id and the aggregate stays monotonic.
//   - TelemetryAggregator (rank 0): per-rank cumulative totals with
//     last-update staleness (a dead rank's series is *marked* stale, never
//     silently frozen), duplicate/out-of-order frame rejection, and bounded
//     time-series rings of cluster rollups.
//   - Prometheus text exposition: the aggregate, a raw MetricsSnapshot, and
//     per-job progress all render to the standard text format
//     (`fdmld --mode=scrape`, kMetricsQuery over the service wire).
//
// Layering: this lives in obs (below comm), so the codec speaks
// util/packer.hpp byte vectors; the kTelemetry tag and payload sealing
// belong to the call sites in parallel/ and service/.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/packer.hpp"

namespace fdml::obs {

/// Histogram delta carried by a frame: per-bucket increments plus the
/// count/sum increments, with the bounds repeated so the receiver can
/// materialize a histogram it has never seen.
struct HistogramDelta {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One periodic per-rank metrics delta. Counters/histograms are increments
/// since the previous frame; gauges are absolute (last-writer-wins).
struct TelemetryFrame {
  int rank = -1;
  /// Random per-emitter id: a restarted rank gets a new incarnation, which
  /// tells the aggregator "fresh sequence space", not "out of order".
  std::uint64_t incarnation = 0;
  /// 1-based, strictly increasing within an incarnation.
  std::uint64_t seq = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::vector<HistogramDelta> histograms;

  std::vector<std::uint8_t> pack() const;
  static TelemetryFrame unpack(Unpacker& in);
  static TelemetryFrame unpack(const std::vector<std::uint8_t>& payload);
};

/// Periodic delta producer over one rank's registry. Not thread-safe; owned
/// by the role loop that calls collect().
class TelemetryEmitter {
 public:
  /// `registry` must outlive the emitter.
  TelemetryEmitter(MetricsRegistry& registry, int rank);

  /// Snapshot, diff against the previous snapshot, return the delta frame.
  /// Frames with nothing changed still carry the next seq (they double as
  /// liveness beacons — an idle rank must not read as a dead one).
  TelemetryFrame collect();

  std::uint64_t incarnation() const { return incarnation_; }

 private:
  MetricsRegistry& registry_;
  int rank_;
  std::uint64_t incarnation_;
  std::uint64_t next_seq_ = 1;
  MetricsSnapshot last_;
};

struct TelemetryAggregatorOptions {
  /// A rank whose newest frame is older than this is reported stale.
  std::chrono::milliseconds stale_after{2000};
  /// Bounded rollup ring: newest `rollup_capacity` cluster samples.
  std::size_t rollup_capacity = 256;
};

/// What apply() decided about a frame.
enum class TelemetryApply {
  kApplied,
  kDuplicate,    ///< seq already seen for this incarnation
  kOutOfOrder,   ///< seq below the newest applied (delta dropped, counted)
};

/// Per-rank cumulative state as the exposition sees it.
struct RankTelemetry {
  int rank = -1;
  std::uint64_t incarnation = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t frames = 0;
  /// Frames from prior incarnations of this rank (revivals/restarts).
  std::uint64_t incarnations = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;
  bool stale = false;
  /// Milliseconds since the newest applied frame.
  std::int64_t age_ms = 0;
  std::map<std::string, std::uint64_t> counters;  // summed deltas
  std::map<std::string, std::int64_t> gauges;     // newest values
  std::vector<HistogramDelta> histograms;         // summed deltas
};

/// One cluster rollup sample (recorded per applied frame).
struct RollupSample {
  std::chrono::steady_clock::time_point at;
  int rank = -1;
  std::uint64_t counter_sum = 0;  // sum of the frame's counter deltas
};

/// Rank-0 aggregation of TelemetryFrames. Thread-safe: the fabric pump
/// applies frames while scrape handlers render.
class TelemetryAggregator {
 public:
  explicit TelemetryAggregator(TelemetryAggregatorOptions options = {});

  TelemetryApply apply(const TelemetryFrame& frame,
                       std::chrono::steady_clock::time_point now =
                           std::chrono::steady_clock::now());

  /// Per-rank state with staleness evaluated at `now`, rank-ordered.
  std::vector<RankTelemetry> ranks(std::chrono::steady_clock::time_point now =
                                       std::chrono::steady_clock::now()) const;

  /// Cluster totals: every rank's counters summed.
  std::map<std::string, std::uint64_t> cluster_counters() const;

  /// Newest rollup samples, oldest first (bounded by rollup_capacity).
  std::vector<RollupSample> rollups() const;

  std::uint64_t frames_applied() const;
  std::uint64_t frames_dropped() const;  // duplicates + out-of-order

  const TelemetryAggregatorOptions& options() const { return options_; }

 private:
  struct RankState {
    std::uint64_t incarnation = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t frames = 0;
    std::uint64_t incarnations = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t out_of_order = 0;
    std::chrono::steady_clock::time_point last_update{};
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramDelta> histograms;
  };

  TelemetryAggregatorOptions options_;
  mutable std::mutex mutex_;
  std::map<int, RankState> ranks_;
  std::deque<RollupSample> rollups_;
  std::uint64_t applied_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Per-job search progress as the exposition reports it (filled by the
/// scheduler from its ProgressProbes).
struct JobProgressRow {
  std::uint64_t job_id = 0;
  /// "addition" | "rearrange" | "idle" (not yet started).
  std::string phase;
  int taxa_in_tree = 0;
  int round = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_total = 0;
  double best_log_likelihood = 0.0;
  bool has_best = false;
  std::uint64_t checkpoint_generation = 0;
};

/// --- Prometheus text exposition ---------------------------------------

/// Sanitizes to [a-zA-Z_:][a-zA-Z0-9_:]* ('.' and any other invalid byte
/// become '_'; a leading digit gets a '_' prefix).
std::string prometheus_name(std::string_view raw);

/// Escapes a label value per the text format: backslash, double quote and
/// newline.
std::string prometheus_escape_label(std::string_view raw);

/// Renders one process-local snapshot. Metric names get `prefix` + the
/// sanitized name; histograms emit cumulative `_bucket{le=...}` rows ending
/// in `+Inf`, plus `_sum` and `_count`. `labels` (e.g. `rank="0"`) is
/// attached verbatim to every sample; pass "" for none.
std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const std::string& prefix = "fdml_",
                          const std::string& labels = "");

/// Renders the cluster aggregate: per-rank counter/gauge/histogram series
/// labelled {rank="N"}, plus fdml_rank_stale / fdml_rank_age_ms /
/// fdml_rank_frames liveness series and fdml_telemetry_* aggregator
/// counters.
std::string to_prometheus(const TelemetryAggregator& aggregator,
                          std::chrono::steady_clock::time_point now =
                              std::chrono::steady_clock::now());

/// Renders per-job progress series labelled {job="N"}.
std::string to_prometheus(const std::vector<JobProgressRow>& jobs);

/// One-object-per-line JSON rows for the extended kStatsQuery reply (same
/// dialect as MetricsSnapshot::to_json, without the surrounding brackets).
std::string job_progress_json(const std::vector<JobProgressRow>& jobs);

}  // namespace fdml::obs
