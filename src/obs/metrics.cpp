#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fdml::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [name, value] : counters) {
    sep();
    out << "{\"kind\":\"counter\",\"name\":\"" << name << "\",\"value\":" << value
        << "}";
  }
  for (const auto& [name, value] : gauges) {
    sep();
    out << "{\"kind\":\"gauge\",\"name\":\"" << name << "\",\"value\":" << value
        << "}";
  }
  for (const auto& hist : histograms) {
    sep();
    out << "{\"kind\":\"histogram\",\"name\":\"" << hist.name
        << "\",\"count\":" << hist.count << ",\"sum\":" << hist.sum
        << ",\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i) out << ",";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9g", hist.bounds[i]);
      out << buf;
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i) out << ",";
      out << hist.buckets[i];
    }
    out << "]}";
  }
  out << "\n]\n";
  return out.str();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) snap.counters[name] = cell->value();
  for (const auto& [name, cell] : gauges_) snap.gauges[name] = cell->value();
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = hist->bounds();
    hs.buckets.resize(hist->bucket_count());
    for (std::size_t i = 0; i < hs.buckets.size(); ++i) {
      hs.buckets[i] = hist->bucket(i);
    }
    hs.count = hist->count();
    hs.sum = hist->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::process() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fdml::obs
