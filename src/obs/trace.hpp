// Low-overhead span tracer. Roles record begin/end/instant/flow events into
// per-thread ring buffers; a drain merges them into a TraceLog that can be
// written as Chrome trace_event JSON (chrome://tracing, Perfetto) or fed to
// the report generator (obs/report.hpp).
//
// Cost contract: tracing is off by default and every recording call site is
// guarded by a single relaxed atomic load (trace_enabled()), so instrumented
// hot paths pay ~1ns when disabled — bench_kernels measures and enforces
// this (<2% of the dominant kernel's per-call time). When enabled, an event
// is one stamp + one uncontended per-thread mutex'd ring write (~tens of ns),
// cheap at span granularity (tasks, rounds, batches — never per pattern).
//
// Ring overflow keeps the NEWEST events (oldest are overwritten) and counts
// the drops, so the tail of a run — usually what you are debugging — always
// survives.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fdml::obs {

/// Chrome trace_event phases (the subset we emit).
enum class Phase : char {
  kBegin = 'B',
  kEnd = 'E',
  kInstant = 'i',
  kFlowBegin = 's',
  kFlowStep = 't',
  kFlowEnd = 'f',
  kCounter = 'C',
};

/// One runtime event. `cat`/`name`/arg names must be string literals (or
/// otherwise immortal) — the ring stores the pointers, not copies.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  Phase ph = Phase::kInstant;
  std::uint64_t ts_ns = 0;  // 0 = stamp with monotonic_ns() at record time
  std::uint64_t id = 0;     // flow-arc binding (s/t/f share one id)
  const char* arg0_name = nullptr;
  std::int64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
};

/// Drained/loaded/simulated trace: owned strings, events sorted by time.
/// This is the common currency of the live tracer, the simulator (which
/// fills one directly with virtual timestamps), and the report generator.
struct LogEvent {
  int tid = 0;
  Phase ph = Phase::kInstant;
  double ts_ns = 0.0;
  std::uint64_t id = 0;
  std::string cat;
  std::string name;
  std::string arg0_name;  // empty = absent
  std::int64_t arg0 = 0;
  std::string arg1_name;
  std::int64_t arg1 = 0;
};

struct TraceLog {
  /// tid -> display name ("master", "foreman", "worker-3", ...).
  std::vector<std::pair<int, std::string>> threads;
  std::vector<LogEvent> events;
  std::uint64_t dropped_events = 0;

  void set_thread(int tid, std::string name);
  LogEvent& add(int tid, Phase ph, double ts_ns, std::string cat,
                std::string name, std::uint64_t id = 0);
  /// Stable-sorts events by timestamp (analysis assumes time order).
  void sort_events();

  /// Chrome trace_event JSON ({"traceEvents":[...]}, ts in microseconds).
  void write_chrome(std::ostream& out) const;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// The one check every instrumentation site pays when tracing is off.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  /// Starts recording. `events_per_thread` bounds each thread's ring.
  void enable(std::size_t events_per_thread = 1 << 16);
  /// Stops recording; buffered events stay drainable.
  void disable();
  /// Clears buffered events and drop counts (enabled state unchanged).
  void reset();

  /// Names the calling thread in the trace and mirrors the label into the
  /// logger so log lines and trace rows agree. Safe to call when disabled.
  void set_thread_name(std::string name);

  /// Records one event (no-op when disabled). Stamps ts_ns if zero.
  void record(TraceEvent event);

  /// Merged snapshot of all rings, sorted by timestamp.
  TraceLog drain() const;

  /// Like drain(), but consumes: ring contents and drop counts are cleared
  /// (drops transfer into the returned log's dropped_events). This is what
  /// the rotating segment writer calls — each event lands in exactly one
  /// segment.
  TraceLog drain_and_reset();

  std::uint64_t dropped() const;

  static Tracer& instance();

  /// Implementation detail (public so the thread-local registration cache
  /// in trace.cpp can name it); not part of the recording API.
  struct Ring {
    std::mutex mutex;
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> slots;
    std::size_t head = 0;  // oldest
    std::size_t size = 0;
    std::uint64_t dropped = 0;
  };

 private:
  Ring& local_ring();

  mutable std::mutex mutex_;  // guards rings_ vector and capacity_
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = 1 << 16;
};

/// --- Convenience recording API (all one relaxed load when disabled) ---

/// Names the calling thread for traces *and* log lines.
void set_thread_name(std::string name);

inline void emit(const TraceEvent& event) {
  if (trace_enabled()) Tracer::instance().record(event);
}

inline void instant(const char* cat, const char* name,
                    const char* arg0_name = nullptr, std::int64_t arg0 = 0,
                    const char* arg1_name = nullptr, std::int64_t arg1 = 0) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ph = Phase::kInstant;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  Tracer::instance().record(e);
}

/// Flow arc linking a task's dispatch (s, foreman) -> execute (t, worker)
/// -> result accept (f, foreman) across threads.
inline void flow(Phase ph, std::uint64_t id,
                 const char* arg0_name = nullptr, std::int64_t arg0 = 0) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.cat = "flow";
  e.name = "task";
  e.ph = ph;
  e.id = id;
  e.arg0_name = arg0_name;
  e.arg0 = arg0;
  Tracer::instance().record(e);
}

/// Counter track (e.g. foreman queue depth over time).
inline void counter(const char* name, std::int64_t value) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.cat = "counter";
  e.name = name;
  e.ph = Phase::kCounter;
  e.arg0_name = "value";
  e.arg0 = value;
  Tracer::instance().record(e);
}

/// Stable flow id for a (round, task) pair; collision-scrambled so ids from
/// different rounds never alias in the viewer.
inline std::uint64_t task_flow_id(std::uint64_t round_id,
                                  std::uint64_t task_id) {
  // Full avalanche (murmur-style finalizer): simulated traces reuse small
  // task indices every round, so weak mixing collides across rounds.
  std::uint64_t h = (task_id + 1) * 0x9E3779B97F4A7C15ull;
  h ^= (round_id + 1) * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return h | 1;  // never 0 (0 reads as "no flow")
}

/// RAII duration span: B on construction, E on destruction. Args given at
/// construction ride on the B event; set_end_args() attaches results (e.g.
/// kernel-counter deltas) to the E event.
class Span {
 public:
  Span(const char* cat, const char* name,
       const char* arg0_name = nullptr, std::int64_t arg0 = 0,
       const char* arg1_name = nullptr, std::int64_t arg1 = 0) {
    if (trace_enabled()) start(cat, name, arg0_name, arg0, arg1_name, arg1);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) finish();
  }

  void set_end_args(const char* arg0_name, std::int64_t arg0,
                    const char* arg1_name = nullptr, std::int64_t arg1 = 0) {
    end_arg0_name_ = arg0_name;
    end_arg0_ = arg0;
    end_arg1_name_ = arg1_name;
    end_arg1_ = arg1;
  }

 private:
  void start(const char* cat, const char* name, const char* arg0_name,
             std::int64_t arg0, const char* arg1_name, std::int64_t arg1);
  void finish();

  bool active_ = false;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  const char* end_arg0_name_ = nullptr;
  std::int64_t end_arg0_ = 0;
  const char* end_arg1_name_ = nullptr;
  std::int64_t end_arg1_ = 0;
};

}  // namespace fdml::obs
