#include "obs/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace fdml::obs {

namespace {

// Formats a double the way the Prometheus text format expects: shortest
// round-trip decimal, never locale-dependent.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t fresh_incarnation(int rank) {
  // Uniqueness across restarts of the same rank is what matters; mixing a
  // monotonic per-process counter with the boot-relative clock makes a
  // revived role's id differ from its predecessor even across a fast
  // exec-respawn on the same host.
  static std::atomic<std::uint64_t> ordinal{0};
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  std::uint64_t id = static_cast<std::uint64_t>(now);
  id ^= ordinal.fetch_add(1, std::memory_order_relaxed) << 48;
  id ^= static_cast<std::uint64_t>(rank) << 40;
  return id == 0 ? 1 : id;
}

}  // namespace

// --- TelemetryFrame codec -------------------------------------------------

std::vector<std::uint8_t> TelemetryFrame::pack() const {
  Packer out;
  out.put_i32(rank);
  out.put_u64(incarnation);
  out.put_u64(seq);
  out.put_u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    out.put_string(name);
    out.put_u64(value);
  }
  out.put_u32(static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    out.put_string(name);
    out.put_i64(value);
  }
  out.put_u32(static_cast<std::uint32_t>(histograms.size()));
  for (const auto& h : histograms) {
    out.put_string(h.name);
    out.put_f64_vector(h.bounds);
    out.put_u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (std::uint64_t b : h.buckets) out.put_u64(b);
    out.put_u64(h.count);
    out.put_f64(h.sum);
  }
  return out.take();
}

TelemetryFrame TelemetryFrame::unpack(Unpacker& in) {
  TelemetryFrame frame;
  frame.rank = in.get_i32();
  frame.incarnation = in.get_u64();
  frame.seq = in.get_u64();

  const std::uint32_t n_counters = in.get_u32();
  // Each entry is at least a string length prefix (4) + a u64 (8).
  in.require_count(n_counters, 12);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::string name = in.get_string();
    frame.counters[std::move(name)] = in.get_u64();
  }

  const std::uint32_t n_gauges = in.get_u32();
  in.require_count(n_gauges, 12);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    std::string name = in.get_string();
    frame.gauges[std::move(name)] = in.get_i64();
  }

  const std::uint32_t n_histograms = in.get_u32();
  // name prefix (4) + bounds prefix (4) + bucket prefix (4) + count (8) +
  // sum (8) even for an empty histogram.
  in.require_count(n_histograms, 28);
  frame.histograms.reserve(n_histograms);
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    HistogramDelta h;
    h.name = in.get_string();
    h.bounds = in.get_f64_vector();
    const std::uint32_t n_buckets = in.get_u32();
    in.require_count(n_buckets, 8);
    h.buckets.reserve(n_buckets);
    for (std::uint32_t b = 0; b < n_buckets; ++b) h.buckets.push_back(in.get_u64());
    h.count = in.get_u64();
    h.sum = in.get_f64();
    frame.histograms.push_back(std::move(h));
  }
  return frame;
}

TelemetryFrame TelemetryFrame::unpack(const std::vector<std::uint8_t>& payload) {
  Unpacker in(payload);
  return unpack(in);
}

// --- TelemetryEmitter -----------------------------------------------------

TelemetryEmitter::TelemetryEmitter(MetricsRegistry& registry, int rank)
    : registry_(registry), rank_(rank), incarnation_(fresh_incarnation(rank)) {}

TelemetryFrame TelemetryEmitter::collect() {
  MetricsSnapshot now = registry_.snapshot();

  TelemetryFrame frame;
  frame.rank = rank_;
  frame.incarnation = incarnation_;
  frame.seq = next_seq_++;

  for (const auto& [name, value] : now.counters) {
    const auto it = last_.counters.find(name);
    const std::uint64_t prev = it == last_.counters.end() ? 0 : it->second;
    if (value > prev) frame.counters[name] = value - prev;
  }
  // Gauges ship absolute: a delta of a point-in-time value is meaningless.
  frame.gauges = now.gauges;
  for (const auto& h : now.histograms) {
    const HistogramSnapshot* prev = nullptr;
    for (const auto& p : last_.histograms) {
      if (p.name == h.name) { prev = &p; break; }
    }
    if (prev != nullptr && prev->count == h.count) continue;  // unchanged
    HistogramDelta d;
    d.name = h.name;
    d.bounds = h.bounds;
    d.buckets.resize(h.buckets.size(), 0);
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::uint64_t before =
          prev != nullptr && i < prev->buckets.size() ? prev->buckets[i] : 0;
      d.buckets[i] = h.buckets[i] - before;
    }
    d.count = h.count - (prev != nullptr ? prev->count : 0);
    d.sum = h.sum - (prev != nullptr ? prev->sum : 0.0);
    frame.histograms.push_back(std::move(d));
  }

  last_ = std::move(now);
  return frame;
}

// --- TelemetryAggregator --------------------------------------------------

TelemetryAggregator::TelemetryAggregator(TelemetryAggregatorOptions options)
    : options_(options) {}

TelemetryApply TelemetryAggregator::apply(
    const TelemetryFrame& frame, std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  RankState& state = ranks_[frame.rank];

  if (state.incarnation != frame.incarnation) {
    // A fresh incarnation (revived role, brand-new registry) restarts the
    // sequence space but keeps ADDING to the rank's totals — the aggregate
    // stays monotonic across revival, which is what Prometheus counters
    // promise.
    if (state.incarnation != 0) ++state.incarnations;
    state.incarnation = frame.incarnation;
    state.last_seq = 0;
  } else if (frame.seq == state.last_seq) {
    ++state.duplicates;
    ++dropped_;
    return TelemetryApply::kDuplicate;
  } else if (frame.seq < state.last_seq) {
    ++state.out_of_order;
    ++dropped_;
    return TelemetryApply::kOutOfOrder;
  }

  state.last_seq = frame.seq;
  ++state.frames;
  state.last_update = now;
  ++applied_;

  std::uint64_t delta_sum = 0;
  for (const auto& [name, delta] : frame.counters) {
    state.counters[name] += delta;
    delta_sum += delta;
  }
  for (const auto& [name, value] : frame.gauges) state.gauges[name] = value;
  for (const auto& d : frame.histograms) {
    HistogramDelta& total = state.histograms[d.name];
    if (total.name.empty()) {
      total = d;
    } else {
      if (total.buckets.size() < d.buckets.size()) {
        total.buckets.resize(d.buckets.size(), 0);
      }
      for (std::size_t i = 0; i < d.buckets.size(); ++i) {
        total.buckets[i] += d.buckets[i];
      }
      total.count += d.count;
      total.sum += d.sum;
    }
  }

  rollups_.push_back(RollupSample{now, frame.rank, delta_sum});
  while (rollups_.size() > options_.rollup_capacity) rollups_.pop_front();
  return TelemetryApply::kApplied;
}

std::vector<RankTelemetry> TelemetryAggregator::ranks(
    std::chrono::steady_clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RankTelemetry> out;
  out.reserve(ranks_.size());
  for (const auto& [rank, state] : ranks_) {
    RankTelemetry row;
    row.rank = rank;
    row.incarnation = state.incarnation;
    row.last_seq = state.last_seq;
    row.frames = state.frames;
    row.incarnations = state.incarnations;
    row.duplicates = state.duplicates;
    row.out_of_order = state.out_of_order;
    const auto age = now - state.last_update;
    row.age_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(age).count();
    row.stale = age > options_.stale_after;
    row.counters = state.counters;
    row.gauges = state.gauges;
    row.histograms.reserve(state.histograms.size());
    for (const auto& [name, h] : state.histograms) row.histograms.push_back(h);
    out.push_back(std::move(row));
  }
  return out;
}

std::map<std::string, std::uint64_t> TelemetryAggregator::cluster_counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [rank, state] : ranks_) {
    for (const auto& [name, value] : state.counters) out[name] += value;
  }
  return out;
}

std::vector<RollupSample> TelemetryAggregator::rollups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<RollupSample>(rollups_.begin(), rollups_.end());
}

std::uint64_t TelemetryAggregator::frames_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_;
}

std::uint64_t TelemetryAggregator::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

// --- Prometheus text exposition -------------------------------------------

std::string prometheus_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':') {
      out.push_back(c);
    } else if (digit) {
      if (i == 0) out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string braced(const std::string& labels) {
  return labels.empty() ? std::string() : "{" + labels + "}";
}

void render_histogram(std::ostringstream& out, const std::string& name,
                      const std::string& labels,
                      const std::vector<double>& bounds,
                      const std::vector<std::uint64_t>& buckets,
                      std::uint64_t count, double sum) {
  // Buckets are stored disjoint; the text format wants cumulative counts
  // ending in the catch-all +Inf bucket.
  std::uint64_t cumulative = 0;
  const std::string sep = labels.empty() ? "" : ",";
  for (std::size_t i = 0; i < bounds.size() && i < buckets.size(); ++i) {
    cumulative += buckets[i];
    out << name << "_bucket{" << labels << sep
        << "le=\"" << format_double(bounds[i]) << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{" << labels << sep << "le=\"+Inf\"} " << count
      << "\n";
  out << name << "_sum" << braced(labels) << " " << format_double(sum) << "\n";
  out << name << "_count" << braced(labels) << " " << count << "\n";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const std::string& prefix,
                          const std::string& labels) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << prefix << prometheus_name(name) << braced(labels) << " " << value
        << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << prefix << prometheus_name(name) << braced(labels) << " " << value
        << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    render_histogram(out, prefix + prometheus_name(h.name), labels, h.bounds,
                     h.buckets, h.count, h.sum);
  }
  return out.str();
}

std::string to_prometheus(const TelemetryAggregator& aggregator,
                          std::chrono::steady_clock::time_point now) {
  std::ostringstream out;
  const auto ranks = aggregator.ranks(now);
  for (const auto& row : ranks) {
    const std::string labels = "rank=\"" + std::to_string(row.rank) + "\"";
    out << "fdml_rank_stale{" << labels << "} " << (row.stale ? 1 : 0) << "\n";
    out << "fdml_rank_age_ms{" << labels << "} " << row.age_ms << "\n";
    out << "fdml_rank_frames{" << labels << "} " << row.frames << "\n";
    out << "fdml_rank_incarnations{" << labels << "} " << row.incarnations
        << "\n";
    for (const auto& [name, value] : row.counters) {
      out << "fdml_" << prometheus_name(name) << "{" << labels << "} " << value
          << "\n";
    }
    for (const auto& [name, value] : row.gauges) {
      out << "fdml_" << prometheus_name(name) << "{" << labels << "} " << value
          << "\n";
    }
    for (const auto& h : row.histograms) {
      render_histogram(out, "fdml_" + prometheus_name(h.name), labels,
                       h.bounds, h.buckets, h.count, h.sum);
    }
  }
  out << "fdml_telemetry_frames_applied " << aggregator.frames_applied()
      << "\n";
  out << "fdml_telemetry_frames_dropped " << aggregator.frames_dropped()
      << "\n";
  return out.str();
}

std::string to_prometheus(const std::vector<JobProgressRow>& jobs) {
  std::ostringstream out;
  for (const auto& job : jobs) {
    const std::string labels = "job=\"" + std::to_string(job.job_id) + "\"";
    out << "fdml_job_phase{" << labels << ",phase=\""
        << prometheus_escape_label(job.phase) << "\"} 1\n";
    out << "fdml_job_taxa_in_tree{" << labels << "} " << job.taxa_in_tree
        << "\n";
    out << "fdml_job_round{" << labels << "} " << job.round << "\n";
    out << "fdml_job_tasks_done{" << labels << "} " << job.tasks_done << "\n";
    out << "fdml_job_tasks_total{" << labels << "} " << job.tasks_total
        << "\n";
    if (job.has_best) {
      out << "fdml_job_best_log_likelihood{" << labels << "} "
          << format_double(job.best_log_likelihood) << "\n";
    }
    out << "fdml_job_checkpoint_generation{" << labels << "} "
        << job.checkpoint_generation << "\n";
  }
  return out.str();
}

std::string job_progress_json(const std::vector<JobProgressRow>& jobs) {
  std::ostringstream out;
  for (const auto& job : jobs) {
    out << "{\"kind\":\"job_progress\",\"job\":" << job.job_id << ",\"phase\":\""
        << job.phase << "\",\"taxa_in_tree\":" << job.taxa_in_tree
        << ",\"round\":" << job.round << ",\"tasks_done\":" << job.tasks_done
        << ",\"tasks_total\":" << job.tasks_total;
    if (job.has_best) {
      out << ",\"best_lnl\":" << format_double(job.best_log_likelihood);
    }
    out << ",\"checkpoint_generation\":" << job.checkpoint_generation
        << "}\n";
  }
  return out.str();
}

}  // namespace fdml::obs
