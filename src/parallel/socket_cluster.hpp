// Multi-process deployment of the paper's process layout: each OS process
// owns exactly one rank of a SocketFabric and runs that rank's role loop.
// The protocol, codecs and health machine are byte-for-byte the ones the
// in-process backends run — only the Transport underneath changed, which is
// the paper's whole argument for the comm seam.
//
//   rank 0  master   (SocketCluster: fabric hub + ParallelMaster + search)
//   rank 1  foreman  (run_socket_role -> foreman_main)
//   rank 2  monitor  (run_socket_role -> monitor_main)
//   rank 3+ workers  (run_socket_role -> worker_main)
//
// scripts/launch_cluster.sh stands up all ranks of a run and is what the
// multiprocess CI job drives.
#pragma once

#include <chrono>
#include <memory>
#include <optional>

#include "comm/socket.hpp"
#include "obs/telemetry.hpp"
#include "parallel/foreman.hpp"
#include "parallel/master.hpp"
#include "parallel/monitor.hpp"
#include "parallel/worker.hpp"
#include "search/runner.hpp"

namespace fdml {

struct SocketRunOptions {
  SocketOptions socket;
  ForemanOptions foreman;
  MasterOptions master;
  OptimizeOptions optimize;
  /// Telemetry plane period for this rank's emitter (foreman and workers);
  /// zero disables. The hub's aggregator marks a rank stale after
  /// ~2 periods of silence.
  std::chrono::milliseconds telemetry_interval{0};
};

/// What a non-master rank's role loop produced (only the member matching
/// the rank is meaningful; the app prints it as the process's exit summary).
struct SocketRoleResult {
  int rank = -1;
  std::optional<ForemanStats> foreman;
  std::optional<WorkerStats> worker;
  std::optional<MonitorReport> monitor;
};

/// Runs the role loop for options.socket.rank (>= 1) over its own
/// SocketFabric, blocking until the fabric shuts down. Throws on rendezvous
/// failure.
SocketRoleResult run_socket_role(const PatternAlignment& data,
                                 const SubstModel& model, const RateModel& rates,
                                 const SocketRunOptions& options);

/// The master process's side: fabric hub + ParallelMaster, exposed as a
/// TaskRunner so StepwiseSearch runs unchanged over TCP. Mirrors
/// InProcessCluster's shape minus the role threads (those are other
/// processes now) and minus the reviver (a remote foreman cannot be
/// restarted from here; the master's serial fallback still absorbs a dead
/// fabric).
class SocketCluster {
 public:
  /// `data` must outlive the cluster. Binds the hub port; peers may
  /// rendezvous from then on.
  SocketCluster(const PatternAlignment& data, SubstModel model, RateModel rates,
                SocketRunOptions options);
  ~SocketCluster();

  SocketCluster(const SocketCluster&) = delete;
  SocketCluster& operator=(const SocketCluster&) = delete;

  TaskRunner& runner() { return *master_; }
  int num_workers() const;

  /// Blocks until every rank has joined the fabric.
  bool wait_ready(std::chrono::milliseconds timeout);

  MasterStats master_stats() const { return master_->stats(); }
  SocketFabricStats fabric_stats() const { return fabric_.stats(); }

  /// The hub-side aggregate of every rank's kTelemetry frames (empty until
  /// emitters are enabled via telemetry_interval).
  obs::TelemetryAggregator& telemetry() { return telemetry_; }
  const obs::TelemetryAggregator& telemetry() const { return telemetry_; }

  /// Drains queued fabric messages (telemetry frames) while no round is in
  /// flight; the serve loop calls this on its tick. Returns messages drained.
  std::size_t pump_telemetry() { return master_->pump(); }

  /// Broadcasts shutdown through the foreman, keeps routing until the peer
  /// processes have drained off the fabric, then closes it. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  SocketRunOptions options_;
  SocketFabric fabric_;
  std::unique_ptr<Transport> endpoint_;
  std::unique_ptr<ParallelMaster> master_;
  std::unique_ptr<SerialTaskRunner> serial_fallback_;
  obs::TelemetryAggregator telemetry_;
  bool shut_down_ = false;
};

}  // namespace fdml
