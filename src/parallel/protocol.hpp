// Payload codecs for the parallel runtime's messages.
#pragma once

#include <cstdint>
#include <vector>

#include "search/runner.hpp"
#include "search/task.hpp"
#include "util/packer.hpp"

namespace fdml {

/// Fixed rank layout (paper Figure 2): master generates and compares trees,
/// foreman owns the work/ready queues, monitor instruments, workers
/// optimize. "The fully instrumented parallel version of fastDNAml requires
/// a minimum of four processors."
inline constexpr int kMasterRank = 0;
inline constexpr int kForemanRank = 1;
inline constexpr int kMonitorRank = 2;
inline constexpr int kFirstWorkerRank = 3;

/// master -> foreman: one round of candidate trees.
struct RoundMessage {
  std::uint64_t round_id = 0;
  std::vector<TreeTask> tasks;

  std::vector<std::uint8_t> pack() const;
  static RoundMessage unpack(const std::vector<std::uint8_t>& payload);
};

/// foreman -> master: the round's best tree plus per-task accounting.
struct RoundDoneMessage {
  std::uint64_t round_id = 0;
  TaskResult best;
  std::vector<TaskStat> stats;

  std::vector<std::uint8_t> pack() const;
  static RoundDoneMessage unpack(const std::vector<std::uint8_t>& payload);
};

/// foreman -> master: round liveness heartbeat, sent on every accepted task
/// so the master's watchdog can tell "slow" from "wedged".
struct ProgressMessage {
  std::uint64_t round_id = 0;
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;

  std::vector<std::uint8_t> pack() const;
  static ProgressMessage unpack(const std::vector<std::uint8_t>& payload);
};

/// foreman -> master: the round cannot complete (e.g. every worker is
/// delinquent); the master degrades to in-process evaluation or raises a
/// structured error instead of blocking forever.
struct RoundFailedMessage {
  std::uint64_t round_id = 0;
  std::string reason;

  std::vector<std::uint8_t> pack() const;
  static RoundFailedMessage unpack(const std::vector<std::uint8_t>& payload);
};

/// foreman -> monitor: instrumentation events.
enum class MonitorEventKind : std::uint8_t {
  kRoundBegin = 1,
  kDispatch = 2,
  kComplete = 3,
  kRequeue = 4,
  kDelinquent = 5,
  kReinstate = 6,
  kRoundEnd = 7,
  /// Malformed payload detected (worker = quarantined sender, or -1).
  kCorrupt = 8,
  /// A suspect worker re-entered via the probation queue.
  kProbation = 9,
  /// Probation probe completed within its deadline; worker is healthy again.
  kProbePass = 10,
  /// Probation probe timed out; worker is suspect again, backoff doubled.
  kProbeFail = 11,
  /// A worker reported its task payload arrived malformed.
  kNack = 12,
  /// The foreman declared the round unfinishable (all workers dead).
  kRoundFailed = 13,
};

/// Static display name for a monitor event kind ("dispatch", "probation",
/// ...); "unknown" for values outside the enum. Used by the trace
/// instant-events so a chaos schedule is readable in the timeline.
const char* monitor_event_kind_name(MonitorEventKind kind);

/// worker -> foreman (kGoodbye): end-of-run self-report sent when the worker
/// sees kShutdown, so the final report can attribute kernel work (CLV
/// combines, cache behaviour) per worker instead of only foreman-visible
/// queue stats.
struct WorkerReportMessage {
  int worker = -1;
  std::uint64_t tasks_evaluated = 0;
  double cpu_seconds = 0.0;
  std::uint64_t corrupt_tasks = 0;
  /// Cumulative engine counters for the worker's whole life (KernelCounters).
  std::uint64_t clv_computations = 0;
  std::uint64_t clv_rescales = 0;
  std::uint64_t edge_captures = 0;
  std::uint64_t edge_evaluations = 0;
  std::uint64_t transition_hits = 0;
  std::uint64_t transition_misses = 0;
  std::uint64_t transition_evictions = 0;

  std::vector<std::uint8_t> pack() const;
  static WorkerReportMessage unpack(const std::vector<std::uint8_t>& payload);
};

struct MonitorEvent {
  MonitorEventKind kind = MonitorEventKind::kDispatch;
  std::uint64_t round_id = 0;
  std::uint64_t task_id = 0;
  int worker = -1;
  /// Seconds since the foreman started (event ordering / slack analysis).
  double at_seconds = 0.0;
  /// Worker CPU seconds (kComplete only).
  double cpu_seconds = 0.0;

  std::vector<std::uint8_t> pack() const;
  static MonitorEvent unpack(const std::vector<std::uint8_t>& payload);
};

}  // namespace fdml
