// InProcessCluster: stands up the paper's full process layout — master
// (the calling thread), foreman, monitor and N workers — over the
// in-process thread fabric, and exposes the master side as a TaskRunner so
// StepwiseSearch runs unchanged on top of it. This is the substitution for
// the paper's MPI runs on the RS/6000 SP: the identical protocol executes
// for real, with threads standing in for hosts (see DESIGN.md).
//
// The cluster can also run under fault injection: set
// ClusterOptions::chaos and every worker endpoint is wrapped in a
// ChaosTransport driven by that plan (each rank sees its own reproducible
// fault lane). When the fabric degrades past recovery the master falls
// back to an in-process SerialTaskRunner, so a chaos run always produces
// an answer.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "comm/chaos.hpp"
#include "comm/transport.hpp"
#include "obs/metrics.hpp"
#include "parallel/foreman.hpp"
#include "parallel/master.hpp"
#include "parallel/monitor.hpp"
#include "parallel/worker.hpp"
#include "search/runner.hpp"

namespace fdml {

struct ClusterOptions {
  int num_workers = 1;
  ForemanOptions foreman;
  MasterOptions master;
  OptimizeOptions optimize;
  /// Fault-inject every worker's transport with this plan (the plan seed
  /// plus the worker's rank keys its independent fault schedule).
  std::optional<FaultPlan> chaos;
  /// Fault-inject the foreman's transport (first incarnation only — a
  /// revived foreman runs clean). crash_after_sends kills the foreman
  /// deterministically, which is how the crash-recovery tests exercise
  /// revive_foreman() and the journal replay path.
  std::optional<FaultPlan> chaos_foreman;
  /// Optional per-worker transport decorator (custom fault injection in
  /// tests): given the worker rank and its endpoint — already chaos-wrapped
  /// when `chaos` is set — return the endpoint the worker should use.
  std::function<std::unique_ptr<Transport>(int, std::unique_ptr<Transport>)>
      wrap_worker_transport;
};

class InProcessCluster {
 public:
  /// `data` must outlive the cluster.
  InProcessCluster(const PatternAlignment& data, SubstModel model,
                   RateModel rates, ClusterOptions options);
  ~InProcessCluster();

  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  /// Master-side runner; rounds dispatched here flow master -> foreman ->
  /// workers and back (or through the serial fallback when the fabric is
  /// beyond recovery).
  TaskRunner& runner();

  int num_workers() const { return options_.num_workers; }

  /// Live instrumentation (thread-safe snapshot).
  MonitorReport monitor_report() const { return board_.snapshot(); }
  /// Foreman counters; valid after shutdown().
  const ForemanStats& foreman_stats() const { return foreman_stats_; }
  /// Master-side counters (watchdog trips, failed rounds, fallbacks).
  MasterStats master_stats() const { return master_->stats(); }
  /// Aggregate fault-injection counters; non-null iff options.chaos is set.
  std::shared_ptr<const ChaosTotals> chaos_totals() const { return chaos_totals_; }

  std::uint64_t fabric_messages() const { return fabric_.messages_sent(); }
  std::uint64_t fabric_bytes() const { return fabric_.bytes_sent(); }

  /// The registry every role's counters live in (master, foreman, kernel
  /// and per-worker totals). Role stats structs above are delta views over
  /// it; this is the cumulative whole-run truth.
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  /// Sends shutdown and joins every role thread (idempotent; the
  /// destructor calls it).
  void shutdown();

  /// Process-level crash recovery: if the foreman thread has died, join it
  /// and start a fresh incarnation on a new endpoint of the same fabric
  /// rank — with journal replay enabled (it resumes the dead incarnation's
  /// round accounting) and a worker ping (it must rebuild its worker
  /// list). Returns true if a revival happened; false when the foreman is
  /// still alive. The master's supervisor calls this between round
  /// retries (see ParallelMaster::set_reviver).
  bool revive_foreman();

  /// True once the foreman thread has exited (crash or shutdown).
  bool foreman_exited() const {
    return foreman_exited_.load(std::memory_order_acquire);
  }
  /// How many times revive_foreman() restarted the foreman.
  int foreman_revivals() const { return foreman_revivals_; }

 private:
  void spawn_foreman(ForemanOptions options, bool with_chaos);

  ClusterOptions options_;
  /// Owned registry shared by every role (declared before master_, which
  /// holds counter references into it).
  obs::MetricsRegistry metrics_;
  ThreadFabric fabric_;
  MonitorBoard board_;
  ForemanStats foreman_stats_;
  std::shared_ptr<ChaosTotals> chaos_totals_;
  std::unique_ptr<Transport> master_endpoint_;
  std::unique_ptr<ParallelMaster> master_;
  /// Degraded-mode evaluator, built on first use.
  std::unique_ptr<SerialTaskRunner> serial_fallback_;
  /// The foreman lives outside threads_ so it can be joined and replaced
  /// by revive_foreman() while the rest of the cluster keeps running.
  std::thread foreman_thread_;
  std::atomic<bool> foreman_exited_{false};
  /// Set when the foreman's chaos transport crashed (it then never
  /// forwarded shutdown, so the master must broadcast it itself).
  std::atomic<bool> foreman_crashed_{false};
  int foreman_revivals_ = 0;
  std::vector<std::thread> threads_;
  bool shut_down_ = false;
};

}  // namespace fdml
