// InProcessCluster: stands up the paper's full process layout — master
// (the calling thread), foreman, monitor and N workers — over the
// in-process thread fabric, and exposes the master side as a TaskRunner so
// StepwiseSearch runs unchanged on top of it. This is the substitution for
// the paper's MPI runs on the RS/6000 SP: the identical protocol executes
// for real, with threads standing in for hosts (see DESIGN.md).
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "parallel/foreman.hpp"
#include "parallel/monitor.hpp"
#include "parallel/worker.hpp"
#include "search/runner.hpp"

namespace fdml {

struct ClusterOptions {
  int num_workers = 1;
  ForemanOptions foreman;
  OptimizeOptions optimize;
  /// Optional per-worker transport decorator (fault injection in tests):
  /// given the worker rank and its raw endpoint, return the endpoint the
  /// worker should actually use.
  std::function<std::unique_ptr<Transport>(int, std::unique_ptr<Transport>)>
      wrap_worker_transport;
};

class InProcessCluster {
 public:
  /// `data` must outlive the cluster.
  InProcessCluster(const PatternAlignment& data, SubstModel model,
                   RateModel rates, ClusterOptions options);
  ~InProcessCluster();

  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  /// Master-side runner; rounds dispatched here flow master -> foreman ->
  /// workers and back.
  TaskRunner& runner();

  int num_workers() const { return options_.num_workers; }

  /// Live instrumentation (thread-safe snapshot).
  MonitorReport monitor_report() const { return board_.snapshot(); }
  /// Foreman counters; valid after shutdown().
  const ForemanStats& foreman_stats() const { return foreman_stats_; }

  std::uint64_t fabric_messages() const { return fabric_.messages_sent(); }
  std::uint64_t fabric_bytes() const { return fabric_.bytes_sent(); }

  /// Sends shutdown and joins every role thread (idempotent; the
  /// destructor calls it).
  void shutdown();

 private:
  class MasterRunner;

  ClusterOptions options_;
  ThreadFabric fabric_;
  MonitorBoard board_;
  ForemanStats foreman_stats_;
  std::unique_ptr<Transport> master_endpoint_;
  std::unique_ptr<MasterRunner> runner_;
  std::vector<std::thread> threads_;
  bool shut_down_ = false;
};

}  // namespace fdml
