// The master side of the parallel protocol: packs rounds for the foreman
// and waits for the best tree to come back.
//
// Hardened beyond the happy path: a round watchdog (fed by the foreman's
// kProgress heartbeats) turns "the fabric silently wedged" into either a
// structured RoundFailedError or a graceful degradation to in-process
// evaluation, and unexpected traffic is warned about and counted instead
// of silently discarded.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "obs/metrics.hpp"
#include "search/runner.hpp"

namespace fdml {

struct MasterOptions {
  /// Watchdog: if no round traffic (progress, completion, failure) arrives
  /// for this long, the round is declared wedged.
  std::chrono::milliseconds watchdog_timeout{120000};
  /// On a failed/wedged round, evaluate the round in-process through the
  /// fallback runner instead of raising RoundFailedError.
  bool serial_fallback = true;
  /// Supervision: how many times a failed/wedged round is retried (with the
  /// reviver given a chance to restart the foreman, and the foreman's task
  /// journal making the resend cheap) before the failure is surfaced.
  /// 0 = fail/degrade immediately, the pre-supervisor behavior.
  int max_round_retries = 0;
  /// Exponential backoff between retries: attempt n waits
  /// retry_backoff * 2^(n-1), capped at retry_backoff_max.
  std::chrono::milliseconds retry_backoff{100};
  std::chrono::milliseconds retry_backoff_max{5000};
  /// Metrics registry the master's counters live in; null = the process
  /// registry. MasterStats is a delta view over these counters (same
  /// pattern as ForemanStats).
  obs::MetricsRegistry* metrics = nullptr;
};

struct MasterStats {
  std::uint64_t rounds = 0;
  /// kProgress heartbeats consumed for the current protocol's rounds.
  std::uint64_t progress_messages = 0;
  /// Messages whose tag the master does not understand (warned, not dropped
  /// silently).
  std::uint64_t unexpected_tags = 0;
  /// Round-scoped messages for a round other than the one in flight.
  std::uint64_t stale_messages = 0;
  /// Payloads that failed the integrity check or threw during decoding.
  std::uint64_t corrupt_messages = 0;
  /// Rounds declared wedged by the watchdog.
  std::uint64_t watchdog_trips = 0;
  /// kRoundFailed reports received from the foreman.
  std::uint64_t rounds_failed = 0;
  /// Rounds evaluated through the in-process fallback runner.
  std::uint64_t serial_fallbacks = 0;
  /// Round attempts restarted by the supervisor.
  std::uint64_t round_retries = 0;
  /// Retries on which the reviver reported it restarted the fabric.
  std::uint64_t fabric_revivals = 0;
};

/// A round could not be completed by the parallel fabric and no fallback
/// was available.
class RoundFailedError : public std::runtime_error {
 public:
  RoundFailedError(std::uint64_t round_id, const std::string& reason)
      : std::runtime_error("round " + std::to_string(round_id) +
                           " failed: " + reason),
        round_id_(round_id),
        reason_(reason) {}

  std::uint64_t round_id() const { return round_id_; }
  const std::string& reason() const { return reason_; }

 private:
  std::uint64_t round_id_;
  std::string reason_;
};

/// A round kept failing after the supervisor exhausted its retry budget
/// (and no serial fallback was available to absorb it).
class RunFailedError : public RoundFailedError {
 public:
  RunFailedError(std::uint64_t round_id, const std::string& reason,
                 int attempts)
      : RoundFailedError(round_id, reason + " (after " +
                                       std::to_string(attempts) +
                                       " attempt(s))"),
        attempts_(attempts) {}

  int attempts() const { return attempts_; }

 private:
  int attempts_ = 0;
};

class ParallelMaster final : public TaskRunner {
 public:
  ParallelMaster(Transport& transport, int workers, MasterOptions options = {});

  /// Installs the degraded-mode evaluator (typically a lazily constructed
  /// SerialTaskRunner). Without one, a failed round raises RoundFailedError
  /// regardless of options.serial_fallback.
  void set_fallback(std::function<RoundOutcome(const std::vector<TreeTask>&)> fallback) {
    fallback_ = std::move(fallback);
  }

  /// Installs the supervisor's revival hook, called before each retry of a
  /// failed round. It should check whether the fabric (typically the
  /// foreman) died and restart it, returning true if it did — a revival
  /// also clears the degraded flag, since the wedged incarnation is gone.
  void set_reviver(std::function<bool()> reviver) {
    reviver_ = std::move(reviver);
  }

  /// Installs the kTelemetry consumer (typically TelemetryAggregator::apply
  /// behind a decode). Called with the sender rank and the *opened*
  /// (integrity-verified) frame payload, from whichever thread is receiving
  /// — mid-round or from pump() — so it must be thread-safe.
  void set_telemetry_sink(
      std::function<void(int, std::vector<std::uint8_t>)> sink) {
    telemetry_sink_ = std::move(sink);
  }

  /// Drains fabric messages while NO round is in flight (telemetry frames
  /// otherwise sit queued between rounds and every rank looks stale). Safe
  /// to call concurrently with run_round: if a round holds the receive
  /// lock, pump returns immediately — the in-round loop is already
  /// consuming frames. Returns the number of messages drained.
  std::size_t pump();

  RoundOutcome run_round(const std::vector<TreeTask>& tasks) override;
  int worker_count() const override { return workers_; }

  /// Delta view: this master's bumps of the registry counters since
  /// construction.
  MasterStats stats() const;

 private:
  /// Registry handles for every MasterStats field.
  struct Counters {
    explicit Counters(obs::MetricsRegistry& registry);
    MasterStats read() const;

    obs::Counter& rounds;
    obs::Counter& progress_messages;
    obs::Counter& unexpected_tags;
    obs::Counter& stale_messages;
    obs::Counter& corrupt_messages;
    obs::Counter& watchdog_trips;
    obs::Counter& rounds_failed;
    obs::Counter& serial_fallbacks;
    obs::Counter& round_retries;
    obs::Counter& fabric_revivals;
  };

  RoundOutcome degrade(std::uint64_t round_id,
                       const std::vector<TreeTask>& tasks,
                       const std::string& reason);
  /// One attempt: seal, send, watch. Throws RoundFailedError on watchdog
  /// expiry or a foreman-reported failure; the supervisor loop in
  /// run_round decides whether to retry, degrade or surface it.
  RoundOutcome attempt_round(std::uint64_t round_id,
                             const std::vector<TreeTask>& tasks);

  /// Verifies and forwards one kTelemetry payload to the sink.
  void handle_telemetry(int source, std::vector<std::uint8_t> payload);

  Transport& transport_;
  int workers_;
  MasterOptions options_;
  Counters counters_;
  /// Counter values at construction; stats() subtracts these.
  MasterStats start_;
  std::function<RoundOutcome(const std::vector<TreeTask>&)> fallback_;
  std::function<bool()> reviver_;
  std::function<void(int, std::vector<std::uint8_t>)> telemetry_sink_;
  /// Serializes transport receives between an in-flight round
  /// (attempt_round) and the idle-period pump(); without it the pump could
  /// steal a kRoundDone out from under the round loop.
  std::mutex recv_mutex_;
  std::uint64_t next_round_id_ = 1;
  /// Set when the watchdog trips (the foreman itself is unresponsive);
  /// later rounds then skip straight to the fallback instead of paying the
  /// watchdog timeout again. A foreman-reported kRoundFailed does NOT set
  /// this: the foreman is alive and detects a dead worker pool instantly,
  /// and probation may yet recover the workers.
  bool degraded_ = false;
};

}  // namespace fdml
