#include "parallel/protocol.hpp"

namespace fdml {

std::vector<std::uint8_t> RoundMessage::pack() const {
  Packer packer;
  packer.put_u64(round_id);
  packer.put_u32(static_cast<std::uint32_t>(tasks.size()));
  for (const TreeTask& task : tasks) task.pack(packer);
  return packer.take();
}

RoundMessage RoundMessage::unpack(const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  RoundMessage message;
  message.round_id = unpacker.get_u64();
  const std::uint32_t count = unpacker.get_u32();
  // Minimal TreeTask encoding: task_id + round_id + empty string + two i32s.
  unpacker.require_count(count, 8 + 8 + 4 + 4 + 4);
  message.tasks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    message.tasks.push_back(TreeTask::unpack(unpacker));
  }
  return message;
}

std::vector<std::uint8_t> RoundDoneMessage::pack() const {
  Packer packer;
  packer.put_u64(round_id);
  best.pack(packer);
  packer.put_u32(static_cast<std::uint32_t>(stats.size()));
  for (const TaskStat& stat : stats) {
    packer.put_u64(stat.task_id);
    packer.put_f64(stat.cpu_seconds);
    packer.put_u64(stat.bytes);
    packer.put_i32(stat.worker);
  }
  return packer.take();
}

RoundDoneMessage RoundDoneMessage::unpack(const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  RoundDoneMessage message;
  message.round_id = unpacker.get_u64();
  message.best = TaskResult::unpack(unpacker);
  const std::uint32_t count = unpacker.get_u32();
  // Each TaskStat encodes as task_id + cpu_seconds + bytes + worker.
  unpacker.require_count(count, 8 + 8 + 8 + 4);
  message.stats.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TaskStat stat;
    stat.task_id = unpacker.get_u64();
    stat.cpu_seconds = unpacker.get_f64();
    stat.bytes = unpacker.get_u64();
    stat.worker = unpacker.get_i32();
    message.stats.push_back(stat);
  }
  return message;
}

std::vector<std::uint8_t> ProgressMessage::pack() const {
  Packer packer;
  packer.put_u64(round_id);
  packer.put_u64(completed);
  packer.put_u64(expected);
  return packer.take();
}

ProgressMessage ProgressMessage::unpack(const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  ProgressMessage message;
  message.round_id = unpacker.get_u64();
  message.completed = unpacker.get_u64();
  message.expected = unpacker.get_u64();
  return message;
}

std::vector<std::uint8_t> RoundFailedMessage::pack() const {
  Packer packer;
  packer.put_u64(round_id);
  packer.put_string(reason);
  return packer.take();
}

RoundFailedMessage RoundFailedMessage::unpack(
    const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  RoundFailedMessage message;
  message.round_id = unpacker.get_u64();
  message.reason = unpacker.get_string();
  return message;
}

const char* monitor_event_kind_name(MonitorEventKind kind) {
  switch (kind) {
    case MonitorEventKind::kRoundBegin: return "round_begin";
    case MonitorEventKind::kDispatch: return "dispatch";
    case MonitorEventKind::kComplete: return "complete";
    case MonitorEventKind::kRequeue: return "requeue";
    case MonitorEventKind::kDelinquent: return "delinquent";
    case MonitorEventKind::kReinstate: return "reinstate";
    case MonitorEventKind::kRoundEnd: return "round_end";
    case MonitorEventKind::kCorrupt: return "corrupt";
    case MonitorEventKind::kProbation: return "probation";
    case MonitorEventKind::kProbePass: return "probe_pass";
    case MonitorEventKind::kProbeFail: return "probe_fail";
    case MonitorEventKind::kNack: return "nack";
    case MonitorEventKind::kRoundFailed: return "round_failed";
  }
  return "unknown";
}

std::vector<std::uint8_t> WorkerReportMessage::pack() const {
  Packer packer;
  packer.put_i32(worker);
  packer.put_u64(tasks_evaluated);
  packer.put_f64(cpu_seconds);
  packer.put_u64(corrupt_tasks);
  packer.put_u64(clv_computations);
  packer.put_u64(clv_rescales);
  packer.put_u64(edge_captures);
  packer.put_u64(edge_evaluations);
  packer.put_u64(transition_hits);
  packer.put_u64(transition_misses);
  packer.put_u64(transition_evictions);
  return packer.take();
}

WorkerReportMessage WorkerReportMessage::unpack(
    const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  WorkerReportMessage message;
  message.worker = unpacker.get_i32();
  message.tasks_evaluated = unpacker.get_u64();
  message.cpu_seconds = unpacker.get_f64();
  message.corrupt_tasks = unpacker.get_u64();
  message.clv_computations = unpacker.get_u64();
  message.clv_rescales = unpacker.get_u64();
  message.edge_captures = unpacker.get_u64();
  message.edge_evaluations = unpacker.get_u64();
  message.transition_hits = unpacker.get_u64();
  message.transition_misses = unpacker.get_u64();
  message.transition_evictions = unpacker.get_u64();
  return message;
}

std::vector<std::uint8_t> MonitorEvent::pack() const {
  Packer packer;
  packer.put_u8(static_cast<std::uint8_t>(kind));
  packer.put_u64(round_id);
  packer.put_u64(task_id);
  packer.put_i32(worker);
  packer.put_f64(at_seconds);
  packer.put_f64(cpu_seconds);
  return packer.take();
}

MonitorEvent MonitorEvent::unpack(const std::vector<std::uint8_t>& payload) {
  Unpacker unpacker(payload);
  MonitorEvent event;
  event.kind = static_cast<MonitorEventKind>(unpacker.get_u8());
  event.round_id = unpacker.get_u64();
  event.task_id = unpacker.get_u64();
  event.worker = unpacker.get_i32();
  event.at_seconds = unpacker.get_f64();
  event.cpu_seconds = unpacker.get_f64();
  return event;
}

}  // namespace fdml
