#include "parallel/foreman.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "comm/integrity.hpp"
#include "durable/journal.hpp"
#include "parallel/protocol.hpp"
#include "search/runner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

/// TaskResult::worker value marking a result completed from the journal
/// rather than evaluated by a live worker this incarnation.
constexpr int kJournalWorker = -1;

/// Worker health state machine (DESIGN.md "Worker health model"):
///   Healthy --timeout/corrupt--> Suspect/quarantine --reply--> Probation
///   Probation --probe ok--> Healthy; --probe timeout--> Suspect (backoff x2)
enum class WorkerState { kHealthy, kSuspect, kProbation };

struct WorkerHealth {
  WorkerState state = WorkerState::kHealthy;
  /// EWMA of observed task durations, driving the adaptive deadline.
  double ewma_ms = 0.0;
  bool has_ewma = false;
  /// Consecutive delinquencies/quarantines; doubles the probation backoff.
  int strikes = 0;
  /// Earliest time a probation probe may be dispatched.
  Clock::time_point eligible_at{};
  /// When the worker last went delinquent (feeds the all-dead grace window).
  Clock::time_point suspect_since{};
  /// In probation via new-round amnesty, i.e. without having been heard
  /// from since its delinquency — its first reply still counts as the
  /// paper's reinstatement.
  bool awaiting_contact = false;
};

struct DispatchRecord {
  TreeTask task;
  Clock::time_point dispatched_at;
  Clock::time_point deadline_at;
  bool probe = false;
};

struct RoundState {
  std::uint64_t round_id = 0;
  std::size_t expected = 0;
  std::set<std::uint64_t> completed;
  TaskResult best;
  bool have_best = false;
  std::vector<TaskStat> stats;
  /// Serialized task size per task id, for the wire-bytes accounting.
  std::map<std::uint64_t, std::uint64_t> task_bytes;
  /// Content digest per task id, and the round's content key: how journal
  /// entries recognise the same work after a restart renumbers everything.
  std::map<std::uint64_t, std::uint64_t> task_digest;
  std::uint64_t round_key = 0;
};

class Foreman {
 public:
  Foreman(Transport& transport, const ForemanOptions& options)
      : transport_(transport), options_(options) {}

  ForemanStats run() {
    if (!options_.journal_path.empty()) {
      journal_.emplace(options_.journal_path, options_.vfs);
      if (options_.journal_resume) {
        const std::size_t replayable = journal_->load();
        if (replayable > 0) {
          FDML_INFO("foreman") << "journal holds " << replayable
                               << " completed task(s) for replay";
        }
      } else {
        journal_->reset();
      }
    }
    if (options_.announce_ping) {
      // A revived foreman starts with no worker list; ask everyone to
      // re-introduce themselves.
      for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
        transport_.send(rank, MessageTag::kPing, {});
      }
    }
    for (;;) {
      const auto message = receive();
      if (!message.has_value()) {
        // Either a deadline passed (handled inside receive) or the fabric
        // shut down under us.
        if (fabric_closed_ || transport_.closed()) break;
        continue;
      }
      switch (message->tag) {
        case MessageTag::kHello:
          handle_hello(message->source);
          break;
        case MessageTag::kRound:
          handle_round(message->source, message->payload);
          break;
        case MessageTag::kResult:
          handle_result(message->source, message->payload);
          break;
        case MessageTag::kNack:
          handle_nack(message->source);
          break;
        case MessageTag::kShutdown:
          broadcast_shutdown();
          return stats_;
        default:
          ++stats_.unexpected_tags;
          FDML_WARN("foreman") << "unexpected tag "
                               << static_cast<int>(message->tag) << " from rank "
                               << message->source;
      }
    }
    return stats_;
  }

 private:
  /// Receives with a deadline derived from in-flight dispatch records and
  /// probation eligibility; expires overdue workers before returning.
  std::optional<Message> receive() {
    check_round_viability();
    const auto wake = next_wake();
    std::optional<Message> message;
    if (!wake.has_value()) {
      message = transport_.recv();
      if (!message.has_value()) fabric_closed_ = true;
    } else {
      const auto now = Clock::now();
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::max(*wake - now, Clock::duration::zero()));
      message = transport_.recv_for(wait + std::chrono::milliseconds(1));
    }
    expire_overdue();
    dispatch_work();
    return message;
  }

  /// Earliest of: an in-flight deadline, or a probation worker becoming
  /// eligible for a probe while work is waiting. nullopt = nothing pending,
  /// block indefinitely.
  std::optional<Clock::time_point> next_wake() const {
    std::optional<Clock::time_point> earliest;
    auto consider = [&](Clock::time_point t) {
      if (!earliest.has_value() || t < *earliest) earliest = t;
    };
    for (const auto& [worker, record] : in_flight_) consider(record.deadline_at);
    if (const auto declare = dead_declare_at()) consider(*declare);
    if (round_active_ && !work_queue_.empty()) {
      for (const auto& [worker, health] : health_) {
        if (health.state == WorkerState::kProbation &&
            in_flight_.count(worker) == 0) {
          consider(health.eligible_at);
        }
      }
    }
    return earliest;
  }

  WorkerHealth& health(int worker) { return health_[worker]; }

  /// Adaptive per-worker deadline: EWMA x slack, clamped to
  /// [timeout_floor, worker_timeout]; flat worker_timeout before any
  /// observation or when adaptivity is off.
  Clock::duration deadline_for(int worker) {
    const WorkerHealth& h = health(worker);
    if (!options_.adaptive_timeouts || !h.has_ewma) return options_.worker_timeout;
    const auto adaptive = std::chrono::milliseconds(
        static_cast<std::int64_t>(h.ewma_ms * options_.timeout_slack));
    return std::min<std::chrono::milliseconds>(
        std::max<std::chrono::milliseconds>(adaptive, options_.timeout_floor),
        options_.worker_timeout);
  }

  Clock::duration backoff_for(int strikes) const {
    const int doublings = std::min(std::max(strikes - 1, 0), 16);
    const auto raw = options_.probation_backoff * (1LL << doublings);
    return std::min<std::chrono::milliseconds>(
        std::chrono::duration_cast<std::chrono::milliseconds>(raw),
        options_.probation_backoff_max);
  }

  void observe_duration(WorkerHealth& h, Clock::duration elapsed) {
    const double sample_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    constexpr double kAlpha = 0.3;
    h.ewma_ms = h.has_ewma ? kAlpha * sample_ms + (1.0 - kAlpha) * h.ewma_ms
                           : sample_ms;
    h.has_ewma = true;
  }

  void send_sealed(int dest, MessageTag tag, std::vector<std::uint8_t> payload) {
    seal_payload(payload);
    transport_.send(dest, tag, std::move(payload));
  }

  /// Requeues the record's task (when the round still needs it) and erases
  /// the record. Does NOT touch worker health; callers decide that.
  void requeue_record(std::map<int, DispatchRecord>::iterator it,
                      const char* why) {
    const int worker = it->first;
    const TreeTask& task = it->second.task;
    // Requeue at the front so the oldest tree goes out first — but only if
    // the round still needs it; a copy of a completed (or stale-round)
    // task would just circulate through dispatch and expiry.
    const bool still_needed = round_active_ &&
                              task.round_id == round_.round_id &&
                              round_.completed.count(task.task_id) == 0;
    if (still_needed) {
      work_queue_.push_front(task);
      ++stats_.requeues;
      notify(MonitorEventKind::kRequeue, task.task_id, worker);
    }
    FDML_INFO("foreman") << "worker " << worker << " " << why
                         << (still_needed ? "; requeued task " : "; dropped task ")
                         << task.task_id;
    in_flight_.erase(it);
  }

  void expire_overdue() {
    const auto now = Clock::now();
    std::vector<int> overdue;
    for (const auto& [worker, record] : in_flight_) {
      if (now >= record.deadline_at) overdue.push_back(worker);
    }
    for (int worker : overdue) {
      auto it = in_flight_.find(worker);
      const bool was_probe = it->second.probe;
      requeue_record(it, "timed out");
      WorkerHealth& h = health(worker);
      h.state = WorkerState::kSuspect;
      h.suspect_since = now;
      h.awaiting_contact = false;  // timed out again without a word
      ++h.strikes;
      ++stats_.delinquencies;
      if (was_probe) {
        ++stats_.probation_failures;
        notify(MonitorEventKind::kProbeFail, 0, worker);
      }
      notify(MonitorEventKind::kDelinquent, 0, worker);
    }
  }

  /// Moves a worker into the probation queue: it will receive one probe
  /// task after its exponential backoff, and rejoins the ready queue only
  /// when the probe completes within its deadline. `task_id` labels the
  /// monitor event (the monitor treats task 0 as an initial hello).
  void enter_probation(int worker, bool quarantine, std::uint64_t task_id) {
    WorkerHealth& h = health(worker);
    h.state = WorkerState::kProbation;
    h.awaiting_contact = false;  // entered via an actual message
    if (h.strikes < 1) h.strikes = 1;
    h.eligible_at = Clock::now() + backoff_for(h.strikes);
    ++stats_.probations;
    if (quarantine) {
      ++stats_.quarantines;
    } else {
      // The paper's reinstatement path: a delinquent worker finally replied.
      ++stats_.reinstatements;
      notify(MonitorEventKind::kReinstate, task_id, worker);
    }
    notify(MonitorEventKind::kProbation, task_id, worker);
  }

  /// Malformed payload: count, quarantine a worker sender, never die.
  void handle_corrupt(int sender) {
    ++stats_.corrupt_messages;
    notify(MonitorEventKind::kCorrupt, 0, sender);
    FDML_WARN("foreman") << "malformed payload from rank " << sender;
    if (sender < kFirstWorkerRank) return;  // master/monitor: count only
    if (auto it = in_flight_.find(sender); it != in_flight_.end()) {
      requeue_record(it, "sent a corrupt payload");
    }
    ready_.erase(std::remove(ready_.begin(), ready_.end(), sender), ready_.end());
    ++health(sender).strikes;
    enter_probation(sender, /*quarantine=*/true, 0);
    dispatch_work();
  }

  void handle_hello(int worker) {
    WorkerHealth& h = health(worker);
    if (h.state == WorkerState::kSuspect) {
      enter_probation(worker, /*quarantine=*/false, 0);
    } else if (h.state == WorkerState::kHealthy) {
      mark_ready(worker);
      notify(MonitorEventKind::kReinstate, 0, worker);
    }
    dispatch_work();
  }

  void handle_round(int source, std::vector<std::uint8_t> payload) {
    if (!open_payload(payload)) {
      handle_corrupt(source);
      return;
    }
    RoundMessage message;
    try {
      message = RoundMessage::unpack(payload);
    } catch (const std::exception&) {
      handle_corrupt(source);
      return;
    }
    begin_round(std::move(message));
  }

  void begin_round(RoundMessage message) {
    // Anything still queued is a requeued copy of a task the previous round
    // already completed (the master opens a round only after RoundDone), so
    // drop it — under aggressive timeouts such copies otherwise circulate
    // through dispatch/expire forever and the work queue grows every round.
    work_queue_.clear();
    round_ = RoundState{};
    round_.round_id = message.round_id;
    round_.expected = message.tasks.size();
    round_active_ = true;
    // New-round amnesty: a suspect never gets dispatched to and an idle
    // worker never speaks unprompted, so without this a single dropped
    // reply would exile a live worker for the rest of the run. Give
    // lightly-struck suspects one probe; leave the rest suspect so a dead
    // fabric still fails the round quickly.
    for (auto& [worker, h] : health_) {
      if (h.state == WorkerState::kSuspect &&
          h.strikes <= options_.amnesty_max_strikes) {
        h.state = WorkerState::kProbation;
        h.eligible_at = Clock::now() + backoff_for(h.strikes);
        h.awaiting_contact = true;
        ++stats_.probations;
        notify(MonitorEventKind::kProbation, 0, worker);
      }
    }
    ++stats_.rounds;
    notify(MonitorEventKind::kRoundBegin, 0, -1);
    std::vector<std::uint64_t> digests;
    digests.reserve(message.tasks.size());
    for (TreeTask& task : message.tasks) {
      Packer packer;
      task.pack(packer);
      round_.task_bytes[task.task_id] = packer.size();
      const std::uint64_t digest = task_content_digest(
          task.newick, task.focus_taxon, task.smooth_passes);
      round_.task_digest[task.task_id] = digest;
      digests.push_back(digest);
      work_queue_.push_back(std::move(task));
    }
    round_.round_key = round_content_key(digests);
    replay_journal();
    dispatch_work();
  }

  /// Completes from the journal every task of the new round that a previous
  /// foreman incarnation already finished. Identity is by content (digest +
  /// round key), so a restarted master's renumbered round still matches.
  void replay_journal() {
    if (!journal_.has_value() || journal_->size() == 0) return;
    // accept() mutates the queue (erasing completed copies), so snapshot
    // the (task_id, digest) pairs first.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
    for (const TreeTask& task : work_queue_) {
      pending.emplace_back(task.task_id, round_.task_digest[task.task_id]);
    }
    for (const auto& [task_id, digest] : pending) {
      const JournalEntry* entry = journal_->find(round_.round_key, digest);
      if (entry == nullptr) continue;
      TaskResult replayed;
      replayed.task_id = task_id;
      replayed.round_id = round_.round_id;
      replayed.log_likelihood = entry->log_likelihood;
      replayed.newick = entry->newick;
      replayed.cpu_seconds = entry->cpu_seconds;
      replayed.worker = kJournalWorker;
      ++stats_.journal_replayed;
      FDML_INFO("foreman") << "replaying task " << task_id
                           << " from the journal";
      accept(replayed, 0);
      if (!round_active_) break;  // the journal alone finished the round
    }
  }

  void dispatch_to(int worker, bool probe) {
    TreeTask task = std::move(work_queue_.front());
    work_queue_.pop_front();
    Packer packer;
    task.pack(packer);
    send_sealed(worker, MessageTag::kTask, packer.take());
    notify(MonitorEventKind::kDispatch, task.task_id, worker);
    ++stats_.tasks_dispatched;
    const auto now = Clock::now();
    in_flight_[worker] = {std::move(task), now, now + deadline_for(worker), probe};
  }

  void dispatch_work() {
    while (!work_queue_.empty() && !ready_.empty()) {
      const int worker = ready_.front();
      ready_.pop_front();
      dispatch_to(worker, /*probe=*/false);
    }
    if (work_queue_.empty()) return;
    // Probation: one probe task per eligible worker; passing it is the only
    // way back into the ready queue.
    const auto now = Clock::now();
    for (auto& [worker, h] : health_) {
      if (work_queue_.empty()) break;
      if (h.state != WorkerState::kProbation) continue;
      if (in_flight_.count(worker) != 0) continue;
      if (now < h.eligible_at) continue;
      ++stats_.probation_probes;
      notify(MonitorEventKind::kProbation, work_queue_.front().task_id, worker);
      dispatch_to(worker, /*probe=*/true);
    }
  }

  /// Returns the worker to the ready queue unless it is unhealthy, still
  /// has a task in flight (its reply will ready it) or is already queued.
  /// Keeping this the single entry point to ready_ is what maintains the
  /// invariant that a worker appears at most once across ready_ and
  /// in_flight_.
  void mark_ready(int worker) {
    if (health(worker).state != WorkerState::kHealthy) return;
    if (in_flight_.count(worker) != 0) return;
    if (std::find(ready_.begin(), ready_.end(), worker) != ready_.end()) return;
    ready_.push_back(worker);
  }

  /// A worker reports its task payload arrived malformed: requeue the task
  /// (the foreman's pristine copy re-serializes cleanly) and keep the
  /// worker in rotation — the corruption happened in transit, not in it.
  void handle_nack(int worker) {
    ++stats_.task_nacks;
    notify(MonitorEventKind::kNack, 0, worker);
    if (auto it = in_flight_.find(worker); it != in_flight_.end()) {
      requeue_record(it, "rejected a malformed task");
    }
    if (health(worker).state == WorkerState::kSuspect) {
      enter_probation(worker, /*quarantine=*/false, 0);
    } else {
      mark_ready(worker);
    }
    dispatch_work();
  }

  void handle_result(int worker, std::vector<std::uint8_t> payload) {
    if (!open_payload(payload)) {
      handle_corrupt(worker);
      return;
    }
    TaskResult result;
    try {
      Unpacker unpacker(payload);
      result = TaskResult::unpack(unpacker);
      if (!unpacker.exhausted()) throw std::runtime_error("trailing bytes");
    } catch (const std::exception&) {
      handle_corrupt(worker);
      return;
    }
    result.worker = worker;

    WorkerHealth& h = health(worker);
    if (h.awaiting_contact) {
      // First word from a worker that a new-round amnesty moved to
      // probation while it was still silent: this reply IS the paper's
      // "response received from the delinquent worker". Probation still
      // gates its re-entry, but the reinstatement is counted here, where
      // the contact actually happened.
      h.awaiting_contact = false;
      ++stats_.reinstatements;
      notify(MonitorEventKind::kReinstate, result.task_id, worker);
    }
    const auto flight = in_flight_.find(worker);
    if (flight != in_flight_.end()) {
      if (flight->second.task.task_id == result.task_id) {
        observe_duration(h, Clock::now() - flight->second.dispatched_at);
        const bool was_probe = flight->second.probe;
        in_flight_.erase(flight);
        if (was_probe) {
          h.state = WorkerState::kHealthy;
          h.strikes = 0;
          ++stats_.probation_passes;
          notify(MonitorEventKind::kProbePass, result.task_id, worker);
        } else {
          h.strikes = 0;
        }
        mark_ready(worker);
      } else {
        // Stale reply for an earlier (requeued) task while a different task
        // is in flight to this worker. The worker is still busy: keep the
        // dispatch record and do NOT ready it — doing so used to double-book
        // the worker and silently drop the in-flight task when the record
        // was overwritten. The result itself may still complete the task
        // (accept() deduplicates), so fall through to accept below.
        ++stats_.mismatched_results;
        FDML_WARN("foreman") << "worker " << worker << " sent result for task "
                             << result.task_id << " while task "
                             << flight->second.task.task_id << " is in flight";
      }
    } else if (h.state == WorkerState::kSuspect) {
      // A delinquent worker finally replied: probation, not unconditional
      // reinstatement. Its result may still complete the task below.
      enter_probation(worker, /*quarantine=*/false, result.task_id);
    } else if (h.state == WorkerState::kHealthy) {
      mark_ready(worker);
    }
    // kProbation with no record: a stale duplicate while awaiting its
    // probe — accept the data, leave the health state alone.

    accept(result, payload.size());
    dispatch_work();
  }

  void accept(TaskResult& result, std::size_t result_bytes) {
    if (!round_active_ || result.round_id != round_.round_id ||
        round_.completed.count(result.task_id) != 0) {
      // Stale or duplicate (e.g. a requeued task completed twice).
      ++stats_.late_duplicate_results;
      return;
    }
    round_.completed.insert(result.task_id);
    // Drop every requeued copy still waiting in the queue — repeated
    // timeouts can have queued the same task more than once.
    work_queue_.erase(
        std::remove_if(work_queue_.begin(), work_queue_.end(),
                       [&](const TreeTask& task) {
                         return task.task_id == result.task_id;
                       }),
        work_queue_.end());
    TaskStat stat;
    stat.task_id = result.task_id;
    stat.cpu_seconds = result.cpu_seconds;
    stat.bytes = round_.task_bytes[result.task_id] + result_bytes;
    stat.worker = result.worker;
    round_.stats.push_back(stat);
    ++stats_.tasks_completed;
    notify(MonitorEventKind::kComplete, result.task_id, result.worker,
           result.cpu_seconds);

    // Write-ahead: the completion is durably journaled before it can decide
    // the round, so a crash after this point never loses it. Replayed
    // results are already on disk; re-appending them would grow the file
    // every restart.
    if (journal_.has_value() && result.worker != kJournalWorker) {
      JournalEntry entry;
      entry.round_key = round_.round_key;
      entry.task_digest = round_.task_digest[result.task_id];
      entry.log_likelihood = result.log_likelihood;
      entry.newick = result.newick;
      entry.cpu_seconds = result.cpu_seconds;
      try {
        journal_->append(entry);
        ++stats_.journal_appended;
      } catch (const std::exception& error) {
        // A failed WAL append only weakens crash recovery; the round
        // itself must proceed.
        ++stats_.journal_write_failures;
        FDML_WARN("foreman") << "journal append failed: " << error.what();
      }
    }

    // Ties break toward the lowest task id — the order a serial run would
    // have kept — so the round winner is independent of completion order
    // and a chaos-scheduled run reproduces the fault-free tree exactly.
    const bool better =
        !round_.have_best ||
        result.log_likelihood > round_.best.log_likelihood ||
        (result.log_likelihood == round_.best.log_likelihood &&
         result.task_id < round_.best.task_id);
    if (better) {
      round_.best = std::move(result);
      round_.have_best = true;
    }

    ProgressMessage progress;
    progress.round_id = round_.round_id;
    progress.completed = round_.completed.size();
    progress.expected = round_.expected;
    send_sealed(kMasterRank, MessageTag::kProgress, progress.pack());

    if (round_.completed.size() == round_.expected) {
      RoundDoneMessage done;
      done.round_id = round_.round_id;
      done.best = round_.best;
      done.stats = std::move(round_.stats);
      send_sealed(kMasterRank, MessageTag::kRoundDone, done.pack());
      notify(MonitorEventKind::kRoundEnd, 0, -1);
      round_active_ = false;
    }
  }

  /// When the round is stuck — work waiting, nothing in flight, every known
  /// worker suspect — the instant it may be declared dead: one extra flat
  /// worker_timeout of silence after the newest delinquency. The grace
  /// window is what separates "all workers are slow" (a late reply still
  /// reinstates, the paper's behavior) from "all workers are gone".
  std::optional<Clock::time_point> dead_declare_at() const {
    if (!round_active_ || work_queue_.empty() || !in_flight_.empty()) {
      return std::nullopt;
    }
    if (health_.empty()) return std::nullopt;  // nobody ever said hello;
                                               // the master watchdog covers
    Clock::time_point newest{};
    for (const auto& [worker, h] : health_) {
      if (h.state != WorkerState::kSuspect) return std::nullopt;
      newest = std::max(newest, h.suspect_since);
    }
    return newest + options_.worker_timeout;
  }

  /// All-workers-dead detection: tell the master the round cannot finish so
  /// it can degrade to in-process evaluation instead of waiting forever.
  void check_round_viability() {
    const auto declare = dead_declare_at();
    if (!declare.has_value() || Clock::now() < *declare) return;
    FDML_WARN("foreman") << "round " << round_.round_id
                         << " unfinishable: all " << health_.size()
                         << " known workers are delinquent";
    RoundFailedMessage failed;
    failed.round_id = round_.round_id;
    failed.reason = "all workers delinquent";
    send_sealed(kMasterRank, MessageTag::kRoundFailed, failed.pack());
    ++stats_.rounds_failed;
    notify(MonitorEventKind::kRoundFailed, 0, -1);
    round_active_ = false;
    work_queue_.clear();
  }

  void broadcast_shutdown() {
    for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
      transport_.send(rank, MessageTag::kShutdown, {});
    }
    if (options_.notify_monitor && transport_.size() > kMonitorRank) {
      transport_.send(kMonitorRank, MessageTag::kShutdown, {});
    }
  }

  void notify(MonitorEventKind kind, std::uint64_t task_id, int worker,
              double cpu_seconds = 0.0) {
    if (!options_.notify_monitor || transport_.size() <= kMonitorRank) return;
    MonitorEvent event;
    event.kind = kind;
    event.round_id = round_.round_id;
    event.task_id = task_id;
    event.worker = worker;
    event.at_seconds = uptime_.seconds();
    event.cpu_seconds = cpu_seconds;
    send_sealed(kMonitorRank, MessageTag::kMonitorEvent, event.pack());
  }

  Transport& transport_;
  ForemanOptions options_;
  ForemanStats stats_;
  Timer uptime_;
  std::optional<TaskJournal> journal_;

  std::deque<TreeTask> work_queue_;
  std::deque<int> ready_;
  std::map<int, WorkerHealth> health_;
  std::map<int, DispatchRecord> in_flight_;
  RoundState round_;
  bool round_active_ = false;
  bool fabric_closed_ = false;
};

}  // namespace

ForemanStats foreman_main(Transport& transport, const ForemanOptions& options) {
  Foreman foreman(transport, options);
  return foreman.run();
}

}  // namespace fdml
