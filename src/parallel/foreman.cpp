#include "parallel/foreman.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "parallel/protocol.hpp"
#include "search/runner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

struct DispatchRecord {
  TreeTask task;
  Clock::time_point dispatched_at;
};

struct RoundState {
  std::uint64_t round_id = 0;
  std::size_t expected = 0;
  std::set<std::uint64_t> completed;
  TaskResult best;
  bool have_best = false;
  std::vector<TaskStat> stats;
  /// Serialized task size per task id, for the wire-bytes accounting.
  std::map<std::uint64_t, std::uint64_t> task_bytes;
};

class Foreman {
 public:
  Foreman(Transport& transport, const ForemanOptions& options)
      : transport_(transport), options_(options) {}

  ForemanStats run() {
    for (;;) {
      const auto message = receive();
      if (!message.has_value()) {
        // Either a worker deadline passed (handled inside receive) or the
        // fabric shut down under us.
        if (fabric_closed_ || transport_.closed()) break;
        continue;
      }
      switch (message->tag) {
        case MessageTag::kHello:
          mark_ready(message->source);
          notify(MonitorEventKind::kReinstate, 0, message->source);
          dispatch_ready();
          break;
        case MessageTag::kRound:
          begin_round(RoundMessage::unpack(message->payload));
          break;
        case MessageTag::kResult:
          handle_result(message->source, message->payload);
          break;
        case MessageTag::kShutdown:
          broadcast_shutdown();
          return stats_;
        default:
          FDML_WARN("foreman") << "unexpected tag "
                               << static_cast<int>(message->tag);
      }
    }
    return stats_;
  }

 private:
  /// Receives with a deadline derived from in-flight dispatch records;
  /// expires overdue workers before returning.
  std::optional<Message> receive() {
    std::optional<Message> message;
    if (in_flight_.empty()) {
      message = transport_.recv();
      if (!message.has_value()) fabric_closed_ = true;
      return message;
    }
    // Wait only until the earliest deadline.
    const auto now = Clock::now();
    Clock::time_point earliest = now + options_.worker_timeout;
    for (const auto& [worker, record] : in_flight_) {
      earliest = std::min(earliest, record.dispatched_at + options_.worker_timeout);
    }
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::max(earliest - now, Clock::duration::zero()));
    message = transport_.recv_for(wait + std::chrono::milliseconds(1));
    expire_overdue();
    return message;
  }

  void expire_overdue() {
    const auto now = Clock::now();
    std::vector<int> overdue;
    for (const auto& [worker, record] : in_flight_) {
      if (now - record.dispatched_at >= options_.worker_timeout) {
        overdue.push_back(worker);
      }
    }
    for (int worker : overdue) {
      auto it = in_flight_.find(worker);
      const TreeTask& task = it->second.task;
      // Requeue at the front so the oldest tree goes out first — but only if
      // the round still needs it; a copy of a completed (or stale-round)
      // task would just circulate through dispatch and expiry.
      const bool still_needed = round_active_ &&
                                task.round_id == round_.round_id &&
                                round_.completed.count(task.task_id) == 0;
      if (still_needed) {
        work_queue_.push_front(task);
        ++stats_.requeues;
        notify(MonitorEventKind::kRequeue, task.task_id, worker);
      }
      delinquent_.insert(worker);
      ++stats_.delinquencies;
      notify(MonitorEventKind::kDelinquent, task.task_id, worker);
      FDML_INFO("foreman") << "worker " << worker << " timed out"
                           << (still_needed ? "; requeued task " : "; dropped task ")
                           << task.task_id;
      in_flight_.erase(it);
    }
    dispatch_ready();
  }

  void begin_round(RoundMessage message) {
    // Anything still queued is a requeued copy of a task the previous round
    // already completed (the master opens a round only after RoundDone), so
    // drop it — under aggressive timeouts such copies otherwise circulate
    // through dispatch/expire forever and the work queue grows every round.
    work_queue_.clear();
    round_ = RoundState{};
    round_.round_id = message.round_id;
    round_.expected = message.tasks.size();
    round_active_ = true;
    ++stats_.rounds;
    notify(MonitorEventKind::kRoundBegin, 0, -1);
    for (TreeTask& task : message.tasks) {
      Packer packer;
      task.pack(packer);
      round_.task_bytes[task.task_id] = packer.size();
      work_queue_.push_back(std::move(task));
    }
    dispatch_ready();
  }

  void dispatch_ready() {
    while (!work_queue_.empty() && !ready_.empty()) {
      const int worker = ready_.front();
      ready_.pop_front();
      TreeTask task = std::move(work_queue_.front());
      work_queue_.pop_front();
      Packer packer;
      task.pack(packer);
      transport_.send(worker, MessageTag::kTask, packer.take());
      notify(MonitorEventKind::kDispatch, task.task_id, worker);
      ++stats_.tasks_dispatched;
      in_flight_[worker] = {std::move(task), Clock::now()};
    }
  }

  /// Returns the worker to the ready queue unless it still has a task in
  /// flight (its reply will ready it) or is already queued. Keeping this the
  /// single entry point to ready_ is what maintains the invariant that a
  /// worker appears at most once across ready_ and in_flight_.
  void mark_ready(int worker) {
    if (in_flight_.count(worker) != 0) return;
    if (std::find(ready_.begin(), ready_.end(), worker) != ready_.end()) return;
    ready_.push_back(worker);
  }

  void handle_result(int worker, const std::vector<std::uint8_t>& payload) {
    Unpacker unpacker(payload);
    TaskResult result = TaskResult::unpack(unpacker);
    result.worker = worker;

    const auto flight = in_flight_.find(worker);
    if (flight != in_flight_.end()) {
      if (flight->second.task.task_id == result.task_id) {
        in_flight_.erase(flight);
        mark_ready(worker);
      } else {
        // Stale reply for an earlier (requeued) task while a different task
        // is in flight to this worker. The worker is still busy: keep the
        // dispatch record and do NOT ready it — doing so used to double-book
        // the worker and silently drop the in-flight task when the record
        // was overwritten. The result itself may still complete the task
        // (accept() deduplicates), so fall through to accept below.
        ++stats_.mismatched_results;
        FDML_WARN("foreman") << "worker " << worker << " sent result for task "
                             << result.task_id << " while task "
                             << flight->second.task.task_id << " is in flight";
      }
    } else if (delinquent_.count(worker) != 0) {
      // The paper's reinstatement path: a delinquent worker finally replied.
      delinquent_.erase(worker);
      mark_ready(worker);
      ++stats_.reinstatements;
      notify(MonitorEventKind::kReinstate, result.task_id, worker);
    } else {
      mark_ready(worker);
    }

    accept(result, payload.size());
    dispatch_ready();
  }

  void accept(TaskResult& result, std::size_t result_bytes) {
    if (!round_active_ || result.round_id != round_.round_id ||
        round_.completed.count(result.task_id) != 0) {
      // Stale or duplicate (e.g. a requeued task completed twice).
      ++stats_.late_duplicate_results;
      return;
    }
    round_.completed.insert(result.task_id);
    // Drop every requeued copy still waiting in the queue — repeated
    // timeouts can have queued the same task more than once.
    work_queue_.erase(
        std::remove_if(work_queue_.begin(), work_queue_.end(),
                       [&](const TreeTask& task) {
                         return task.task_id == result.task_id;
                       }),
        work_queue_.end());
    TaskStat stat;
    stat.task_id = result.task_id;
    stat.cpu_seconds = result.cpu_seconds;
    stat.bytes = round_.task_bytes[result.task_id] + result_bytes;
    stat.worker = result.worker;
    round_.stats.push_back(stat);
    ++stats_.tasks_completed;
    notify(MonitorEventKind::kComplete, result.task_id, result.worker,
           result.cpu_seconds);

    if (!round_.have_best ||
        result.log_likelihood > round_.best.log_likelihood) {
      round_.best = std::move(result);
      round_.have_best = true;
    }

    if (round_.completed.size() == round_.expected) {
      RoundDoneMessage done;
      done.round_id = round_.round_id;
      done.best = round_.best;
      done.stats = std::move(round_.stats);
      transport_.send(kMasterRank, MessageTag::kRoundDone, done.pack());
      notify(MonitorEventKind::kRoundEnd, 0, -1);
      round_active_ = false;
    }
  }

  void broadcast_shutdown() {
    for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
      transport_.send(rank, MessageTag::kShutdown, {});
    }
    if (options_.notify_monitor && transport_.size() > kMonitorRank) {
      transport_.send(kMonitorRank, MessageTag::kShutdown, {});
    }
  }

  void notify(MonitorEventKind kind, std::uint64_t task_id, int worker,
              double cpu_seconds = 0.0) {
    if (!options_.notify_monitor || transport_.size() <= kMonitorRank) return;
    MonitorEvent event;
    event.kind = kind;
    event.round_id = round_.round_id;
    event.task_id = task_id;
    event.worker = worker;
    event.at_seconds = uptime_.seconds();
    event.cpu_seconds = cpu_seconds;
    transport_.send(kMonitorRank, MessageTag::kMonitorEvent, event.pack());
  }

  Transport& transport_;
  ForemanOptions options_;
  ForemanStats stats_;
  Timer uptime_;

  std::deque<TreeTask> work_queue_;
  std::deque<int> ready_;
  std::set<int> delinquent_;
  std::map<int, DispatchRecord> in_flight_;
  RoundState round_;
  bool round_active_ = false;
  bool fabric_closed_ = false;
};

}  // namespace

ForemanStats foreman_main(Transport& transport, const ForemanOptions& options) {
  Foreman foreman(transport, options);
  return foreman.run();
}

}  // namespace fdml
