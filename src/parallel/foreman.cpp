#include "parallel/foreman.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "comm/integrity.hpp"
#include "durable/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "search/runner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

/// TaskResult::worker value marking a result completed from the journal
/// rather than evaluated by a live worker this incarnation.
constexpr int kJournalWorker = -1;

/// Registry-backed counters replacing the old parallel ForemanStats
/// bookkeeping. ForemanStats is now a *view*: the delta of these counters
/// since the incarnation started, so a revived foreman still reports only
/// its own work while the registry accumulates whole-run totals.
struct ForemanCounters {
  obs::Counter& rounds;
  obs::Counter& tasks_dispatched;
  obs::Counter& tasks_completed;
  obs::Counter& requeues;
  obs::Counter& delinquencies;
  obs::Counter& reinstatements;
  obs::Counter& late_duplicate_results;
  obs::Counter& mismatched_results;
  obs::Counter& corrupt_messages;
  obs::Counter& quarantines;
  obs::Counter& probations;
  obs::Counter& probation_probes;
  obs::Counter& probation_passes;
  obs::Counter& probation_failures;
  obs::Counter& task_nacks;
  obs::Counter& rounds_failed;
  obs::Counter& unexpected_tags;
  obs::Counter& journal_replayed;
  obs::Counter& journal_appended;
  obs::Counter& journal_write_failures;
  obs::Counter& goodbyes_received;
  obs::Counter& heartbeat_pings;
  /// Worker-side kernel work accumulated from per-result deltas (registry
  /// only; not part of the ForemanStats view).
  obs::Counter& kernel_clv_computations;
  obs::Counter& kernel_edge_evaluations;
  obs::Counter& kernel_transition_hits;
  obs::Counter& kernel_transition_misses;

  explicit ForemanCounters(obs::MetricsRegistry& r)
      : rounds(r.counter("foreman.rounds")),
        tasks_dispatched(r.counter("foreman.tasks_dispatched")),
        tasks_completed(r.counter("foreman.tasks_completed")),
        requeues(r.counter("foreman.requeues")),
        delinquencies(r.counter("foreman.delinquencies")),
        reinstatements(r.counter("foreman.reinstatements")),
        late_duplicate_results(r.counter("foreman.late_duplicate_results")),
        mismatched_results(r.counter("foreman.mismatched_results")),
        corrupt_messages(r.counter("foreman.corrupt_messages")),
        quarantines(r.counter("foreman.quarantines")),
        probations(r.counter("foreman.probations")),
        probation_probes(r.counter("foreman.probation_probes")),
        probation_passes(r.counter("foreman.probation_passes")),
        probation_failures(r.counter("foreman.probation_failures")),
        task_nacks(r.counter("foreman.task_nacks")),
        rounds_failed(r.counter("foreman.rounds_failed")),
        unexpected_tags(r.counter("foreman.unexpected_tags")),
        journal_replayed(r.counter("foreman.journal_replayed")),
        journal_appended(r.counter("foreman.journal_appended")),
        journal_write_failures(r.counter("foreman.journal_write_failures")),
        goodbyes_received(r.counter("foreman.goodbyes_received")),
        heartbeat_pings(r.counter("foreman.heartbeat_pings")),
        kernel_clv_computations(r.counter("kernel.clv_computations")),
        kernel_edge_evaluations(r.counter("kernel.edge_evaluations")),
        kernel_transition_hits(r.counter("kernel.transition_hits")),
        kernel_transition_misses(r.counter("kernel.transition_misses")) {}

  ForemanStats read() const {
    ForemanStats s;
    s.rounds = rounds.value();
    s.tasks_dispatched = tasks_dispatched.value();
    s.tasks_completed = tasks_completed.value();
    s.requeues = requeues.value();
    s.delinquencies = delinquencies.value();
    s.reinstatements = reinstatements.value();
    s.late_duplicate_results = late_duplicate_results.value();
    s.mismatched_results = mismatched_results.value();
    s.corrupt_messages = corrupt_messages.value();
    s.quarantines = quarantines.value();
    s.probations = probations.value();
    s.probation_probes = probation_probes.value();
    s.probation_passes = probation_passes.value();
    s.probation_failures = probation_failures.value();
    s.task_nacks = task_nacks.value();
    s.rounds_failed = rounds_failed.value();
    s.unexpected_tags = unexpected_tags.value();
    s.journal_replayed = journal_replayed.value();
    s.journal_appended = journal_appended.value();
    s.journal_write_failures = journal_write_failures.value();
    s.goodbyes_received = goodbyes_received.value();
    s.heartbeat_pings = heartbeat_pings.value();
    return s;
  }
};

ForemanStats stats_delta(const ForemanStats& end, const ForemanStats& start) {
  ForemanStats d;
  d.rounds = end.rounds - start.rounds;
  d.tasks_dispatched = end.tasks_dispatched - start.tasks_dispatched;
  d.tasks_completed = end.tasks_completed - start.tasks_completed;
  d.requeues = end.requeues - start.requeues;
  d.delinquencies = end.delinquencies - start.delinquencies;
  d.reinstatements = end.reinstatements - start.reinstatements;
  d.late_duplicate_results =
      end.late_duplicate_results - start.late_duplicate_results;
  d.mismatched_results = end.mismatched_results - start.mismatched_results;
  d.corrupt_messages = end.corrupt_messages - start.corrupt_messages;
  d.quarantines = end.quarantines - start.quarantines;
  d.probations = end.probations - start.probations;
  d.probation_probes = end.probation_probes - start.probation_probes;
  d.probation_passes = end.probation_passes - start.probation_passes;
  d.probation_failures = end.probation_failures - start.probation_failures;
  d.task_nacks = end.task_nacks - start.task_nacks;
  d.rounds_failed = end.rounds_failed - start.rounds_failed;
  d.unexpected_tags = end.unexpected_tags - start.unexpected_tags;
  d.journal_replayed = end.journal_replayed - start.journal_replayed;
  d.journal_appended = end.journal_appended - start.journal_appended;
  d.journal_write_failures =
      end.journal_write_failures - start.journal_write_failures;
  d.goodbyes_received = end.goodbyes_received - start.goodbyes_received;
  d.heartbeat_pings = end.heartbeat_pings - start.heartbeat_pings;
  return d;
}

/// Worker health state machine (DESIGN.md "Worker health model"):
///   Healthy --timeout/corrupt--> Suspect/quarantine --reply--> Probation
///   Probation --probe ok--> Healthy; --probe timeout--> Suspect (backoff x2)
enum class WorkerState { kHealthy, kSuspect, kProbation };

struct WorkerHealth {
  WorkerState state = WorkerState::kHealthy;
  /// EWMA of observed task durations, driving the adaptive deadline.
  double ewma_ms = 0.0;
  bool has_ewma = false;
  /// Consecutive delinquencies/quarantines; doubles the probation backoff.
  int strikes = 0;
  /// Earliest time a probation probe may be dispatched.
  Clock::time_point eligible_at{};
  /// When the worker last went delinquent (feeds the all-dead grace window).
  Clock::time_point suspect_since{};
  /// In probation via new-round amnesty, i.e. without having been heard
  /// from since its delinquency — its first reply still counts as the
  /// paper's reinstatement.
  bool awaiting_contact = false;
};

struct DispatchRecord {
  TreeTask task;
  Clock::time_point dispatched_at;
  Clock::time_point deadline_at;
  bool probe = false;
};

struct RoundState {
  std::uint64_t round_id = 0;
  std::size_t expected = 0;
  std::set<std::uint64_t> completed;
  TaskResult best;
  bool have_best = false;
  std::vector<TaskStat> stats;
  /// Serialized task size per task id, for the wire-bytes accounting.
  std::map<std::uint64_t, std::uint64_t> task_bytes;
  /// Content digest per task id, and the round's content key: how journal
  /// entries recognise the same work after a restart renumbers everything.
  std::map<std::uint64_t, std::uint64_t> task_digest;
  std::uint64_t round_key = 0;
};

class Foreman {
 public:
  Foreman(Transport& transport, const ForemanOptions& options)
      : transport_(transport),
        options_(options),
        registry_(options.metrics != nullptr ? *options.metrics
                                             : obs::MetricsRegistry::process()),
        counters_(registry_),
        start_(counters_.read()) {}

  ForemanStats run() {
    obs::set_thread_name("foreman");
    if (!options_.journal_path.empty()) {
      journal_.emplace(options_.journal_path, options_.vfs);
      if (options_.journal_resume) {
        const std::size_t replayable = journal_->load();
        if (replayable > 0) {
          FDML_INFO("foreman") << "journal holds " << replayable
                               << " completed task(s) for replay";
        }
      } else {
        journal_->reset();
      }
    }
    if (options_.announce_ping) {
      // A revived foreman starts with no worker list; ask everyone to
      // re-introduce themselves.
      for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
        transport_.send(rank, MessageTag::kPing, {});
      }
    }
    if (options_.heartbeat_interval.count() > 0) {
      next_ping_ = Clock::now() + options_.heartbeat_interval;
    }
    if (options_.telemetry_interval.count() > 0) {
      telemetry_.emplace(registry_, transport_.rank());
      next_telemetry_ = Clock::now() + options_.telemetry_interval;
    }
    for (;;) {
      const auto message = receive();
      if (!message.has_value()) {
        // Either a deadline passed (handled inside receive) or the fabric
        // shut down under us.
        if (fabric_closed_ || transport_.closed()) break;
        continue;
      }
      switch (message->tag) {
        case MessageTag::kHello:
          handle_hello(message->source);
          break;
        case MessageTag::kRound:
          handle_round(message->source, message->payload);
          break;
        case MessageTag::kResult:
          handle_result(message->source, message->payload);
          break;
        case MessageTag::kNack:
          handle_nack(message->source);
          break;
        case MessageTag::kShutdown:
          broadcast_shutdown();
          collect_goodbyes();
          return finish();
        case MessageTag::kGoodbye:
          // A worker exiting early (it saw the fabric close or a direct
          // shutdown); take its report now rather than in the grace window.
          handle_goodbye(message->source, std::move(message->payload));
          break;
        default:
          counters_.unexpected_tags.add();
          FDML_WARN("foreman") << "unexpected tag "
                               << static_cast<int>(message->tag) << " from rank "
                               << message->source;
      }
    }
    return finish();
  }

 private:
  /// Receives with a deadline derived from in-flight dispatch records and
  /// probation eligibility; expires overdue workers before returning.
  std::optional<Message> receive() {
    check_round_viability();
    const auto wake = next_wake();
    std::optional<Message> message;
    if (!wake.has_value()) {
      message = transport_.recv();
      if (!message.has_value()) fabric_closed_ = true;
    } else {
      const auto now = Clock::now();
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::max(*wake - now, Clock::duration::zero()));
      message = transport_.recv_for(wait + std::chrono::milliseconds(1));
    }
    expire_overdue();
    maybe_heartbeat();
    maybe_emit_telemetry();
    dispatch_work();
    return message;
  }

  /// Ships the registry's delta since the previous frame to the master.
  /// Fires from the same event loop as the heartbeat, so an idle foreman
  /// still beacons — the aggregator reads silence as staleness.
  void maybe_emit_telemetry() {
    if (!telemetry_.has_value()) return;
    const auto now = Clock::now();
    if (now < next_telemetry_) return;
    next_telemetry_ = now + options_.telemetry_interval;
    auto payload = telemetry_->collect().pack();
    seal_payload(payload);
    transport_.send(kMasterRank, MessageTag::kTelemetry, std::move(payload));
  }

  /// Ping silent (never-helloed, e.g. restarted) and suspect workers so a
  /// live one re-introduces itself; its hello walks it into probation and,
  /// after a clean probe, back to the ready queue. Without this a worker
  /// whose connection was severed and transparently reconnected would stay
  /// exiled forever — nothing on its side knows a re-hello is owed.
  void maybe_heartbeat() {
    if (options_.heartbeat_interval.count() == 0) return;
    const auto now = Clock::now();
    if (now < next_ping_) return;
    next_ping_ = now + options_.heartbeat_interval;
    for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
      const auto it = health_.find(rank);
      const bool silent = it == health_.end();
      const bool suspect =
          !silent && it->second.state == WorkerState::kSuspect;
      if (!silent && !suspect) continue;
      counters_.heartbeat_pings.add();
      transport_.send(rank, MessageTag::kPing, {});
    }
  }

  /// Earliest of: an in-flight deadline, or a probation worker becoming
  /// eligible for a probe while work is waiting. nullopt = nothing pending,
  /// block indefinitely.
  std::optional<Clock::time_point> next_wake() const {
    std::optional<Clock::time_point> earliest;
    auto consider = [&](Clock::time_point t) {
      if (!earliest.has_value() || t < *earliest) earliest = t;
    };
    for (const auto& [worker, record] : in_flight_) consider(record.deadline_at);
    if (const auto declare = dead_declare_at()) consider(*declare);
    if (options_.heartbeat_interval.count() > 0) consider(next_ping_);
    if (telemetry_.has_value()) consider(next_telemetry_);
    if (round_active_ && !work_queue_.empty()) {
      for (const auto& [worker, health] : health_) {
        if (health.state == WorkerState::kProbation &&
            in_flight_.count(worker) == 0) {
          consider(health.eligible_at);
        }
      }
    }
    return earliest;
  }

  WorkerHealth& health(int worker) { return health_[worker]; }

  /// Adaptive per-worker deadline: EWMA x slack, clamped to
  /// [timeout_floor, worker_timeout]; flat worker_timeout before any
  /// observation or when adaptivity is off.
  Clock::duration deadline_for(int worker) {
    const WorkerHealth& h = health(worker);
    if (!options_.adaptive_timeouts || !h.has_ewma) return options_.worker_timeout;
    const auto adaptive = std::chrono::milliseconds(
        static_cast<std::int64_t>(h.ewma_ms * options_.timeout_slack));
    return std::min<std::chrono::milliseconds>(
        std::max<std::chrono::milliseconds>(adaptive, options_.timeout_floor),
        options_.worker_timeout);
  }

  Clock::duration backoff_for(int strikes) const {
    const int doublings = std::min(std::max(strikes - 1, 0), 16);
    const auto raw = options_.probation_backoff * (1LL << doublings);
    return std::min<std::chrono::milliseconds>(
        std::chrono::duration_cast<std::chrono::milliseconds>(raw),
        options_.probation_backoff_max);
  }

  void observe_duration(WorkerHealth& h, Clock::duration elapsed) {
    const double sample_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    constexpr double kAlpha = 0.3;
    h.ewma_ms = h.has_ewma ? kAlpha * sample_ms + (1.0 - kAlpha) * h.ewma_ms
                           : sample_ms;
    h.has_ewma = true;
  }

  void send_sealed(int dest, MessageTag tag, std::vector<std::uint8_t> payload) {
    seal_payload(payload);
    transport_.send(dest, tag, std::move(payload));
  }

  /// Requeues the record's task (when the round still needs it) and erases
  /// the record. Does NOT touch worker health; callers decide that.
  void requeue_record(std::map<int, DispatchRecord>::iterator it,
                      const char* why) {
    const int worker = it->first;
    const TreeTask& task = it->second.task;
    // Requeue at the front so the oldest tree goes out first — but only if
    // the round still needs it; a copy of a completed (or stale-round)
    // task would just circulate through dispatch and expiry.
    const bool still_needed = round_active_ &&
                              task.round_id == round_.round_id &&
                              round_.completed.count(task.task_id) == 0;
    if (still_needed) {
      work_queue_.push_front(task);
      counters_.requeues.add();
      notify(MonitorEventKind::kRequeue, task.task_id, worker);
      obs::instant("foreman", "requeue", "task",
                   static_cast<std::int64_t>(task.task_id), "worker", worker);
      trace_queue_depth();
    }
    FDML_INFO("foreman") << "worker " << worker << " " << why
                         << (still_needed ? "; requeued task " : "; dropped task ")
                         << task.task_id;
    in_flight_.erase(it);
  }

  void expire_overdue() {
    const auto now = Clock::now();
    std::vector<int> overdue;
    for (const auto& [worker, record] : in_flight_) {
      if (now >= record.deadline_at) overdue.push_back(worker);
    }
    for (int worker : overdue) {
      auto it = in_flight_.find(worker);
      const bool was_probe = it->second.probe;
      requeue_record(it, "timed out");
      WorkerHealth& h = health(worker);
      h.state = WorkerState::kSuspect;
      h.suspect_since = now;
      h.awaiting_contact = false;  // timed out again without a word
      ++h.strikes;
      counters_.delinquencies.add();
      if (was_probe) {
        counters_.probation_failures.add();
        notify(MonitorEventKind::kProbeFail, 0, worker);
        obs::instant("foreman", "probe_fail", "worker", worker);
      }
      notify(MonitorEventKind::kDelinquent, 0, worker);
      obs::instant("foreman", "delinquent", "worker", worker, "strikes",
                   h.strikes);
    }
  }

  /// Moves a worker into the probation queue: it will receive one probe
  /// task after its exponential backoff, and rejoins the ready queue only
  /// when the probe completes within its deadline. `task_id` labels the
  /// monitor event (the monitor treats task 0 as an initial hello).
  void enter_probation(int worker, bool quarantine, std::uint64_t task_id) {
    WorkerHealth& h = health(worker);
    h.state = WorkerState::kProbation;
    h.awaiting_contact = false;  // entered via an actual message
    if (h.strikes < 1) h.strikes = 1;
    h.eligible_at = Clock::now() + backoff_for(h.strikes);
    counters_.probations.add();
    if (quarantine) {
      counters_.quarantines.add();
    } else {
      // The paper's reinstatement path: a delinquent worker finally replied.
      counters_.reinstatements.add();
      notify(MonitorEventKind::kReinstate, task_id, worker);
    }
    notify(MonitorEventKind::kProbation, task_id, worker);
    obs::instant("foreman", quarantine ? "quarantine" : "probation", "worker",
                 worker, "strikes", h.strikes);
  }

  /// Malformed payload: count, quarantine a worker sender, never die.
  void handle_corrupt(int sender) {
    counters_.corrupt_messages.add();
    notify(MonitorEventKind::kCorrupt, 0, sender);
    obs::instant("foreman", "corrupt", "worker", sender);
    FDML_WARN("foreman") << "malformed payload from rank " << sender;
    if (sender < kFirstWorkerRank) return;  // master/monitor: count only
    if (auto it = in_flight_.find(sender); it != in_flight_.end()) {
      requeue_record(it, "sent a corrupt payload");
    }
    ready_.erase(std::remove(ready_.begin(), ready_.end(), sender), ready_.end());
    ++health(sender).strikes;
    enter_probation(sender, /*quarantine=*/true, 0);
    dispatch_work();
  }

  void handle_hello(int worker) {
    WorkerHealth& h = health(worker);
    if (h.state == WorkerState::kSuspect) {
      enter_probation(worker, /*quarantine=*/false, 0);
    } else if (h.state == WorkerState::kHealthy) {
      mark_ready(worker);
      notify(MonitorEventKind::kReinstate, 0, worker);
    }
    dispatch_work();
  }

  void handle_round(int source, std::vector<std::uint8_t> payload) {
    if (!open_payload(payload)) {
      handle_corrupt(source);
      return;
    }
    RoundMessage message;
    try {
      message = RoundMessage::unpack(payload);
    } catch (const std::exception&) {
      handle_corrupt(source);
      return;
    }
    begin_round(std::move(message));
  }

  void begin_round(RoundMessage message) {
    // Anything still queued is a requeued copy of a task the previous round
    // already completed (the master opens a round only after RoundDone), so
    // drop it — under aggressive timeouts such copies otherwise circulate
    // through dispatch/expire forever and the work queue grows every round.
    work_queue_.clear();
    round_ = RoundState{};
    round_.round_id = message.round_id;
    round_.expected = message.tasks.size();
    round_active_ = true;
    // New-round amnesty: a suspect never gets dispatched to and an idle
    // worker never speaks unprompted, so without this a single dropped
    // reply would exile a live worker for the rest of the run. Give
    // lightly-struck suspects one probe; leave the rest suspect so a dead
    // fabric still fails the round quickly.
    for (auto& [worker, h] : health_) {
      if (h.state == WorkerState::kSuspect &&
          h.strikes <= options_.amnesty_max_strikes) {
        h.state = WorkerState::kProbation;
        h.eligible_at = Clock::now() + backoff_for(h.strikes);
        h.awaiting_contact = true;
        counters_.probations.add();
        notify(MonitorEventKind::kProbation, 0, worker);
        obs::instant("foreman", "probation", "worker", worker, "strikes",
                     h.strikes);
      }
    }
    counters_.rounds.add();
    notify(MonitorEventKind::kRoundBegin, 0, -1);
    begin_round_span(round_.round_id, static_cast<std::int64_t>(round_.expected));
    std::vector<std::uint64_t> digests;
    digests.reserve(message.tasks.size());
    for (TreeTask& task : message.tasks) {
      Packer packer;
      task.pack(packer);
      round_.task_bytes[task.task_id] = packer.size();
      const std::uint64_t digest = task_content_digest(
          task.newick, task.focus_taxon, task.smooth_passes);
      round_.task_digest[task.task_id] = digest;
      digests.push_back(digest);
      work_queue_.push_back(std::move(task));
    }
    round_.round_key = round_content_key(digests);
    trace_queue_depth();
    replay_journal();
    dispatch_work();
  }

  /// Completes from the journal every task of the new round that a previous
  /// foreman incarnation already finished. Identity is by content (digest +
  /// round key), so a restarted master's renumbered round still matches.
  void replay_journal() {
    if (!journal_.has_value() || journal_->size() == 0) return;
    // accept() mutates the queue (erasing completed copies), so snapshot
    // the (task_id, digest) pairs first.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pending;
    for (const TreeTask& task : work_queue_) {
      pending.emplace_back(task.task_id, round_.task_digest[task.task_id]);
    }
    for (const auto& [task_id, digest] : pending) {
      const JournalEntry* entry = journal_->find(round_.round_key, digest);
      if (entry == nullptr) continue;
      TaskResult replayed;
      replayed.task_id = task_id;
      replayed.round_id = round_.round_id;
      replayed.log_likelihood = entry->log_likelihood;
      replayed.newick = entry->newick;
      replayed.cpu_seconds = entry->cpu_seconds;
      replayed.worker = kJournalWorker;
      counters_.journal_replayed.add();
      FDML_INFO("foreman") << "replaying task " << task_id
                           << " from the journal";
      accept(replayed, 0);
      if (!round_active_) break;  // the journal alone finished the round
    }
  }

  void dispatch_to(int worker, bool probe) {
    TreeTask task = std::move(work_queue_.front());
    work_queue_.pop_front();
    Packer packer;
    task.pack(packer);
    send_sealed(worker, MessageTag::kTask, packer.take());
    notify(MonitorEventKind::kDispatch, task.task_id, worker);
    counters_.tasks_dispatched.add();
    // Flow-begin on the foreman side of the dispatch->execute->result arc;
    // the worker's execute span adds the step and accept() closes it.
    obs::flow(obs::Phase::kFlowBegin,
              obs::task_flow_id(task.round_id, task.task_id), "worker", worker);
    trace_queue_depth();
    const auto now = Clock::now();
    in_flight_[worker] = {std::move(task), now, now + deadline_for(worker), probe};
  }

  void dispatch_work() {
    while (!work_queue_.empty() && !ready_.empty()) {
      const int worker = ready_.front();
      ready_.pop_front();
      dispatch_to(worker, /*probe=*/false);
    }
    if (work_queue_.empty()) return;
    // Probation: one probe task per eligible worker; passing it is the only
    // way back into the ready queue.
    const auto now = Clock::now();
    for (auto& [worker, h] : health_) {
      if (work_queue_.empty()) break;
      if (h.state != WorkerState::kProbation) continue;
      if (in_flight_.count(worker) != 0) continue;
      if (now < h.eligible_at) continue;
      counters_.probation_probes.add();
      notify(MonitorEventKind::kProbation, work_queue_.front().task_id, worker);
      dispatch_to(worker, /*probe=*/true);
    }
  }

  /// Returns the worker to the ready queue unless it is unhealthy, still
  /// has a task in flight (its reply will ready it) or is already queued.
  /// Keeping this the single entry point to ready_ is what maintains the
  /// invariant that a worker appears at most once across ready_ and
  /// in_flight_.
  void mark_ready(int worker) {
    if (health(worker).state != WorkerState::kHealthy) return;
    if (in_flight_.count(worker) != 0) return;
    if (std::find(ready_.begin(), ready_.end(), worker) != ready_.end()) return;
    ready_.push_back(worker);
  }

  /// A worker reports its task payload arrived malformed: requeue the task
  /// (the foreman's pristine copy re-serializes cleanly) and keep the
  /// worker in rotation — the corruption happened in transit, not in it.
  void handle_nack(int worker) {
    counters_.task_nacks.add();
    notify(MonitorEventKind::kNack, 0, worker);
    obs::instant("foreman", "nack", "worker", worker);
    if (auto it = in_flight_.find(worker); it != in_flight_.end()) {
      requeue_record(it, "rejected a malformed task");
    }
    if (health(worker).state == WorkerState::kSuspect) {
      enter_probation(worker, /*quarantine=*/false, 0);
    } else {
      mark_ready(worker);
    }
    dispatch_work();
  }

  void handle_result(int worker, std::vector<std::uint8_t> payload) {
    if (!open_payload(payload)) {
      handle_corrupt(worker);
      return;
    }
    TaskResult result;
    try {
      Unpacker unpacker(payload);
      result = TaskResult::unpack(unpacker);
      if (!unpacker.exhausted()) throw std::runtime_error("trailing bytes");
    } catch (const std::exception&) {
      handle_corrupt(worker);
      return;
    }
    result.worker = worker;

    WorkerHealth& h = health(worker);
    if (h.awaiting_contact) {
      // First word from a worker that a new-round amnesty moved to
      // probation while it was still silent: this reply IS the paper's
      // "response received from the delinquent worker". Probation still
      // gates its re-entry, but the reinstatement is counted here, where
      // the contact actually happened.
      h.awaiting_contact = false;
      counters_.reinstatements.add();
      notify(MonitorEventKind::kReinstate, result.task_id, worker);
      obs::instant("foreman", "reinstate", "worker", worker);
    }
    const auto flight = in_flight_.find(worker);
    if (flight != in_flight_.end()) {
      if (flight->second.task.task_id == result.task_id) {
        observe_duration(h, Clock::now() - flight->second.dispatched_at);
        const bool was_probe = flight->second.probe;
        in_flight_.erase(flight);
        if (was_probe) {
          h.state = WorkerState::kHealthy;
          h.strikes = 0;
          counters_.probation_passes.add();
          notify(MonitorEventKind::kProbePass, result.task_id, worker);
          obs::instant("foreman", "probe_pass", "worker", worker);
        } else {
          h.strikes = 0;
        }
        mark_ready(worker);
      } else {
        // Stale reply for an earlier (requeued) task while a different task
        // is in flight to this worker. The worker is still busy: keep the
        // dispatch record and do NOT ready it — doing so used to double-book
        // the worker and silently drop the in-flight task when the record
        // was overwritten. The result itself may still complete the task
        // (accept() deduplicates), so fall through to accept below.
        counters_.mismatched_results.add();
        FDML_WARN("foreman") << "worker " << worker << " sent result for task "
                             << result.task_id << " while task "
                             << flight->second.task.task_id << " is in flight";
      }
    } else if (h.state == WorkerState::kSuspect) {
      // A delinquent worker finally replied: probation, not unconditional
      // reinstatement. Its result may still complete the task below.
      enter_probation(worker, /*quarantine=*/false, result.task_id);
    } else if (h.state == WorkerState::kHealthy) {
      mark_ready(worker);
    }
    // kProbation with no record: a stale duplicate while awaiting its
    // probe — accept the data, leave the health state alone.

    accept(result, payload.size());
    dispatch_work();
  }

  void accept(TaskResult& result, std::size_t result_bytes) {
    if (!round_active_ || result.round_id != round_.round_id ||
        round_.completed.count(result.task_id) != 0) {
      // Stale or duplicate (e.g. a requeued task completed twice).
      counters_.late_duplicate_results.add();
      return;
    }
    round_.completed.insert(result.task_id);
    if (result.worker != kJournalWorker) {
      obs::flow(obs::Phase::kFlowEnd,
                obs::task_flow_id(result.round_id, result.task_id), "worker",
                result.worker);
      // Per-worker kernel attribution from the result's counter deltas (the
      // goodbye report supersedes these with authoritative lifetime totals).
      WorkerKernelReport& acc = worker_accum_[result.worker];
      acc.worker = result.worker;
      if (!acc.reported) {
        ++acc.tasks_evaluated;
        acc.cpu_seconds += result.cpu_seconds;
        acc.clv_computations += result.clv_computations;
        acc.edge_evaluations += result.edge_evaluations;
        acc.transition_hits += result.transition_hits;
        acc.transition_misses += result.transition_misses;
      }
      counters_.kernel_clv_computations.add(result.clv_computations);
      counters_.kernel_edge_evaluations.add(result.edge_evaluations);
      counters_.kernel_transition_hits.add(result.transition_hits);
      counters_.kernel_transition_misses.add(result.transition_misses);
    }
    // Drop every requeued copy still waiting in the queue — repeated
    // timeouts can have queued the same task more than once.
    work_queue_.erase(
        std::remove_if(work_queue_.begin(), work_queue_.end(),
                       [&](const TreeTask& task) {
                         return task.task_id == result.task_id;
                       }),
        work_queue_.end());
    TaskStat stat;
    stat.task_id = result.task_id;
    stat.cpu_seconds = result.cpu_seconds;
    stat.bytes = round_.task_bytes[result.task_id] + result_bytes;
    stat.worker = result.worker;
    round_.stats.push_back(stat);
    counters_.tasks_completed.add();
    trace_queue_depth();
    notify(MonitorEventKind::kComplete, result.task_id, result.worker,
           result.cpu_seconds);

    // Write-ahead: the completion is durably journaled before it can decide
    // the round, so a crash after this point never loses it. Replayed
    // results are already on disk; re-appending them would grow the file
    // every restart.
    if (journal_.has_value() && result.worker != kJournalWorker) {
      JournalEntry entry;
      entry.round_key = round_.round_key;
      entry.task_digest = round_.task_digest[result.task_id];
      entry.log_likelihood = result.log_likelihood;
      entry.newick = result.newick;
      entry.cpu_seconds = result.cpu_seconds;
      try {
        journal_->append(entry);
        counters_.journal_appended.add();
      } catch (const std::exception& error) {
        // A failed WAL append only weakens crash recovery; the round
        // itself must proceed.
        counters_.journal_write_failures.add();
        FDML_WARN("foreman") << "journal append failed: " << error.what();
      }
    }

    // Ties break toward the lowest task id — the order a serial run would
    // have kept — so the round winner is independent of completion order
    // and a chaos-scheduled run reproduces the fault-free tree exactly.
    const bool better =
        !round_.have_best ||
        result.log_likelihood > round_.best.log_likelihood ||
        (result.log_likelihood == round_.best.log_likelihood &&
         result.task_id < round_.best.task_id);
    if (better) {
      round_.best = std::move(result);
      round_.have_best = true;
    }

    ProgressMessage progress;
    progress.round_id = round_.round_id;
    progress.completed = round_.completed.size();
    progress.expected = round_.expected;
    send_sealed(kMasterRank, MessageTag::kProgress, progress.pack());

    if (round_.completed.size() == round_.expected) {
      RoundDoneMessage done;
      done.round_id = round_.round_id;
      done.best = round_.best;
      done.stats = std::move(round_.stats);
      send_sealed(kMasterRank, MessageTag::kRoundDone, done.pack());
      notify(MonitorEventKind::kRoundEnd, 0, -1);
      end_round_span(static_cast<std::int64_t>(round_.completed.size()));
      round_active_ = false;
    }
  }

  /// When the round is stuck — work waiting, nothing in flight, every known
  /// worker suspect — the instant it may be declared dead: one extra flat
  /// worker_timeout of silence after the newest delinquency. The grace
  /// window is what separates "all workers are slow" (a late reply still
  /// reinstates, the paper's behavior) from "all workers are gone".
  std::optional<Clock::time_point> dead_declare_at() const {
    if (!round_active_ || work_queue_.empty() || !in_flight_.empty()) {
      return std::nullopt;
    }
    if (health_.empty()) return std::nullopt;  // nobody ever said hello;
                                               // the master watchdog covers
    Clock::time_point newest{};
    for (const auto& [worker, h] : health_) {
      if (h.state != WorkerState::kSuspect) return std::nullopt;
      newest = std::max(newest, h.suspect_since);
    }
    return newest + options_.worker_timeout;
  }

  /// All-workers-dead detection: tell the master the round cannot finish so
  /// it can degrade to in-process evaluation instead of waiting forever.
  void check_round_viability() {
    const auto declare = dead_declare_at();
    if (!declare.has_value() || Clock::now() < *declare) return;
    FDML_WARN("foreman") << "round " << round_.round_id
                         << " unfinishable: all " << health_.size()
                         << " known workers are delinquent";
    RoundFailedMessage failed;
    failed.round_id = round_.round_id;
    failed.reason = "all workers delinquent";
    send_sealed(kMasterRank, MessageTag::kRoundFailed, failed.pack());
    counters_.rounds_failed.add();
    notify(MonitorEventKind::kRoundFailed, 0, -1);
    obs::instant("foreman", "round_failed", "round",
                 static_cast<std::int64_t>(round_.round_id));
    end_round_span(static_cast<std::int64_t>(round_.completed.size()));
    round_active_ = false;
    work_queue_.clear();
    trace_queue_depth();
  }

  void broadcast_shutdown() {
    for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
      transport_.send(rank, MessageTag::kShutdown, {});
    }
    if (options_.notify_monitor && transport_.size() > kMonitorRank) {
      transport_.send(kMonitorRank, MessageTag::kShutdown, {});
    }
  }

  /// After shutdown is broadcast, wait a short grace window for goodbye
  /// reports from every worker we ever heard from. A crashed worker's
  /// report never arrives; the per-result accumulation already collected
  /// its task-level numbers, so the wait is bounded and best-effort.
  void collect_goodbyes() {
    if (options_.goodbye_timeout.count() <= 0 || health_.empty()) return;
    std::set<int> pending;
    for (const auto& [worker, h] : health_) pending.insert(worker);
    const auto deadline = Clock::now() + options_.goodbye_timeout;
    while (!pending.empty()) {
      const auto now = Clock::now();
      if (now >= deadline) break;
      auto message = transport_.recv_for(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now) +
          std::chrono::milliseconds(1));
      if (!message.has_value()) {
        if (transport_.closed()) break;
        continue;
      }
      if (message->tag != MessageTag::kGoodbye) continue;  // late results etc.
      if (handle_goodbye(message->source, std::move(message->payload))) {
        pending.erase(message->source);
      }
    }
  }

  /// Decodes and absorbs one goodbye report; false on a corrupt payload.
  bool handle_goodbye(int source, std::vector<std::uint8_t> payload) {
    if (!open_payload(payload)) {
      counters_.corrupt_messages.add();
      return false;
    }
    WorkerReportMessage report;
    try {
      report = WorkerReportMessage::unpack(payload);
    } catch (const std::exception&) {
      counters_.corrupt_messages.add();
      return false;
    }
    counters_.goodbyes_received.add();
    WorkerKernelReport& acc = worker_accum_[source];
    acc.worker = source;
    acc.reported = true;
    acc.tasks_evaluated = report.tasks_evaluated;
    acc.cpu_seconds = report.cpu_seconds;
    acc.corrupt_tasks = report.corrupt_tasks;
    acc.clv_computations = report.clv_computations;
    acc.clv_rescales = report.clv_rescales;
    acc.edge_captures = report.edge_captures;
    acc.edge_evaluations = report.edge_evaluations;
    acc.transition_hits = report.transition_hits;
    acc.transition_misses = report.transition_misses;
    acc.transition_evictions = report.transition_evictions;
    // Publish the worker's lifetime totals under its own registry prefix
    // (one goodbye per worker per run, so add() never double-counts).
    const std::string prefix = "worker." + std::to_string(source) + ".";
    registry_.counter(prefix + "tasks_evaluated").add(report.tasks_evaluated);
    registry_.counter(prefix + "clv_computations").add(report.clv_computations);
    registry_.counter(prefix + "edge_evaluations").add(report.edge_evaluations);
    registry_.counter(prefix + "transition_hits").add(report.transition_hits);
    registry_.counter(prefix + "transition_misses")
        .add(report.transition_misses);
    registry_.counter(prefix + "transition_evictions")
        .add(report.transition_evictions);
    obs::instant("foreman", "goodbye", "worker", source, "tasks",
                 static_cast<std::int64_t>(report.tasks_evaluated));
    return true;
  }

  /// The incarnation's final stats: counter deltas plus per-worker reports.
  ForemanStats finish() {
    if (round_span_open_) end_round_span(
        static_cast<std::int64_t>(round_.completed.size()));
    ForemanStats stats = stats_delta(counters_.read(), start_);
    stats.worker_reports.reserve(worker_accum_.size());
    for (const auto& [worker, report] : worker_accum_) {
      stats.worker_reports.push_back(report);
    }
    return stats;
  }

  void begin_round_span(std::uint64_t round_id, std::int64_t expected) {
    if (round_span_open_) end_round_span(0);  // keep B/E balanced
    round_span_open_ = true;
    obs::TraceEvent e;
    e.cat = "foreman";
    e.name = "round";
    e.ph = obs::Phase::kBegin;
    e.arg0_name = "round";
    e.arg0 = static_cast<std::int64_t>(round_id);
    e.arg1_name = "tasks";
    e.arg1 = expected;
    obs::emit(e);
  }

  void end_round_span(std::int64_t completed) {
    round_span_open_ = false;
    obs::TraceEvent e;
    e.cat = "foreman";
    e.name = "round";
    e.ph = obs::Phase::kEnd;
    e.arg0_name = "completed";
    e.arg0 = completed;
    obs::emit(e);
  }

  void trace_queue_depth() {
    obs::counter("queue_depth", static_cast<std::int64_t>(work_queue_.size()));
  }

  void notify(MonitorEventKind kind, std::uint64_t task_id, int worker,
              double cpu_seconds = 0.0) {
    if (!options_.notify_monitor || transport_.size() <= kMonitorRank) return;
    MonitorEvent event;
    event.kind = kind;
    event.round_id = round_.round_id;
    event.task_id = task_id;
    event.worker = worker;
    event.at_seconds = uptime_.seconds();
    event.cpu_seconds = cpu_seconds;
    send_sealed(kMonitorRank, MessageTag::kMonitorEvent, event.pack());
  }

  Transport& transport_;
  ForemanOptions options_;
  obs::MetricsRegistry& registry_;
  ForemanCounters counters_;
  /// Counter values at construction; the stats view subtracts these.
  ForemanStats start_;
  std::map<int, WorkerKernelReport> worker_accum_;
  bool round_span_open_ = false;
  Timer uptime_;
  std::optional<TaskJournal> journal_;

  std::deque<TreeTask> work_queue_;
  std::deque<int> ready_;
  std::map<int, WorkerHealth> health_;
  std::map<int, DispatchRecord> in_flight_;
  RoundState round_;
  bool round_active_ = false;
  bool fabric_closed_ = false;
  /// Next heartbeat ping due time (heartbeat_interval > 0 only).
  Clock::time_point next_ping_{};
  /// Telemetry plane (telemetry_interval > 0 only): periodic registry
  /// deltas to the master.
  std::optional<obs::TelemetryEmitter> telemetry_;
  Clock::time_point next_telemetry_{};
};

}  // namespace

ForemanStats foreman_main(Transport& transport, const ForemanOptions& options) {
  Foreman foreman(transport, options);
  return foreman.run();
}

}  // namespace fdml
