#include "parallel/foreman.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "parallel/protocol.hpp"
#include "search/runner.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

struct DispatchRecord {
  TreeTask task;
  Clock::time_point dispatched_at;
};

struct RoundState {
  std::uint64_t round_id = 0;
  std::size_t expected = 0;
  std::set<std::uint64_t> completed;
  TaskResult best;
  bool have_best = false;
  std::vector<TaskStat> stats;
  /// Serialized task size per task id, for the wire-bytes accounting.
  std::map<std::uint64_t, std::uint64_t> task_bytes;
};

class Foreman {
 public:
  Foreman(Transport& transport, const ForemanOptions& options)
      : transport_(transport), options_(options) {}

  ForemanStats run() {
    for (;;) {
      const auto message = receive();
      if (!message.has_value()) {
        // Either a worker deadline passed (handled inside receive) or the
        // fabric shut down under us.
        if (fabric_closed_ || transport_.closed()) break;
        continue;
      }
      switch (message->tag) {
        case MessageTag::kHello:
          ready_.push_back(message->source);
          notify(MonitorEventKind::kReinstate, 0, message->source);
          dispatch_ready();
          break;
        case MessageTag::kRound:
          begin_round(RoundMessage::unpack(message->payload));
          break;
        case MessageTag::kResult:
          handle_result(message->source, message->payload);
          break;
        case MessageTag::kShutdown:
          broadcast_shutdown();
          return stats_;
        default:
          FDML_WARN("foreman") << "unexpected tag "
                               << static_cast<int>(message->tag);
      }
    }
    return stats_;
  }

 private:
  /// Receives with a deadline derived from in-flight dispatch records;
  /// expires overdue workers before returning.
  std::optional<Message> receive() {
    std::optional<Message> message;
    if (in_flight_.empty()) {
      message = transport_.recv();
      if (!message.has_value()) fabric_closed_ = true;
      return message;
    }
    // Wait only until the earliest deadline.
    const auto now = Clock::now();
    Clock::time_point earliest = now + options_.worker_timeout;
    for (const auto& [worker, record] : in_flight_) {
      earliest = std::min(earliest, record.dispatched_at + options_.worker_timeout);
    }
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::max(earliest - now, Clock::duration::zero()));
    message = transport_.recv_for(wait + std::chrono::milliseconds(1));
    expire_overdue();
    return message;
  }

  void expire_overdue() {
    const auto now = Clock::now();
    std::vector<int> overdue;
    for (const auto& [worker, record] : in_flight_) {
      if (now - record.dispatched_at >= options_.worker_timeout) {
        overdue.push_back(worker);
      }
    }
    for (int worker : overdue) {
      auto it = in_flight_.find(worker);
      // Requeue at the front so the oldest tree goes out first.
      work_queue_.push_front(it->second.task);
      delinquent_.insert(worker);
      ++stats_.requeues;
      ++stats_.delinquencies;
      notify(MonitorEventKind::kRequeue, it->second.task.task_id, worker);
      notify(MonitorEventKind::kDelinquent, it->second.task.task_id, worker);
      FDML_INFO("foreman") << "worker " << worker << " timed out; requeued task "
                           << it->second.task.task_id;
      in_flight_.erase(it);
    }
    dispatch_ready();
  }

  void begin_round(RoundMessage message) {
    round_ = RoundState{};
    round_.round_id = message.round_id;
    round_.expected = message.tasks.size();
    round_active_ = true;
    ++stats_.rounds;
    notify(MonitorEventKind::kRoundBegin, 0, -1);
    for (TreeTask& task : message.tasks) {
      Packer packer;
      task.pack(packer);
      round_.task_bytes[task.task_id] = packer.size();
      work_queue_.push_back(std::move(task));
    }
    dispatch_ready();
  }

  void dispatch_ready() {
    while (!work_queue_.empty() && !ready_.empty()) {
      const int worker = ready_.front();
      ready_.pop_front();
      TreeTask task = std::move(work_queue_.front());
      work_queue_.pop_front();
      Packer packer;
      task.pack(packer);
      transport_.send(worker, MessageTag::kTask, packer.take());
      notify(MonitorEventKind::kDispatch, task.task_id, worker);
      ++stats_.tasks_dispatched;
      in_flight_[worker] = {std::move(task), Clock::now()};
    }
  }

  void handle_result(int worker, const std::vector<std::uint8_t>& payload) {
    Unpacker unpacker(payload);
    TaskResult result = TaskResult::unpack(unpacker);
    result.worker = worker;

    const auto flight = in_flight_.find(worker);
    if (flight != in_flight_.end() &&
        flight->second.task.task_id == result.task_id) {
      in_flight_.erase(flight);
      ready_.push_back(worker);
    } else if (delinquent_.count(worker) != 0) {
      // The paper's reinstatement path: a delinquent worker finally replied.
      delinquent_.erase(worker);
      ready_.push_back(worker);
      ++stats_.reinstatements;
      notify(MonitorEventKind::kReinstate, result.task_id, worker);
    } else {
      ready_.push_back(worker);
    }

    accept(result, payload.size());
    dispatch_ready();
  }

  void accept(TaskResult& result, std::size_t result_bytes) {
    if (!round_active_ || result.round_id != round_.round_id ||
        round_.completed.count(result.task_id) != 0) {
      // Stale or duplicate (e.g. a requeued task completed twice).
      ++stats_.late_duplicate_results;
      return;
    }
    round_.completed.insert(result.task_id);
    // If a requeued copy is still waiting in the queue, drop it.
    for (auto it = work_queue_.begin(); it != work_queue_.end(); ++it) {
      if (it->task_id == result.task_id) {
        work_queue_.erase(it);
        break;
      }
    }
    TaskStat stat;
    stat.task_id = result.task_id;
    stat.cpu_seconds = result.cpu_seconds;
    stat.bytes = round_.task_bytes[result.task_id] + result_bytes;
    stat.worker = result.worker;
    round_.stats.push_back(stat);
    ++stats_.tasks_completed;
    notify(MonitorEventKind::kComplete, result.task_id, result.worker,
           result.cpu_seconds);

    if (!round_.have_best ||
        result.log_likelihood > round_.best.log_likelihood) {
      round_.best = std::move(result);
      round_.have_best = true;
    }

    if (round_.completed.size() == round_.expected) {
      RoundDoneMessage done;
      done.round_id = round_.round_id;
      done.best = round_.best;
      done.stats = std::move(round_.stats);
      transport_.send(kMasterRank, MessageTag::kRoundDone, done.pack());
      notify(MonitorEventKind::kRoundEnd, 0, -1);
      round_active_ = false;
    }
  }

  void broadcast_shutdown() {
    for (int rank = kFirstWorkerRank; rank < transport_.size(); ++rank) {
      transport_.send(rank, MessageTag::kShutdown, {});
    }
    if (options_.notify_monitor && transport_.size() > kMonitorRank) {
      transport_.send(kMonitorRank, MessageTag::kShutdown, {});
    }
  }

  void notify(MonitorEventKind kind, std::uint64_t task_id, int worker,
              double cpu_seconds = 0.0) {
    if (!options_.notify_monitor || transport_.size() <= kMonitorRank) return;
    MonitorEvent event;
    event.kind = kind;
    event.round_id = round_.round_id;
    event.task_id = task_id;
    event.worker = worker;
    event.at_seconds = uptime_.seconds();
    event.cpu_seconds = cpu_seconds;
    transport_.send(kMonitorRank, MessageTag::kMonitorEvent, event.pack());
  }

  Transport& transport_;
  ForemanOptions options_;
  ForemanStats stats_;
  Timer uptime_;

  std::deque<TreeTask> work_queue_;
  std::deque<int> ready_;
  std::set<int> delinquent_;
  std::map<int, DispatchRecord> in_flight_;
  RoundState round_;
  bool round_active_ = false;
  bool fabric_closed_ = false;
};

}  // namespace

ForemanStats foreman_main(Transport& transport, const ForemanOptions& options) {
  Foreman foreman(transport, options);
  return foreman.run();
}

}  // namespace fdml
