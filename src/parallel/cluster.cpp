#include "parallel/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/protocol.hpp"

namespace fdml {

InProcessCluster::InProcessCluster(const PatternAlignment& data,
                                   SubstModel model, RateModel rates,
                                   ClusterOptions options)
    : options_(std::move(options)),
      fabric_(kFirstWorkerRank + options_.num_workers) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("cluster: need at least one worker");
  }
  if (options_.chaos.has_value() || options_.chaos_foreman.has_value()) {
    chaos_totals_ = std::make_shared<ChaosTotals>();
  }
  // The calling thread plays the master role.
  obs::set_thread_name("master");

  // Every role shares the cluster's registry unless the caller supplied
  // its own; role stats stay per-incarnation deltas over it.
  if (options_.master.metrics == nullptr) options_.master.metrics = &metrics_;
  if (options_.foreman.metrics == nullptr) options_.foreman.metrics = &metrics_;

  master_endpoint_ = fabric_.endpoint(kMasterRank);
  master_ = std::make_unique<ParallelMaster>(*master_endpoint_,
                                             options_.num_workers,
                                             options_.master);
  // Degraded mode: when the parallel fabric cannot finish a round (all
  // workers dead, foreman wedged), evaluate it in-process — same evaluator
  // the workers run, so the search result is unchanged.
  master_->set_fallback([this, &data, model, rates](
                            const std::vector<TreeTask>& tasks) {
    if (!serial_fallback_) {
      serial_fallback_ = std::make_unique<SerialTaskRunner>(
          data, model, rates, options_.optimize);
    }
    return serial_fallback_->run_round(tasks);
  });

  // Process-level crash recovery: between round retries, check whether the
  // foreman died and stand up a replacement (see revive_foreman).
  master_->set_reviver([this] { return revive_foreman(); });

  // Foreman thread.
  spawn_foreman(options_.foreman, /*with_chaos=*/true);
  // Monitor thread.
  threads_.emplace_back([this] {
    auto endpoint = fabric_.endpoint(kMonitorRank);
    monitor_main(*endpoint, board_);
  });
  // Worker threads.
  for (int w = 0; w < options_.num_workers; ++w) {
    const int rank = kFirstWorkerRank + w;
    threads_.emplace_back([this, rank, &data, model, rates] {
      std::unique_ptr<Transport> endpoint = fabric_.endpoint(rank);
      if (options_.chaos.has_value()) {
        endpoint = std::make_unique<ChaosTransport>(
            std::move(endpoint), *options_.chaos, chaos_totals_);
      }
      if (options_.wrap_worker_transport) {
        endpoint = options_.wrap_worker_transport(rank, std::move(endpoint));
      }
      worker_main(*endpoint, data, model, rates, options_.optimize);
    });
  }
}

TaskRunner& InProcessCluster::runner() { return *master_; }

InProcessCluster::~InProcessCluster() { shutdown(); }

void InProcessCluster::spawn_foreman(ForemanOptions options, bool with_chaos) {
  foreman_exited_.store(false, std::memory_order_release);
  foreman_crashed_.store(false, std::memory_order_release);
  foreman_thread_ = std::thread([this, options, with_chaos] {
    // endpoint() can be called repeatedly for the same rank: each call
    // attaches a fresh Transport to the rank's persistent mailbox, which is
    // exactly what lets a revived foreman pick up traffic queued while its
    // predecessor was dead.
    std::unique_ptr<Transport> endpoint = fabric_.endpoint(kForemanRank);
    ChaosTransport* chaos = nullptr;
    if (with_chaos && options_.chaos_foreman.has_value()) {
      auto wrapped = std::make_unique<ChaosTransport>(
          std::move(endpoint), *options_.chaos_foreman, chaos_totals_);
      chaos = wrapped.get();
      endpoint = std::move(wrapped);
    }
    foreman_stats_ = foreman_main(*endpoint, options);
    if (chaos != nullptr && chaos->crashed()) {
      foreman_crashed_.store(true, std::memory_order_release);
    }
    foreman_exited_.store(true, std::memory_order_release);
  });
}

bool InProcessCluster::revive_foreman() {
  if (!foreman_exited_.load(std::memory_order_acquire)) return false;
  foreman_thread_.join();
  ++foreman_revivals_;
  ForemanOptions revived = options_.foreman;
  // The replacement replays whatever the dead incarnation durably logged
  // and pings the workers to rebuild its (empty) worker list. It runs
  // without the chaos wrapper: the injected crash already happened.
  revived.journal_resume = true;
  revived.announce_ping = true;
  spawn_foreman(std::move(revived), /*with_chaos=*/false);
  return true;
}

void InProcessCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  master_endpoint_->send(kForemanRank, MessageTag::kShutdown, {});
  if (foreman_thread_.joinable()) foreman_thread_.join();
  if (foreman_crashed_.load(std::memory_order_acquire)) {
    // A crashed foreman never forwarded the shutdown; without this the
    // worker and monitor threads would block in recv forever.
    for (int w = 0; w < options_.num_workers; ++w) {
      master_endpoint_->send(kFirstWorkerRank + w, MessageTag::kShutdown, {});
    }
    master_endpoint_->send(kMonitorRank, MessageTag::kShutdown, {});
  }
  for (auto& thread : threads_) thread.join();
  fabric_.close();
}

}  // namespace fdml
