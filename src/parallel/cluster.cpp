#include "parallel/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "parallel/protocol.hpp"

namespace fdml {

InProcessCluster::InProcessCluster(const PatternAlignment& data,
                                   SubstModel model, RateModel rates,
                                   ClusterOptions options)
    : options_(std::move(options)),
      fabric_(kFirstWorkerRank + options_.num_workers) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("cluster: need at least one worker");
  }
  if (options_.chaos.has_value()) {
    chaos_totals_ = std::make_shared<ChaosTotals>();
  }

  master_endpoint_ = fabric_.endpoint(kMasterRank);
  master_ = std::make_unique<ParallelMaster>(*master_endpoint_,
                                             options_.num_workers,
                                             options_.master);
  // Degraded mode: when the parallel fabric cannot finish a round (all
  // workers dead, foreman wedged), evaluate it in-process — same evaluator
  // the workers run, so the search result is unchanged.
  master_->set_fallback([this, &data, model, rates](
                            const std::vector<TreeTask>& tasks) {
    if (!serial_fallback_) {
      serial_fallback_ = std::make_unique<SerialTaskRunner>(
          data, model, rates, options_.optimize);
    }
    return serial_fallback_->run_round(tasks);
  });

  // Foreman thread.
  threads_.emplace_back([this] {
    auto endpoint = fabric_.endpoint(kForemanRank);
    foreman_stats_ = foreman_main(*endpoint, options_.foreman);
  });
  // Monitor thread.
  threads_.emplace_back([this] {
    auto endpoint = fabric_.endpoint(kMonitorRank);
    monitor_main(*endpoint, board_);
  });
  // Worker threads.
  for (int w = 0; w < options_.num_workers; ++w) {
    const int rank = kFirstWorkerRank + w;
    threads_.emplace_back([this, rank, &data, model, rates] {
      std::unique_ptr<Transport> endpoint = fabric_.endpoint(rank);
      if (options_.chaos.has_value()) {
        endpoint = std::make_unique<ChaosTransport>(
            std::move(endpoint), *options_.chaos, chaos_totals_);
      }
      if (options_.wrap_worker_transport) {
        endpoint = options_.wrap_worker_transport(rank, std::move(endpoint));
      }
      worker_main(*endpoint, data, model, rates, options_.optimize);
    });
  }
}

TaskRunner& InProcessCluster::runner() { return *master_; }

InProcessCluster::~InProcessCluster() { shutdown(); }

void InProcessCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  master_endpoint_->send(kForemanRank, MessageTag::kShutdown, {});
  for (auto& thread : threads_) thread.join();
  fabric_.close();
}

}  // namespace fdml
