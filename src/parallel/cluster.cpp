#include "parallel/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "parallel/protocol.hpp"

namespace fdml {

class InProcessCluster::MasterRunner final : public TaskRunner {
 public:
  MasterRunner(Transport& transport, int workers)
      : transport_(transport), workers_(workers) {}

  RoundOutcome run_round(const std::vector<TreeTask>& tasks) override {
    if (tasks.empty()) throw std::invalid_argument("run_round: empty round");
    RoundMessage round;
    round.round_id = next_round_id_++;
    round.tasks = tasks;
    // Stamp the round id the foreman will echo back.
    for (TreeTask& task : round.tasks) task.round_id = round.round_id;
    transport_.send(kForemanRank, MessageTag::kRound, round.pack());

    while (auto message = transport_.recv()) {
      if (message->tag != MessageTag::kRoundDone) continue;
      RoundDoneMessage done = RoundDoneMessage::unpack(message->payload);
      if (done.round_id != round.round_id) continue;  // stale
      RoundOutcome outcome;
      outcome.best = std::move(done.best);
      outcome.stats = std::move(done.stats);
      return outcome;
    }
    throw std::runtime_error("master: fabric shut down mid-round");
  }

  int worker_count() const override { return workers_; }

 private:
  Transport& transport_;
  int workers_;
  std::uint64_t next_round_id_ = 1;
};

InProcessCluster::InProcessCluster(const PatternAlignment& data,
                                   SubstModel model, RateModel rates,
                                   ClusterOptions options)
    : options_(options), fabric_(kFirstWorkerRank + options.num_workers) {
  if (options.num_workers < 1) {
    throw std::invalid_argument("cluster: need at least one worker");
  }
  master_endpoint_ = fabric_.endpoint(kMasterRank);
  runner_ = std::make_unique<MasterRunner>(*master_endpoint_, options.num_workers);

  // Foreman thread.
  threads_.emplace_back([this] {
    auto endpoint = fabric_.endpoint(kForemanRank);
    foreman_stats_ = foreman_main(*endpoint, options_.foreman);
  });
  // Monitor thread.
  threads_.emplace_back([this] {
    auto endpoint = fabric_.endpoint(kMonitorRank);
    monitor_main(*endpoint, board_);
  });
  // Worker threads.
  for (int w = 0; w < options.num_workers; ++w) {
    const int rank = kFirstWorkerRank + w;
    threads_.emplace_back([this, rank, &data, model, rates] {
      std::unique_ptr<Transport> endpoint = fabric_.endpoint(rank);
      if (options_.wrap_worker_transport) {
        endpoint = options_.wrap_worker_transport(rank, std::move(endpoint));
      }
      worker_main(*endpoint, data, model, rates, options_.optimize);
    });
  }
}

TaskRunner& InProcessCluster::runner() { return *runner_; }

InProcessCluster::~InProcessCluster() { shutdown(); }

void InProcessCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  master_endpoint_->send(kForemanRank, MessageTag::kShutdown, {});
  for (auto& thread : threads_) thread.join();
  fabric_.close();
}

}  // namespace fdml
