// The worker role: receive a tree, optimize its branch lengths, return it
// with its likelihood. Workers communicate only with the foreman.
#pragma once

#include "comm/transport.hpp"
#include "likelihood/optimize.hpp"
#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"

namespace fdml {

struct WorkerStats {
  std::uint64_t tasks_evaluated = 0;
  double cpu_seconds = 0.0;
};

/// Runs the worker loop until shutdown. `data` must outlive the call.
WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options = {});

}  // namespace fdml
