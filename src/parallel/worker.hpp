// The worker role: receive a tree, optimize its branch lengths, return it
// with its likelihood. Workers communicate only with the foreman.
#pragma once

#include "comm/transport.hpp"
#include "likelihood/optimize.hpp"
#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"

namespace fdml {

struct WorkerStats {
  std::uint64_t tasks_evaluated = 0;
  double cpu_seconds = 0.0;
  /// Task payloads that failed the integrity check or threw during
  /// decoding; each one is answered with a kNack so the foreman can
  /// requeue the task immediately instead of waiting out the deadline.
  std::uint64_t corrupt_tasks = 0;
  /// Messages with tags the worker does not understand.
  std::uint64_t unexpected_tags = 0;
};

/// Runs the worker loop until shutdown. `data` must outlive the call.
WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options = {});

}  // namespace fdml
