// The worker role: receive a tree, optimize its branch lengths, return it
// with its likelihood. Workers talk to the foreman for work and (when the
// telemetry plane is on) ship periodic metric deltas to the master.
#pragma once

#include <chrono>

#include "comm/transport.hpp"
#include "likelihood/optimize.hpp"
#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"

namespace fdml {

struct WorkerStats {
  std::uint64_t tasks_evaluated = 0;
  double cpu_seconds = 0.0;
  /// Task payloads that failed the integrity check or threw during
  /// decoding; each one is answered with a kNack so the foreman can
  /// requeue the task immediately instead of waiting out the deadline.
  std::uint64_t corrupt_tasks = 0;
  /// Messages with tags the worker does not understand.
  std::uint64_t unexpected_tags = 0;
  /// kTelemetry frames shipped to the master.
  std::uint64_t telemetry_frames = 0;
};

struct WorkerRunOptions {
  OptimizeOptions optimize;
  /// Period between kTelemetry frames to the master; zero disables the
  /// telemetry plane entirely (the loop blocks on recv exactly as before,
  /// so disabled telemetry costs nothing on the hot path).
  std::chrono::milliseconds telemetry_interval{0};
};

/// Runs the worker loop until shutdown. `data` must outlive the call.
WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        WorkerRunOptions options);

inline WorkerStats worker_main(Transport& transport,
                               const PatternAlignment& data, SubstModel model,
                               RateModel rates, OptimizeOptions options = {}) {
  WorkerRunOptions run;
  run.optimize = options;
  return worker_main(transport, data, std::move(model), std::move(rates),
                     std::move(run));
}

}  // namespace fdml
