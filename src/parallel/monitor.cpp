#include "parallel/monitor.hpp"

#include "comm/integrity.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace fdml {

void MonitorBoard::apply(const MonitorEvent& event) {
  std::lock_guard lock(mutex_);
  switch (event.kind) {
    case MonitorEventKind::kRoundBegin:
      ++report_.rounds;
      round_begin_at_ = event.at_seconds;
      first_completion_at_ = -1.0;
      last_completion_at_ = -1.0;
      break;
    case MonitorEventKind::kDispatch:
      ++report_.dispatches;
      break;
    case MonitorEventKind::kComplete:
      ++report_.completions;
      report_.total_worker_cpu_seconds += event.cpu_seconds;
      report_.tasks_per_worker[event.worker] += 1;
      if (first_completion_at_ < 0.0) first_completion_at_ = event.at_seconds;
      last_completion_at_ = event.at_seconds;
      break;
    case MonitorEventKind::kRequeue:
      ++report_.requeues;
      break;
    case MonitorEventKind::kDelinquent:
      ++report_.delinquencies;
      break;
    case MonitorEventKind::kReinstate:
      // Initial hellos also arrive as reinstatements with task_id 0.
      if (event.task_id != 0) ++report_.reinstatements;
      break;
    case MonitorEventKind::kRoundEnd:
      if (first_completion_at_ >= 0.0) {
        report_.round_slack_seconds.push_back(last_completion_at_ -
                                              first_completion_at_);
      }
      report_.round_duration_seconds.push_back(event.at_seconds - round_begin_at_);
      break;
    case MonitorEventKind::kCorrupt:
      ++report_.corrupt_messages;
      break;
    case MonitorEventKind::kProbation:
      ++report_.probations;
      break;
    case MonitorEventKind::kProbePass:
      ++report_.probe_passes;
      break;
    case MonitorEventKind::kProbeFail:
      ++report_.probe_failures;
      break;
    case MonitorEventKind::kNack:
      ++report_.nacks;
      break;
    case MonitorEventKind::kRoundFailed:
      ++report_.rounds_failed;
      break;
  }
}

void MonitorBoard::note_malformed_event() {
  std::lock_guard lock(mutex_);
  ++report_.malformed_events;
}

MonitorReport MonitorBoard::snapshot() const {
  std::lock_guard lock(mutex_);
  return report_;
}

void trace_monitor_event(const MonitorEvent& event) {
  const char* kind = monitor_event_kind_name(event.kind);
  obs::instant("monitor", kind, "worker",
               static_cast<std::int64_t>(event.worker), "task",
               static_cast<std::int64_t>(event.task_id));
  FDML_DEBUG("monitor") << kind << " worker=" << event.worker
                        << " task=" << event.task_id;
}

void monitor_main(Transport& transport, MonitorBoard& board) {
  obs::set_thread_name("monitor");
  while (auto message = transport.recv()) {
    if (message->tag == MessageTag::kShutdown) break;
    if (message->tag != MessageTag::kMonitorEvent) continue;
    // Instrumentation is best-effort: a corrupt event is dropped (and
    // counted), never allowed to take the monitor thread down.
    if (!open_payload(message->payload)) {
      board.note_malformed_event();
      continue;
    }
    try {
      const MonitorEvent event = MonitorEvent::unpack(message->payload);
      trace_monitor_event(event);
      board.apply(event);
    } catch (const std::exception&) {
      board.note_malformed_event();
    }
  }
}

}  // namespace fdml
