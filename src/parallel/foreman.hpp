// The foreman role: owns the work queue and ready queue, dispatches trees
// to workers, compares likelihood values, and implements the paper's fault
// tolerance — "if an individual worker process fails to return an evaluated
// tree within the time specified, that particular worker is removed from
// the list of available workers, and the tree that had been dispatched to
// that worker is sent to a different worker. If at some later time a
// response is received from the delinquent worker, then that worker is
// added back into the list of workers available to analyze trees."
#pragma once

#include <chrono>
#include <cstdint>

#include "comm/transport.hpp"

namespace fdml {

struct ForemanOptions {
  /// A worker that holds a task longer than this is declared delinquent and
  /// its task is requeued (the paper's user-specified timeout parameter).
  std::chrono::milliseconds worker_timeout{30000};
  /// Emit instrumentation events to the monitor rank.
  bool notify_monitor = true;
};

struct ForemanStats {
  std::uint64_t rounds = 0;
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t requeues = 0;
  std::uint64_t delinquencies = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t late_duplicate_results = 0;
  /// Results whose task id did not match the sender's in-flight record (a
  /// stale reply racing a requeue); the record is kept, not clobbered.
  std::uint64_t mismatched_results = 0;
};

/// Runs the foreman loop until a shutdown message arrives (which is
/// forwarded to every worker and the monitor). Returns the final counters.
ForemanStats foreman_main(Transport& transport, const ForemanOptions& options);

}  // namespace fdml
