// The foreman role: owns the work queue and ready queue, dispatches trees
// to workers, compares likelihood values, and implements the paper's fault
// tolerance — "if an individual worker process fails to return an evaluated
// tree within the time specified, that particular worker is removed from
// the list of available workers, and the tree that had been dispatched to
// that worker is sent to a different worker. If at some later time a
// response is received from the delinquent worker, then that worker is
// added back into the list of workers available to analyze trees."
//
// Hardening beyond the paper's happy path (see DESIGN.md "Worker health
// model"):
//   - Every inbound payload is integrity-checked and decoded behind a
//     malformed-message guard; a corrupt payload quarantines its sender and
//     bumps a counter instead of killing the foreman thread.
//   - The single global timeout is a ceiling: each worker gets an adaptive
//     deadline (EWMA of its observed task durations x a slack factor,
//     clamped to [timeout_floor, worker_timeout]).
//   - A returning delinquent is not reinstated unconditionally: it enters
//     probation, waits out an exponential backoff, receives one probe task,
//     and only rejoins the ready queue when the probe completes in time.
//   - If every known worker is delinquent while work is outstanding, the
//     foreman reports kRoundFailed to the master instead of letting the
//     round hang forever.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "durable/vfs.hpp"

namespace fdml::obs {
class MetricsRegistry;
}

namespace fdml {

struct ForemanOptions {
  /// Deadline ceiling, and the deadline used before a worker has any
  /// observed durations (the paper's user-specified timeout parameter).
  std::chrono::milliseconds worker_timeout{30000};
  /// Per-worker adaptive deadlines: EWMA(task duration) * timeout_slack,
  /// clamped to [timeout_floor, worker_timeout]. Off = flat worker_timeout.
  bool adaptive_timeouts = true;
  double timeout_slack = 4.0;
  /// Floor keeps heterogeneous task sizes (and sanitizer slowdowns) from
  /// triggering spurious delinquencies after a streak of cheap tasks.
  std::chrono::milliseconds timeout_floor{2000};
  /// Probation backoff: strike n waits probation_backoff * 2^(n-1), capped.
  std::chrono::milliseconds probation_backoff{50};
  std::chrono::milliseconds probation_backoff_max{5000};
  /// New-round amnesty: a suspect with at most this many consecutive
  /// strikes re-enters probation (one probe after its backoff) when the
  /// next round begins — a dropped reply must not exile a live worker
  /// forever. Workers beyond the limit stay suspect so a genuinely dead
  /// fabric fails rounds fast instead of re-probing corpses each round.
  int amnesty_max_strikes = 3;
  /// Emit instrumentation events to the monitor rank.
  bool notify_monitor = true;
  /// When non-empty, append every completed task to this durable journal
  /// (write-ahead log). A foreman revived after a crash replays it and
  /// skips the insertions the dead incarnation already finished.
  std::string journal_path;
  /// Load and replay the existing journal on startup (a revived foreman);
  /// false truncates it (a fresh run must not replay a previous run's work).
  bool journal_resume = false;
  /// Ping every worker rank on startup so they re-hello. A revived foreman
  /// starts with an empty worker list, and an idle worker never speaks
  /// unprompted — without the ping the round would wedge.
  bool announce_ping = false;
  /// Heartbeat: every interval, ping worker ranks that are silent (no
  /// health record — a restarted process that has not said hello) or
  /// suspect (went quiet mid-round, e.g. the connection died under them).
  /// A live worker answers a ping with a fresh hello, which walks it
  /// through probation back to the ready queue; a dead one stays silent at
  /// no cost. 0 disables (plain cluster runs rely on hello-at-startup).
  std::chrono::milliseconds heartbeat_interval{0};
  /// Period between kTelemetry metric-delta frames to the master; zero
  /// disables the telemetry plane (no timers added to the event loop).
  std::chrono::milliseconds telemetry_interval{0};
  /// Filesystem for the journal; null = the real one.
  Vfs* vfs = nullptr;
  /// Metrics registry the foreman's counters live in; null = the process
  /// registry. ForemanStats is a delta view over these counters, so a
  /// cluster can hand every role one registry and still get exact
  /// per-incarnation stats.
  obs::MetricsRegistry* metrics = nullptr;
  /// How long to wait after broadcasting shutdown for worker goodbye
  /// reports (per-worker kernel counters). Zero skips collection.
  std::chrono::milliseconds goodbye_timeout{250};
};

/// Per-worker end-of-run accounting: queue-level tallies accumulated from
/// results as they arrive, upgraded with the worker's authoritative goodbye
/// report (which adds cache behaviour) when one arrives in time.
struct WorkerKernelReport {
  int worker = -1;
  std::uint64_t tasks_evaluated = 0;
  double cpu_seconds = 0.0;
  std::uint64_t corrupt_tasks = 0;
  std::uint64_t clv_computations = 0;
  std::uint64_t clv_rescales = 0;
  std::uint64_t edge_captures = 0;
  std::uint64_t edge_evaluations = 0;
  std::uint64_t transition_hits = 0;
  std::uint64_t transition_misses = 0;
  std::uint64_t transition_evictions = 0;
  /// True once the worker's own goodbye report was folded in.
  bool reported = false;
};

struct ForemanStats {
  std::uint64_t rounds = 0;
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t requeues = 0;
  std::uint64_t delinquencies = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t late_duplicate_results = 0;
  /// Results whose task id did not match the sender's in-flight record (a
  /// stale reply racing a requeue); the record is kept, not clobbered.
  std::uint64_t mismatched_results = 0;
  /// Payloads that failed the integrity check or threw during decoding.
  std::uint64_t corrupt_messages = 0;
  /// Senders quarantined for a corrupt payload (subset of probations).
  std::uint64_t quarantines = 0;
  /// Workers that entered the probation queue (reinstatement + quarantine).
  std::uint64_t probations = 0;
  /// Probe tasks dispatched to probation workers.
  std::uint64_t probation_probes = 0;
  std::uint64_t probation_passes = 0;
  std::uint64_t probation_failures = 0;
  /// Workers reporting a malformed task payload (their task is requeued).
  std::uint64_t task_nacks = 0;
  /// Rounds abandoned because every known worker was delinquent.
  std::uint64_t rounds_failed = 0;
  /// Messages with tags the foreman does not understand.
  std::uint64_t unexpected_tags = 0;
  /// Tasks completed from the journal instead of being re-evaluated.
  std::uint64_t journal_replayed = 0;
  /// Task results durably appended to the journal.
  std::uint64_t journal_appended = 0;
  /// Journal appends that failed (counted and logged, never fatal: a lost
  /// WAL entry only costs a re-evaluation after the next crash).
  std::uint64_t journal_write_failures = 0;
  /// Worker goodbye reports received during the shutdown grace window.
  std::uint64_t goodbyes_received = 0;
  /// Heartbeat pings sent to silent or suspect workers.
  std::uint64_t heartbeat_pings = 0;
  /// Per-worker kernel-work attribution (satellite of the end-of-run
  /// report); not part of the counter-delta arithmetic.
  std::vector<WorkerKernelReport> worker_reports;
};

/// Runs the foreman loop until a shutdown message arrives (which is
/// forwarded to every worker and the monitor). Returns the final counters.
ForemanStats foreman_main(Transport& transport, const ForemanOptions& options);

}  // namespace fdml
