#include "parallel/worker.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "comm/integrity.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "search/task_evaluator.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {

/// Malformed-payload guard: verify the integrity footer, then decode behind
/// a catch. A task that was corrupted in transit must not kill the worker —
/// the foreman holds a pristine copy and will resend on our NACK.
std::optional<TreeTask> decode_task(std::vector<std::uint8_t> payload) {
  if (!open_payload(payload)) return std::nullopt;
  try {
    Unpacker unpacker(payload);
    TreeTask task = TreeTask::unpack(unpacker);
    if (!unpacker.exhausted()) return std::nullopt;
    return task;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// End-of-run self-report: lifetime stats plus the engine's cumulative
/// kernel counters, sent to the foreman on shutdown so final reports can
/// attribute kernel work per worker.
void send_goodbye(Transport& transport, const WorkerStats& stats,
                  const KernelCounters& counters) {
  WorkerReportMessage report;
  report.worker = transport.rank();
  report.tasks_evaluated = stats.tasks_evaluated;
  report.cpu_seconds = stats.cpu_seconds;
  report.corrupt_tasks = stats.corrupt_tasks;
  report.clv_computations = counters.clv_computations;
  report.clv_rescales = counters.clv_rescales;
  report.edge_captures = counters.edge_captures;
  report.edge_evaluations = counters.edge_evaluations;
  report.transition_hits = counters.transition_hits;
  report.transition_misses = counters.transition_misses;
  report.transition_evictions = counters.transition_evictions;
  auto payload = report.pack();
  seal_payload(payload);
  transport.send(kForemanRank, MessageTag::kGoodbye, std::move(payload));
}

}  // namespace

WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options) {
  obs::set_thread_name("worker-" + std::to_string(transport.rank()));
  TaskEvaluator evaluator(data, std::move(model), std::move(rates), options);
  WorkerStats stats;

  transport.send(kForemanRank, MessageTag::kHello, {});
  std::optional<Message> deferred;
  while (true) {
    std::optional<Message> message =
        deferred.has_value() ? std::move(deferred) : transport.recv();
    deferred.reset();
    if (!message.has_value()) break;
    if (message->tag == MessageTag::kShutdown) {
      send_goodbye(transport, stats, evaluator.engine().counters());
      break;
    }
    if (message->tag == MessageTag::kPing) {
      // A revived foreman lost its worker list with the old incarnation;
      // a fresh hello re-registers us.
      transport.send(kForemanRank, MessageTag::kHello, {});
      continue;
    }
    if (message->tag != MessageTag::kTask) {
      ++stats.unexpected_tags;
      FDML_WARN("worker") << "rank " << transport.rank() << " ignoring tag "
                          << static_cast<int>(message->tag);
      continue;
    }

    // Batch assembly: drain any task messages already queued behind this
    // one (an eagerly-dispatching foreman, or a backlog after a stall) so
    // candidate insertion tasks are scored through the batched multi-edge
    // path. An empty queue degrades to a batch of one — the scheduling
    // behaviour of the one-task-at-a-time loop. A non-task message pauses
    // draining and is handled after the batch completes.
    std::vector<TreeTask> batch;
    auto enqueue = [&](std::optional<Message> m) {
      std::optional<TreeTask> task = decode_task(std::move(m->payload));
      if (!task.has_value()) {
        ++stats.corrupt_tasks;
        obs::instant("worker", "corrupt_task");
        FDML_WARN("worker") << "rank " << transport.rank()
                            << " received a malformed task payload; nacking";
        transport.send(kForemanRank, MessageTag::kNack, {});
        return;
      }
      batch.push_back(std::move(*task));
    };
    enqueue(std::move(message));
    while (batch.size() < TaskEvaluator::kChunk) {
      std::optional<Message> next =
          transport.recv_for(std::chrono::milliseconds(0));
      if (!next.has_value()) break;
      if (next->tag != MessageTag::kTask) {
        deferred = std::move(next);
        break;
      }
      enqueue(std::move(next));
    }
    if (batch.empty()) continue;  // every drained payload was corrupt

    std::vector<TaskResult> results;
    {
      // One span covers the whole batch (the report layer derives worker
      // busy time and task counts from worker/task spans; a batch of one —
      // the self-scheduling common case — traces exactly as before).
      obs::Span span("worker", "task", "task",
                     static_cast<std::int64_t>(batch.front().task_id), "round",
                     static_cast<std::int64_t>(batch.front().round_id));
      for (const TreeTask& task : batch) {
        obs::flow(obs::Phase::kFlowStep,
                  obs::task_flow_id(task.round_id, task.task_id));
      }
      results = evaluator.evaluate_batch(batch);
      std::int64_t clv = 0;
      std::int64_t edge_evals = 0;
      for (const TaskResult& r : results) {
        clv += static_cast<std::int64_t>(r.clv_computations);
        edge_evals += static_cast<std::int64_t>(r.edge_evaluations);
      }
      span.set_end_args("clv", clv, "edge_evals", edge_evals);
    }
    for (TaskResult& result : results) {
      result.worker = transport.rank();
      ++stats.tasks_evaluated;
      stats.cpu_seconds += result.cpu_seconds;
      Packer packer;
      result.pack(packer);
      auto payload = packer.take();
      seal_payload(payload);
      transport.send(kForemanRank, MessageTag::kResult, std::move(payload));
    }
  }
  return stats;
}

}  // namespace fdml
