#include "parallel/worker.hpp"

#include <utility>

#include "parallel/protocol.hpp"
#include "search/task_evaluator.hpp"
#include "util/log.hpp"

namespace fdml {

WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options) {
  TaskEvaluator evaluator(data, std::move(model), std::move(rates), options);
  WorkerStats stats;

  transport.send(kForemanRank, MessageTag::kHello, {});
  while (auto message = transport.recv()) {
    if (message->tag == MessageTag::kShutdown) break;
    if (message->tag != MessageTag::kTask) {
      FDML_WARN("worker") << "rank " << transport.rank() << " ignoring tag "
                          << static_cast<int>(message->tag);
      continue;
    }
    Unpacker unpacker(message->payload);
    const TreeTask task = TreeTask::unpack(unpacker);
    TaskResult result = evaluator.evaluate(task);
    result.worker = transport.rank();
    ++stats.tasks_evaluated;
    stats.cpu_seconds += result.cpu_seconds;
    Packer packer;
    result.pack(packer);
    transport.send(kForemanRank, MessageTag::kResult, packer.take());
  }
  return stats;
}

}  // namespace fdml
