#include "parallel/worker.hpp"

#include <optional>
#include <utility>

#include "comm/integrity.hpp"
#include "parallel/protocol.hpp"
#include "search/task_evaluator.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {

/// Malformed-payload guard: verify the integrity footer, then decode behind
/// a catch. A task that was corrupted in transit must not kill the worker —
/// the foreman holds a pristine copy and will resend on our NACK.
std::optional<TreeTask> decode_task(std::vector<std::uint8_t> payload) {
  if (!open_payload(payload)) return std::nullopt;
  try {
    Unpacker unpacker(payload);
    TreeTask task = TreeTask::unpack(unpacker);
    if (!unpacker.exhausted()) return std::nullopt;
    return task;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options) {
  TaskEvaluator evaluator(data, std::move(model), std::move(rates), options);
  WorkerStats stats;

  transport.send(kForemanRank, MessageTag::kHello, {});
  while (auto message = transport.recv()) {
    if (message->tag == MessageTag::kShutdown) break;
    if (message->tag == MessageTag::kPing) {
      // A revived foreman lost its worker list with the old incarnation;
      // a fresh hello re-registers us.
      transport.send(kForemanRank, MessageTag::kHello, {});
      continue;
    }
    if (message->tag != MessageTag::kTask) {
      ++stats.unexpected_tags;
      FDML_WARN("worker") << "rank " << transport.rank() << " ignoring tag "
                          << static_cast<int>(message->tag);
      continue;
    }
    const std::optional<TreeTask> task = decode_task(std::move(message->payload));
    if (!task.has_value()) {
      ++stats.corrupt_tasks;
      FDML_WARN("worker") << "rank " << transport.rank()
                          << " received a malformed task payload; nacking";
      transport.send(kForemanRank, MessageTag::kNack, {});
      continue;
    }
    TaskResult result = evaluator.evaluate(*task);
    result.worker = transport.rank();
    ++stats.tasks_evaluated;
    stats.cpu_seconds += result.cpu_seconds;
    Packer packer;
    result.pack(packer);
    auto payload = packer.take();
    seal_payload(payload);
    transport.send(kForemanRank, MessageTag::kResult, std::move(payload));
  }
  return stats;
}

}  // namespace fdml
