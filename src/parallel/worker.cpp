#include "parallel/worker.hpp"

#include <chrono>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "comm/integrity.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "search/task_evaluator.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {

/// Folds the engine's cumulative KernelCounters into `registry` as
/// `kernel.*` counter increments since `last` (which is advanced). The
/// registry accumulates whole-run totals; the TelemetryEmitter diffs those
/// into per-frame deltas.
void fold_kernel_counters(obs::MetricsRegistry& registry,
                          const KernelCounters& now, KernelCounters& last) {
  const auto bump = [&](const char* name, std::uint64_t cur,
                        std::uint64_t prev) {
    if (cur > prev) registry.counter(name).add(cur - prev);
  };
  bump("kernel.clv_computations", now.clv_computations, last.clv_computations);
  bump("kernel.clv_rescales", now.clv_rescales, last.clv_rescales);
  bump("kernel.edge_captures", now.edge_captures, last.edge_captures);
  bump("kernel.edge_evaluations", now.edge_evaluations,
       last.edge_evaluations);
  bump("kernel.transition_hits", now.transition_hits, last.transition_hits);
  bump("kernel.transition_misses", now.transition_misses,
       last.transition_misses);
  bump("kernel.transition_evictions", now.transition_evictions,
       last.transition_evictions);
  bump("kernel.ns", now.kernel_ns, last.kernel_ns);
  last = now;
}

/// Malformed-payload guard: verify the integrity footer, then decode behind
/// a catch. A task that was corrupted in transit must not kill the worker —
/// the foreman holds a pristine copy and will resend on our NACK.
std::optional<TreeTask> decode_task(std::vector<std::uint8_t> payload) {
  if (!open_payload(payload)) return std::nullopt;
  try {
    Unpacker unpacker(payload);
    TreeTask task = TreeTask::unpack(unpacker);
    if (!unpacker.exhausted()) return std::nullopt;
    return task;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// End-of-run self-report: lifetime stats plus the engine's cumulative
/// kernel counters, sent to the foreman on shutdown so final reports can
/// attribute kernel work per worker.
void send_goodbye(Transport& transport, const WorkerStats& stats,
                  const KernelCounters& counters) {
  WorkerReportMessage report;
  report.worker = transport.rank();
  report.tasks_evaluated = stats.tasks_evaluated;
  report.cpu_seconds = stats.cpu_seconds;
  report.corrupt_tasks = stats.corrupt_tasks;
  report.clv_computations = counters.clv_computations;
  report.clv_rescales = counters.clv_rescales;
  report.edge_captures = counters.edge_captures;
  report.edge_evaluations = counters.edge_evaluations;
  report.transition_hits = counters.transition_hits;
  report.transition_misses = counters.transition_misses;
  report.transition_evictions = counters.transition_evictions;
  auto payload = report.pack();
  seal_payload(payload);
  transport.send(kForemanRank, MessageTag::kGoodbye, std::move(payload));
}

}  // namespace

WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        WorkerRunOptions options) {
  obs::set_thread_name("worker-" + std::to_string(transport.rank()));
  TaskEvaluator evaluator(data, std::move(model), std::move(rates),
                          options.optimize);
  WorkerStats stats;

  // The telemetry plane: a registry local to this worker incarnation (a
  // restarted worker process naturally starts from zero; the emitter's
  // fresh incarnation id tells the aggregator so) diffed into periodic
  // kTelemetry frames for the master. Interval zero keeps the legacy
  // blocking-recv loop — no timers, no extra wakeups.
  const bool telemetry_on = options.telemetry_interval.count() > 0;
  obs::MetricsRegistry registry;
  obs::TelemetryEmitter emitter(registry, transport.rank());
  KernelCounters last_counters;
  obs::Histogram& batch_fill =
      registry.histogram("kernel.batch_fill", {1, 2, 4, 8, 16, 32});
  auto next_emit = std::chrono::steady_clock::now() + options.telemetry_interval;
  const auto emit_telemetry = [&] {
    fold_kernel_counters(registry, evaluator.engine().counters(),
                         last_counters);
    auto payload = emitter.collect().pack();
    seal_payload(payload);
    transport.send(kMasterRank, MessageTag::kTelemetry, std::move(payload));
    ++stats.telemetry_frames;
  };

  transport.send(kForemanRank, MessageTag::kHello, {});
  std::optional<Message> deferred;
  while (true) {
    std::optional<Message> message;
    if (deferred.has_value()) {
      message = std::move(deferred);
      deferred.reset();
    } else if (!telemetry_on) {
      message = transport.recv();
    } else {
      // Bounded waits so the emitter fires on schedule even when the
      // foreman has nothing for us (an idle frame is a liveness beacon).
      while (true) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= next_emit) {
          emit_telemetry();
          next_emit = now + options.telemetry_interval;
        }
        auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
            next_emit - std::chrono::steady_clock::now());
        if (wait.count() < 1) wait = std::chrono::milliseconds(1);
        message = transport.recv_for(wait);
        if (message.has_value() || transport.closed()) break;
      }
    }
    if (!message.has_value()) break;
    if (message->tag == MessageTag::kShutdown) {
      if (telemetry_on) emit_telemetry();  // final totals beat the goodbye
      send_goodbye(transport, stats, evaluator.engine().counters());
      break;
    }
    if (message->tag == MessageTag::kPing) {
      // A revived foreman lost its worker list with the old incarnation;
      // a fresh hello re-registers us.
      transport.send(kForemanRank, MessageTag::kHello, {});
      continue;
    }
    if (message->tag != MessageTag::kTask) {
      ++stats.unexpected_tags;
      FDML_WARN("worker") << "rank " << transport.rank() << " ignoring tag "
                          << static_cast<int>(message->tag);
      continue;
    }

    // Batch assembly: drain any task messages already queued behind this
    // one (an eagerly-dispatching foreman, or a backlog after a stall) so
    // candidate insertion tasks are scored through the batched multi-edge
    // path. An empty queue degrades to a batch of one — the scheduling
    // behaviour of the one-task-at-a-time loop. A non-task message pauses
    // draining and is handled after the batch completes.
    std::vector<TreeTask> batch;
    auto enqueue = [&](std::optional<Message> m) {
      std::optional<TreeTask> task = decode_task(std::move(m->payload));
      if (!task.has_value()) {
        ++stats.corrupt_tasks;
        registry.counter("worker.corrupt_tasks").add(1);
        obs::instant("worker", "corrupt_task");
        FDML_WARN("worker") << "rank " << transport.rank()
                            << " received a malformed task payload; nacking";
        transport.send(kForemanRank, MessageTag::kNack, {});
        return;
      }
      batch.push_back(std::move(*task));
    };
    enqueue(std::move(message));
    while (batch.size() < TaskEvaluator::kChunk) {
      std::optional<Message> next =
          transport.recv_for(std::chrono::milliseconds(0));
      if (!next.has_value()) break;
      if (next->tag != MessageTag::kTask) {
        deferred = std::move(next);
        break;
      }
      enqueue(std::move(next));
    }
    if (batch.empty()) continue;  // every drained payload was corrupt
    batch_fill.observe(static_cast<double>(batch.size()));

    std::vector<TaskResult> results;
    {
      // One span covers the whole batch (the report layer derives worker
      // busy time and task counts from worker/task spans; a batch of one —
      // the self-scheduling common case — traces exactly as before).
      obs::Span span("worker", "task", "task",
                     static_cast<std::int64_t>(batch.front().task_id), "round",
                     static_cast<std::int64_t>(batch.front().round_id));
      for (const TreeTask& task : batch) {
        obs::flow(obs::Phase::kFlowStep,
                  obs::task_flow_id(task.round_id, task.task_id));
      }
      results = evaluator.evaluate_batch(batch);
      std::int64_t clv = 0;
      std::int64_t edge_evals = 0;
      for (const TaskResult& r : results) {
        clv += static_cast<std::int64_t>(r.clv_computations);
        edge_evals += static_cast<std::int64_t>(r.edge_evaluations);
      }
      span.set_end_args("clv", clv, "edge_evals", edge_evals);
    }
    for (TaskResult& result : results) {
      result.worker = transport.rank();
      ++stats.tasks_evaluated;
      registry.counter("worker.tasks_evaluated").add(1);
      stats.cpu_seconds += result.cpu_seconds;
      Packer packer;
      result.pack(packer);
      auto payload = packer.take();
      seal_payload(payload);
      transport.send(kForemanRank, MessageTag::kResult, std::move(payload));
    }
  }
  return stats;
}

}  // namespace fdml
