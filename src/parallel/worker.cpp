#include "parallel/worker.hpp"

#include <optional>
#include <string>
#include <utility>

#include "comm/integrity.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "search/task_evaluator.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {

/// Malformed-payload guard: verify the integrity footer, then decode behind
/// a catch. A task that was corrupted in transit must not kill the worker —
/// the foreman holds a pristine copy and will resend on our NACK.
std::optional<TreeTask> decode_task(std::vector<std::uint8_t> payload) {
  if (!open_payload(payload)) return std::nullopt;
  try {
    Unpacker unpacker(payload);
    TreeTask task = TreeTask::unpack(unpacker);
    if (!unpacker.exhausted()) return std::nullopt;
    return task;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// End-of-run self-report: lifetime stats plus the engine's cumulative
/// kernel counters, sent to the foreman on shutdown so final reports can
/// attribute kernel work per worker.
void send_goodbye(Transport& transport, const WorkerStats& stats,
                  const KernelCounters& counters) {
  WorkerReportMessage report;
  report.worker = transport.rank();
  report.tasks_evaluated = stats.tasks_evaluated;
  report.cpu_seconds = stats.cpu_seconds;
  report.corrupt_tasks = stats.corrupt_tasks;
  report.clv_computations = counters.clv_computations;
  report.clv_rescales = counters.clv_rescales;
  report.edge_captures = counters.edge_captures;
  report.edge_evaluations = counters.edge_evaluations;
  report.transition_hits = counters.transition_hits;
  report.transition_misses = counters.transition_misses;
  report.transition_evictions = counters.transition_evictions;
  auto payload = report.pack();
  seal_payload(payload);
  transport.send(kForemanRank, MessageTag::kGoodbye, std::move(payload));
}

}  // namespace

WorkerStats worker_main(Transport& transport, const PatternAlignment& data,
                        SubstModel model, RateModel rates,
                        OptimizeOptions options) {
  obs::set_thread_name("worker-" + std::to_string(transport.rank()));
  TaskEvaluator evaluator(data, std::move(model), std::move(rates), options);
  WorkerStats stats;

  transport.send(kForemanRank, MessageTag::kHello, {});
  while (auto message = transport.recv()) {
    if (message->tag == MessageTag::kShutdown) {
      send_goodbye(transport, stats, evaluator.engine().counters());
      break;
    }
    if (message->tag == MessageTag::kPing) {
      // A revived foreman lost its worker list with the old incarnation;
      // a fresh hello re-registers us.
      transport.send(kForemanRank, MessageTag::kHello, {});
      continue;
    }
    if (message->tag != MessageTag::kTask) {
      ++stats.unexpected_tags;
      FDML_WARN("worker") << "rank " << transport.rank() << " ignoring tag "
                          << static_cast<int>(message->tag);
      continue;
    }
    const std::optional<TreeTask> task = decode_task(std::move(message->payload));
    if (!task.has_value()) {
      ++stats.corrupt_tasks;
      obs::instant("worker", "corrupt_task");
      FDML_WARN("worker") << "rank " << transport.rank()
                          << " received a malformed task payload; nacking";
      transport.send(kForemanRank, MessageTag::kNack, {});
      continue;
    }
    TaskResult result;
    {
      obs::Span span("worker", "task", "task",
                     static_cast<std::int64_t>(task->task_id), "round",
                     static_cast<std::int64_t>(task->round_id));
      obs::flow(obs::Phase::kFlowStep,
                obs::task_flow_id(task->round_id, task->task_id));
      result = evaluator.evaluate(*task);
      span.set_end_args("clv", static_cast<std::int64_t>(result.clv_computations),
                        "edge_evals",
                        static_cast<std::int64_t>(result.edge_evaluations));
    }
    result.worker = transport.rank();
    ++stats.tasks_evaluated;
    stats.cpu_seconds += result.cpu_seconds;
    Packer packer;
    result.pack(packer);
    auto payload = packer.take();
    seal_payload(payload);
    transport.send(kForemanRank, MessageTag::kResult, std::move(payload));
  }
  return stats;
}

}  // namespace fdml
