#include "parallel/socket_cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "util/log.hpp"

namespace fdml {

SocketRoleResult run_socket_role(const PatternAlignment& data,
                                 const SubstModel& model, const RateModel& rates,
                                 const SocketRunOptions& options) {
  const int rank = options.socket.rank;
  if (rank < 1 || rank >= options.socket.size) {
    throw std::invalid_argument("run_socket_role: rank must be 1..size-1");
  }
  if (options.socket.size < kFirstWorkerRank + 1) {
    throw std::invalid_argument(
        "run_socket_role: fabric needs master+foreman+monitor+>=1 worker");
  }
  SocketFabric fabric(options.socket);
  std::unique_ptr<Transport> endpoint = fabric.endpoint();
  SocketRoleResult result;
  result.rank = rank;
  if (rank == kForemanRank) {
    ForemanOptions foreman = options.foreman;
    foreman.telemetry_interval = options.telemetry_interval;
    result.foreman = foreman_main(*endpoint, foreman);
  } else if (rank == kMonitorRank) {
    MonitorBoard board;
    monitor_main(*endpoint, board);
    result.monitor = board.snapshot();
  } else {
    WorkerRunOptions worker;
    worker.optimize = options.optimize;
    worker.telemetry_interval = options.telemetry_interval;
    result.worker = worker_main(*endpoint, data, model, rates, worker);
  }
  // The role loop saw shutdown (or the hub died). Closing flushes anything
  // still queued — a worker's goodbye report, the foreman's final round.
  fabric.close();
  return result;
}

SocketCluster::SocketCluster(const PatternAlignment& data, SubstModel model,
                             RateModel rates, SocketRunOptions options)
    : options_(std::move(options)),
      fabric_([&] {
        SocketOptions socket = options_.socket;
        socket.rank = kMasterRank;
        return socket;
      }()),
      telemetry_([&] {
        obs::TelemetryAggregatorOptions agg;
        if (options_.telemetry_interval.count() > 0) {
          // Two missed frames = stale; the floor absorbs scheduling jitter
          // at very short test intervals.
          agg.stale_after = std::max(options_.telemetry_interval * 2,
                                     std::chrono::milliseconds(200));
        }
        return agg;
      }()) {
  if (options_.socket.size < kFirstWorkerRank + 1) {
    throw std::invalid_argument(
        "SocketCluster: fabric needs master+foreman+monitor+>=1 worker");
  }
  obs::set_thread_name("master");
  endpoint_ = fabric_.endpoint();
  master_ = std::make_unique<ParallelMaster>(*endpoint_, num_workers(),
                                             options_.master);
  // Same degraded mode as the in-process cluster: if the remote fabric
  // cannot finish a round, evaluate it here so the run still answers.
  master_->set_fallback([this, &data, model, rates](
                            const std::vector<TreeTask>& tasks) {
    if (!serial_fallback_) {
      serial_fallback_ = std::make_unique<SerialTaskRunner>(
          data, model, rates, options_.optimize);
    }
    return serial_fallback_->run_round(tasks);
  });
  // Telemetry frames arriving on the hub (mid-round or via pump) land in
  // the aggregator; a frame that fails to decode is dropped here — the
  // integrity footer was already verified, so this only catches a
  // version-skewed peer.
  master_->set_telemetry_sink(
      [this](int source, std::vector<std::uint8_t> payload) {
        try {
          telemetry_.apply(obs::TelemetryFrame::unpack(payload));
        } catch (const std::exception& e) {
          FDML_WARN("master") << "undecodable telemetry frame from rank "
                              << source << ": " << e.what();
        }
      });
}

SocketCluster::~SocketCluster() { shutdown(); }

int SocketCluster::num_workers() const {
  return options_.socket.size - kFirstWorkerRank;
}

bool SocketCluster::wait_ready(std::chrono::milliseconds timeout) {
  return fabric_.wait_ready(timeout);
}

void SocketCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  fabric_.expect_departures();  // disconnects from here on are orderly
  endpoint_->send(kForemanRank, MessageTag::kShutdown, {});
  // The foreman fans the shutdown out to workers and monitor *through this
  // hub*, so keep routing until the peers have actually left (a dead
  // foreman cannot forward it; the grace period bounds that case and the
  // peers then exit on the hub's EOF instead).
  if (!fabric_.wait_peers_gone(std::chrono::milliseconds(5000))) {
    FDML_WARN("master") << "socket fabric: peers still connected after "
                           "shutdown grace; closing anyway";
  }
  fabric_.close();
}

}  // namespace fdml
