#include "parallel/master.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "comm/integrity.hpp"
#include "obs/trace.hpp"
#include "parallel/protocol.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ParallelMaster::Counters::Counters(obs::MetricsRegistry& r)
    : rounds(r.counter("master.rounds")),
      progress_messages(r.counter("master.progress_messages")),
      unexpected_tags(r.counter("master.unexpected_tags")),
      stale_messages(r.counter("master.stale_messages")),
      corrupt_messages(r.counter("master.corrupt_messages")),
      watchdog_trips(r.counter("master.watchdog_trips")),
      rounds_failed(r.counter("master.rounds_failed")),
      serial_fallbacks(r.counter("master.serial_fallbacks")),
      round_retries(r.counter("master.round_retries")),
      fabric_revivals(r.counter("master.fabric_revivals")) {}

MasterStats ParallelMaster::Counters::read() const {
  MasterStats s;
  s.rounds = rounds.value();
  s.progress_messages = progress_messages.value();
  s.unexpected_tags = unexpected_tags.value();
  s.stale_messages = stale_messages.value();
  s.corrupt_messages = corrupt_messages.value();
  s.watchdog_trips = watchdog_trips.value();
  s.rounds_failed = rounds_failed.value();
  s.serial_fallbacks = serial_fallbacks.value();
  s.round_retries = round_retries.value();
  s.fabric_revivals = fabric_revivals.value();
  return s;
}

MasterStats ParallelMaster::stats() const {
  const MasterStats end = counters_.read();
  MasterStats d;
  d.rounds = end.rounds - start_.rounds;
  d.progress_messages = end.progress_messages - start_.progress_messages;
  d.unexpected_tags = end.unexpected_tags - start_.unexpected_tags;
  d.stale_messages = end.stale_messages - start_.stale_messages;
  d.corrupt_messages = end.corrupt_messages - start_.corrupt_messages;
  d.watchdog_trips = end.watchdog_trips - start_.watchdog_trips;
  d.rounds_failed = end.rounds_failed - start_.rounds_failed;
  d.serial_fallbacks = end.serial_fallbacks - start_.serial_fallbacks;
  d.round_retries = end.round_retries - start_.round_retries;
  d.fabric_revivals = end.fabric_revivals - start_.fabric_revivals;
  return d;
}

ParallelMaster::ParallelMaster(Transport& transport, int workers,
                               MasterOptions options)
    : transport_(transport),
      workers_(workers),
      options_(options),
      counters_(options.metrics != nullptr ? *options.metrics
                                           : obs::MetricsRegistry::process()),
      start_(counters_.read()) {}

RoundOutcome ParallelMaster::degrade(std::uint64_t round_id,
                                     const std::vector<TreeTask>& tasks,
                                     const std::string& reason) {
  if (!options_.serial_fallback || !fallback_) {
    throw RoundFailedError(round_id, reason);
  }
  counters_.serial_fallbacks.add();
  obs::instant("master", "serial_fallback", "round",
               static_cast<std::int64_t>(round_id));
  FDML_WARN("master") << "round " << round_id << " failed (" << reason
                      << "); evaluating " << tasks.size()
                      << " tasks in-process";
  return fallback_(tasks);
}

RoundOutcome ParallelMaster::run_round(const std::vector<TreeTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("run_round: empty round");
  counters_.rounds.add();

  std::uint64_t round_id = next_round_id_++;
  if (degraded_) {
    return degrade(round_id, tasks, "fabric previously wedged");
  }

  // Supervisor loop: each failed attempt gets the reviver a chance to
  // restart a dead foreman, then the round is resent under a fresh id (the
  // foreman's journal makes re-dispatch of already-finished work free).
  for (int attempt = 0;; ++attempt) {
    try {
      RoundOutcome outcome = attempt_round(round_id, tasks);
      // A completed attempt is proof the fabric is alive again: a watchdog
      // trip on an earlier attempt (a transient partition, a foreman riding
      // out an outage) must not wedge every future round into the serial
      // fallback.
      if (degraded_ && attempt > 0) {
        counters_.fabric_revivals.add();
        FDML_WARN("master") << "round " << round_id
                            << " recovered on retry; fabric restored";
      }
      degraded_ = false;
      return outcome;
    } catch (const RoundFailedError& failure) {
      if (attempt < options_.max_round_retries) {
        counters_.round_retries.add();
        obs::instant("master", "round_retry", "round",
                     static_cast<std::int64_t>(round_id));
        const int doublings = std::min(attempt, 16);
        const auto backoff = std::min<std::chrono::milliseconds>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                options_.retry_backoff * (1LL << doublings)),
            options_.retry_backoff_max);
        FDML_WARN("master") << "round " << round_id << " failed ("
                            << failure.reason() << "); retry "
                            << (attempt + 1) << "/"
                            << options_.max_round_retries << " in "
                            << backoff.count() << " ms";
        std::this_thread::sleep_for(backoff);
        if (reviver_ && reviver_()) {
          counters_.fabric_revivals.add();
          // The wedged incarnation is gone; trust its replacement.
          degraded_ = false;
        }
        round_id = next_round_id_++;  // stale traffic from the failed
                                      // attempt must not satisfy the retry
        continue;
      }
      if (options_.max_round_retries > 0 &&
          (!options_.serial_fallback || !fallback_)) {
        throw RunFailedError(round_id, failure.reason(), attempt + 1);
      }
      return degrade(round_id, tasks, failure.reason());
    }
  }
}

RoundOutcome ParallelMaster::attempt_round(std::uint64_t round_id,
                                           const std::vector<TreeTask>& tasks) {
  // Owning the receive lock for the whole round keeps pump() (the serve
  // loop's idle drain) off the transport while round replies are in flight.
  std::lock_guard<std::mutex> recv_lock(recv_mutex_);
  RoundMessage round;
  round.round_id = round_id;
  round.tasks = tasks;
  // Stamp the round id the foreman will echo back.
  for (TreeTask& task : round.tasks) task.round_id = round.round_id;

  obs::Span span("master", "round", "round",
                 static_cast<std::int64_t>(round_id), "tasks",
                 static_cast<std::int64_t>(tasks.size()));
  auto payload = round.pack();
  seal_payload(payload);
  transport_.send(kForemanRank, MessageTag::kRound, std::move(payload));

  auto last_progress = Clock::now();
  for (;;) {
    const auto now = Clock::now();
    if (now - last_progress >= options_.watchdog_timeout) {
      counters_.watchdog_trips.add();
      obs::instant("master", "watchdog_trip", "round",
                   static_cast<std::int64_t>(round.round_id));
      degraded_ = true;
      FDML_WARN("master") << "watchdog: no progress on round "
                          << round.round_id << " for "
                          << options_.watchdog_timeout.count() << " ms";
      throw RoundFailedError(round.round_id, "watchdog: no round progress");
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        options_.watchdog_timeout - (now - last_progress));
    auto message = transport_.recv_for(remaining + std::chrono::milliseconds(1));
    if (!message.has_value()) {
      if (transport_.closed()) {
        throw std::runtime_error("master: fabric shut down mid-round");
      }
      continue;  // watchdog re-checked at the top
    }

    switch (message->tag) {
      case MessageTag::kProgress: {
        if (!open_payload(message->payload)) {
          counters_.corrupt_messages.add();
          break;
        }
        try {
          const ProgressMessage progress =
              ProgressMessage::unpack(message->payload);
          if (progress.round_id == round.round_id) {
            counters_.progress_messages.add();
            last_progress = Clock::now();
          } else {
            counters_.stale_messages.add();
          }
        } catch (const std::exception&) {
          counters_.corrupt_messages.add();
        }
        break;
      }
      case MessageTag::kRoundDone: {
        if (!open_payload(message->payload)) {
          counters_.corrupt_messages.add();
          break;
        }
        RoundDoneMessage done;
        try {
          done = RoundDoneMessage::unpack(message->payload);
        } catch (const std::exception&) {
          counters_.corrupt_messages.add();
          break;
        }
        if (done.round_id != round.round_id) {
          counters_.stale_messages.add();
          break;
        }
        RoundOutcome outcome;
        outcome.best = std::move(done.best);
        outcome.stats = std::move(done.stats);
        return outcome;
      }
      case MessageTag::kRoundFailed: {
        if (!open_payload(message->payload)) {
          counters_.corrupt_messages.add();
          break;
        }
        RoundFailedMessage failed;
        try {
          failed = RoundFailedMessage::unpack(message->payload);
        } catch (const std::exception&) {
          counters_.corrupt_messages.add();
          break;
        }
        if (failed.round_id != round.round_id) {
          counters_.stale_messages.add();
          break;
        }
        counters_.rounds_failed.add();
        throw RoundFailedError(round.round_id, failed.reason);
      }
      case MessageTag::kTelemetry:
        // Telemetry rides the same fabric as round traffic; frames landing
        // mid-round feed the aggregator, they never reset the watchdog
        // (liveness of a worker's emitter is not round progress).
        handle_telemetry(message->source, std::move(message->payload));
        break;
      default:
        // Previously these were discarded without a trace, which hid real
        // protocol bugs; now they are at least visible and counted.
        counters_.unexpected_tags.add();
        FDML_WARN("master") << "ignoring unexpected tag "
                            << static_cast<int>(message->tag) << " from rank "
                            << message->source << " mid-round";
    }
  }
}

void ParallelMaster::handle_telemetry(int source,
                                      std::vector<std::uint8_t> payload) {
  if (!open_payload(payload)) {
    counters_.corrupt_messages.add();
    return;
  }
  if (telemetry_sink_) telemetry_sink_(source, std::move(payload));
}

std::size_t ParallelMaster::pump() {
  std::unique_lock<std::mutex> recv_lock(recv_mutex_, std::try_to_lock);
  if (!recv_lock.owns_lock()) return 0;  // a round is consuming the fabric
  std::size_t drained = 0;
  for (;;) {
    auto message = transport_.recv_for(std::chrono::milliseconds(0));
    if (!message.has_value()) break;
    ++drained;
    switch (message->tag) {
      case MessageTag::kTelemetry:
        handle_telemetry(message->source, std::move(message->payload));
        break;
      case MessageTag::kProgress:
      case MessageTag::kRoundDone:
      case MessageTag::kRoundFailed:
        // Round-scoped traffic with no round in flight: a late reply from
        // an attempt the supervisor already abandoned.
        counters_.stale_messages.add();
        break;
      default:
        counters_.unexpected_tags.add();
        FDML_WARN("master") << "ignoring unexpected tag "
                            << static_cast<int>(message->tag) << " from rank "
                            << message->source << " between rounds";
    }
  }
  return drained;
}

}  // namespace fdml
