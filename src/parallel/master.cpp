#include "parallel/master.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "comm/integrity.hpp"
#include "parallel/protocol.hpp"
#include "util/log.hpp"

namespace fdml {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ParallelMaster::ParallelMaster(Transport& transport, int workers,
                               MasterOptions options)
    : transport_(transport), workers_(workers), options_(options) {}

RoundOutcome ParallelMaster::degrade(std::uint64_t round_id,
                                     const std::vector<TreeTask>& tasks,
                                     const std::string& reason) {
  if (!options_.serial_fallback || !fallback_) {
    throw RoundFailedError(round_id, reason);
  }
  ++stats_.serial_fallbacks;
  FDML_WARN("master") << "round " << round_id << " failed (" << reason
                      << "); evaluating " << tasks.size()
                      << " tasks in-process";
  return fallback_(tasks);
}

RoundOutcome ParallelMaster::run_round(const std::vector<TreeTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("run_round: empty round");
  ++stats_.rounds;

  std::uint64_t round_id = next_round_id_++;
  if (degraded_) {
    return degrade(round_id, tasks, "fabric previously wedged");
  }

  // Supervisor loop: each failed attempt gets the reviver a chance to
  // restart a dead foreman, then the round is resent under a fresh id (the
  // foreman's journal makes re-dispatch of already-finished work free).
  for (int attempt = 0;; ++attempt) {
    try {
      return attempt_round(round_id, tasks);
    } catch (const RoundFailedError& failure) {
      if (attempt < options_.max_round_retries) {
        ++stats_.round_retries;
        const int doublings = std::min(attempt, 16);
        const auto backoff = std::min<std::chrono::milliseconds>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                options_.retry_backoff * (1LL << doublings)),
            options_.retry_backoff_max);
        FDML_WARN("master") << "round " << round_id << " failed ("
                            << failure.reason() << "); retry "
                            << (attempt + 1) << "/"
                            << options_.max_round_retries << " in "
                            << backoff.count() << " ms";
        std::this_thread::sleep_for(backoff);
        if (reviver_ && reviver_()) {
          ++stats_.fabric_revivals;
          // The wedged incarnation is gone; trust its replacement.
          degraded_ = false;
        }
        round_id = next_round_id_++;  // stale traffic from the failed
                                      // attempt must not satisfy the retry
        continue;
      }
      if (options_.max_round_retries > 0 &&
          (!options_.serial_fallback || !fallback_)) {
        throw RunFailedError(round_id, failure.reason(), attempt + 1);
      }
      return degrade(round_id, tasks, failure.reason());
    }
  }
}

RoundOutcome ParallelMaster::attempt_round(std::uint64_t round_id,
                                           const std::vector<TreeTask>& tasks) {
  RoundMessage round;
  round.round_id = round_id;
  round.tasks = tasks;
  // Stamp the round id the foreman will echo back.
  for (TreeTask& task : round.tasks) task.round_id = round.round_id;

  auto payload = round.pack();
  seal_payload(payload);
  transport_.send(kForemanRank, MessageTag::kRound, std::move(payload));

  auto last_progress = Clock::now();
  for (;;) {
    const auto now = Clock::now();
    if (now - last_progress >= options_.watchdog_timeout) {
      ++stats_.watchdog_trips;
      degraded_ = true;
      FDML_WARN("master") << "watchdog: no progress on round "
                          << round.round_id << " for "
                          << options_.watchdog_timeout.count() << " ms";
      throw RoundFailedError(round.round_id, "watchdog: no round progress");
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        options_.watchdog_timeout - (now - last_progress));
    auto message = transport_.recv_for(remaining + std::chrono::milliseconds(1));
    if (!message.has_value()) {
      if (transport_.closed()) {
        throw std::runtime_error("master: fabric shut down mid-round");
      }
      continue;  // watchdog re-checked at the top
    }

    switch (message->tag) {
      case MessageTag::kProgress: {
        if (!open_payload(message->payload)) {
          ++stats_.corrupt_messages;
          break;
        }
        try {
          const ProgressMessage progress =
              ProgressMessage::unpack(message->payload);
          if (progress.round_id == round.round_id) {
            ++stats_.progress_messages;
            last_progress = Clock::now();
          } else {
            ++stats_.stale_messages;
          }
        } catch (const std::exception&) {
          ++stats_.corrupt_messages;
        }
        break;
      }
      case MessageTag::kRoundDone: {
        if (!open_payload(message->payload)) {
          ++stats_.corrupt_messages;
          break;
        }
        RoundDoneMessage done;
        try {
          done = RoundDoneMessage::unpack(message->payload);
        } catch (const std::exception&) {
          ++stats_.corrupt_messages;
          break;
        }
        if (done.round_id != round.round_id) {
          ++stats_.stale_messages;
          break;
        }
        RoundOutcome outcome;
        outcome.best = std::move(done.best);
        outcome.stats = std::move(done.stats);
        return outcome;
      }
      case MessageTag::kRoundFailed: {
        if (!open_payload(message->payload)) {
          ++stats_.corrupt_messages;
          break;
        }
        RoundFailedMessage failed;
        try {
          failed = RoundFailedMessage::unpack(message->payload);
        } catch (const std::exception&) {
          ++stats_.corrupt_messages;
          break;
        }
        if (failed.round_id != round.round_id) {
          ++stats_.stale_messages;
          break;
        }
        ++stats_.rounds_failed;
        throw RoundFailedError(round.round_id, failed.reason);
      }
      default:
        // Previously these were discarded without a trace, which hid real
        // protocol bugs; now they are at least visible and counted.
        ++stats_.unexpected_tags;
        FDML_WARN("master") << "ignoring unexpected tag "
                            << static_cast<int>(message->tag) << " from rank "
                            << message->source << " mid-round";
    }
  }
}

}  // namespace fdml
