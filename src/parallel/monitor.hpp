// The monitor role (the paper's optional fourth module): consumes
// instrumentation events from the foreman and aggregates utilization and
// barrier-slack statistics. The paper's real-time viewer watched this kind
// of stream; here the report also backs tests and the scalability analysis.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "comm/transport.hpp"
#include "parallel/protocol.hpp"

namespace fdml {

struct MonitorReport {
  std::uint64_t rounds = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t completions = 0;
  std::uint64_t requeues = 0;
  std::uint64_t delinquencies = 0;
  std::uint64_t reinstatements = 0;
  /// Malformed payloads the foreman detected (and quarantined the sender).
  std::uint64_t corrupt_messages = 0;
  /// Workers that entered the probation queue.
  std::uint64_t probations = 0;
  std::uint64_t probe_passes = 0;
  std::uint64_t probe_failures = 0;
  /// Workers that reported a malformed task payload.
  std::uint64_t nacks = 0;
  /// Rounds the foreman declared unfinishable.
  std::uint64_t rounds_failed = 0;
  /// Monitor events that themselves arrived malformed (dropped).
  std::uint64_t malformed_events = 0;
  double total_worker_cpu_seconds = 0.0;
  /// Tasks completed per worker rank.
  std::map<int, std::uint64_t> tasks_per_worker;
  /// Per-round barrier slack: time between the first and the last task
  /// completion of the round (the paper's "loosely synchronized" barriers).
  std::vector<double> round_slack_seconds;
  /// Wall-clock duration of each round at the foreman.
  std::vector<double> round_duration_seconds;
};

/// Shared, thread-safe report the monitor thread fills in.
class MonitorBoard {
 public:
  void apply(const MonitorEvent& event);
  /// A kMonitorEvent whose payload failed the integrity check (counted so
  /// even the instrumentation stream is corruption-safe).
  void note_malformed_event();
  MonitorReport snapshot() const;

 private:
  mutable std::mutex mutex_;
  MonitorReport report_;
  double round_begin_at_ = 0.0;
  double first_completion_at_ = -1.0;
  double last_completion_at_ = -1.0;
};

/// Re-emits a monitor event as a trace instant (cat "monitor", name =
/// monitor_event_kind_name) and a debug log line. Chaos runs used to drop
/// this stream on the floor when nobody polled the board; with tracing on,
/// every health-state transition now lands in the trace timeline. Split out
/// of monitor_main so tests can drive it directly.
void trace_monitor_event(const MonitorEvent& event);

/// Runs the monitor loop until shutdown, applying events to `board`.
void monitor_main(Transport& transport, MonitorBoard& board);

}  // namespace fdml
