// The worker computation: deserialize a task, optimize, serialize a result.
// Shared by the serial runner, the in-process thread workers, and — were an
// MPI transport added — the MPI worker main loop.
//
// Insertion tasks (focus_taxon >= 0) are evaluated through a batched path:
// the evaluator keeps a *context* — the round's base tree (the task tree
// with the focus tip removed) with the engine attached to it — so the CLVs
// of the base tree are computed once and shared by every candidate
// insertion point of the round. Candidates are scored in chunks through
// BatchEdgeEvaluator: one multi-edge kernel pass captures all candidate
// tip-edge likelihoods, the Newton solves run off the still-hot coefficient
// planes, and only then is each candidate spliced in (scoped: validity
// flags snapshotted and restored) for its local smoothing passes.
//
// Determinism contract: the result of a task is a pure function of the
// task. Every incoming task is verified against the context bitwise
// (topology under canonical min-taxon child ordering, branch lengths
// compared exactly); on mismatch the context is rebuilt from the task
// itself. The batched path and the sequential fallback perform the same
// canonical edge sequence with the same arithmetic, so their results are
// bit-identical — the cross-process determinism tests rely on this.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "likelihood/batch.hpp"
#include "likelihood/evaluator.hpp"
#include "search/task.hpp"

namespace fdml {

class TaskEvaluator {
 public:
  /// Candidate chunk size for the batched insertion path (bounds the batch
  /// arena footprint; rounds larger than this are processed in chunks).
  static constexpr std::size_t kChunk = 16;

  /// `data` must outlive the evaluator (the pattern table is shared).
  TaskEvaluator(const PatternAlignment& data, SubstModel model,
                RateModel rates, OptimizeOptions options = {});

  TaskResult evaluate(const TreeTask& task);

  /// Evaluates a batch of tasks (results in task order). Consecutive
  /// insertion tasks that share a base tree are scored through the batched
  /// multi-edge path; full-smoothing tasks fall back to the sequential
  /// path. Bit-identical to calling evaluate() per task in the same order.
  std::vector<TaskResult> evaluate_batch(const std::vector<TreeTask>& tasks);

  LikelihoodEngine& engine() { return evaluator_.engine(); }

 private:
  /// An insertion task prepared for the batched path: parsed tree, local
  /// node ids, and the candidate edge mapped into context coordinates.
  struct Candidate {
    const TreeTask* task = nullptr;
    std::size_t result_index = 0;
    Tree tree;             ///< parsed task tree (writeback target)
    int junction = -1;     ///< ids in the parsed task tree
    int u = -1;
    int v = -1;
    double tip_length = 0.0;  ///< initial focus-tip branch length
    BatchEdgeEvaluator::Insertion insertion;  ///< in context coordinates
  };

  /// Verifies that `base` (task coordinates) is bit-identical to the
  /// context base tree and fills `map_` (task node id -> context node id).
  bool verify_against_context(const Tree& base);
  /// Adopts `base` as the new context (attaches the engine; identity map).
  void rebuild_context(Tree&& base, std::uint64_t round_id);

  /// Canonical local smoothing of the three edges at a freshly inserted
  /// focus tip: [(junction, tip), (junction, a), (junction, b)] with a and
  /// b ordered by the minimum taxon id behind them — representation
  /// invariant. `pre_applied_before` >= 0 means the pass-0 tip-edge solve
  /// was already applied (batched path) and was started from that length.
  /// Returns the final log-likelihood across the canonical (tip, junction)
  /// edge.
  double smooth_focus(Tree& tree, int tip, int junction, int passes,
                      double pre_applied_before);

  /// Sequential fallback for focus tasks (same canonical sequence, solves
  /// one edge at a time against a freshly attached tree).
  TaskResult evaluate_focus_sequential(const TreeTask& task);
  /// Full-smoothing path (focus_taxon < 0).
  TaskResult evaluate_full(const TreeTask& task);

  /// Phase A + B for a prepared chunk: one batched capture + solve, then
  /// per-candidate scoped insertion and local smoothing.
  void flush_chunk(std::vector<Candidate>& chunk,
                   std::vector<TaskResult>& results);
  /// Phase B for one candidate (context tree mutation is scoped: validity
  /// flags and the split edge's length are restored on exit).
  TaskResult evaluate_candidate(Candidate& c, double t1, double phase_a_share);

  TaskResult finish_result(const TreeTask& task, double log_likelihood,
                           const Tree& tree, double cpu_seconds,
                           const KernelCounters& before);

  const PatternAlignment& data_;
  TreeEvaluator evaluator_;
  BatchEdgeEvaluator batch_;

  // Round context: base tree the engine is attached to, valid while no
  // other attach intervened. ctx_round_ keys the fast-path check.
  std::optional<Tree> ctx_base_;
  bool ctx_valid_ = false;
  std::uint64_t ctx_round_ = 0;
  std::vector<int> map_;           ///< task node id -> context node id
  std::vector<char> ctx_validity_; ///< CLV validity snapshot scratch
};

}  // namespace fdml
