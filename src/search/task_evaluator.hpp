// The worker computation: deserialize a task, optimize, serialize a result.
// Shared by the serial runner, the in-process thread workers, and — were an
// MPI transport added — the MPI worker main loop.
#pragma once

#include <string>
#include <vector>

#include "likelihood/evaluator.hpp"
#include "search/task.hpp"

namespace fdml {

class TaskEvaluator {
 public:
  /// `data` must outlive the evaluator (the pattern table is shared).
  TaskEvaluator(const PatternAlignment& data, SubstModel model,
                RateModel rates, OptimizeOptions options = {});

  TaskResult evaluate(const TreeTask& task);

  LikelihoodEngine& engine() { return evaluator_.engine(); }

 private:
  const PatternAlignment& data_;
  TreeEvaluator evaluator_;
};

}  // namespace fdml
