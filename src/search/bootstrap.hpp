// Bootstrap analysis — the paper's planned "incorporation of multiple
// addition orders and multiple bootstraps within the code ... currently
// available using scripts".
//
// A bootstrap replicate resamples alignment columns with replacement. On a
// pattern-compressed alignment that is just a new integer weight vector
// (multinomial over sites), so replicates share the pattern table and cost
// no re-compression. Each replicate is searched independently; split
// frequencies across replicate trees are the bootstrap supports, reported
// as a majority-rule consensus.
#pragma once

#include <cstdint>
#include <vector>

#include "search/search.hpp"
#include "tree/consensus.hpp"
#include "util/rng.hpp"

namespace fdml {

/// Multinomial resample of `num_sites` columns: returns per-site counts
/// summing to num_sites (weights for PatternAlignment).
std::vector<int> bootstrap_site_weights(std::size_t num_sites, Rng& rng);

struct BootstrapOptions {
  int replicates = 100;
  std::uint64_t seed = 1;
  /// Search settings applied to every replicate.
  SearchOptions search;
};

struct BootstrapResult {
  /// Best tree per replicate.
  std::vector<Tree> replicate_trees;
  std::vector<double> replicate_log_likelihoods;
  /// Each replicate's best tree re-evaluated on the *original* (unresampled)
  /// data — an out-of-bag diagnostic: a replicate whose tree scores far
  /// below the others here was shaped by resampling noise. Computed from
  /// one shared engine via the scratch-reusing site_log_likelihoods
  /// overload, so the extra cost per replicate is one tree evaluation.
  std::vector<double> full_data_log_likelihoods;
  /// Majority-rule consensus with bootstrap proportions as node support.
  GeneralTree consensus;
  /// Split frequencies across replicates, descending.
  std::vector<SplitFrequency> split_support;
};

/// Runs `replicates` bootstrap searches of `alignment`. A fresh
/// PatternAlignment is built per replicate from resampled site weights;
/// model frequencies come from the original data. The runner factory is
/// invoked once per replicate (each needs an evaluator bound to that
/// replicate's patterns).
BootstrapResult run_bootstrap(const Alignment& alignment, const SubstModel& model,
                              const RateModel& rates,
                              const BootstrapOptions& options);

}  // namespace fdml
