#include "search/task.hpp"

namespace fdml {

void TreeTask::pack(Packer& packer) const {
  packer.put_u64(task_id);
  packer.put_u64(round_id);
  packer.put_string(newick);
  packer.put_i32(focus_taxon);
  packer.put_i32(smooth_passes);
}

TreeTask TreeTask::unpack(Unpacker& unpacker) {
  TreeTask task;
  task.task_id = unpacker.get_u64();
  task.round_id = unpacker.get_u64();
  task.newick = unpacker.get_string();
  task.focus_taxon = unpacker.get_i32();
  task.smooth_passes = unpacker.get_i32();
  return task;
}

void TaskResult::pack(Packer& packer) const {
  packer.put_u64(task_id);
  packer.put_u64(round_id);
  packer.put_f64(log_likelihood);
  packer.put_string(newick);
  packer.put_f64(cpu_seconds);
  packer.put_i32(worker);
  packer.put_u64(clv_computations);
  packer.put_u64(edge_evaluations);
  packer.put_u64(transition_hits);
  packer.put_u64(transition_misses);
}

TaskResult TaskResult::unpack(Unpacker& unpacker) {
  TaskResult result;
  result.task_id = unpacker.get_u64();
  result.round_id = unpacker.get_u64();
  result.log_likelihood = unpacker.get_f64();
  result.newick = unpacker.get_string();
  result.cpu_seconds = unpacker.get_f64();
  result.worker = unpacker.get_i32();
  result.clv_computations = unpacker.get_u64();
  result.edge_evaluations = unpacker.get_u64();
  result.transition_hits = unpacker.get_u64();
  result.transition_misses = unpacker.get_u64();
  return result;
}

}  // namespace fdml
