#include "search/bootstrap.hpp"

#include "likelihood/engine.hpp"
#include "tree/newick.hpp"

namespace fdml {

std::vector<int> bootstrap_site_weights(std::size_t num_sites, Rng& rng) {
  std::vector<int> weights(num_sites, 0);
  for (std::size_t draw = 0; draw < num_sites; ++draw) {
    weights[rng.below(num_sites)] += 1;
  }
  return weights;
}

BootstrapResult run_bootstrap(const Alignment& alignment, const SubstModel& model,
                              const RateModel& rates,
                              const BootstrapOptions& options) {
  BootstrapResult result;
  Rng rng(options.seed);

  // One engine on the original data scores every replicate tree for the
  // out-of-bag diagnostic; site buffer reused across replicates via the
  // out-parameter overload (no per-replicate allocation).
  const PatternAlignment full_data(alignment);
  LikelihoodEngine full_engine(full_data, model, rates);
  std::vector<double> site_lnl;

  for (int rep = 0; rep < options.replicates; ++rep) {
    const std::vector<int> weights =
        bootstrap_site_weights(alignment.num_sites(), rng);
    const PatternAlignment data(alignment, weights);
    SerialTaskRunner runner(data, model, rates);
    SearchOptions search_options = options.search;
    search_options.seed =
        adjust_user_seed(options.seed) + 2ULL * static_cast<std::uint64_t>(rep);
    search_options.record_trace = false;
    StepwiseSearch search(data, search_options);
    const SearchResult run = search.run(runner);
    Tree tree = tree_from_newick(run.best_newick, data.names());

    // Attach-and-score before the tree moves into the result vector.
    full_engine.attach(tree);
    full_engine.site_log_likelihoods(site_lnl);
    double full_lnl = 0.0;
    for (const double l : site_lnl) full_lnl += l;
    result.full_data_log_likelihoods.push_back(full_lnl);
    full_engine.invalidate_all();

    result.replicate_trees.push_back(std::move(tree));
    result.replicate_log_likelihoods.push_back(run.best_log_likelihood);
  }
  result.split_support = split_frequencies(result.replicate_trees);
  result.consensus = consensus_tree(result.replicate_trees, alignment.names());
  return result;
}

}  // namespace fdml
