#include "search/bootstrap.hpp"

#include "tree/newick.hpp"

namespace fdml {

std::vector<int> bootstrap_site_weights(std::size_t num_sites, Rng& rng) {
  std::vector<int> weights(num_sites, 0);
  for (std::size_t draw = 0; draw < num_sites; ++draw) {
    weights[rng.below(num_sites)] += 1;
  }
  return weights;
}

BootstrapResult run_bootstrap(const Alignment& alignment, const SubstModel& model,
                              const RateModel& rates,
                              const BootstrapOptions& options) {
  BootstrapResult result;
  Rng rng(options.seed);
  for (int rep = 0; rep < options.replicates; ++rep) {
    const std::vector<int> weights =
        bootstrap_site_weights(alignment.num_sites(), rng);
    const PatternAlignment data(alignment, weights);
    SerialTaskRunner runner(data, model, rates);
    SearchOptions search_options = options.search;
    search_options.seed =
        adjust_user_seed(options.seed) + 2ULL * static_cast<std::uint64_t>(rep);
    search_options.record_trace = false;
    StepwiseSearch search(data, search_options);
    const SearchResult run = search.run(runner);
    result.replicate_trees.push_back(
        tree_from_newick(run.best_newick, data.names()));
    result.replicate_log_likelihoods.push_back(run.best_log_likelihood);
  }
  result.split_support = split_frequencies(result.replicate_trees);
  result.consensus = consensus_tree(result.replicate_trees, alignment.names());
  return result;
}

}  // namespace fdml
