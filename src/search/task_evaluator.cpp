#include "search/task_evaluator.hpp"

#include <utility>

#include "tree/newick.hpp"

namespace fdml {

TaskEvaluator::TaskEvaluator(const PatternAlignment& data, SubstModel model,
                             RateModel rates, OptimizeOptions options)
    : data_(data),
      evaluator_(data, std::move(model), std::move(rates), options) {}

TaskResult TaskEvaluator::evaluate(const TreeTask& task) {
  const KernelCounters before = evaluator_.engine().counters();
  Tree tree = tree_from_newick(task.newick, data_.names());
  Evaluation evaluation;
  if (task.focus_taxon >= 0) {
    // Rapid insertion test: optimize the three branches meeting at the new
    // taxon's attachment node.
    const int tip = task.focus_taxon;
    const int junction = tree.neighbor(tip, 0);
    std::vector<std::pair<int, int>> edges;
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(junction, s);
      if (nbr != Tree::kNoNode) edges.emplace_back(junction, nbr);
    }
    evaluation = evaluator_.evaluate_partial(tree, edges, task.smooth_passes);
  } else {
    evaluation = evaluator_.evaluate(tree, task.smooth_passes);
  }
  TaskResult result;
  result.task_id = task.task_id;
  result.round_id = task.round_id;
  result.log_likelihood = evaluation.log_likelihood;
  result.newick = to_newick(tree, data_.names(), 17);
  result.cpu_seconds = evaluation.cpu_seconds;
  const KernelCounters& after = evaluator_.engine().counters();
  result.clv_computations = after.clv_computations - before.clv_computations;
  result.edge_evaluations = after.edge_evaluations - before.edge_evaluations;
  result.transition_hits = after.transition_hits - before.transition_hits;
  result.transition_misses = after.transition_misses - before.transition_misses;
  return result;
}

}  // namespace fdml
