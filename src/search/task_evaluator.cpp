#include "search/task_evaluator.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <numeric>
#include <utility>

#include "tree/newick.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

/// Smallest taxon id in the subtree behind `node` as seen from `from` —
/// the representation-invariant label used to order children canonically
/// (node ids of internal nodes depend on parse order; taxon ids do not).
int min_taxon_behind(const Tree& tree, int node, int from) {
  if (tree.is_tip(node)) return node;
  int best = INT_MAX;
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree.neighbor(node, s);
    if (nbr == from || nbr == Tree::kNoNode) continue;
    best = std::min(best, min_taxon_behind(tree, nbr, node));
  }
  return best;
}

/// Matches the subtree behind (na, from fa) of `ta` against the subtree
/// behind (nb, from fb) of `tb`: same shape under canonical min-taxon child
/// ordering, identical tip ids, bitwise-equal branch lengths. Fills
/// map[a-node] = b-node for every matched node.
bool match_subtrees(const Tree& ta, int na, int fa, const Tree& tb, int nb,
                    int fb, std::vector<int>& map) {
  if (ta.is_tip(na) || tb.is_tip(nb)) {
    if (!ta.is_tip(na) || !tb.is_tip(nb) || na != nb) return false;
    map[static_cast<std::size_t>(na)] = nb;
    return true;
  }
  map[static_cast<std::size_t>(na)] = nb;
  int ca[2] = {-1, -1};
  int cb[2] = {-1, -1};
  int ia = 0;
  int ib = 0;
  for (int s = 0; s < 3; ++s) {
    int nbr = ta.neighbor(na, s);
    if (nbr != fa && nbr != Tree::kNoNode && ia < 2) ca[ia++] = nbr;
    nbr = tb.neighbor(nb, s);
    if (nbr != fb && nbr != Tree::kNoNode && ib < 2) cb[ib++] = nbr;
  }
  if (ia != 2 || ib != 2) return false;
  if (min_taxon_behind(ta, ca[0], na) > min_taxon_behind(ta, ca[1], na)) {
    std::swap(ca[0], ca[1]);
  }
  if (min_taxon_behind(tb, cb[0], nb) > min_taxon_behind(tb, cb[1], nb)) {
    std::swap(cb[0], cb[1]);
  }
  for (int k = 0; k < 2; ++k) {
    // Bitwise length comparison: the context is only reusable if its CLVs
    // are exactly the CLVs this task's base tree would produce.
    if (ta.length(na, ca[k]) != tb.length(nb, cb[k])) return false;
    if (!match_subtrees(ta, ca[k], na, tb, cb[k], nb, map)) return false;
  }
  return true;
}

}  // namespace

TaskEvaluator::TaskEvaluator(const PatternAlignment& data, SubstModel model,
                             RateModel rates, OptimizeOptions options)
    : data_(data),
      evaluator_(data, std::move(model), std::move(rates), options),
      batch_(evaluator_.engine()) {}

TaskResult TaskEvaluator::evaluate(const TreeTask& task) {
  std::vector<TaskResult> results = evaluate_batch({task});
  return std::move(results.front());
}

std::vector<TaskResult> TaskEvaluator::evaluate_batch(
    const std::vector<TreeTask>& tasks) {
  std::vector<TaskResult> results(tasks.size());
  std::vector<Candidate> chunk;
  chunk.reserve(kChunk);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TreeTask& task = tasks[i];
    if (task.focus_taxon < 0) {
      flush_chunk(chunk, results);
      results[i] = evaluate_full(task);
      continue;
    }
    Tree tree = tree_from_newick(task.newick, data_.names());
    if (tree.tip_count() < 4) {
      // Too small to detach the focus tip for a shared base; score it
      // against its own tree (same canonical sequence).
      flush_chunk(chunk, results);
      results[i] = evaluate_focus_sequential(task);
      continue;
    }
    const int tip = task.focus_taxon;
    const int junction = tree.neighbor(tip, 0);
    int u = -1;
    int v = -1;
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(junction, s);
      if (nbr == tip || nbr == Tree::kNoNode) continue;
      (u < 0 ? u : v) = nbr;
    }
    const double tip_length = tree.length(tip, junction);
    const double length_u = tree.length(junction, u);
    const double length_v = tree.length(junction, v);

    // A chunk shares one focus tip and round (one batched capture).
    if (!chunk.empty() && (chunk.front().task->focus_taxon != tip ||
                           chunk.front().task->round_id != task.round_id)) {
      flush_chunk(chunk, results);
    }

    Tree base = tree;
    base.remove_tip(tip);
    if (!(ctx_valid_ && ctx_round_ == task.round_id &&
          verify_against_context(base))) {
      // Pending candidates reference the old context's coordinates — score
      // them before swapping the engine onto this task's base tree.
      flush_chunk(chunk, results);
      rebuild_context(std::move(base), task.round_id);
    }
    chunk.push_back(Candidate{
        &task, i, std::move(tree), junction, u, v, tip_length,
        BatchEdgeEvaluator::Insertion{map_[static_cast<std::size_t>(u)],
                                      map_[static_cast<std::size_t>(v)],
                                      length_u, length_v}});
    if (chunk.size() >= kChunk) flush_chunk(chunk, results);
  }
  flush_chunk(chunk, results);
  return results;
}

bool TaskEvaluator::verify_against_context(const Tree& base) {
  const Tree& ctx = *ctx_base_;
  if (base.tip_count() != ctx.tip_count()) return false;
  const std::vector<int> tips = base.tips();
  if (tips.empty()) return false;
  const int root = tips.front();
  if (!ctx.contains(root)) return false;
  map_.assign(static_cast<std::size_t>(base.max_nodes()), -1);
  const int ja = base.neighbor(root, 0);
  const int jb = ctx.neighbor(root, 0);
  if (ja == Tree::kNoNode || jb == Tree::kNoNode) return false;
  if (base.length(root, ja) != ctx.length(root, jb)) return false;
  map_[static_cast<std::size_t>(root)] = root;
  return match_subtrees(base, ja, root, ctx, jb, root, map_);
}

void TaskEvaluator::rebuild_context(Tree&& base, std::uint64_t round_id) {
  ctx_base_.emplace(std::move(base));
  evaluator_.engine().attach(*ctx_base_);
  ctx_valid_ = true;
  ctx_round_ = round_id;
  map_.resize(static_cast<std::size_t>(ctx_base_->max_nodes()));
  std::iota(map_.begin(), map_.end(), 0);
}

void TaskEvaluator::flush_chunk(std::vector<Candidate>& chunk,
                                std::vector<TaskResult>& results) {
  if (chunk.empty()) return;
  CpuTimer timer;
  const int tip = chunk.front().task->focus_taxon;

  // Phase A: one shared traversal + one multi-edge capture per category,
  // then every candidate's first tip-edge solve off the hot planes.
  std::vector<BatchEdgeEvaluator::Insertion> insertions;
  insertions.reserve(chunk.size());
  for (const Candidate& c : chunk) insertions.push_back(c.insertion);
  batch_.capture_insertions(tip, insertions);

  std::vector<double> t1(chunk.size());
  const OptimizeOptions& options = evaluator_.optimizer().options();
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    t1[k] = newton_branch_solve(batch_.view(k), chunk[k].tip_length, options);
  }
  const double phase_a_share =
      timer.seconds() / static_cast<double>(chunk.size());

  // Phase B: scoped insertion + local smoothing, one candidate at a time.
  for (std::size_t k = 0; k < chunk.size(); ++k) {
    results[chunk[k].result_index] =
        evaluate_candidate(chunk[k], t1[k], phase_a_share);
  }
  chunk.clear();
}

TaskResult TaskEvaluator::evaluate_candidate(Candidate& c, double t1,
                                             double phase_a_share) {
  LikelihoodEngine& engine = evaluator_.engine();
  const KernelCounters before = engine.counters();
  CpuTimer timer;
  Tree& ctx = *ctx_base_;
  const TreeTask& task = *c.task;
  const int tip = task.focus_taxon;
  const BatchEdgeEvaluator::Insertion& ins = c.insertion;

  const double original_length = ctx.length(ins.u, ins.v);
  engine.save_clv_validity(ctx_validity_);

  // Splice the candidate in with the task's exact local lengths, then apply
  // the phase-A tip solve as if optimize_edge had just committed it. The
  // solve is bit-identical to what the sequential path's first
  // optimize_edge(junction, tip) would produce: same captured coefficients
  // (BatchEdgeEvaluator's determinism contract), same Newton sequence.
  const int junction = ctx.insert_tip(tip, ins.u, ins.v);
  engine.invalidate_node(junction);  // free-list id may carry stale flags
  ctx.set_length(ins.u, junction, ins.length_u);
  ctx.set_length(junction, ins.v, ins.length_v);
  const bool apply_solve = task.smooth_passes > 0;
  ctx.set_length(tip, junction, apply_solve ? t1 : c.tip_length);
  engine.on_length_changed(junction, tip);

  const double lnl = smooth_focus(ctx, tip, junction, task.smooth_passes,
                                  apply_solve ? c.tip_length : -1.0);

  // Write the optimized local lengths back into the parsed task tree — the
  // result stays in the task's own coordinate system, so it is identical
  // to what the sequential path would serialize.
  c.tree.set_length(tip, c.junction, ctx.length(tip, junction));
  c.tree.set_length(c.junction, c.u, ctx.length(junction, ins.u));
  c.tree.set_length(c.junction, c.v, ctx.length(junction, ins.v));

  // Close the scope: the base tree and its cached CLVs come back verbatim
  // (the trial only wrote junction CLVs; see save_clv_validity docs).
  ctx.remove_tip(tip);
  ctx.set_length(ins.u, ins.v, original_length);
  engine.restore_clv_validity(ctx_validity_);

  return finish_result(task, lnl, c.tree, timer.seconds() + phase_a_share,
                       before);
}

double TaskEvaluator::smooth_focus(Tree& tree, int tip, int junction,
                                   int passes, double pre_applied_before) {
  int a = -1;
  int b = -1;
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree.neighbor(junction, s);
    if (nbr == tip || nbr == Tree::kNoNode) continue;
    (a < 0 ? a : b) = nbr;
  }
  if (min_taxon_behind(tree, a, junction) >
      min_taxon_behind(tree, b, junction)) {
    std::swap(a, b);
  }
  BranchOptimizer& optimizer = evaluator_.optimizer();
  const double tolerance = optimizer.options().smooth_tolerance;
  const bool pre_applied = pre_applied_before >= 0.0;

  // Same pass/convergence semantics as BranchOptimizer::smooth_edges over
  // the canonical edge order [(junction, tip), (junction, a), (junction,
  // b)]; the batched path substitutes its precomputed solve for pass 0's
  // tip edge.
  for (int pass = 0; pass < passes; ++pass) {
    double worst_move = 0.0;
    double tip_before;
    double tip_after;
    if (pass == 0 && pre_applied) {
      tip_before = pre_applied_before;
      tip_after = tree.length(junction, tip);
    } else {
      tip_before = tree.length(junction, tip);
      tip_after = optimizer.optimize_edge(tree, junction, tip);
    }
    worst_move = std::max(worst_move, std::fabs(tip_after - tip_before) /
                                          std::max(tip_before, 1e-3));
    for (const int other : {a, b}) {
      const double len_before = tree.length(junction, other);
      const double len_after = optimizer.optimize_edge(tree, junction, other);
      worst_move = std::max(worst_move, std::fabs(len_after - len_before) /
                                            std::max(len_before, 1e-3));
    }
    if (worst_move < tolerance) break;
  }
  // Canonical final evaluation: the (tip, junction) edge exists in every
  // representation of this candidate with the same node ids (tip ids are
  // taxon ids), unlike log_likelihood()'s arbitrary internal root.
  return evaluator_.engine().log_likelihood_edge(tip, junction);
}

TaskResult TaskEvaluator::evaluate_focus_sequential(const TreeTask& task) {
  const KernelCounters before = evaluator_.engine().counters();
  CpuTimer timer;
  Tree tree = tree_from_newick(task.newick, data_.names());
  ctx_valid_ = false;  // the engine leaves the context tree
  evaluator_.engine().attach(tree);
  const int tip = task.focus_taxon;
  const int junction = tree.neighbor(tip, 0);
  const double lnl = smooth_focus(tree, tip, junction, task.smooth_passes,
                                  /*pre_applied_before=*/-1.0);
  return finish_result(task, lnl, tree, timer.seconds(), before);
}

TaskResult TaskEvaluator::evaluate_full(const TreeTask& task) {
  const KernelCounters before = evaluator_.engine().counters();
  Tree tree = tree_from_newick(task.newick, data_.names());
  ctx_valid_ = false;  // evaluate() re-attaches the engine
  const Evaluation evaluation = evaluator_.evaluate(tree, task.smooth_passes);
  return finish_result(task, evaluation.log_likelihood, tree,
                       evaluation.cpu_seconds, before);
}

TaskResult TaskEvaluator::finish_result(const TreeTask& task,
                                        double log_likelihood,
                                        const Tree& tree, double cpu_seconds,
                                        const KernelCounters& before) {
  TaskResult result;
  result.task_id = task.task_id;
  result.round_id = task.round_id;
  result.log_likelihood = log_likelihood;
  result.newick = to_newick(tree, data_.names(), 17);
  result.cpu_seconds = cpu_seconds;
  const KernelCounters after = evaluator_.engine().counters();
  result.clv_computations = after.clv_computations - before.clv_computations;
  result.edge_evaluations = after.edge_evaluations - before.edge_evaluations;
  result.transition_hits = after.transition_hits - before.transition_hits;
  result.transition_misses =
      after.transition_misses - before.transition_misses;
  return result;
}

}  // namespace fdml
