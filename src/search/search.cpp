#include "search/search.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "durable/checkpoint_store.hpp"
#include "durable/frame.hpp"
#include "obs/trace.hpp"
#include "tree/neighborhood.hpp"
#include "tree/newick.hpp"
#include "tree/splits.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fdml {

namespace {

class SearchRun {
 public:
  SearchRun(const PatternAlignment& data, const SearchOptions& options,
            TaskRunner& runner)
      : data_(data), options_(options), runner_(runner), names_(data.names()) {
    if (!options_.checkpoint_path.empty()) {
      CheckpointStoreOptions store_options;
      store_options.keep = options_.checkpoint_keep;
      store_.emplace(options_.checkpoint_path, store_options, options_.vfs);
    }
  }

  SearchResult run(std::vector<int> order,
                   const SearchCheckpoint* checkpoint = nullptr) {
    const int n = static_cast<int>(data_.num_taxa());
    if (static_cast<int>(order.size()) != n) {
      throw std::invalid_argument("search: addition order size mismatch");
    }
    result_.addition_order = order;
    result_.trace.dataset = "";
    result_.trace.num_taxa = n;
    result_.trace.num_sites = data_.num_sites();
    result_.trace.num_patterns = data_.num_patterns();
    result_.trace.seed = options_.seed;

    Tree tree(n);
    double lnl = 0.0;
    int start_index = 3;
    master_timer_.reset();
    if (checkpoint != nullptr) {
      tree = tree_from_newick(checkpoint->tree_newick, names_);
      lnl = checkpoint->log_likelihood;
      start_index = checkpoint->next_order_index;
      if (tree.tip_count() != start_index) {
        throw std::invalid_argument(
            "resume: checkpoint tree has " +
            std::to_string(tree.tip_count()) +
            " tips but its next_order_index says " +
            std::to_string(start_index) +
            " taxa should be placed — the checkpoint is internally "
            "inconsistent");
      }
      record_event(tree.tip_count(), lnl, checkpoint->tree_newick);
      if (checkpoint->phase == SearchPhase::kRearrange) {
        // The run died mid-rearrangement: finish that stage first, picking
        // up the exact round counter and crossing distance it left off at.
        const int idx = start_index - 1;
        const bool last = idx == n - 1;
        const int cross =
            last ? options_.final_rearrange_cross : options_.rearrange_cross;
        lnl = rearrange_until_stable(tree, lnl, cross, start_index,
                                     checkpoint->rearrange_rounds_done,
                                     checkpoint->rearrange_cross);
        write_checkpoint(start_index, tree, lnl);
      }
    } else {
      // Step 2: the unique 3-taxon tree, fully optimized.
      tree.make_triplet(order[0], order[1], order[2]);
      const TaskResult initial = dispatch_single(
          RoundKind::kInitial, 3, make_task(tree, -1, options_.full_smooth_passes));
      lnl = adopt(tree, initial);
      record_event(3, lnl, initial.newick);
    }

    // Steps 3-5: add each remaining taxon, then rearrange.
    for (int idx = start_index; idx < n; ++idx) {
      const int tip = order[static_cast<std::size_t>(idx)];
      lnl = add_taxon(tree, tip, idx + 1);
      record_event(idx + 1, lnl, to_newick(tree, names_, 17));

      const bool last = idx == n - 1;
      const int cross =
          last ? options_.final_rearrange_cross : options_.rearrange_cross;
      if (cross > 0 && (last || options_.rearrange_after_each_addition)) {
        lnl = rearrange_until_stable(tree, lnl, cross, idx + 1);
      }
      write_checkpoint(idx + 1, tree, lnl);
    }

    result_.best_newick = to_newick(tree, names_, 17);
    result_.best_log_likelihood = lnl;
    return std::move(result_);
  }

 private:
  TreeTask make_task(const Tree& tree, int focus_taxon, int passes) {
    TreeTask task;
    task.task_id = next_task_id_++;
    task.round_id = next_round_id_;
    task.newick = to_newick(tree, names_, 17);
    task.focus_taxon = focus_taxon;
    task.smooth_passes = passes;
    return task;
  }

  /// Dispatches one round through the runner, recording the trace entry.
  /// Returns the round's best result (the foreman already compared).
  TaskResult dispatch(RoundKind kind, int taxa_in_tree,
                      std::vector<TreeTask> tasks) {
    RoundTrace round;
    round.kind = kind;
    round.taxa_in_tree = taxa_in_tree;
    round.master_seconds = master_timer_.seconds();

    // Master-side round span: the search loop's serial bookkeeping plus the
    // blocking run_round call (a paper Figure-3 "serial fraction" input).
    obs::Span span("search", round_kind_name(kind), "round",
                   static_cast<std::int64_t>(next_round_id_), "tasks",
                   static_cast<std::int64_t>(tasks.size()));
    if (options_.progress != nullptr) {
      ProgressProbe& probe = *options_.progress;
      probe.phase.store(kind == RoundKind::kRearrange
                            ? static_cast<int>(SearchPhase::kRearrange)
                            : static_cast<int>(SearchPhase::kAddition),
                        std::memory_order_relaxed);
      probe.taxa_in_tree.store(taxa_in_tree, std::memory_order_relaxed);
      probe.round.store(static_cast<int>(next_round_id_),
                        std::memory_order_relaxed);
      probe.tasks_total.fetch_add(tasks.size(), std::memory_order_relaxed);
    }
    ++next_round_id_;
    result_.trees_evaluated += tasks.size();
    RoundOutcome outcome = runner_.run_round(tasks);
    if (outcome.stats.size() != tasks.size()) {
      throw std::logic_error("search: runner lost tasks");
    }
    if (options_.progress != nullptr) {
      options_.progress->tasks_done.fetch_add(tasks.size(),
                                              std::memory_order_relaxed);
    }

    if (options_.record_trace) {
      for (const TaskStat& stat : outcome.stats) {
        round.task_cpu_seconds.push_back(stat.cpu_seconds);
        round.task_bytes.push_back(stat.bytes);
      }
      result_.trace.rounds.push_back(std::move(round));
    }
    master_timer_.reset();
    return std::move(outcome.best);
  }

  TaskResult dispatch_single(RoundKind kind, int taxa_in_tree, TreeTask task) {
    std::vector<TreeTask> tasks{std::move(task)};
    return dispatch(kind, taxa_in_tree, std::move(tasks));
  }

  /// Replaces the master tree with a worker-optimized result. The master
  /// never recomputes likelihoods (the paper calls out fixing a bug where
  /// it re-evaluated returned trees).
  double adopt(Tree& tree, const TaskResult& result) {
    tree = tree_from_newick(result.newick, names_);
    return result.log_likelihood;
  }

  void record_event(int taxa, double lnl, std::string newick) {
    if (options_.progress != nullptr) options_.progress->set_best(lnl);
    result_.events.push_back({taxa, lnl, std::move(newick)});
  }

  /// Writes the restart checkpoint after a completed taxon addition
  /// (phase kAddition) or a completed rearrangement round (kRearrange,
  /// with the loop state needed to continue that stage exactly). This is
  /// also the cooperative stop point: a pending stop request takes effect
  /// only after the covering checkpoint is durably committed, so an
  /// interrupted run never loses finished work.
  void write_checkpoint(int next_index, const Tree& tree, double lnl,
                        SearchPhase phase = SearchPhase::kAddition,
                        int rounds_done = 0, int cross = 0) {
    std::uint64_t generation = 0;
    if (store_.has_value()) {
      SearchCheckpoint checkpoint;
      checkpoint.seed = options_.seed;
      checkpoint.addition_order = result_.addition_order;
      checkpoint.next_order_index = next_index;
      checkpoint.tree_newick = to_newick(tree, names_, 17);
      checkpoint.log_likelihood = lnl;
      checkpoint.phase = phase;
      checkpoint.rearrange_rounds_done = rounds_done;
      checkpoint.rearrange_cross = cross;
      checkpoint.dataset_fingerprint = options_.dataset_fingerprint;
      const std::string text = checkpoint.serialize();
      generation = store_->commit(
          kFrameSearchCheckpoint, options_.dataset_fingerprint,
          std::vector<std::uint8_t>(text.begin(), text.end()));
      if (options_.progress != nullptr) {
        options_.progress->checkpoint_generation.store(
            generation, std::memory_order_relaxed);
      }
    }
    if (options_.stop_requested && options_.stop_requested()) {
      throw SearchInterrupted(generation);
    }
  }

  /// Step 3: try the new taxon at every branch; fully smooth the winner.
  double add_taxon(Tree& tree, int tip, int taxa_after) {
    std::vector<TreeTask> tasks;
    for (const auto& [u, v] : insertion_edges(tree)) {
      Tree candidate = tree;
      candidate.insert_tip(tip, u, v);
      tasks.push_back(make_task(candidate,
                                options_.quickadd ? tip : -1,
                                options_.quickadd ? options_.quickadd_passes
                                                  : options_.full_smooth_passes));
    }
    const TaskResult best =
        dispatch(RoundKind::kInsertion, taxa_after, std::move(tasks));
    if (!options_.quickadd) return adopt(tree, best);

    // The rapid approximation picked the insertion point; optimize the
    // winner properly.
    Tree winner_tree = tree_from_newick(best.newick, names_);
    const TaskResult winner = dispatch_single(
        RoundKind::kWinner, taxa_after,
        make_task(winner_tree, -1, options_.full_smooth_passes));
    return adopt(tree, winner);
  }

  /// Step 4/5: rounds of subtree rearrangement until no improvement. With
  /// adaptive extents enabled, a stalled round escalates the crossing
  /// distance before the search settles. `start_round`/`start_cross`
  /// continue an interrupted stage from a kRearrange checkpoint
  /// (start_cross 0 = begin at the base extent); each completed round
  /// checkpoints the loop state, so a killed run resumes from the last
  /// round boundary and reproduces the uninterrupted result exactly.
  double rearrange_until_stable(Tree& tree, double lnl, int cross,
                                int taxa_in_tree, int start_round = 0,
                                int start_cross = 0) {
    int current_cross = start_cross > 0 ? start_cross : cross;
    for (int round = start_round; round < options_.max_rearrange_rounds; ++round) {
      std::set<std::uint64_t> seen{topology_hash(tree)};
      std::vector<TreeTask> tasks;
      for (const SprMove& move : rearrangement_moves(tree, current_cross)) {
        Tree candidate = tree;
        const auto handle =
            candidate.prune_subtree(move.junction, move.subtree_neighbor);
        candidate.regraft(handle, move.target_u, move.target_v);
        if (!seen.insert(topology_hash(candidate)).second) continue;
        tasks.push_back(make_task(candidate, -1, options_.full_smooth_passes));
      }
      if (tasks.empty()) break;
      const TaskResult best =
          dispatch(RoundKind::kRearrange, taxa_in_tree, std::move(tasks));
      if (best.log_likelihood <= lnl + options_.improvement_epsilon) {
        if (current_cross < options_.adaptive_max_cross) {
          current_cross = std::min(options_.adaptive_max_cross, 2 * current_cross);
          // Stalled: widen the search radius and retry.
          write_checkpoint(taxa_in_tree, tree, lnl, SearchPhase::kRearrange,
                           round + 1, current_cross);
          continue;
        }
        break;
      }
      lnl = adopt(tree, best);
      ++result_.rearrangements_accepted;
      record_event(taxa_in_tree, lnl, best.newick);
      current_cross = cross;  // improvement: back to the base extent
      write_checkpoint(taxa_in_tree, tree, lnl, SearchPhase::kRearrange,
                       round + 1, current_cross);
    }
    return lnl;
  }

  const PatternAlignment& data_;
  const SearchOptions& options_;
  TaskRunner& runner_;
  const std::vector<std::string>& names_;
  std::optional<CheckpointStore> store_;
  SearchResult result_;
  std::uint64_t next_task_id_ = 0;
  std::uint64_t next_round_id_ = 0;
  CpuTimer master_timer_;
};

}  // namespace

StepwiseSearch::StepwiseSearch(const PatternAlignment& data, SearchOptions options)
    : data_(data), options_(options) {
  if (data.num_taxa() < 3) {
    throw std::invalid_argument("search: need at least 3 taxa");
  }
}

SearchResult StepwiseSearch::run(TaskRunner& runner) {
  Rng rng(options_.seed);
  std::vector<int> order(data_.num_taxa());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  rng.shuffle(order);
  return run(runner, std::move(order));
}

SearchResult StepwiseSearch::run(TaskRunner& runner, std::vector<int> order) {
  // Validate the permutation.
  std::vector<char> seen(order.size(), 0);
  for (int taxon : order) {
    if (taxon < 0 || taxon >= static_cast<int>(order.size()) ||
        seen[static_cast<std::size_t>(taxon)]) {
      throw std::invalid_argument("search: order is not a permutation");
    }
    seen[static_cast<std::size_t>(taxon)] = 1;
  }
  SearchRun run_state(data_, options_, runner);
  return run_state.run(std::move(order));
}

SearchResult StepwiseSearch::resume(TaskRunner& runner,
                                    const SearchCheckpoint& checkpoint) {
  // Refuse checkpoints that cannot belong to the loaded alignment, naming
  // both sides of the disagreement — "tree/index mismatch" told a user
  // nothing about *which* file was wrong.
  const std::size_t n = data_.num_taxa();
  if (checkpoint.addition_order.size() != n) {
    throw std::invalid_argument(
        "resume: checkpoint has " +
        std::to_string(checkpoint.addition_order.size()) +
        " taxa in its addition order but the loaded alignment has " +
        std::to_string(n) + " taxa — it belongs to a different dataset");
  }
  if (checkpoint.dataset_fingerprint != 0 && options_.dataset_fingerprint != 0 &&
      checkpoint.dataset_fingerprint != options_.dataset_fingerprint) {
    throw FingerprintMismatchError(options_.checkpoint_path.empty()
                                       ? "(in-memory checkpoint)"
                                       : options_.checkpoint_path,
                                   options_.dataset_fingerprint,
                                   checkpoint.dataset_fingerprint);
  }
  if (checkpoint.next_order_index < 3 ||
      checkpoint.next_order_index > static_cast<int>(n)) {
    throw std::invalid_argument(
        "resume: checkpoint next_order_index " +
        std::to_string(checkpoint.next_order_index) +
        " is outside [3, " + std::to_string(n) +
        "] for the loaded alignment");
  }
  std::vector<char> seen(n, 0);
  for (int taxon : checkpoint.addition_order) {
    if (taxon < 0 || taxon >= static_cast<int>(n) ||
        seen[static_cast<std::size_t>(taxon)]) {
      throw std::invalid_argument(
          "resume: checkpoint addition order is not a permutation of the "
          "loaded alignment's " + std::to_string(n) +
          " taxa (bad entry " + std::to_string(taxon) + ")");
    }
    seen[static_cast<std::size_t>(taxon)] = 1;
  }
  SearchRun run_state(data_, options_, runner);
  return run_state.run(checkpoint.addition_order, &checkpoint);
}

void SearchCheckpoint::save(std::ostream& out) const {
  out << "fdml-checkpoint 3\n";
  out << seed << " " << next_order_index << " " << addition_order.size() << "\n";
  for (int taxon : addition_order) out << taxon << " ";
  out << "\n";
  out << static_cast<int>(phase) << " " << rearrange_rounds_done << " "
      << rearrange_cross << "\n";
  out << dataset_fingerprint << "\n";
  out.precision(17);
  out << log_likelihood << "\n";
  out << tree_newick << "\n";
}

SearchCheckpoint SearchCheckpoint::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  // v1 files (no phase line) restart from the last completed addition; v2
  // lacks the dataset fingerprint. Both remain loadable so old checkpoints
  // survive an upgrade.
  if (magic != "fdml-checkpoint" || version < 1 || version > 3) {
    throw std::runtime_error("checkpoint: bad header");
  }
  SearchCheckpoint checkpoint;
  std::size_t order_size = 0;
  in >> checkpoint.seed >> checkpoint.next_order_index >> order_size;
  checkpoint.addition_order.resize(order_size);
  for (auto& taxon : checkpoint.addition_order) in >> taxon;
  if (version >= 2) {
    int phase = 0;
    in >> phase >> checkpoint.rearrange_rounds_done >> checkpoint.rearrange_cross;
    if (phase != static_cast<int>(SearchPhase::kAddition) &&
        phase != static_cast<int>(SearchPhase::kRearrange)) {
      throw std::runtime_error("checkpoint: bad phase");
    }
    checkpoint.phase = static_cast<SearchPhase>(phase);
  }
  if (version >= 3) in >> checkpoint.dataset_fingerprint;
  in >> checkpoint.log_likelihood;
  // The Newick line is taken verbatim (labels may contain quoted spaces).
  std::string rest;
  std::getline(in, rest);
  std::getline(in, checkpoint.tree_newick);
  if (!in || checkpoint.tree_newick.empty()) {
    throw std::runtime_error("checkpoint: truncated");
  }
  return checkpoint;
}

std::string SearchCheckpoint::serialize() const {
  std::ostringstream out;
  save(out);
  return out.str();
}

SearchCheckpoint SearchCheckpoint::deserialize(const std::string& text) {
  std::istringstream in(text);
  return load(in);
}

void SearchCheckpoint::save_file(const std::string& path, Vfs* vfs) const {
  // Durable write-then-rename: the bytes are fsynced before the checked
  // rename, and the directory is fsynced after it, so an interrupted save
  // never corrupts the previous checkpoint and a completed one survives
  // power loss. (The original version ignored both the stream state and
  // std::rename's return value — a full disk produced a silently truncated
  // checkpoint.)
  Vfs& fs = vfs_or_real(vfs);
  const std::string text = serialize();
  const std::string tmp = path + ".tmp";
  fs.write_file(tmp, reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size());
  fs.rename_file(tmp, path);
  fs.sync_dir(parent_dir(path));
}

SearchCheckpoint SearchCheckpoint::load_file(const std::string& path,
                                             Vfs* vfs) {
  Vfs& fs = vfs_or_real(vfs);
  auto bytes = fs.read_file(path);
  if (!bytes.has_value()) throw std::runtime_error("cannot open " + path);
  if (looks_like_frame(bytes->data(), bytes->size())) {
    auto frame = read_frame_file(fs, path);
    if (!frame.has_value() || frame->kind != kFrameSearchCheckpoint) {
      throw DurableError("checkpoint " + path +
                         ": corrupt or torn durable frame");
    }
    return deserialize(
        std::string(frame->payload.begin(), frame->payload.end()));
  }
  return deserialize(std::string(bytes->begin(), bytes->end()));
}

std::optional<RecoveredCheckpoint> recover_checkpoint(
    const std::string& base_path, std::uint64_t expected_fingerprint,
    Vfs* vfs) {
  CheckpointStore store(base_path, {}, vfs);
  auto recovered = store.recover(expected_fingerprint);
  if (recovered.has_value()) {
    RecoveredCheckpoint out;
    out.checkpoint = SearchCheckpoint::deserialize(std::string(
        recovered->frame.payload.begin(), recovered->frame.payload.end()));
    out.generation = recovered->generation;
    out.path = recovered->path;
    return out;
  }
  // No durable frame anywhere: the path may hold a legacy text checkpoint.
  Vfs& fs = vfs_or_real(vfs);
  auto bytes = fs.read_file(base_path);
  if (!bytes.has_value()) return std::nullopt;
  try {
    RecoveredCheckpoint out;
    out.checkpoint =
        SearchCheckpoint::deserialize(std::string(bytes->begin(), bytes->end()));
    out.path = base_path;
    if (expected_fingerprint != 0 && out.checkpoint.dataset_fingerprint != 0 &&
        out.checkpoint.dataset_fingerprint != expected_fingerprint) {
      throw FingerprintMismatchError(base_path, expected_fingerprint,
                                     out.checkpoint.dataset_fingerprint);
    }
    return out;
  } catch (const FingerprintMismatchError&) {
    throw;
  } catch (const std::exception&) {
    return std::nullopt;  // unparsable legacy text = nothing to resume
  }
}

JumbleResult run_jumbles(const PatternAlignment& data, SearchOptions options,
                         int count, TaskRunner& runner) {
  JumbleResult out;
  for (int k = 0; k < count; ++k) {
    SearchOptions jumble_options = options;
    jumble_options.seed = adjust_user_seed(options.seed) + 2ULL * k;
    StepwiseSearch search(data, jumble_options);
    out.runs.push_back(search.run(runner));
    if (out.runs.back().best_log_likelihood >
        out.runs[out.best_index].best_log_likelihood) {
      out.best_index = out.runs.size() - 1;
    }
  }
  return out;
}

}  // namespace fdml
