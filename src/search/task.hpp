// The unit of parallel work: "optimize the branch lengths of this candidate
// topology and return it with its likelihood" — exactly what the paper's
// foreman dispatches to workers and what makes the compute-to-communication
// ratio so favourable (hundreds of thousands of FLOPs per byte returned).
#pragma once

#include <cstdint>
#include <string>

#include "util/packer.hpp"

namespace fdml {

struct TreeTask {
  std::uint64_t task_id = 0;
  /// Round of the search this task belongs to (rounds form the loose
  /// synchronization barriers of the paper's Figure 2 flow).
  std::uint64_t round_id = 0;
  /// Candidate topology with starting branch lengths, over the shared taxon
  /// namespace.
  std::string newick;
  /// When >= 0, this is a rapid insertion evaluation: only the three
  /// branches around this taxon's attachment point are optimized (the
  /// paper's "rapid approximation of the insertion point"). -1 = optimize
  /// every branch.
  int focus_taxon = -1;
  /// Smoothing pass budget for the optimizer.
  int smooth_passes = 8;

  void pack(Packer& packer) const;
  static TreeTask unpack(Unpacker& unpacker);
};

struct TaskResult {
  std::uint64_t task_id = 0;
  std::uint64_t round_id = 0;
  double log_likelihood = 0.0;
  /// The candidate with optimized branch lengths.
  std::string newick;
  /// Worker thread-CPU seconds spent optimizing (drives the scaling-trace
  /// replays).
  double cpu_seconds = 0.0;
  /// Rank/id of the worker that produced this result (monitor bookkeeping).
  int worker = -1;

  /// Kernel work this task cost (engine counter deltas, see KernelCounters):
  /// lets the foreman attribute per-worker kernel effort as results arrive
  /// instead of waiting for the end-of-run goodbye report. Zero for results
  /// replayed from the journal.
  std::uint64_t clv_computations = 0;
  std::uint64_t edge_evaluations = 0;
  std::uint64_t transition_hits = 0;
  std::uint64_t transition_misses = 0;

  void pack(Packer& packer) const;
  static TaskResult unpack(Unpacker& unpacker);
};

}  // namespace fdml
