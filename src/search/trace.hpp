// Search traces: the per-round task structure and measured per-task CPU
// costs of a real search run. The discrete-event cluster simulator replays
// traces at arbitrary processor counts to reproduce the paper's Figures 3/4
// on hardware that does not have 64 CPUs (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fdml {

enum class RoundKind : std::uint8_t {
  kInitial = 0,     ///< first full optimization of the 3-taxon tree
  kInsertion = 1,   ///< the (2i-5) quick-add candidates for one taxon
  kWinner = 2,      ///< full smoothing of the chosen insertion
  kRearrange = 3,   ///< one round of subtree rearrangements
};

const char* round_kind_name(RoundKind kind);

struct RoundTrace {
  RoundKind kind = RoundKind::kInsertion;
  /// Taxa in the tree during this round.
  int taxa_in_tree = 0;
  /// Worker CPU seconds per task of this round.
  std::vector<double> task_cpu_seconds;
  /// Wire bytes for each task message and its result (task+result summed).
  std::vector<std::uint64_t> task_bytes;
  /// Master CPU seconds between receiving this round's results and issuing
  /// the next round (candidate generation, comparisons).
  double master_seconds = 0.0;
};

struct SearchTrace {
  std::string dataset;
  int num_taxa = 0;
  std::size_t num_sites = 0;
  std::size_t num_patterns = 0;
  std::uint64_t seed = 0;
  std::vector<RoundTrace> rounds;

  std::size_t total_tasks() const;
  double total_task_seconds() const;
  double total_master_seconds() const;

  /// Scales every task cost by `factor` (used to extrapolate bench-sized
  /// alignments to paper-sized ones: kernel cost is linear in site count).
  void scale_costs(double factor);

  /// Plain-text serialization (one file per trace) for bench reuse.
  void save(std::ostream& out) const;
  static SearchTrace load(std::istream& in);
  void save_file(const std::string& path) const;
  static SearchTrace load_file(const std::string& path);
};

}  // namespace fdml
