#include "search/runner.hpp"

#include <stdexcept>
#include <utility>

namespace fdml {

std::uint64_t wire_bytes(const TreeTask& task, const TaskResult& result) {
  Packer task_packer;
  task.pack(task_packer);
  Packer result_packer;
  result.pack(result_packer);
  return task_packer.size() + result_packer.size();
}

SerialTaskRunner::SerialTaskRunner(const PatternAlignment& data, SubstModel model,
                                   RateModel rates, OptimizeOptions options)
    : evaluator_(data, std::move(model), std::move(rates), options) {}

RoundOutcome SerialTaskRunner::run_round(const std::vector<TreeTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("run_round: empty round");
  // The whole round goes through the batched path in one call — candidate
  // insertion tasks share their base-tree CLV traversal and are captured in
  // multi-edge chunks. Results come back in task order, so the best-result
  // selection below is identical to evaluating one task at a time
  // (first-wins on ties, sequential order).
  std::vector<TaskResult> results = evaluator_.evaluate_batch(tasks);
  RoundOutcome outcome;
  bool have_best = false;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskResult& result = results[i];
    result.worker = 0;
    outcome.stats.push_back(
        {tasks[i].task_id, result.cpu_seconds, wire_bytes(tasks[i], result), 0});
    if (!have_best || result.log_likelihood > outcome.best.log_likelihood) {
      outcome.best = std::move(result);
      have_best = true;
    }
  }
  return outcome;
}

}  // namespace fdml
