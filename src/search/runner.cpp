#include "search/runner.hpp"

#include <stdexcept>
#include <utility>

namespace fdml {

std::uint64_t wire_bytes(const TreeTask& task, const TaskResult& result) {
  Packer task_packer;
  task.pack(task_packer);
  Packer result_packer;
  result.pack(result_packer);
  return task_packer.size() + result_packer.size();
}

SerialTaskRunner::SerialTaskRunner(const PatternAlignment& data, SubstModel model,
                                   RateModel rates, OptimizeOptions options)
    : evaluator_(data, std::move(model), std::move(rates), options) {}

RoundOutcome SerialTaskRunner::run_round(const std::vector<TreeTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("run_round: empty round");
  RoundOutcome outcome;
  bool have_best = false;
  for (const TreeTask& task : tasks) {
    TaskResult result = evaluator_.evaluate(task);
    result.worker = 0;
    outcome.stats.push_back(
        {task.task_id, result.cpu_seconds, wire_bytes(task, result), 0});
    if (!have_best || result.log_likelihood > outcome.best.log_likelihood) {
      outcome.best = std::move(result);
      have_best = true;
    }
  }
  return outcome;
}

}  // namespace fdml
