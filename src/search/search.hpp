// The fastDNAml search: stepwise addition with local rearrangements.
//
// Algorithm (paper section 2):
//   1. Place the taxa in a random order.
//   2. Build the unique 3-taxon tree from the first three; optimize it.
//   3. Add the next taxon at each of the (2i-5) branches; every candidate
//      is a dispatched task (rapid partial optimization by default); the
//      best insertion is then fully smoothed.
//   4. Rearrange: move every subtree across up to `rearrange_cross`
//      vertices ((2i-6) topologically distinct candidates at 1); adopt the
//      best improvement and repeat until none improves.
//   5. After the last taxon, rearrange with `final_rearrange_cross`
//      (the paper's runs used 5) until no improvement.
// The whole procedure is repeated over many random orders (jumbles) and
// summarised with a consensus tree; see run_jumbles.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "durable/vfs.hpp"
#include "likelihood/optimize.hpp"
#include "search/runner.hpp"
#include "search/trace.hpp"
#include "seq/alignment.hpp"
#include "tree/tree.hpp"

namespace fdml {

/// Live progress published by a running search, readable from any thread
/// (the telemetry plane's scrape handler polls it while the search runs).
/// All fields are relaxed atomics: each is individually coherent, and a
/// scrape that catches a round mid-update is fine — progress is monotonic
/// enough for dashboards, and exactness comes from the final result.
struct ProgressProbe {
  /// SearchPhase as an int (-1 until the search first dispatches work).
  std::atomic<int> phase{-1};
  std::atomic<int> taxa_in_tree{0};
  /// Rearrangement round counter at the current taxon count.
  std::atomic<int> round{0};
  std::atomic<std::uint64_t> tasks_done{0};
  std::atomic<std::uint64_t> tasks_total{0};
  /// Last durably committed checkpoint generation (0 = none yet).
  std::atomic<std::uint64_t> checkpoint_generation{0};

  void set_best(double log_likelihood) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &log_likelihood, sizeof(bits));
    best_bits_.store(bits, std::memory_order_relaxed);
    has_best_.store(true, std::memory_order_release);
  }

  /// nullopt until the first tree is adopted.
  std::optional<double> best() const noexcept {
    if (!has_best_.load(std::memory_order_acquire)) return std::nullopt;
    const std::uint64_t bits = best_bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  /// lnL as an IEEE-754 bit pattern — doubles have no lock-free atomic on
  /// every target, u64 does.
  std::atomic<std::uint64_t> best_bits_{0};
  std::atomic<bool> has_best_{false};
};

struct SearchOptions {
  /// Jumble seed (even seeds are adjusted to odd, as in fastDNAml).
  std::uint64_t seed = 1;
  /// Vertices crossed by rearrangements after each addition (paper default
  /// 1; the paper's benchmark runs used 5 for both this and the final pass).
  int rearrange_cross = 1;
  /// Vertices crossed by the final rearrangement pass.
  int final_rearrange_cross = 1;
  /// Rearrange after every addition (true in fastDNAml; setting false keeps
  /// only the final pass — useful for quick tests).
  bool rearrange_after_each_addition = true;
  /// Rapid insertion testing: optimize only the three branches at the new
  /// attachment instead of the whole tree.
  bool quickadd = true;
  int quickadd_passes = 2;
  /// Smoothing pass budget for full evaluations.
  int full_smooth_passes = 8;
  /// lnL gain below which a rearrangement round is considered no
  /// improvement.
  double improvement_epsilon = 1e-4;
  int max_rearrange_rounds = 64;
  /// Adaptive rearrangement extents (a paper future-work item): when a
  /// round at the current crossing distance finds no improvement, double
  /// the distance up to this bound before stopping; an improvement resets
  /// to the base setting. 0 disables.
  int adaptive_max_cross = 0;
  OptimizeOptions optimize;
  /// Record per-round task costs for the cluster simulator.
  bool record_trace = true;
  /// When non-empty, write a restart checkpoint here after every completed
  /// taxon addition and every completed rearrangement round (original
  /// fastDNAml wrote checkpoint trees so long runs could survive
  /// interruption). Resume with StepwiseSearch::resume; the completed
  /// result is identical to the uninterrupted run. Checkpoints go through
  /// the durable CheckpointStore: crash-safe atomic commits, with the last
  /// `checkpoint_keep` generations retained for rollback.
  std::string checkpoint_path;
  /// Generations retained by the checkpoint store.
  std::uint64_t checkpoint_keep = 3;
  /// Fingerprint of the alignment/model this run is bound to (see
  /// alignment_fingerprint). Stamped into every checkpoint; resume refuses
  /// a checkpoint carrying a different one. 0 = unchecked.
  std::uint64_t dataset_fingerprint = 0;
  /// Filesystem used for checkpoints; null = the real one. Tests inject a
  /// FaultVfs here to crash the run at chosen commit points.
  Vfs* vfs = nullptr;
  /// Polled at every checkpoint boundary; returning true stops the run by
  /// throwing SearchInterrupted after the checkpoint has been committed.
  /// The SIGINT/SIGTERM handler in apps/fastdnamlpp sets this.
  std::function<bool()> stop_requested;
  /// When non-null, the search publishes live progress (phase, round, task
  /// counts, best lnL, checkpoint generation) here. Must outlive the run.
  ProgressProbe* progress = nullptr;
};

/// Thrown when SearchOptions::stop_requested asked the run to stop. The
/// checkpoint covering all completed work was already durably committed;
/// `generation` names it (0 when no checkpoint path was configured).
class SearchInterrupted : public std::runtime_error {
 public:
  explicit SearchInterrupted(std::uint64_t generation)
      : std::runtime_error(
            "search interrupted; resumable at checkpoint generation " +
            std::to_string(generation)),
        generation_(generation) {}

  std::uint64_t generation() const { return generation_; }

 private:
  std::uint64_t generation_ = 0;
};

/// Which part of the search a checkpoint captured. Rearrangement rounds are
/// memoryless given (tree, likelihood, crossing distance, round counter) —
/// each round rebuilds its candidate set from the current tree — which is
/// what makes round-granular resume reproduce an uninterrupted run exactly.
enum class SearchPhase : int {
  /// The addition (and any rearrangement) for every taxon before
  /// next_order_index is complete.
  kAddition = 0,
  /// Mid-rearrangement with next_order_index taxa in the tree.
  kRearrange = 1,
};

/// Restartable search state: everything needed to continue a run after a
/// completed taxon addition (v1) or a completed rearrangement round (v2).
struct SearchCheckpoint {
  std::uint64_t seed = 0;
  std::vector<int> addition_order;
  /// Index into addition_order of the next taxon to add; equals the number
  /// of taxa in the checkpointed tree.
  int next_order_index = 0;
  std::string tree_newick;
  double log_likelihood = 0.0;
  SearchPhase phase = SearchPhase::kAddition;
  /// kRearrange only: rounds already consumed at this taxon count (resumes
  /// the max_rearrange_rounds budget, not a fresh one).
  int rearrange_rounds_done = 0;
  /// kRearrange only: the crossing distance in effect (adaptive extents may
  /// have escalated it beyond the configured base).
  int rearrange_cross = 0;
  /// Fingerprint of the alignment/model the run was bound to (v3; 0 in
  /// older checkpoints and unfingerprinted runs).
  std::uint64_t dataset_fingerprint = 0;

  void save(std::ostream& out) const;
  static SearchCheckpoint load(std::istream& in);
  /// Durable single-file save: tmp + fsync + checked rename + directory
  /// fsync, via `vfs` (null = real filesystem). Throws on any I/O failure.
  void save_file(const std::string& path, Vfs* vfs = nullptr) const;
  /// Loads either a durable frame (as written by the checkpoint store) or
  /// the legacy v1/v2 text format, auto-detected.
  static SearchCheckpoint load_file(const std::string& path,
                                    Vfs* vfs = nullptr);
  /// The text serialization used as durable-frame payload.
  std::string serialize() const;
  static SearchCheckpoint deserialize(const std::string& text);
};

/// Fingerprint-checked recovery through the generational checkpoint store.
struct RecoveredCheckpoint {
  SearchCheckpoint checkpoint;
  std::uint64_t generation = 0;
  /// Which on-disk file validated (the base path or a .gen-<N> sibling).
  std::string path;
};

/// Rolls back to the newest checkpoint generation at `base_path` that
/// validates and matches `expected_fingerprint` (0 = accept any). nullopt
/// when nothing usable exists; throws FingerprintMismatchError when the
/// newest valid checkpoint belongs to a different dataset. Falls back to
/// the legacy text format when `base_path` predates the durable store.
std::optional<RecoveredCheckpoint> recover_checkpoint(
    const std::string& base_path, std::uint64_t expected_fingerprint,
    Vfs* vfs = nullptr);

/// Best-tree-so-far event stream — what the paper's real-time 3D viewer
/// tails while a run is in progress.
struct BestTreeEvent {
  int taxa_in_tree = 0;
  double log_likelihood = 0.0;
  std::string newick;
};

struct SearchResult {
  std::string best_newick;
  double best_log_likelihood = 0.0;
  std::vector<int> addition_order;
  SearchTrace trace;
  std::vector<BestTreeEvent> events;
  std::size_t trees_evaluated = 0;
  std::size_t rearrangements_accepted = 0;
};

class StepwiseSearch {
 public:
  /// `data` must outlive the search.
  StepwiseSearch(const PatternAlignment& data, SearchOptions options);

  /// One full search with the addition order drawn from options.seed.
  SearchResult run(TaskRunner& runner);

  /// One full search with an explicit addition order (must be a permutation
  /// of 0..num_taxa-1).
  SearchResult run(TaskRunner& runner, std::vector<int> addition_order);

  /// Continues an interrupted run from a checkpoint. The completed result
  /// is identical to an uninterrupted run with the same options.
  SearchResult resume(TaskRunner& runner, const SearchCheckpoint& checkpoint);

  const SearchOptions& options() const { return options_; }

 private:
  const PatternAlignment& data_;
  SearchOptions options_;
};

/// Repeats the search over `count` random orderings (seeds seed, seed+2,
/// seed+4, ... to stay odd) and returns all results; `best_index` has the
/// highest likelihood. This is the workflow the paper describes: "tens to
/// thousands of different randomizations ... compare the best of the
/// resulting trees to determine a consensus tree."
struct JumbleResult {
  std::vector<SearchResult> runs;
  std::size_t best_index = 0;
};
JumbleResult run_jumbles(const PatternAlignment& data, SearchOptions options,
                         int count, TaskRunner& runner);

}  // namespace fdml
