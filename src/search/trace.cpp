#include "search/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fdml {

const char* round_kind_name(RoundKind kind) {
  switch (kind) {
    case RoundKind::kInitial: return "initial";
    case RoundKind::kInsertion: return "insertion";
    case RoundKind::kWinner: return "winner";
    case RoundKind::kRearrange: return "rearrange";
  }
  return "?";
}

std::size_t SearchTrace::total_tasks() const {
  std::size_t n = 0;
  for (const auto& round : rounds) n += round.task_cpu_seconds.size();
  return n;
}

double SearchTrace::total_task_seconds() const {
  double total = 0.0;
  for (const auto& round : rounds) {
    for (double s : round.task_cpu_seconds) total += s;
  }
  return total;
}

double SearchTrace::total_master_seconds() const {
  double total = 0.0;
  for (const auto& round : rounds) total += round.master_seconds;
  return total;
}

void SearchTrace::scale_costs(double factor) {
  for (auto& round : rounds) {
    for (double& s : round.task_cpu_seconds) s *= factor;
    round.master_seconds *= factor;
  }
}

void SearchTrace::save(std::ostream& out) const {
  // Round-trip exactly: default stream precision (6 digits) loses enough of
  // each cpu_seconds entry for replays to drift.
  out.precision(17);
  out << "fdml-trace 1\n";
  out << dataset << "\n";
  out << num_taxa << " " << num_sites << " " << num_patterns << " " << seed
      << " " << rounds.size() << "\n";
  for (const auto& round : rounds) {
    out << static_cast<int>(round.kind) << " " << round.taxa_in_tree << " "
        << round.master_seconds << " " << round.task_cpu_seconds.size() << "\n";
    for (std::size_t i = 0; i < round.task_cpu_seconds.size(); ++i) {
      out << round.task_cpu_seconds[i] << " "
          << (i < round.task_bytes.size() ? round.task_bytes[i] : 0) << "\n";
    }
  }
}

SearchTrace SearchTrace::load(std::istream& in) {
  SearchTrace trace;
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "fdml-trace" || version != 1) {
    throw std::runtime_error("trace: bad header");
  }
  // Consume the rest of the header line, then take the dataset line as-is
  // (it may legitimately be empty; `>> std::ws` would swallow it and shift
  // the whole parse).
  std::string rest_of_header;
  std::getline(in, rest_of_header);
  std::getline(in, trace.dataset);
  std::size_t num_rounds = 0;
  in >> trace.num_taxa >> trace.num_sites >> trace.num_patterns >> trace.seed >>
      num_rounds;
  trace.rounds.resize(num_rounds);
  for (auto& round : trace.rounds) {
    int kind = 0;
    std::size_t tasks = 0;
    in >> kind >> round.taxa_in_tree >> round.master_seconds >> tasks;
    if (!in) throw std::runtime_error("trace: truncated round header");
    round.kind = static_cast<RoundKind>(kind);
    round.task_cpu_seconds.resize(tasks);
    round.task_bytes.resize(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
      in >> round.task_cpu_seconds[i] >> round.task_bytes[i];
    }
    if (!in) throw std::runtime_error("trace: truncated task list");
  }
  return trace;
}

void SearchTrace::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  save(out);
}

SearchTrace SearchTrace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load(in);
}

}  // namespace fdml
