// TaskRunner: where candidate trees get evaluated. The search driver is
// agnostic to the backend — the serial runner evaluates tasks in-process
// ("the worker process acts as a subroutine in the serial version"), while
// the parallel module provides a runner that dispatches rounds through the
// foreman over a Transport.
//
// Matching the paper's protocol, a round returns only the *best* tree (the
// foreman compares likelihood values; the master never re-evaluates
// returned trees) plus per-task accounting used by the monitor and the
// scaling-trace recorder.
#pragma once

#include <cstdint>
#include <vector>

#include "search/task.hpp"
#include "search/task_evaluator.hpp"

namespace fdml {

/// Per-task accounting returned with each round.
struct TaskStat {
  std::uint64_t task_id = 0;
  double cpu_seconds = 0.0;
  /// Wire bytes: serialized task + serialized result.
  std::uint64_t bytes = 0;
  int worker = -1;
};

struct RoundOutcome {
  /// The tree with the highest likelihood in the round.
  TaskResult best;
  /// One entry per task (completion order).
  std::vector<TaskStat> stats;
};

class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Evaluates a round of tasks. A round is a synchronization barrier: the
  /// outcome is produced only after every task has been evaluated.
  virtual RoundOutcome run_round(const std::vector<TreeTask>& tasks) = 0;

  /// Number of workers evaluating in parallel (1 for serial).
  virtual int worker_count() const { return 1; }
};

/// The paper's serial build: tasks run inline, one after another.
class SerialTaskRunner : public TaskRunner {
 public:
  SerialTaskRunner(const PatternAlignment& data, SubstModel model,
                   RateModel rates, OptimizeOptions options = {});

  RoundOutcome run_round(const std::vector<TreeTask>& tasks) override;

 private:
  TaskEvaluator evaluator_;
};

/// Serialized size of a task/result pair (shared by runners for the
/// compute-per-byte accounting).
std::uint64_t wire_bytes(const TreeTask& task, const TaskResult& result);

}  // namespace fdml
