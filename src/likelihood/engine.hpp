// Felsenstein-pruning likelihood engine.
//
// Conditional likelihood vectors (CLVs) are stored per *directed* edge:
// CLV(u -> v) holds, for every site pattern and rate category, the
// probability of the data in the subtree on u's side of edge (u,v),
// conditional on each state at u. Two properties make this the right unit
// of caching for fastDNAml's optimizer:
//   1. CLV(u -> v) does not depend on the length of edge (u,v) itself, so a
//      Newton iteration on that edge needs no recomputation at all; and
//   2. committing a new length for (u,v) invalidates exactly the directed
//      CLVs pointing *away* from the edge, found by one outward sweep.
//
// Underflow protection follows the paper ("conditional likelihoods have
// been normalized to prevent floating point underflow in the case of very
// large trees"): per-pattern scale counters multiply a CLV by 2^256 whenever
// its largest entry falls below 2^-256; log-likelihoods subtract the
// accumulated scalings.
//
// Kernel layer (see DESIGN.md "SIMD kernel layer"):
//   - CLVs, tip indicators and edge coefficients live in pattern-plane SoA
//     layout ([category][state][padded pattern]) in 64-byte-aligned arenas,
//     and the hot loops run through a SIMD backend selected at runtime
//     (scalar / SSE2 / AVX2 / AVX-512, exact or fast-math tier —
//     kernels.hpp); the engine captures a dispatch table at construction
//     via kernel_table_for_patterns(), which applies the AVX-512 downclock
//     heuristic to the alignment's pattern count;
//   - transition matrices are served by a TransitionCache keyed by the
//     effective length t * rate, invalidated by epoch on set_model();
//   - the hot path is allocation-free: edge captures and Newton evaluations
//     run out of engine-owned scratch arenas sized once at construction;
//   - edge evaluation works in the eigenbasis of Q ("sumtable" trick):
//     per (category, pattern) the engine stores 4 projected coefficients
//     c_k, and lnL(t) needs only sum_k c_k exp(lambda_k rate t) per site.
#pragma once

#include <cstdint>
#include <vector>

#include "likelihood/kernels.hpp"
#include "likelihood/transition_cache.hpp"
#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"
#include "tree/tree.hpp"
#include "util/aligned.hpp"

namespace fdml {

/// Hot-path instrumentation, cheap enough to stay always-on. Snapshot via
/// LikelihoodEngine::counters(); benchmarks report these so BENCH_*.json
/// can track cache effectiveness alongside throughput.
struct KernelCounters {
  std::uint64_t transition_hits = 0;    ///< TransitionCache hits
  std::uint64_t transition_misses = 0;  ///< TransitionCache misses (rebuilds)
  /// Live same-epoch entries displaced by a conflicting fill (set-conflict
  /// thrash; should stay near zero during smoothing).
  std::uint64_t transition_evictions = 0;
  std::uint64_t edge_captures = 0;      ///< edge_likelihood() calls
  std::uint64_t edge_evaluations = 0;   ///< EdgeLikelihood::evaluate calls
  std::uint64_t clv_computations = 0;   ///< internal-CLV recomputations
  /// Patterns rescaled by the 2^-256 underflow guard (deep-tree activity;
  /// the backend-parity tests assert this matches across SIMD backends).
  std::uint64_t clv_rescales = 0;
  /// Bytes of scratch served from preallocated arenas (i.e. heap traffic
  /// the kernel layer avoided) since construction.
  std::uint64_t scratch_bytes_reused = 0;
  /// Nanoseconds spent inside the CLV / edge-capture / evaluate kernels.
  std::uint64_t kernel_ns = 0;
  /// SIMD backend label of the engine's kernel table ("scalar", "sse2",
  /// "avx2") — static string, never owned.
  const char* simd_backend = "scalar";

  double transition_hit_rate() const {
    const std::uint64_t total = transition_hits + transition_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(transition_hits) /
                            static_cast<double>(total);
  }
};

/// A captured one-dimensional view of the likelihood along a single edge:
/// lnL(t) with first and second derivatives, cheap to evaluate repeatedly
/// during Newton iteration.
///
/// The view borrows engine-owned scratch (coefficients and site buffers),
/// so it is valid only until the next edge_likelihood() / attach() /
/// set_model() call on the same engine; evaluate() itself allocates
/// nothing. Exactly one EdgeLikelihood per engine is live at a time — the
/// optimizer's capture-then-iterate pattern.
class EdgeLikelihood {
 public:
  /// Log-likelihood at branch length t; optionally first/second derivatives.
  double evaluate(double t, double* d1 = nullptr, double* d2 = nullptr) const;

 private:
  friend class LikelihoodEngine;
  friend class BatchEdgeEvaluator;  // builds per-edge views over batch planes

  struct Workspace;

  const SubstModel* model_ = nullptr;
  const RateModel* rates_ = nullptr;
  TransitionCache* cache_ = nullptr;
  Workspace* ws_ = nullptr;           // engine-owned scratch arena
  KernelCounters* counters_ = nullptr;
  std::size_t num_patterns_ = 0;
  const double* pattern_weights_ = nullptr;  // borrowed from PatternAlignment
  double scale_offset_ = 0.0;  // log-scale corrections, t-independent
};

/// Engine-owned scratch the EdgeLikelihood view evaluates out of: eigen
/// coefficients written by edge_likelihood(), per-site accumulators reused
/// by every evaluate() call. Pointers alias engine arenas sized once.
struct EdgeLikelihood::Workspace {
  const double* coeff = nullptr;  // [cat][4][padded] eigen coefficient planes
  const double* lam = nullptr;    // [cat][4] = lambda_k * rate_cat
  double* site = nullptr;         // [padded] accumulators
  double* site_d1 = nullptr;
  double* site_d2 = nullptr;
  std::size_t padded = 0;         // padded pattern extent of the planes
  const KernelTable* kernels = nullptr;  // engine's SIMD dispatch table
};

class LikelihoodEngine {
 public:
  /// `data` is captured by reference and must outlive the engine (pattern
  /// tables are large and shared across the evaluators of a run); the model
  /// and rate model are small and copied in. The SIMD backend is resolved
  /// here (simd::active_backend()) and fixed for the engine's lifetime.
  LikelihoodEngine(const PatternAlignment& data, SubstModel model,
                   RateModel rates);

  // Scratch arenas and the transition cache are engine-local; views returned
  // by edge_likelihood() point into them, so engines do not copy or move.
  LikelihoodEngine(const LikelihoodEngine&) = delete;
  LikelihoodEngine& operator=(const LikelihoodEngine&) = delete;

  /// Binds the engine to a tree and invalidates all cached CLVs. The tree
  /// must outlive the binding. Node ids index CLV storage, so the tree must
  /// come from the same taxon namespace as the alignment (tip k = row k).
  void attach(const Tree& tree);
  const Tree* tree() const { return tree_; }

  /// Log-likelihood of the attached tree (evaluated across an arbitrary
  /// edge; all edges give the same value).
  double log_likelihood();

  /// Log-likelihood evaluated across edge (u, v) at its current length.
  double log_likelihood_edge(int u, int v);

  /// Captures the 1-D likelihood function along edge (u, v) for branch
  /// length optimization. Invalidates any previously returned view.
  EdgeLikelihood edge_likelihood(int u, int v);

  /// Invalidate every cached CLV (topology changed).
  void invalidate_all();

  /// Invalidates the three directed CLVs of one node. Used around scoped
  /// tree edits (taxon insertion trials): a node id drawn from the tree's
  /// free list may still carry validity flags from an earlier occupant.
  void invalidate_node(int node);

  /// Snapshot / restore of the CLV validity flags (values are untouched).
  /// A scoped insertion trial saves the flags, mutates the tree, lets the
  /// optimizer invalidate freely, then restores — the base tree's cached
  /// CLVs come back verbatim because an insertion trial only ever *writes*
  /// CLVs of the junction node (fresh id) and only *reads* directions
  /// pointing toward the junction, which the base tree computed already.
  void save_clv_validity(std::vector<char>& out) const;
  void restore_clv_validity(const std::vector<char>& saved);

  /// The length of edge (u, v) was committed; invalidate the directed CLVs
  /// that depend on it (those pointing away from the edge).
  void on_length_changed(int u, int v);

  /// Replaces the substitution model (e.g. a parameter-estimation step).
  /// Bumps the transition-cache epoch — the cache-invalidation contract:
  /// cached P(t) entries are valid per model epoch exactly as cached CLVs
  /// are valid per committed branch length (on_length_changed) — and
  /// invalidates every CLV.
  void set_model(SubstModel model);

  /// Per-site log-likelihoods (maps patterns back to sites).
  std::vector<double> site_log_likelihoods();
  /// Allocation-lean overload: writes into `out` (resized to num_sites),
  /// accumulating through engine scratch instead of fresh vectors. Repeated
  /// callers (bootstrap, per-site diagnostics) should reuse one `out`.
  /// Clobbers the same scratch as EdgeLikelihood views (see above).
  void site_log_likelihoods(std::vector<double>& out);

  /// Number of internal-CLV recomputations since attach (perf counter; used
  /// by the FLOP/byte benchmark and by tests asserting cache behaviour).
  std::uint64_t clv_computations() const { return counters_.clv_computations; }

  const PatternAlignment& data() const { return data_; }
  const SubstModel& model() const { return model_; }
  const RateModel& rate_model() const { return rates_; }

  /// Approximate floating-point operations performed since construction
  /// (kernel inner loops only; used to reproduce the paper's
  /// compute-per-byte claim).
  std::uint64_t flops() const { return flops_; }

  /// Snapshot of the kernel instrumentation (includes cache hit/miss and
  /// the SIMD backend label).
  KernelCounters counters() const;
  TransitionCache& transition_cache() { return cache_; }
  /// The SIMD kernel table this engine dispatches through (fixed at
  /// construction from kernel_table_for_patterns(num_patterns)).
  const KernelTable& kernels() const { return *kernels_; }

 private:
  struct Clv {
    AlignedVector<double> values;     // [cat][state][padded] SoA planes
    std::vector<std::int32_t> scale;  // per pattern (padded extent)
    bool valid = false;
  };

  // Directed-edge key: (node u, adjacency slot of v in u).
  std::size_t key(int node, int slot) const {
    return static_cast<std::size_t>(node) * 3 + static_cast<std::size_t>(slot);
  }

  /// Ensures CLV(u -> v) is computed; returns it. `slot` = slot of v in u.
  const Clv& ensure_clv(int u, int slot);
  void compute_internal_clv(int u, int slot);
  void invalidate_away(int node, int toward);

  /// Core of compute_internal_clv: combines two children into caller
  /// storage. `back_slots[c]` names the directed CLV of child c that faces
  /// the (possibly virtual) parent — CLV(children[c] -> parent); ignored
  /// for tip children. `lengths[c]` is the child-to-parent branch length.
  /// BatchEdgeEvaluator uses this to compute the CLV a junction node
  /// *would* have on each candidate insertion edge, without mutating the
  /// tree — bit-identical to what compute_internal_clv would produce after
  /// the insertion, because it is the same code.
  void combine_children(const int children[2], const int back_slots[2],
                        const double lengths[2], double* out_values,
                        std::int32_t* out_scale);

  /// Tip CLVs have no category dimension and never need scaling; expands a
  /// base code into indicator likelihood planes (and keeps the raw codes
  /// for the table-driven tip kernels).
  void build_tip_clvs();

  /// Rebuilds the model-derived projection tables (pi-weighted right
  /// eigenvectors, per-category scaled eigenvalues).
  void rebuild_model_tables();

  /// Plane base of tip `node` / internal CLV category `cat`.
  const double* tip_planes(int node) const {
    return &tip_clvs_[static_cast<std::size_t>(node) * 4 * padded_];
  }

  friend class BatchEdgeEvaluator;  // shares arenas, CLV access, counters

  const PatternAlignment& data_;
  SubstModel model_;  // mutable via set_model()
  const RateModel rates_;
  const Tree* tree_ = nullptr;

  std::size_t num_patterns_;
  /// Pattern extent rounded up to kPatternPad: every SoA plane is this
  /// long, tails zero-filled (inert through every kernel).
  std::size_t padded_;
  std::size_t num_categories_;
  const KernelTable* kernels_;  // SIMD dispatch table (fixed at construction)

  AlignedVector<double> tip_clvs_;      // [tip][state][padded] SoA planes
  std::vector<std::uint8_t> tip_codes_; // [tip][padded] 4-bit base masks
  std::vector<Clv> clvs_;               // indexed by key()
  std::uint64_t flops_ = 0;

  TransitionCache cache_;
  mutable KernelCounters counters_;

  // --- preallocated kernel scratch (sized once in the constructor) ---

  // Eigen-projection tables: pr_[k][i] = pi_i * right_[i][k] (so the edge
  // capture is two 4-dots per pattern), lam_[cat*4+k] = lambda_k * rate_cat.
  Mat4 pr_{};
  std::vector<double> lam_;

  // Per-category child transition matrices / transposed 16-code tip lookup
  // tables ([state][code]) used by the CLV kernels: [child][cat] each.
  std::vector<Mat4> clv_p_;
  AlignedVector<double> tip_tab_;

  // Edge-evaluation arenas handed out via EdgeLikelihood (edge_ws_ holds
  // the stable pointer view the returned EdgeLikelihood borrows).
  AlignedVector<double> edge_coeff_;  // [cat][4][padded] coefficient planes
  AlignedVector<double> edge_site_;
  AlignedVector<double> edge_site_d1_;
  AlignedVector<double> edge_site_d2_;
  EdgeLikelihood::Workspace edge_ws_;
};

}  // namespace fdml
