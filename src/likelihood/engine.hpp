// Felsenstein-pruning likelihood engine.
//
// Conditional likelihood vectors (CLVs) are stored per *directed* edge:
// CLV(u -> v) holds, for every site pattern and rate category, the
// probability of the data in the subtree on u's side of edge (u,v),
// conditional on each state at u. Two properties make this the right unit
// of caching for fastDNAml's optimizer:
//   1. CLV(u -> v) does not depend on the length of edge (u,v) itself, so a
//      Newton iteration on that edge needs no recomputation at all; and
//   2. committing a new length for (u,v) invalidates exactly the directed
//      CLVs pointing *away* from the edge, found by one outward sweep.
//
// Underflow protection follows the paper ("conditional likelihoods have
// been normalized to prevent floating point underflow in the case of very
// large trees"): per-pattern scale counters multiply a CLV by 2^256 whenever
// its largest entry falls below 2^-256; log-likelihoods subtract the
// accumulated scalings.
#pragma once

#include <cstdint>
#include <vector>

#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"
#include "tree/tree.hpp"

namespace fdml {

/// A captured one-dimensional view of the likelihood along a single edge:
/// lnL(t) with first and second derivatives, cheap to evaluate repeatedly
/// during Newton iteration. Valid until the tree or engine changes.
class EdgeLikelihood {
 public:
  /// Log-likelihood at branch length t; optionally first/second derivatives.
  double evaluate(double t, double* d1 = nullptr, double* d2 = nullptr) const;

 private:
  friend class LikelihoodEngine;

  const SubstModel* model_ = nullptr;
  const RateModel* rates_ = nullptr;
  std::size_t num_patterns_ = 0;
  // weighted[c][p][i][j] = w-independent pi_i * A[c,p,i] * B[c,p,j],
  // flattened; lnL(t) = sum_p w_p log( sum_c prob_c sum_ij weighted * P_ij )
  std::vector<double> weighted_;
  std::vector<double> pattern_weights_;
  double scale_offset_ = 0.0;  // log-scale corrections, t-independent
};

class LikelihoodEngine {
 public:
  /// `data` is captured by reference and must outlive the engine (pattern
  /// tables are large and shared across the evaluators of a run); the model
  /// and rate model are small and copied in.
  LikelihoodEngine(const PatternAlignment& data, SubstModel model,
                   RateModel rates);

  /// Binds the engine to a tree and invalidates all cached CLVs. The tree
  /// must outlive the binding. Node ids index CLV storage, so the tree must
  /// come from the same taxon namespace as the alignment (tip k = row k).
  void attach(const Tree& tree);
  const Tree* tree() const { return tree_; }

  /// Log-likelihood of the attached tree (evaluated across an arbitrary
  /// edge; all edges give the same value).
  double log_likelihood();

  /// Log-likelihood evaluated across edge (u, v) at its current length.
  double log_likelihood_edge(int u, int v);

  /// Captures the 1-D likelihood function along edge (u, v) for branch
  /// length optimization.
  EdgeLikelihood edge_likelihood(int u, int v);

  /// Invalidate every cached CLV (topology changed).
  void invalidate_all();

  /// The length of edge (u, v) was committed; invalidate the directed CLVs
  /// that depend on it (those pointing away from the edge).
  void on_length_changed(int u, int v);

  /// Per-site log-likelihoods (maps patterns back to sites).
  std::vector<double> site_log_likelihoods();

  /// Number of internal-CLV recomputations since attach (perf counter; used
  /// by the FLOP/byte benchmark and by tests asserting cache behaviour).
  std::uint64_t clv_computations() const { return clv_computations_; }

  const PatternAlignment& data() const { return data_; }
  const SubstModel& model() const { return model_; }
  const RateModel& rate_model() const { return rates_; }

  /// Approximate floating-point operations performed since construction
  /// (kernel inner loops only; used to reproduce the paper's
  /// compute-per-byte claim).
  std::uint64_t flops() const { return flops_; }

 private:
  struct Clv {
    std::vector<double> values;       // [cat][pattern][state]
    std::vector<std::int32_t> scale;  // per pattern
    bool valid = false;
  };

  // Directed-edge key: (node u, adjacency slot of v in u).
  std::size_t key(int node, int slot) const {
    return static_cast<std::size_t>(node) * 3 + static_cast<std::size_t>(slot);
  }

  /// Ensures CLV(u -> v) is computed; returns it. `slot` = slot of v in u.
  const Clv& ensure_clv(int u, int slot);
  void compute_internal_clv(int u, int slot);
  void invalidate_away(int node, int toward);

  /// Tip CLVs have no category dimension and never need scaling; expands a
  /// base code into indicator likelihoods.
  void build_tip_clvs();

  const PatternAlignment& data_;
  const SubstModel model_;
  const RateModel rates_;
  const Tree* tree_ = nullptr;

  std::size_t num_patterns_;
  std::size_t num_categories_;

  std::vector<double> tip_clvs_;  // [tip][pattern][state]
  std::vector<Clv> clvs_;         // indexed by key()
  std::uint64_t clv_computations_ = 0;
  std::uint64_t flops_ = 0;
};

}  // namespace fdml
