// Per-site evolutionary rate estimation — the role of Olsen's DNArates
// companion program cited by the paper ("the Markov matrix ... is adjusted
// at each sequence position to account for differences between loci in
// propensity to show genetic changes").
//
// Given a fixed tree (topology and branch lengths) and a model, the ML rate
// of each site pattern is found by a bracketed golden-section maximization
// of the single-pattern likelihood as a function of a rate multiplier.
// Estimated rates can then be binned into categories to form a RateModel.
#pragma once

#include <vector>

#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"
#include "tree/tree.hpp"

namespace fdml {

struct SiteRateOptions {
  double min_rate = 1e-3;
  double max_rate = 32.0;
  double tolerance = 1e-4;
  /// Number of categories produced by categorize().
  int categories = 8;
};

struct SiteRateResult {
  /// ML rate per original alignment site.
  std::vector<double> site_rates;
  /// ML rate per compressed pattern (site_rates is a lookup into this).
  std::vector<double> pattern_rates;
};

/// Estimates per-site rates on a fixed tree.
SiteRateResult estimate_site_rates(const Tree& tree, const PatternAlignment& data,
                                   const SubstModel& model,
                                   const SiteRateOptions& options = {});

/// Bins estimated rates into `categories` groups (geometric spacing between
/// the observed min and max), returning the category RateModel and each
/// site's category index. Mirrors the DNArates -> fastDNAml workflow.
struct RateCategorization {
  RateModel model;
  std::vector<int> site_category;
};
RateCategorization categorize_rates(const std::vector<double>& site_rates,
                                    int categories);

/// Log-likelihood of a single pattern at the given rate multiplier on a
/// fixed tree (exposed for tests).
double pattern_log_likelihood_at_rate(const Tree& tree,
                                      const PatternAlignment& data,
                                      const SubstModel& model,
                                      std::size_t pattern, double rate);

/// Tree log-likelihood under *assigned* per-site rates — fastDNAml's actual
/// categories semantics (each site belongs to one category, unlike a gamma
/// mixture where every site averages over all categories). `site_rates`
/// has one multiplier per alignment site. Distinct (pattern, rate) pairs
/// are evaluated once and cached.
double assigned_rates_log_likelihood(const Tree& tree,
                                     const PatternAlignment& data,
                                     const SubstModel& model,
                                     const std::vector<double>& site_rates);

}  // namespace fdml
