#include "likelihood/optimize.hpp"

#include <algorithm>
#include <cmath>

namespace fdml {

BranchOptimizer::BranchOptimizer(LikelihoodEngine& engine, OptimizeOptions options)
    : engine_(engine), options_(options) {}

double newton_branch_solve(const EdgeLikelihood& f, double t0,
                           const OptimizeOptions& options) {
  double lo = kMinBranchLength;
  double hi = kMaxBranchLength;
  double t = std::clamp(t0, lo, hi);

  for (int iter = 0; iter < options.max_newton_iterations; ++iter) {
    double d1 = 0.0;
    double d2 = 0.0;
    f.evaluate(t, &d1, &d2);
    // Already at a stationary point: stop before taking another step.
    if (std::fabs(d1) <= options.derivative_tolerance) break;
    // Shrink the bracket around the maximum using the gradient sign.
    if (d1 > 0.0) {
      lo = t;
    } else {
      hi = t;
    }
    double next;
    if (d2 < 0.0) {
      next = t - d1 / d2;
      if (next <= lo || next >= hi) {
        next = 0.5 * (lo + hi);  // Newton left the bracket: bisect
      }
    } else {
      // Convex region (e.g. at a plateau); a Newton step would head for a
      // minimum, so bisect the gradient-sign bracket instead.
      next = 0.5 * (lo + hi);
    }
    const double change = std::fabs(next - t);
    t = next;
    if (change <= options.branch_tolerance * std::max(t, 1e-3)) break;
    if (hi - lo <= options.branch_tolerance * std::max(lo, 1e-3)) break;
  }

  return std::clamp(t, kMinBranchLength, kMaxBranchLength);
}

double BranchOptimizer::optimize_edge(Tree& tree, int u, int v) {
  const EdgeLikelihood f = engine_.edge_likelihood(u, v);
  const double t = newton_branch_solve(f, tree.length(u, v), options_);
  tree.set_length(u, v, t);
  engine_.on_length_changed(u, v);
  ++edge_optimizations_;
  return t;
}

double BranchOptimizer::smooth(Tree& tree) {
  return smooth(tree, options_.max_smooth_passes);
}

double BranchOptimizer::smooth(Tree& tree, int max_passes) {
  for (int pass = 0; pass < max_passes; ++pass) {
    double worst_move = 0.0;
    for (const auto& [u, v] : tree.edges()) {
      const double before = tree.length(u, v);
      const double after = optimize_edge(tree, u, v);
      worst_move = std::max(worst_move,
                            std::fabs(after - before) / std::max(before, 1e-3));
    }
    if (worst_move < options_.smooth_tolerance) break;
  }
  return engine_.log_likelihood();
}

double BranchOptimizer::smooth_edges(Tree& tree,
                                     const std::vector<std::pair<int, int>>& edges,
                                     int passes) {
  for (int pass = 0; pass < passes; ++pass) {
    double worst_move = 0.0;
    for (const auto& [u, v] : edges) {
      const double before = tree.length(u, v);
      const double after = optimize_edge(tree, u, v);
      worst_move = std::max(worst_move,
                            std::fabs(after - before) / std::max(before, 1e-3));
    }
    if (worst_move < options_.smooth_tolerance) break;
  }
  return engine_.log_likelihood();
}

}  // namespace fdml
