// TreeEvaluator: the "worker computation" of the paper — given a candidate
// topology, optimize its branch lengths and return the log-likelihood.
// Bundles an engine and optimizer so one instance can be reused across the
// hundreds of thousands of candidate trees a search dispatches.
#pragma once

#include "likelihood/engine.hpp"
#include "likelihood/optimize.hpp"

namespace fdml {

struct Evaluation {
  double log_likelihood = 0.0;
  /// Thread-CPU seconds spent (recorded for the scaling-trace replays).
  double cpu_seconds = 0.0;
};

class TreeEvaluator {
 public:
  /// `data` must outlive the evaluator; model and rates are copied in.
  TreeEvaluator(const PatternAlignment& data, SubstModel model,
                RateModel rates, OptimizeOptions options = {});

  /// Full evaluation: optimize every branch (bounded smoothing passes) and
  /// return the likelihood. The tree is updated in place. `max_passes` < 0
  /// uses the configured budget.
  Evaluation evaluate(Tree& tree, int max_passes = -1);

  /// Quick evaluation used while testing insertion points: optimize only
  /// the given edges for a couple of passes.
  Evaluation evaluate_partial(Tree& tree,
                              const std::vector<std::pair<int, int>>& edges,
                              int passes);

  LikelihoodEngine& engine() { return engine_; }
  BranchOptimizer& optimizer() { return optimizer_; }

 private:
  LikelihoodEngine engine_;
  BranchOptimizer optimizer_;
};

}  // namespace fdml
