// AVX-512 (W = 8) kernel backend. Compiled with -mavx512f -mavx512dq when
// FDML_SIMD allows; the TU is empty otherwise. Runtime dispatch
// (simd::cpu_supports probes avx512f+dq) keeps these instructions off CPUs
// that lack them, and kernel_table_for_patterns() demotes auto-resolved
// AVX-512 to AVX2 for small pattern counts (512-bit license downclocking).
// No FMA: see the determinism contract in util/simd.hpp.
#if defined(FDML_HAVE_AVX512)

#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_avx512() {
  static const KernelTable table =
      make_kernel_table<8>("avx512", simd::Backend::kAvx512);
  return &table;
}

}  // namespace fdml::detail

#endif  // FDML_HAVE_AVX512
