// Memoization of transition matrices for the likelihood hot path.
//
// Essentially all of fastDNAml's runtime is spent evaluating branch
// lengths, and every CLV update / edge evaluation needs P(t_eff) for
// t_eff = branch_length * category_rate. During smoothing the same edge
// lengths are revisited over and over (committing one length invalidates
// CLVs whose recomputation re-reads every *other* edge's unchanged length),
// so the eigendecomposition-based exp(Qt) is a prime memoization target.
//
// The cache is a fixed-size 2-way set-associative table keyed by the exact
// bit pattern of the effective length; the set index comes from a mixed
// hash of those bits. Within a set, fills replace the least-recently-used
// way, so two hot lengths that collide on the same set (which a
// direct-mapped table would thrash between on every alternation) coexist.
// Entries carry both the clamped P(t) matrix (CLV updates, per-site
// likelihoods) and the raw eigenvalue exponentials exp(lambda_k * t)
// (the eigen-basis edge evaluation kernel). Lookups never allocate.
//
// Invalidation contract: entries are valid for a fixed set of model
// parameters. Whoever mutates the substitution model must call
// `invalidate()`, which bumps an epoch counter (O(1)) so every existing
// entry misses on its next lookup. `LikelihoodEngine::set_model` is the
// single mutation point and performs that call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/submodel.hpp"
#include "util/linalg.hpp"

namespace fdml {

class TransitionCache {
 public:
  /// `capacity` counts entries (ways), rounded up to a power of two >= 2;
  /// the table has capacity / 2 sets of 2 ways. The default comfortably
  /// holds every (edge, category) pair of a few-hundred-taxon tree.
  explicit TransitionCache(std::size_t capacity = 4096);

  /// P(t_eff) for the given model, served from cache when possible. The
  /// result is copied into `p` (slot storage may be overwritten by the next
  /// lookup). Matches SubstModel::transition bit-for-bit, including the
  /// clamp of tiny negative entries.
  void transition(const SubstModel& model, double effective_length, Mat4& p);

  /// exp(lambda_k * t_eff) for the model's eigenvalues — the only
  /// t-dependent quantity the eigen-basis edge kernel needs.
  Vec4 exp_eigen(const SubstModel& model, double effective_length);

  /// Model parameters changed: every cached entry becomes stale. O(1).
  void invalidate() { ++epoch_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Fills that displaced a live (current-epoch) entry — i.e. genuine
  /// set-conflict pressure, not cold or post-invalidate fills.
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations() const { return epoch_ - 1; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void reset_stats() { hits_ = 0; misses_ = 0; evictions_ = 0; }
  std::size_t capacity() const { return slots_.size(); }
  /// Resident bytes of slot storage (observability).
  std::size_t bytes() const { return slots_.size() * sizeof(Entry); }

  /// Set index an effective length hashes to (test hook: lets regression
  /// tests construct colliding lengths deterministically).
  std::size_t set_index(double effective_length) const;

 private:
  struct Entry {
    double key = 0.0;
    std::uint64_t epoch = 0;  // 0 = never filled
    std::uint64_t stamp = 0;  // LRU clock value of the last touch
    Vec4 expl{};
    Mat4 p{};
  };

  /// Returns the (filled, current-epoch) entry for `effective_length`.
  const Entry& lookup(const SubstModel& model, double effective_length);

  std::vector<Entry> slots_;  // 2 consecutive ways per set
  std::size_t set_mask_ = 0;
  std::uint64_t epoch_ = 1;
  std::uint64_t clock_ = 0;  // monotonic LRU stamp source
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace fdml
