// AVX2 fast-math tier (W = 4, hardware FMA). Compiled with -mavx2 -mfma
// -ffp-contract=fast only when the build opts in via FDML_FAST_MATH; the TU
// is empty otherwise. Kernels<4, true> routes every multiply-add through
// Vec::fmadd, so each is one rounding step instead of two — faster and
// slightly *more* accurate per operation, but no longer bit-identical to
// the exact tier or to other backends, which is why this table registers
// under Tier::kFast and is never selected by default. Dispatch additionally
// requires the FMA CPUID bit (see kernels.cpp).
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX2)

#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_avx2_fast() {
  static const KernelTable table = make_kernel_table<4, true>(
      "avx2", simd::Backend::kAvx2, simd::Tier::kFast);
  return &table;
}

}  // namespace fdml::detail

#endif  // FDML_HAVE_FAST_TIER && FDML_HAVE_AVX2
