#include "likelihood/batch.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fdml {

namespace {

using KernelClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(KernelClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(KernelClock::now() -
                                                           start)
          .count());
}

}  // namespace

BatchEdgeEvaluator::BatchEdgeEvaluator(LikelihoodEngine& engine)
    : engine_(engine) {}

void BatchEdgeEvaluator::ensure_capacity(std::size_t count) {
  if (count <= capacity_) return;
  const std::size_t edge_stride = engine_.num_categories_ * 4 * engine_.padded_;
  // Zero-fill so plane tails ([num_patterns_, padded_)) stay inert through
  // every kernel, same contract as the engine arenas.
  junction_values_.assign(count * edge_stride, 0.0);
  junction_scale_.assign(count * engine_.padded_, 0);
  coeff_.assign(count * edge_stride, 0.0);
  workspaces_.resize(count);
  views_.resize(count);
  a_planes_.resize(count);
  b_planes_.resize(count);
  coeff_planes_.resize(count);
  a_values_.resize(count);
  b_values_.resize(count);
  a_scales_.resize(count);
  b_scales_.resize(count);
  a_cats_.resize(count);
  b_cats_.resize(count);
  capacity_ = count;
}

void BatchEdgeEvaluator::capture(const std::vector<Edge>& edges) {
  const std::size_t count = edges.size();
  count_ = 0;
  if (count == 0) return;
  ensure_capacity(count);
  const Tree& tree = *engine_.tree_;

  // Pass 1 — the shared traversal: make every base CLV the batch needs
  // valid before any pointers are taken. ensure_clv only ever computes
  // (never invalidates), and each Clv owns its storage, so the pointers
  // resolved in pass 2 stay stable for the whole batch.
  for (const Edge& e : edges) {
    const int su = tree.find_slot(e.u, e.v);
    const int sv = tree.find_slot(e.v, e.u);
    if (su < 0 || sv < 0) throw std::logic_error("batch capture: not an edge");
    if (!tree.is_tip(e.u)) engine_.ensure_clv(e.u, su);
    if (!tree.is_tip(e.v)) engine_.ensure_clv(e.v, sv);
  }

  // Pass 2 — resolve the per-edge operand planes, exactly as
  // edge_likelihood() does for a single edge.
  for (std::size_t k = 0; k < count; ++k) {
    const Edge& e = edges[k];
    if (tree.is_tip(e.u)) {
      a_values_[k] = engine_.tip_planes(e.u);
      a_scales_[k] = nullptr;
      a_cats_[k] = 0;
    } else {
      const auto& clv = engine_.ensure_clv(e.u, tree.find_slot(e.u, e.v));
      a_values_[k] = clv.values.data();
      a_scales_[k] = clv.scale.data();
      a_cats_[k] = 1;
    }
    if (tree.is_tip(e.v)) {
      b_values_[k] = engine_.tip_planes(e.v);
      b_scales_[k] = nullptr;
      b_cats_[k] = 0;
    } else {
      const auto& clv = engine_.ensure_clv(e.v, tree.find_slot(e.v, e.u));
      b_values_[k] = clv.values.data();
      b_scales_[k] = clv.scale.data();
      b_cats_[k] = 1;
    }
  }

  project_and_finalize(count);
}

void BatchEdgeEvaluator::capture_insertions(
    int tip, const std::vector<Insertion>& candidates) {
  const std::size_t count = candidates.size();
  count_ = 0;
  if (count == 0) return;
  ensure_capacity(count);
  const Tree& tree = *engine_.tree_;
  const std::size_t padded = engine_.padded_;
  const std::size_t edge_stride = engine_.num_categories_ * 4 * padded;
  if (!tree.is_tip(tip)) {
    throw std::logic_error("capture_insertions: focus is not a tip");
  }

  // Each candidate's junction CLV is the combine compute_internal_clv would
  // run after a real insertion: children u and v keep their toward-junction
  // CLVs, which in the base tree are their toward-each-other CLVs (the
  // junction takes over the other endpoint's adjacency slot). The lazy
  // cache makes this the shared traversal too — a base CLV needed by
  // several candidates is computed exactly once.
  for (std::size_t k = 0; k < count; ++k) {
    const Insertion& c = candidates[k];
    const int su = tree.find_slot(c.u, c.v);
    const int sv = tree.find_slot(c.v, c.u);
    if (su < 0 || sv < 0) {
      throw std::logic_error("capture_insertions: not an edge");
    }
    const int children[2] = {c.u, c.v};
    const int back_slots[2] = {tree.is_tip(c.u) ? -1 : su,
                               tree.is_tip(c.v) ? -1 : sv};
    const double lengths[2] = {c.length_u, c.length_v};
    engine_.combine_children(children, back_slots, lengths,
                             junction_values_.data() + k * edge_stride,
                             junction_scale_.data() + k * padded);
    a_values_[k] = junction_values_.data() + k * edge_stride;
    a_scales_[k] = junction_scale_.data() + k * padded;
    a_cats_[k] = 1;
    b_values_[k] = engine_.tip_planes(tip);
    b_scales_[k] = nullptr;
    b_cats_[k] = 0;
  }

  project_and_finalize(count);
}

void BatchEdgeEvaluator::project_and_finalize(std::size_t count) {
  const std::size_t padded = engine_.padded_;
  const std::size_t cat_stride = 4 * padded;
  const std::size_t edge_stride = engine_.num_categories_ * cat_stride;
  const auto kernel_start = KernelClock::now();

  // One pattern-blocked kernel call per category projects every edge's
  // coefficient planes while the shared projection rows are hot.
  const Mat4& left = engine_.model_.left_eigenvectors();
  for (std::size_t cat = 0; cat < engine_.num_categories_; ++cat) {
    const double prob = engine_.rates_.probability(cat);
    for (std::size_t k = 0; k < count; ++k) {
      a_planes_[k] = a_values_[k] + (a_cats_[k] ? cat * cat_stride : 0);
      b_planes_[k] = b_values_[k] + (b_cats_[k] ? cat * cat_stride : 0);
      coeff_planes_[k] = coeff_.data() + k * edge_stride + cat * cat_stride;
    }
    engine_.kernels_->edge_capture_multi(padded, count, a_planes_.data(),
                                         b_planes_.data(), &engine_.pr_[0][0],
                                         &left[0][0], prob,
                                         coeff_planes_.data());
  }

  for (std::size_t k = 0; k < count; ++k) {
    EdgeLikelihood::Workspace& ws = workspaces_[k];
    ws.coeff = coeff_.data() + k * edge_stride;
    ws.lam = engine_.lam_.data();
    ws.site = engine_.edge_site_.data();
    ws.site_d1 = engine_.edge_site_d1_.data();
    ws.site_d2 = engine_.edge_site_d2_.data();
    ws.padded = padded;
    ws.kernels = engine_.kernels_;

    EdgeLikelihood& f = views_[k];
    f.model_ = &engine_.model_;
    f.rates_ = &engine_.rates_;
    f.cache_ = &engine_.cache_;
    f.ws_ = &ws;
    f.counters_ = &engine_.counters_;
    f.num_patterns_ = engine_.num_patterns_;
    f.pattern_weights_ = engine_.data_.weights().data();

    double offset = 0.0;
    for (std::size_t pat = 0; pat < engine_.num_patterns_; ++pat) {
      std::int32_t scale = 0;
      if (a_scales_[k] != nullptr) scale += a_scales_[k][pat];
      if (b_scales_[k] != nullptr) scale += b_scales_[k][pat];
      offset -= engine_.data_.weight(pat) * scale * kLogScaleStep;
    }
    f.scale_offset_ = offset;
  }

  engine_.counters_.edge_captures += count;
  engine_.counters_.scratch_bytes_reused +=
      count * edge_stride * sizeof(double);
  engine_.counters_.kernel_ns += elapsed_ns(kernel_start);
  engine_.flops_ += count * engine_.num_categories_ * engine_.num_patterns_ * 40;
  count_ = count;

  obs::MetricsRegistry::process()
      .histogram("kernel.batch_fill", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0})
      .observe(static_cast<double>(count));
  // Mirror the occupancy sample into the trace stream so trace_report can
  // show how full edge batches ran for a specific recorded search (the
  // registry histogram is process-lifetime, the trace is per run).
  obs::counter("batch_fill", static_cast<std::int64_t>(count));
}

}  // namespace fdml
