#include "likelihood/engine.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fdml {

namespace {

// Rescale when the largest CLV entry of a pattern drops below 2^-256;
// multiply by 2^256 and count it.
constexpr double kScaleThreshold = 0x1.0p-256;
constexpr double kScaleFactor = 0x1.0p+256;
constexpr double kLogScaleStep = 256.0 * 0.6931471805599453;  // 256 ln 2

}  // namespace

LikelihoodEngine::LikelihoodEngine(const PatternAlignment& data,
                                   SubstModel model, RateModel rates)
    : data_(data),
      model_(std::move(model)),
      rates_(std::move(rates)),
      num_patterns_(data.num_patterns()),
      // NB: read rates_ (the member), not the moved-from parameter.
      num_categories_(rates_.num_categories()) {
  build_tip_clvs();
}

void LikelihoodEngine::build_tip_clvs() {
  const std::size_t num_taxa = data_.num_taxa();
  tip_clvs_.assign(num_taxa * num_patterns_ * 4, 0.0);
  for (std::size_t t = 0; t < num_taxa; ++t) {
    for (std::size_t p = 0; p < num_patterns_; ++p) {
      const BaseCode code = data_.at(t, p);
      double* entry = &tip_clvs_[(t * num_patterns_ + p) * 4];
      for (int s = 0; s < 4; ++s) {
        entry[s] = (code & base_from_index(s)) ? 1.0 : 0.0;
      }
    }
  }
}

void LikelihoodEngine::attach(const Tree& tree) {
  if (tree.num_taxa() != static_cast<int>(data_.num_taxa())) {
    throw std::invalid_argument("engine: tree/alignment taxon count mismatch");
  }
  tree_ = &tree;
  clvs_.resize(static_cast<std::size_t>(tree.max_nodes()) * 3);
  invalidate_all();
}

void LikelihoodEngine::invalidate_all() {
  for (auto& clv : clvs_) clv.valid = false;
}

void LikelihoodEngine::invalidate_away(int node, int toward) {
  if (tree_->is_tip(node)) return;
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree_->neighbor(node, s);
    if (nbr == Tree::kNoNode || nbr == toward) continue;
    clvs_[key(node, s)].valid = false;
    invalidate_away(nbr, node);
  }
}

void LikelihoodEngine::on_length_changed(int u, int v) {
  invalidate_away(u, v);
  invalidate_away(v, u);
}

const LikelihoodEngine::Clv& LikelihoodEngine::ensure_clv(int u, int slot) {
  Clv& clv = clvs_[key(u, slot)];
  if (clv.valid) return clv;
  compute_internal_clv(u, slot);
  return clv;
}

void LikelihoodEngine::compute_internal_clv(int u, int slot) {
  // Tips are handled inline by callers via tip_clvs_; this is internal-only.
  const std::size_t stride = num_patterns_ * 4;
  Clv& clv = clvs_[key(u, slot)];
  clv.values.resize(num_categories_ * stride);
  clv.scale.assign(num_patterns_, 0);

  // The two neighbors other than the direction `slot` points to.
  int children[2];
  double lengths[2];
  int child_count = 0;
  for (int s = 0; s < 3; ++s) {
    if (s == slot) continue;
    const int nbr = tree_->neighbor(u, s);
    if (nbr == Tree::kNoNode) throw std::logic_error("clv: malformed internal node");
    children[child_count] = nbr;
    lengths[child_count] = tree_->slot_length(u, s);
    ++child_count;
  }

  // Resolve child CLV storage (recursing first so pointers stay stable).
  const double* child_values[2];
  const std::int32_t* child_scales[2];
  bool child_has_cats[2];
  for (int c = 0; c < 2; ++c) {
    const int node = children[c];
    if (tree_->is_tip(node)) {
      child_values[c] = &tip_clvs_[static_cast<std::size_t>(node) * stride];
      child_scales[c] = nullptr;
      child_has_cats[c] = false;
    } else {
      const int back = tree_->find_slot(node, u);
      const Clv& child = ensure_clv(node, back);
      child_values[c] = child.values.data();
      child_scales[c] = child.scale.data();
      child_has_cats[c] = true;
    }
  }

  Mat4 p0{};
  Mat4 p1{};
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double rate = rates_.rate(cat);
    model_.transition(lengths[0] * rate, p0);
    model_.transition(lengths[1] * rate, p1);
    const double* a = child_values[0] + (child_has_cats[0] ? cat * stride : 0);
    const double* b = child_values[1] + (child_has_cats[1] ? cat * stride : 0);
    double* out = &clv.values[cat * stride];
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      const double* av = a + pat * 4;
      const double* bv = b + pat * 4;
      double* ov = out + pat * 4;
      for (int i = 0; i < 4; ++i) {
        const double left = p0[i][0] * av[0] + p0[i][1] * av[1] +
                            p0[i][2] * av[2] + p0[i][3] * av[3];
        const double right = p1[i][0] * bv[0] + p1[i][1] * bv[1] +
                             p1[i][2] * bv[2] + p1[i][3] * bv[3];
        ov[i] = left * right;
      }
    }
  }

  // Combine child scale counters and rescale underflowing patterns.
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    std::int32_t scale = 0;
    for (int c = 0; c < 2; ++c) {
      if (child_scales[c] != nullptr) scale += child_scales[c][pat];
    }
    double max_entry = 0.0;
    for (std::size_t cat = 0; cat < num_categories_; ++cat) {
      const double* ov = &clv.values[cat * stride + pat * 4];
      for (int i = 0; i < 4; ++i) {
        if (ov[i] > max_entry) max_entry = ov[i];
      }
    }
    if (max_entry > 0.0 && max_entry < kScaleThreshold) {
      for (std::size_t cat = 0; cat < num_categories_; ++cat) {
        double* ov = &clv.values[cat * stride + pat * 4];
        for (int i = 0; i < 4; ++i) ov[i] *= kScaleFactor;
      }
      ++scale;
    }
    clv.scale[pat] = scale;
  }

  clv.valid = true;
  ++clv_computations_;
  flops_ += num_categories_ * num_patterns_ * 72;
}

double LikelihoodEngine::log_likelihood() {
  const int root = tree_->any_internal();
  if (root == Tree::kNoNode) throw std::logic_error("log_likelihood: empty tree");
  const int nbr = tree_->neighbor(root, 0);
  return log_likelihood_edge(root, nbr);
}

double LikelihoodEngine::log_likelihood_edge(int u, int v) {
  const EdgeLikelihood f = edge_likelihood(u, v);
  return f.evaluate(tree_->length(u, v));
}

EdgeLikelihood LikelihoodEngine::edge_likelihood(int u, int v) {
  const std::size_t stride = num_patterns_ * 4;
  const int su = tree_->find_slot(u, v);
  const int sv = tree_->find_slot(v, u);
  if (su < 0 || sv < 0) throw std::logic_error("edge_likelihood: not an edge");

  const double* a_values;
  const std::int32_t* a_scale = nullptr;
  bool a_cats;
  if (tree_->is_tip(u)) {
    a_values = &tip_clvs_[static_cast<std::size_t>(u) * stride];
    a_cats = false;
  } else {
    const Clv& clv = ensure_clv(u, su);
    a_values = clv.values.data();
    a_scale = clv.scale.data();
    a_cats = true;
  }
  const double* b_values;
  const std::int32_t* b_scale = nullptr;
  bool b_cats;
  if (tree_->is_tip(v)) {
    b_values = &tip_clvs_[static_cast<std::size_t>(v) * stride];
    b_cats = false;
  } else {
    const Clv& clv = ensure_clv(v, sv);
    b_values = clv.values.data();
    b_scale = clv.scale.data();
    b_cats = true;
  }

  EdgeLikelihood f;
  f.model_ = &model_;
  f.rates_ = &rates_;
  f.num_patterns_ = num_patterns_;
  f.weighted_.assign(num_categories_ * num_patterns_ * 16, 0.0);
  f.pattern_weights_.assign(data_.weights().begin(), data_.weights().end());

  const Vec4& pi = model_.frequencies();
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double prob = rates_.probability(cat);
    const double* a = a_values + (a_cats ? cat * stride : 0);
    const double* b = b_values + (b_cats ? cat * stride : 0);
    double* w = &f.weighted_[cat * num_patterns_ * 16];
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      const double* av = a + pat * 4;
      const double* bv = b + pat * 4;
      double* wv = w + pat * 16;
      for (int i = 0; i < 4; ++i) {
        const double lhs = prob * pi[i] * av[i];
        for (int j = 0; j < 4; ++j) wv[i * 4 + j] = lhs * bv[j];
      }
    }
  }

  double offset = 0.0;
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    std::int32_t scale = 0;
    if (a_scale != nullptr) scale += a_scale[pat];
    if (b_scale != nullptr) scale += b_scale[pat];
    offset -= data_.weight(pat) * scale * kLogScaleStep;
  }
  f.scale_offset_ = offset;
  flops_ += num_categories_ * num_patterns_ * 32;
  return f;
}

double EdgeLikelihood::evaluate(double t, double* d1, double* d2) const {
  const std::size_t num_categories = rates_->num_categories();
  const bool derivs = d1 != nullptr || d2 != nullptr;

  std::vector<double> site(num_patterns_, 0.0);
  std::vector<double> site_d1;
  std::vector<double> site_d2;
  if (derivs) {
    site_d1.assign(num_patterns_, 0.0);
    site_d2.assign(num_patterns_, 0.0);
  }

  Mat4 p{};
  Mat4 dp{};
  Mat4 d2p{};
  for (std::size_t cat = 0; cat < num_categories; ++cat) {
    const double rate = rates_->rate(cat);
    if (derivs) {
      model_->transition_with_derivs(t * rate, p, dp, d2p);
    } else {
      model_->transition(t * rate, p);
    }
    const double* w = &weighted_[cat * num_patterns_ * 16];
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      const double* wv = w + pat * 16;
      double s = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const double weight = wv[i * 4 + j];
          s += weight * p[i][j];
          if (derivs) {
            s1 += weight * dp[i][j];
            s2 += weight * d2p[i][j];
          }
        }
      }
      site[pat] += s;
      if (derivs) {
        site_d1[pat] += s1 * rate;
        site_d2[pat] += s2 * rate * rate;
      }
    }
  }

  double lnl = scale_offset_;
  double g = 0.0;
  double h = 0.0;
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    const double weight = pattern_weights_[pat];
    const double s = site[pat];
    if (s <= 0.0) {
      // A zero-probability pattern (should not happen with valid data).
      lnl += weight * -1e30;
      continue;
    }
    lnl += weight * std::log(s);
    if (derivs) {
      const double ratio1 = site_d1[pat] / s;
      g += weight * ratio1;
      h += weight * (site_d2[pat] / s - ratio1 * ratio1);
    }
  }
  if (d1 != nullptr) *d1 = g;
  if (d2 != nullptr) *d2 = h;
  return lnl;
}

std::vector<double> LikelihoodEngine::site_log_likelihoods() {
  const int root = tree_->any_internal();
  const int nbr = tree_->neighbor(root, 0);
  const std::size_t stride = num_patterns_ * 4;

  const int su = tree_->find_slot(root, nbr);
  const int sv = tree_->find_slot(nbr, root);
  const Clv& a = ensure_clv(root, su);

  const double* b_values;
  const std::int32_t* b_scale = nullptr;
  bool b_cats;
  if (tree_->is_tip(nbr)) {
    b_values = &tip_clvs_[static_cast<std::size_t>(nbr) * stride];
    b_cats = false;
  } else {
    const Clv& clv = ensure_clv(nbr, sv);
    b_values = clv.values.data();
    b_scale = clv.scale.data();
    b_cats = true;
  }

  const double t = tree_->length(root, nbr);
  const Vec4& pi = model_.frequencies();
  std::vector<double> pattern_lnl(num_patterns_, 0.0);
  Mat4 p{};
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double rate = rates_.rate(cat);
    const double prob = rates_.probability(cat);
    model_.transition(t * rate, p);
    const double* av = &a.values[cat * stride];
    const double* bv = b_values + (b_cats ? cat * stride : 0);
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      double s = 0.0;
      for (int i = 0; i < 4; ++i) {
        double inner = 0.0;
        for (int j = 0; j < 4; ++j) inner += p[i][j] * bv[pat * 4 + j];
        s += pi[i] * av[pat * 4 + i] * inner;
      }
      pattern_lnl[pat] += prob * s;
    }
  }
  std::vector<double> out(data_.num_sites());
  for (std::size_t site = 0; site < out.size(); ++site) {
    const std::size_t pat = data_.pattern_of_site(site);
    std::int32_t scale = a.scale[pat];
    if (b_scale != nullptr) scale += b_scale[pat];
    out[site] = std::log(pattern_lnl[pat]) - scale * kLogScaleStep;
  }
  return out;
}

}  // namespace fdml
