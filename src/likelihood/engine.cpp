#include "likelihood/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace fdml {

namespace {

// Log-likelihood assigned to a zero-probability pattern (cannot happen with
// valid data; keeps the optimizer finite instead of emitting -inf/NaN).
constexpr double kZeroPatternLogPenalty = -1e30;

// The blocked CLV kernel tiles patterns by kPatternBlock (kernels.hpp): one
// block of every category's output plus both child blocks stays L1-resident,
// and the scaling pass touches each block while it is still hot.

using KernelClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(KernelClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(KernelClock::now() -
                                                           start)
          .count());
}

// Transposed tip lookup table: tab[i * 16 + code] = sum over set bits j of
// code of p[i][j], ascending j — the dense 0/1-indicator dot product with
// the zero terms skipped, laid out so the SIMD tip kernel can gather a
// whole lane group from one state row.
void build_tip_table(const Mat4& p, double* tab) {
  for (int i = 0; i < 4; ++i) {
    for (int code = 0; code < 16; ++code) {
      double s = 0.0;
      for (int j = 0; j < 4; ++j) {
        if ((code >> j) & 1) s += p[i][j];
      }
      tab[i * 16 + code] = s;
    }
  }
}

}  // namespace

LikelihoodEngine::LikelihoodEngine(const PatternAlignment& data,
                                   SubstModel model, RateModel rates)
    : data_(data),
      model_(std::move(model)),
      rates_(std::move(rates)),
      num_patterns_(data.num_patterns()),
      padded_(round_up(data.num_patterns(), kPatternPad)),
      // NB: read rates_ (the member), not the moved-from parameter.
      num_categories_(rates_.num_categories()),
      kernels_(&kernel_table_for_patterns(data.num_patterns())) {
  counters_.simd_backend = kernels_->name;
  build_tip_clvs();

  // Preallocate every kernel arena once; the hot path never allocates.
  // Plane tails ([num_patterns_, padded_)) stay zero forever — inert
  // through every kernel (see kernels.hpp).
  lam_.resize(num_categories_ * 4);
  rebuild_model_tables();
  clv_p_.resize(2 * num_categories_);
  tip_tab_.assign(2 * num_categories_ * 64, 0.0);
  edge_coeff_.assign(num_categories_ * 4 * padded_, 0.0);
  edge_site_.assign(padded_, 0.0);
  edge_site_d1_.assign(padded_, 0.0);
  edge_site_d2_.assign(padded_, 0.0);
  edge_ws_.coeff = edge_coeff_.data();
  edge_ws_.lam = lam_.data();
  edge_ws_.site = edge_site_.data();
  edge_ws_.site_d1 = edge_site_d1_.data();
  edge_ws_.site_d2 = edge_site_d2_.data();
  edge_ws_.padded = padded_;
  edge_ws_.kernels = kernels_;
}

void LikelihoodEngine::build_tip_clvs() {
  const std::size_t num_taxa = data_.num_taxa();
  tip_clvs_.assign(num_taxa * 4 * padded_, 0.0);
  tip_codes_.assign(num_taxa * padded_, 0);
  for (std::size_t t = 0; t < num_taxa; ++t) {
    double* planes = &tip_clvs_[t * 4 * padded_];
    for (std::size_t p = 0; p < num_patterns_; ++p) {
      const BaseCode code = data_.at(t, p);
      tip_codes_[t * padded_ + p] = code;
      for (int s = 0; s < 4; ++s) {
        planes[static_cast<std::size_t>(s) * padded_ + p] =
            (code & base_from_index(s)) ? 1.0 : 0.0;
      }
    }
  }
}

void LikelihoodEngine::rebuild_model_tables() {
  const Mat4& right = model_.right_eigenvectors();
  const Vec4& pi = model_.frequencies();
  const Vec4& lambda = model_.eigenvalues();
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i < 4; ++i) pr_[k][i] = pi[i] * right[i][k];
  }
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    for (int k = 0; k < 4; ++k) {
      lam_[cat * 4 + k] = lambda[k] * rates_.rate(cat);
    }
  }
}

void LikelihoodEngine::set_model(SubstModel model) {
  model_ = std::move(model);
  rebuild_model_tables();  // fills in place; workspace pointers stay valid
  cache_.invalidate();
  invalidate_all();
}

void LikelihoodEngine::attach(const Tree& tree) {
  if (tree.num_taxa() != static_cast<int>(data_.num_taxa())) {
    throw std::invalid_argument("engine: tree/alignment taxon count mismatch");
  }
  tree_ = &tree;
  clvs_.resize(static_cast<std::size_t>(tree.max_nodes()) * 3);
  invalidate_all();
}

void LikelihoodEngine::invalidate_all() {
  for (auto& clv : clvs_) clv.valid = false;
}

void LikelihoodEngine::invalidate_node(int node) {
  for (int s = 0; s < 3; ++s) clvs_[key(node, s)].valid = false;
}

void LikelihoodEngine::save_clv_validity(std::vector<char>& out) const {
  out.resize(clvs_.size());
  for (std::size_t i = 0; i < clvs_.size(); ++i) {
    out[i] = clvs_[i].valid ? 1 : 0;
  }
}

void LikelihoodEngine::restore_clv_validity(const std::vector<char>& saved) {
  if (saved.size() != clvs_.size()) {
    throw std::logic_error("restore_clv_validity: stale snapshot");
  }
  for (std::size_t i = 0; i < clvs_.size(); ++i) {
    clvs_[i].valid = saved[i] != 0;
  }
}

void LikelihoodEngine::invalidate_away(int node, int toward) {
  if (tree_->is_tip(node)) return;
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree_->neighbor(node, s);
    if (nbr == Tree::kNoNode || nbr == toward) continue;
    clvs_[key(node, s)].valid = false;
    invalidate_away(nbr, node);
  }
}

void LikelihoodEngine::on_length_changed(int u, int v) {
  invalidate_away(u, v);
  invalidate_away(v, u);
}

const LikelihoodEngine::Clv& LikelihoodEngine::ensure_clv(int u, int slot) {
  Clv& clv = clvs_[key(u, slot)];
  if (clv.valid) return clv;
  compute_internal_clv(u, slot);
  return clv;
}

void LikelihoodEngine::compute_internal_clv(int u, int slot) {
  // Tips are handled inline by callers via tip planes; this is internal-only.
  const std::size_t cat_stride = 4 * padded_;
  Clv& clv = clvs_[key(u, slot)];
  const bool storage_reused = clv.values.size() == num_categories_ * cat_stride;
  clv.values.resize(num_categories_ * cat_stride);
  clv.scale.assign(padded_, 0);
  if (storage_reused) {
    counters_.scratch_bytes_reused += clv.values.size() * sizeof(double);
  }

  // The two neighbors other than the direction `slot` points to.
  int children[2];
  int back_slots[2];
  double lengths[2];
  int child_count = 0;
  for (int s = 0; s < 3; ++s) {
    if (s == slot) continue;
    const int nbr = tree_->neighbor(u, s);
    if (nbr == Tree::kNoNode) throw std::logic_error("clv: malformed internal node");
    children[child_count] = nbr;
    back_slots[child_count] =
        tree_->is_tip(nbr) ? -1 : tree_->find_slot(nbr, u);
    lengths[child_count] = tree_->slot_length(u, s);
    ++child_count;
  }

  combine_children(children, back_slots, lengths, clv.values.data(),
                   clv.scale.data());
  clv.valid = true;
}

void LikelihoodEngine::combine_children(const int children[2],
                                        const int back_slots[2],
                                        const double lengths[2],
                                        double* out_values,
                                        std::int32_t* out_scale) {
  const std::size_t cat_stride = 4 * padded_;

  // Resolve child CLV storage (recursing first so pointers stay stable, and
  // so the kernel timer below does not double-count nested computations).
  const double* child_values[2];
  const std::uint8_t* child_codes[2];
  const std::int32_t* child_scales[2];
  bool child_is_tip[2];
  for (int c = 0; c < 2; ++c) {
    const int node = children[c];
    if (tree_->is_tip(node)) {
      child_values[c] = tip_planes(node);
      child_codes[c] = &tip_codes_[static_cast<std::size_t>(node) * padded_];
      child_scales[c] = nullptr;
      child_is_tip[c] = true;
    } else {
      const Clv& child = ensure_clv(node, back_slots[c]);
      child_values[c] = child.values.data();
      child_codes[c] = nullptr;
      child_scales[c] = child.scale.data();
      child_is_tip[c] = false;
    }
  }

  const auto kernel_start = KernelClock::now();

  // Per-category transition matrices (cache-served) and tip lookup tables,
  // staged into preallocated scratch before the tiled sweep.
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double rate = rates_.rate(cat);
    for (int c = 0; c < 2; ++c) {
      Mat4& p = clv_p_[static_cast<std::size_t>(c) * num_categories_ + cat];
      cache_.transition(model_, lengths[c] * rate, p);
      if (child_is_tip[c]) {
        build_tip_table(
            p, &tip_tab_[(static_cast<std::size_t>(c) * num_categories_ + cat) * 64]);
      }
    }
  }
  counters_.scratch_bytes_reused +=
      clv_p_.size() * sizeof(Mat4) + tip_tab_.size() * sizeof(double);

  // Pattern-block tiling: compute every category's slice of one block, then
  // rescale that block while its cache lines are still hot. Tail lanes
  // (>= num_patterns_) see all-zero inputs and stay zero.
  for (std::size_t begin = 0; begin < padded_; begin += kPatternBlock) {
    const std::size_t end = std::min(begin + kPatternBlock, padded_);
    for (std::size_t cat = 0; cat < num_categories_; ++cat) {
      ClvOperand a;
      ClvOperand b;
      a.planes = child_values[0] + (child_is_tip[0] ? 0 : cat * cat_stride);
      b.planes = child_values[1] + (child_is_tip[1] ? 0 : cat * cat_stride);
      if (child_is_tip[0]) {
        a.codes = child_codes[0];
        a.tip_tab = &tip_tab_[cat * 64];
      } else {
        a.p = &clv_p_[cat][0][0];
      }
      if (child_is_tip[1]) {
        b.codes = child_codes[1];
        b.tip_tab = &tip_tab_[(num_categories_ + cat) * 64];
      } else {
        b.p = &clv_p_[num_categories_ + cat][0][0];
      }
      kernels_->clv_combine(begin, end, padded_, a, b,
                            out_values + cat * cat_stride);
    }

    // Combine child scale counters and rescale underflowing patterns of
    // this block (all categories are still L1-resident): vector max over
    // the planes plus a movemask picks out the underflowing lanes.
    counters_.clv_rescales += kernels_->clv_rescale(
        begin, end, padded_, num_categories_, out_values, child_scales[0],
        child_scales[1], out_scale);
  }

  ++counters_.clv_computations;
  counters_.kernel_ns += elapsed_ns(kernel_start);
  flops_ += num_categories_ * num_patterns_ *
            (4 + (child_is_tip[0] ? 4u : 32u) + (child_is_tip[1] ? 4u : 32u));
}

double LikelihoodEngine::log_likelihood() {
  // Full-tree evaluation span: CLV recomputation dominates it, so the
  // end-args record how much of the tree the lazy cache actually redid.
  obs::Span span("kernel", "tree_lnl");
  const std::uint64_t clv_before = counters_.clv_computations;
  const int root = tree_->any_internal();
  if (root == Tree::kNoNode) throw std::logic_error("log_likelihood: empty tree");
  const int nbr = tree_->neighbor(root, 0);
  const double lnl = log_likelihood_edge(root, nbr);
  span.set_end_args("clv",
                    static_cast<std::int64_t>(counters_.clv_computations -
                                              clv_before));
  return lnl;
}

double LikelihoodEngine::log_likelihood_edge(int u, int v) {
  const EdgeLikelihood f = edge_likelihood(u, v);
  return f.evaluate(tree_->length(u, v));
}

EdgeLikelihood LikelihoodEngine::edge_likelihood(int u, int v) {
  const std::size_t cat_stride = 4 * padded_;
  const int su = tree_->find_slot(u, v);
  const int sv = tree_->find_slot(v, u);
  if (su < 0 || sv < 0) throw std::logic_error("edge_likelihood: not an edge");

  const double* a_values;
  const std::int32_t* a_scale = nullptr;
  bool a_cats;
  if (tree_->is_tip(u)) {
    a_values = tip_planes(u);
    a_cats = false;
  } else {
    const Clv& clv = ensure_clv(u, su);
    a_values = clv.values.data();
    a_scale = clv.scale.data();
    a_cats = true;
  }
  const double* b_values;
  const std::int32_t* b_scale = nullptr;
  bool b_cats;
  if (tree_->is_tip(v)) {
    b_values = tip_planes(v);
    b_cats = false;
  } else {
    const Clv& clv = ensure_clv(v, sv);
    b_values = clv.values.data();
    b_scale = clv.scale.data();
    b_cats = true;
  }

  const auto kernel_start = KernelClock::now();

  // Project the per-pattern weights into the eigenbasis of Q:
  //   lnL(t) = sum_p w_p log( sum_c sum_k coeff[c,k,p] exp(lambda_k r_c t) )
  // with coeff[c,k,p] = (prob_c sum_i pi_i A_i right_ik)(sum_j left_kj B_j).
  // Four coefficients per (category, pattern) replace the 16-entry P(t)
  // contraction of the naive formulation; the projection writes coefficient
  // planes into the engine's preallocated arena via the SIMD kernel.
  const Mat4& left = model_.left_eigenvectors();
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double prob = rates_.probability(cat);
    const double* a = a_values + (a_cats ? cat * cat_stride : 0);
    const double* b = b_values + (b_cats ? cat * cat_stride : 0);
    kernels_->edge_capture(padded_, a, b, &pr_[0][0], &left[0][0], prob,
                           &edge_coeff_[cat * cat_stride]);
  }

  EdgeLikelihood f;
  f.model_ = &model_;
  f.rates_ = &rates_;
  f.cache_ = &cache_;
  f.ws_ = &edge_ws_;
  f.counters_ = &counters_;
  f.num_patterns_ = num_patterns_;
  f.pattern_weights_ = data_.weights().data();

  double offset = 0.0;
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    std::int32_t scale = 0;
    if (a_scale != nullptr) scale += a_scale[pat];
    if (b_scale != nullptr) scale += b_scale[pat];
    offset -= data_.weight(pat) * scale * kLogScaleStep;
  }
  f.scale_offset_ = offset;

  ++counters_.edge_captures;
  counters_.scratch_bytes_reused += edge_coeff_.size() * sizeof(double);
  counters_.kernel_ns += elapsed_ns(kernel_start);
  flops_ += num_categories_ * num_patterns_ * 40;
  return f;
}

double EdgeLikelihood::evaluate(double t, double* d1, double* d2) const {
  const auto kernel_start = KernelClock::now();
  const std::size_t num_categories = rates_->num_categories();
  const bool derivs = d1 != nullptr || d2 != nullptr;
  const std::size_t padded = ws_->padded;

  // All scratch lives in the engine-owned workspace; no allocations here.
  double* site = ws_->site;
  double* site_d1 = ws_->site_d1;
  double* site_d2 = ws_->site_d2;

  // exp(lambda_k r_c t) is computed once per category (cache-served); the
  // per-pattern loop below is exp-free — a pure 4-coefficient dot.
  for (std::size_t cat = 0; cat < num_categories; ++cat) {
    const double rate = rates_->rate(cat);
    const Vec4 e = cache_->exp_eigen(*model_, t * rate);
    ws_->kernels->edge_evaluate(padded, ws_->coeff + cat * 4 * padded,
                                e.data(), ws_->lam + cat * 4,
                                /*accumulate=*/cat != 0, derivs, site, site_d1,
                                site_d2);
  }

  double lnl = scale_offset_;
  double g = 0.0;
  double h = 0.0;
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    const double weight = pattern_weights_[pat];
    const double s = site[pat];
    if (s <= 0.0) {
      // A zero-probability pattern (should not happen with valid data).
      lnl += weight * kZeroPatternLogPenalty;
      continue;
    }
    lnl += weight * std::log(s);
    if (derivs) {
      const double ratio1 = site_d1[pat] / s;
      g += weight * ratio1;
      h += weight * (site_d2[pat] / s - ratio1 * ratio1);
    }
  }
  if (d1 != nullptr) *d1 = g;
  if (d2 != nullptr) *d2 = h;

  ++counters_->edge_evaluations;
  counters_->scratch_bytes_reused +=
      (derivs ? 3u : 1u) * num_patterns_ * sizeof(double);
  counters_->kernel_ns += elapsed_ns(kernel_start);
  return lnl;
}

std::vector<double> LikelihoodEngine::site_log_likelihoods() {
  std::vector<double> out;
  site_log_likelihoods(out);
  return out;
}

void LikelihoodEngine::site_log_likelihoods(std::vector<double>& out) {
  const int root = tree_->any_internal();
  const int nbr = tree_->neighbor(root, 0);
  const std::size_t cat_stride = 4 * padded_;

  const int su = tree_->find_slot(root, nbr);
  const int sv = tree_->find_slot(nbr, root);
  const Clv& a = ensure_clv(root, su);

  const double* b_values;
  const std::int32_t* b_scale = nullptr;
  bool b_cats;
  if (tree_->is_tip(nbr)) {
    b_values = tip_planes(nbr);
    b_cats = false;
  } else {
    const Clv& clv = ensure_clv(nbr, sv);
    b_values = clv.values.data();
    b_scale = clv.scale.data();
    b_cats = true;
  }

  // Per-pattern probabilities accumulate in the edge-site scratch plane
  // (clobbers any live EdgeLikelihood view, same contract as
  // edge_likelihood()); not a hot path, so the contraction stays scalar.
  const double t = tree_->length(root, nbr);
  const Vec4& pi = model_.frequencies();
  double* pattern_lnl = edge_site_.data();
  std::fill(pattern_lnl, pattern_lnl + num_patterns_, 0.0);
  Mat4 p{};
  for (std::size_t cat = 0; cat < num_categories_; ++cat) {
    const double rate = rates_.rate(cat);
    const double prob = rates_.probability(cat);
    cache_.transition(model_, t * rate, p);
    const double* av = &a.values[cat * cat_stride];
    const double* bv = b_values + (b_cats ? cat * cat_stride : 0);
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      double s = 0.0;
      for (int i = 0; i < 4; ++i) {
        double inner = 0.0;
        for (int j = 0; j < 4; ++j) {
          inner += p[i][j] * bv[static_cast<std::size_t>(j) * padded_ + pat];
        }
        s += pi[i] * av[static_cast<std::size_t>(i) * padded_ + pat] * inner;
      }
      pattern_lnl[pat] += prob * s;
    }
  }
  counters_.scratch_bytes_reused += num_patterns_ * sizeof(double);

  out.resize(data_.num_sites());
  for (std::size_t site = 0; site < out.size(); ++site) {
    const std::size_t pat = data_.pattern_of_site(site);
    std::int32_t scale = a.scale[pat];
    if (b_scale != nullptr) scale += b_scale[pat];
    // Same zero-probability clamp as EdgeLikelihood::evaluate: the
    // bootstrap / per-site-rate paths must never see NaN or -inf.
    const double pattern_probability = pattern_lnl[pat];
    const double log_probability = pattern_probability > 0.0
                                       ? std::log(pattern_probability)
                                       : kZeroPatternLogPenalty;
    out[site] = log_probability - scale * kLogScaleStep;
  }
}

KernelCounters LikelihoodEngine::counters() const {
  KernelCounters c = counters_;
  c.transition_hits = cache_.hits();
  c.transition_misses = cache_.misses();
  c.transition_evictions = cache_.evictions();
  return c;
}

}  // namespace fdml
