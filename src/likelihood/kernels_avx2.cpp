// AVX2 (W = 4) kernel backend. Compiled with -mavx2 when FDML_SIMD allows;
// the TU is empty otherwise. Runtime dispatch (simd::cpu_supports) keeps
// these instructions off CPUs that lack them. No FMA: see the determinism
// contract in util/simd.hpp.
#if defined(FDML_HAVE_AVX2)

#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_avx2() {
  static const KernelTable table =
      make_kernel_table<4>("avx2", simd::Backend::kAvx2);
  return &table;
}

}  // namespace fdml::detail

#endif  // FDML_HAVE_AVX2
