// Scalar (W = 1) kernel backend — always compiled; the portable reference
// the wide backends are parity-tested against. Built with
// -fno-tree-vectorize so "scalar" means scalar even at -O2: it is both the
// fallback for CPUs without vector units and the honest baseline for the
// speedup numbers in BENCH_kernels.json.
#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_scalar() {
  static const KernelTable table =
      make_kernel_table<1>("scalar", simd::Backend::kScalar);
  return &table;
}

}  // namespace fdml::detail
