// AVX-512 fast-math tier (W = 8, hardware FMA). Compiled with -mavx512f
// -mavx512dq -mfma -ffp-contract=fast only when both FDML_FAST_MATH and an
// AVX-512-capable FDML_SIMD setting are configured; empty otherwise. Same
// tier semantics as kernels_avx2_fast.cpp.
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX512)

#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_avx512_fast() {
  static const KernelTable table = make_kernel_table<8, true>(
      "avx512", simd::Backend::kAvx512, simd::Tier::kFast);
  return &table;
}

}  // namespace fdml::detail

#endif  // FDML_HAVE_FAST_TIER && FDML_HAVE_AVX512
