// Branch-length optimization.
//
// fastDNAml optimizes one branch at a time with Newton's method on the
// log-likelihood (the 1-D function captured by EdgeLikelihood), sweeping
// the tree repeatedly ("smoothing") until lengths stop moving. Newton steps
// are safeguarded by a shrinking bracket so a bad quadratic model can only
// fall back to bisection, never diverge.
#pragma once

#include <utility>
#include <vector>

#include "likelihood/engine.hpp"
#include "tree/tree.hpp"

namespace fdml {

struct OptimizeOptions {
  /// Relative branch-length convergence for a single Newton solve.
  double branch_tolerance = 1e-6;
  /// A Newton solve also stops once |dlnL/dt| falls below this — the
  /// stationary point is found even if the bracket has not collapsed yet.
  double derivative_tolerance = 1e-6;
  int max_newton_iterations = 30;
  /// Maximum full-tree smoothing passes (fastDNAml's "smoothings").
  int max_smooth_passes = 8;
  /// A smoothing pass converges when no branch moved more than this
  /// (relative).
  double smooth_tolerance = 1e-4;
};

/// Safeguarded Newton solve on one captured edge-likelihood view: returns
/// the branch length in [kMinBranchLength, kMaxBranchLength] that maximizes
/// f, starting from t0. Pure — commits nothing to any tree or engine; the
/// caller decides what to do with the result. BranchOptimizer::optimize_edge
/// and BatchEdgeEvaluator-based insertion scoring share this exact sequence
/// so their solves are bit-identical given bit-identical views.
double newton_branch_solve(const EdgeLikelihood& f, double t0,
                           const OptimizeOptions& options);

class BranchOptimizer {
 public:
  /// The engine must already be attached to the tree being optimized.
  explicit BranchOptimizer(LikelihoodEngine& engine, OptimizeOptions options = {});

  /// Optimizes edge (u, v), commits the new length into the tree and engine
  /// cache. Returns the new length.
  double optimize_edge(Tree& tree, int u, int v);

  /// Repeated passes over all branches until converged or pass budget
  /// exhausted. Returns the final tree log-likelihood. The overload taking
  /// `max_passes` overrides the configured budget for this call.
  double smooth(Tree& tree);
  double smooth(Tree& tree, int max_passes);

  /// Optimizes only the listed edges for up to `passes` rounds — the rapid
  /// local treatment applied when testing a taxon insertion point (the
  /// paper's "rapid approximation of the insertion point"). Returns the
  /// tree log-likelihood after the final pass.
  double smooth_edges(Tree& tree, const std::vector<std::pair<int, int>>& edges,
                      int passes);

  const OptimizeOptions& options() const { return options_; }
  /// Newton solves performed (perf counter).
  std::uint64_t edge_optimizations() const { return edge_optimizations_; }

 private:
  LikelihoodEngine& engine_;
  OptimizeOptions options_;
  std::uint64_t edge_optimizations_ = 0;
};

}  // namespace fdml
