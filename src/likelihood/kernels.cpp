// Runtime dispatch over the compiled kernel backends and tiers (see
// kernels.hpp).
#include "likelihood/kernels.hpp"

namespace fdml {

namespace detail {
const KernelTable* kernel_table_scalar();
#if defined(FDML_HAVE_SSE2)
const KernelTable* kernel_table_sse2();
#endif
#if defined(FDML_HAVE_AVX2)
const KernelTable* kernel_table_avx2();
#endif
#if defined(FDML_HAVE_AVX512)
const KernelTable* kernel_table_avx512();
#endif
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX2)
const KernelTable* kernel_table_avx2_fast();
#endif
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX512)
const KernelTable* kernel_table_avx512_fast();
#endif
}  // namespace detail

namespace {

[[maybe_unused]] bool cpu_has_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* fast_table(simd::Backend backend) {
  // The fast tier exists only for backends whose TU was compiled AND whose
  // FMA instructions the CPU actually has (AVX2 does not imply FMA on
  // paper, even though every real part ships both). scalar/sse2 have no
  // fast TU — they resolve to their exact tables.
  switch (backend) {
    case simd::Backend::kAvx2:
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX2)
      return cpu_has_fma() ? detail::kernel_table_avx2_fast() : nullptr;
#else
      return nullptr;
#endif
    case simd::Backend::kAvx512:
#if defined(FDML_HAVE_FAST_TIER) && defined(FDML_HAVE_AVX512)
      // AVX-512F implies FMA on every shipping part, but keep the probe for
      // symmetry — the table is unreachable without avx512f support anyway.
      return cpu_has_fma() ? detail::kernel_table_avx512_fast() : nullptr;
#else
      return nullptr;
#endif
    default:
      return nullptr;
  }
}

const KernelTable* exact_table(simd::Backend backend) {
  switch (backend) {
    case simd::Backend::kScalar:
      return detail::kernel_table_scalar();
    case simd::Backend::kSse2:
#if defined(FDML_HAVE_SSE2)
      return detail::kernel_table_sse2();
#else
      return nullptr;
#endif
    case simd::Backend::kAvx2:
#if defined(FDML_HAVE_AVX2)
      return detail::kernel_table_avx2();
#else
      return nullptr;
#endif
    case simd::Backend::kAvx512:
#if defined(FDML_HAVE_AVX512)
      return detail::kernel_table_avx512();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// (backend, tier) with fallback: a missing fast table degrades to the
/// backend's exact table; a missing backend degrades to scalar.
const KernelTable& resolve(simd::Backend backend, simd::Tier tier) {
  if (tier == simd::Tier::kFast) {
    if (const KernelTable* table = fast_table(backend)) return *table;
  }
  if (const KernelTable* table = exact_table(backend)) return *table;
  return *detail::kernel_table_scalar();
}

}  // namespace

const KernelTable* kernel_table(simd::Backend backend, simd::Tier tier) {
  return tier == simd::Tier::kFast ? fast_table(backend)
                                   : exact_table(backend);
}

const KernelTable& active_kernel_table() {
  return resolve(simd::active_backend(), simd::active_tier());
}

const KernelTable& kernel_table_for_patterns(std::size_t num_patterns) {
  simd::Backend backend = simd::active_backend();
  if (backend == simd::Backend::kAvx512 && !simd::backend_pinned() &&
      num_patterns < kAvx512MinPatterns &&
      exact_table(simd::Backend::kAvx2) != nullptr &&
      simd::cpu_supports(simd::Backend::kAvx2)) {
    // Downclock heuristic: an auto-resolved AVX-512 demotes to AVX2 for
    // small pattern counts (see kAvx512MinPatterns). An explicit
    // FDML_SIMD=avx512 / set_backend("avx512") is honored as pinned.
    backend = simd::Backend::kAvx2;
  }
  return resolve(backend, simd::active_tier());
}

std::vector<const KernelTable*> compiled_kernel_tables() {
  std::vector<const KernelTable*> tables;
  for (simd::Backend b : simd::compiled_backends()) {
    if (const KernelTable* table = exact_table(b)) tables.push_back(table);
  }
  return tables;
}

}  // namespace fdml
