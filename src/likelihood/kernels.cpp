// Runtime dispatch over the compiled kernel backends (see kernels.hpp).
#include "likelihood/kernels.hpp"

namespace fdml {

namespace detail {
const KernelTable* kernel_table_scalar();
#if defined(FDML_HAVE_SSE2)
const KernelTable* kernel_table_sse2();
#endif
#if defined(FDML_HAVE_AVX2)
const KernelTable* kernel_table_avx2();
#endif
}  // namespace detail

const KernelTable* kernel_table(simd::Backend backend) {
  switch (backend) {
    case simd::Backend::kScalar:
      return detail::kernel_table_scalar();
    case simd::Backend::kSse2:
#if defined(FDML_HAVE_SSE2)
      return detail::kernel_table_sse2();
#else
      return nullptr;
#endif
    case simd::Backend::kAvx2:
#if defined(FDML_HAVE_AVX2)
      return detail::kernel_table_avx2();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable& active_kernel_table() {
  const KernelTable* table = kernel_table(simd::active_backend());
  return table != nullptr ? *table : *detail::kernel_table_scalar();
}

std::vector<const KernelTable*> compiled_kernel_tables() {
  std::vector<const KernelTable*> tables;
  for (simd::Backend b : simd::compiled_backends()) {
    if (const KernelTable* table = kernel_table(b)) tables.push_back(table);
  }
  return tables;
}

}  // namespace fdml
