// SSE2 (W = 2) kernel backend. Compiled with -msse2 when FDML_SIMD allows;
// the TU is empty otherwise so the source list can stay unconditional.
#if defined(FDML_HAVE_SSE2)

#include "likelihood/kernels_body.hpp"

namespace fdml::detail {

const KernelTable* kernel_table_sse2() {
  static const KernelTable table =
      make_kernel_table<2>("sse2", simd::Backend::kSse2);
  return &table;
}

}  // namespace fdml::detail

#endif  // FDML_HAVE_SSE2
