#include "likelihood/evaluator.hpp"

#include <utility>

#include "util/timer.hpp"

namespace fdml {

TreeEvaluator::TreeEvaluator(const PatternAlignment& data, SubstModel model,
                             RateModel rates, OptimizeOptions options)
    : engine_(data, std::move(model), std::move(rates)),
      optimizer_(engine_, options) {}

Evaluation TreeEvaluator::evaluate(Tree& tree, int max_passes) {
  CpuTimer timer;
  engine_.attach(tree);
  Evaluation out;
  out.log_likelihood =
      max_passes < 0 ? optimizer_.smooth(tree) : optimizer_.smooth(tree, max_passes);
  out.cpu_seconds = timer.seconds();
  return out;
}

Evaluation TreeEvaluator::evaluate_partial(Tree& tree,
                                           const std::vector<std::pair<int, int>>& edges,
                                           int passes) {
  CpuTimer timer;
  engine_.attach(tree);
  Evaluation out;
  out.log_likelihood = optimizer_.smooth_edges(tree, edges, passes);
  out.cpu_seconds = timer.seconds();
  return out;
}

}  // namespace fdml
