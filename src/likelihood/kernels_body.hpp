// Width-generic bodies of the likelihood kernels (see kernels.hpp).
//
// Included by exactly the per-backend translation units
// (kernels_{scalar,sse2,avx2,avx512}.cpp and their *_fast siblings), each
// compiled with its ISA flags, and instantiated at that backend's lane
// width. The `Fused` policy picks the multiply-add flavor:
//
//   Fused = false (exact tier): Vec::madd, an unfused multiply-then-add,
//     with the TU compiled -ffp-contract=off. All arithmetic is lane-local
//     and ordered identically at every width, so every exact backend
//     produces bit-identical per-pattern results — the cross-backend parity
//     tests rely on this.
//   Fused = true (fast tier): Vec::fmadd, hardware FMA with one rounding
//     step. Same operation order, so results stay within ~1e-12 relative of
//     the exact tier, but bit equality across backends is forfeited (which
//     is why the tier is opt-in).
//
// Perf notes baked into these bodies:
//   - The 16-entry P(t) rows (and pr/left eigen rows) are copied into local
//     arrays before each pattern loop. The originals live in engine arenas
//     that the compiler must assume alias the output planes, which forces a
//     reload of every broadcast per iteration; the locals are provably
//     private, so the loads pipeline (and hoist entirely at narrow widths).
//   - clv_rescale combines the child scale counters for the whole range in
//     a branch-free pass first, then patches the (rare) underflowing lanes
//     found by the vector max/movemask sweep — the previous form branched
//     per lane on the hot path for the benefit of the rare one.
#pragma once

#include <cstring>

#include "likelihood/kernels.hpp"

namespace fdml::detail {

template <int W, bool Fused = false>
struct Kernels {
  using V = simd::Vec<double, W>;

  /// Tier-selected multiply-add (see header comment).
  static inline V ma(V a, V b, V c) {
    if constexpr (Fused) {
      return V::fmadd(a, b, c);
    } else {
      return V::madd(a, b, c);
    }
  }

  /// Loads the four state lanes of one child at `pat`: tip children gather
  /// from the transposed 16-code table, internal children do a P-row dot
  /// with the child's CLV planes (same summation order as the scalar code
  /// this replaces: ((p0*a0 + p1*a1) + p2*a2) + p3*a3 per state).
  /// Widths that read the tip table code-major (tab4[code * 4 + s]) via one
  /// contiguous load per pattern + in-register transpose. Scalar keeps the
  /// direct state-major reads; AVX-512's per-state gather is already an
  /// in-register permutex2var LUT and beats the transpose form there.
  static constexpr bool kCodeMajorTip = (W == 2 || W == 4);

  template <bool Tip>
  static inline void load_child(const ClvOperand& c, std::size_t padded,
                                std::size_t pat, V out[4]) {
    if constexpr (Tip && kCodeMajorTip) {
      // c.tip_tab was re-laid code-major by combine() for these widths.
      V::gather4(c.tip_tab, c.codes + pat, out);
    } else if constexpr (Tip) {
      for (int s = 0; s < 4; ++s) {
        out[s] = V::gather(c.tip_tab + s * 16, c.codes + pat);
      }
    } else {
      const V a0 = V::load(c.planes + 0 * padded + pat);
      const V a1 = V::load(c.planes + 1 * padded + pat);
      const V a2 = V::load(c.planes + 2 * padded + pat);
      const V a3 = V::load(c.planes + 3 * padded + pat);
      for (int s = 0; s < 4; ++s) {
        const double* row = c.p + s * 4;
        V acc = V::broadcast(row[0]) * a0;
        acc = ma(V::broadcast(row[1]), a1, acc);
        acc = ma(V::broadcast(row[2]), a2, acc);
        acc = ma(V::broadcast(row[3]), a3, acc);
        out[s] = acc;
      }
    }
  }

  template <bool ATip, bool BTip>
  static void combine(std::size_t begin, std::size_t end, std::size_t padded,
                      const ClvOperand& a, const ClvOperand& b, double* out) {
    // Local P-matrix copies: see the aliasing note in the header comment.
    alignas(64) double pa[16];
    alignas(64) double pb[16];
    // Code-major tip-table copies for the transposed lookup (gather4);
    // built once per call, amortized over the pattern range.
    [[maybe_unused]] alignas(64) double ta4[64];
    [[maybe_unused]] alignas(64) double tb4[64];
    ClvOperand al = a;
    ClvOperand bl = b;
    if constexpr (!ATip) {
      std::memcpy(pa, a.p, sizeof(pa));
      al.p = pa;
    } else if constexpr (kCodeMajorTip) {
      for (int code = 0; code < 16; ++code) {
        for (int s = 0; s < 4; ++s) ta4[code * 4 + s] = a.tip_tab[s * 16 + code];
      }
      al.tip_tab = ta4;
    }
    if constexpr (!BTip) {
      std::memcpy(pb, b.p, sizeof(pb));
      bl.p = pb;
    } else if constexpr (kCodeMajorTip) {
      for (int code = 0; code < 16; ++code) {
        for (int s = 0; s < 4; ++s) tb4[code * 4 + s] = b.tip_tab[s * 16 + code];
      }
      bl.tip_tab = tb4;
    }
    for (std::size_t pat = begin; pat < end; pat += W) {
      V left[4];
      V right[4];
      load_child<ATip>(al, padded, pat, left);
      load_child<BTip>(bl, padded, pat, right);
      for (int s = 0; s < 4; ++s) {
        (left[s] * right[s]).store(out + s * padded + pat);
      }
    }
  }

  static void clv_combine(std::size_t begin, std::size_t end,
                          std::size_t padded, const ClvOperand& a,
                          const ClvOperand& b, double* out) {
    const bool a_tip = a.codes != nullptr;
    const bool b_tip = b.codes != nullptr;
    if (a_tip && b_tip) {
      combine<true, true>(begin, end, padded, a, b, out);
    } else if (a_tip) {
      combine<true, false>(begin, end, padded, a, b, out);
    } else if (b_tip) {
      combine<false, true>(begin, end, padded, a, b, out);
    } else {
      combine<false, false>(begin, end, padded, a, b, out);
    }
  }

  static std::uint64_t clv_rescale(std::size_t begin, std::size_t end,
                                   std::size_t padded,
                                   std::size_t num_categories, double* values,
                                   const std::int32_t* a_scale,
                                   const std::int32_t* b_scale,
                                   std::int32_t* out_scale) {
    // Pass 1: combined child scale counters for the whole range, branch-free
    // (the null-ness of each child is fixed per call, not per pattern).
    const std::size_t n = end - begin;
    if (a_scale != nullptr && b_scale != nullptr) {
      for (std::size_t p = begin; p < end; ++p) {
        out_scale[p] = a_scale[p] + b_scale[p];
      }
    } else if (a_scale != nullptr) {
      std::memcpy(out_scale + begin, a_scale + begin, n * sizeof(std::int32_t));
    } else if (b_scale != nullptr) {
      std::memcpy(out_scale + begin, b_scale + begin, n * sizeof(std::int32_t));
    } else {
      std::memset(out_scale + begin, 0, n * sizeof(std::int32_t));
    }

    // Pass 2: vector max over the planes; the movemask picks out the rare
    // underflowing lanes, which get the multiplicative rescale and a scale
    // increment. Underflowing lanes satisfy 0 < max < threshold — gap-only
    // and padded-tail patterns have max == 0 and are intentionally excluded.
    const V zero = V::zero();
    const V threshold = V::broadcast(kClvScaleThreshold);
    const std::size_t planes = num_categories * 4;
    std::uint64_t rescaled = 0;
    for (std::size_t pat = begin; pat < end; pat += W) {
      V max_entry = V::zero();
      for (std::size_t plane = 0; plane < planes; ++plane) {
        max_entry = V::max(max_entry, V::load(values + plane * padded + pat));
      }
      int mask = V::lt_mask(zero, max_entry) & V::lt_mask(max_entry, threshold);
      while (mask != 0) {
        const int lane = __builtin_ctz(static_cast<unsigned>(mask));
        mask &= mask - 1;
        const std::size_t p = pat + static_cast<std::size_t>(lane);
        for (std::size_t plane = 0; plane < planes; ++plane) {
          values[plane * padded + p] *= kClvScaleFactor;
        }
        ++out_scale[p];
        ++rescaled;
      }
    }
    return rescaled;
  }

  /// Shared inner loop of edge_capture / edge_capture_multi over patterns
  /// [begin, end). `pr` and `left` must already be caller-local copies (the
  /// wrappers below make them) so the broadcasts do not reload per
  /// iteration against the coeff stores.
  static inline void capture_span(std::size_t begin, std::size_t end,
                                  std::size_t padded, const double* a_planes,
                                  const double* b_planes, const double* pr,
                                  const double* left, double prob,
                                  double* coeff) {
    const V prob_v = V::broadcast(prob);
    for (std::size_t pat = begin; pat < end; pat += W) {
      const V a0 = V::load(a_planes + 0 * padded + pat);
      const V a1 = V::load(a_planes + 1 * padded + pat);
      const V a2 = V::load(a_planes + 2 * padded + pat);
      const V a3 = V::load(a_planes + 3 * padded + pat);
      const V b0 = V::load(b_planes + 0 * padded + pat);
      const V b1 = V::load(b_planes + 1 * padded + pat);
      const V b2 = V::load(b_planes + 2 * padded + pat);
      const V b3 = V::load(b_planes + 3 * padded + pat);
      for (int k = 0; k < 4; ++k) {
        const double* pk = pr + k * 4;
        V u = V::broadcast(pk[0]) * a0;
        u = ma(V::broadcast(pk[1]), a1, u);
        u = ma(V::broadcast(pk[2]), a2, u);
        u = ma(V::broadcast(pk[3]), a3, u);
        u = prob_v * u;
        const double* lk = left + k * 4;
        V v = V::broadcast(lk[0]) * b0;
        v = ma(V::broadcast(lk[1]), b1, v);
        v = ma(V::broadcast(lk[2]), b2, v);
        v = ma(V::broadcast(lk[3]), b3, v);
        (u * v).store(coeff + static_cast<std::size_t>(k) * padded + pat);
      }
    }
  }

  static void edge_capture(std::size_t padded, const double* a_planes,
                           const double* b_planes, const double* pr,
                           const double* left, double prob, double* coeff) {
    alignas(64) double prl[16];
    alignas(64) double lfl[16];
    std::memcpy(prl, pr, sizeof(prl));
    std::memcpy(lfl, left, sizeof(lfl));
    capture_span(0, padded, padded, a_planes, b_planes, prl, lfl, prob, coeff);
  }

  static void edge_capture_multi(std::size_t padded, std::size_t count,
                                 const double* const* a_planes,
                                 const double* const* b_planes,
                                 const double* pr, const double* left,
                                 double prob, double* const* coeff) {
    alignas(64) double prl[16];
    alignas(64) double lfl[16];
    std::memcpy(prl, pr, sizeof(prl));
    std::memcpy(lfl, left, sizeof(lfl));
    // Block-interleaved: every edge visits pattern block [begin, end) while
    // the shared eigen rows — and, in the insertion-batch case, the shared
    // operand planes — are still L1-resident. Per-edge results are exactly
    // edge_capture's (same spans, same order within each edge).
    for (std::size_t begin = 0; begin < padded; begin += kPatternBlock) {
      const std::size_t end =
          begin + kPatternBlock < padded ? begin + kPatternBlock : padded;
      for (std::size_t e = 0; e < count; ++e) {
        capture_span(begin, end, padded, a_planes[e], b_planes[e], prl, lfl,
                     prob, coeff[e]);
      }
    }
  }

  template <bool Accumulate, bool Derivs>
  static void evaluate(std::size_t padded, const double* coeff,
                       const double* e, const double* lam, double* site,
                       double* site_d1, double* site_d2) {
    const V e0 = V::broadcast(e[0]), e1 = V::broadcast(e[1]),
            e2 = V::broadcast(e[2]), e3 = V::broadcast(e[3]);
    // Derivative factors per eigenvalue: d/dt exp(lam_k t) = lam_k * exp,
    // computed in scalar once (identical to the former per-category setup).
    const double l0s = lam[0] * e[0], l1s = lam[1] * e[1], l2s = lam[2] * e[2],
                 l3s = lam[3] * e[3];
    const V l0 = V::broadcast(l0s), l1 = V::broadcast(l1s),
            l2 = V::broadcast(l2s), l3 = V::broadcast(l3s);
    const V q0 = V::broadcast(lam[0] * l0s), q1 = V::broadcast(lam[1] * l1s),
            q2 = V::broadcast(lam[2] * l2s), q3 = V::broadcast(lam[3] * l3s);
    for (std::size_t pat = 0; pat < padded; pat += W) {
      const V c0 = V::load(coeff + 0 * padded + pat);
      const V c1 = V::load(coeff + 1 * padded + pat);
      const V c2 = V::load(coeff + 2 * padded + pat);
      const V c3 = V::load(coeff + 3 * padded + pat);
      V s = c0 * e0;
      s = ma(c1, e1, s);
      s = ma(c2, e2, s);
      s = ma(c3, e3, s);
      if constexpr (Accumulate) s = V::load(site + pat) + s;
      s.store(site + pat);
      if constexpr (Derivs) {
        V g = c0 * l0;
        g = ma(c1, l1, g);
        g = ma(c2, l2, g);
        g = ma(c3, l3, g);
        V h = c0 * q0;
        h = ma(c1, q1, h);
        h = ma(c2, q2, h);
        h = ma(c3, q3, h);
        if constexpr (Accumulate) {
          g = V::load(site_d1 + pat) + g;
          h = V::load(site_d2 + pat) + h;
        }
        g.store(site_d1 + pat);
        h.store(site_d2 + pat);
      }
    }
  }

  static void edge_evaluate(std::size_t padded, const double* coeff,
                            const double* e, const double* lam,
                            bool accumulate, bool derivs, double* site,
                            double* site_d1, double* site_d2) {
    if (derivs) {
      if (accumulate) {
        evaluate<true, true>(padded, coeff, e, lam, site, site_d1, site_d2);
      } else {
        evaluate<false, true>(padded, coeff, e, lam, site, site_d1, site_d2);
      }
    } else {
      if (accumulate) {
        evaluate<true, false>(padded, coeff, e, lam, site, site_d1, site_d2);
      } else {
        evaluate<false, false>(padded, coeff, e, lam, site, site_d1, site_d2);
      }
    }
  }
};

template <int W, bool Fused = false>
KernelTable make_kernel_table(const char* name, simd::Backend backend,
                              simd::Tier tier = simd::Tier::kExact) {
  KernelTable table;
  table.name = name;
  table.backend = backend;
  table.tier = tier;
  table.width = W;
  table.clv_combine = &Kernels<W, Fused>::clv_combine;
  table.clv_rescale = &Kernels<W, Fused>::clv_rescale;
  table.edge_capture = &Kernels<W, Fused>::edge_capture;
  table.edge_capture_multi = &Kernels<W, Fused>::edge_capture_multi;
  table.edge_evaluate = &Kernels<W, Fused>::edge_evaluate;
  return table;
}

}  // namespace fdml::detail
