// Width-generic bodies of the likelihood kernels (see kernels.hpp).
//
// Included by exactly the per-backend translation units
// (kernels_{scalar,sse2,avx2}.cpp), each compiled with its ISA flags and
// -ffp-contract=off, and instantiated at that backend's lane width. All
// arithmetic is lane-local and uses Vec::madd (unfused), so every width
// produces bit-identical per-pattern results — the cross-backend parity
// tests rely on this.
#pragma once

#include "likelihood/kernels.hpp"

namespace fdml::detail {

template <int W>
struct Kernels {
  using V = simd::Vec<double, W>;

  /// Loads the four state lanes of one child at `pat`: tip children gather
  /// from the transposed 16-code table, internal children do a P-row dot
  /// with the child's CLV planes (same summation order as the scalar code
  /// this replaces: ((p0*a0 + p1*a1) + p2*a2) + p3*a3 per state).
  template <bool Tip>
  static inline void load_child(const ClvOperand& c, std::size_t padded,
                                std::size_t pat, V out[4]) {
    if constexpr (Tip) {
      for (int s = 0; s < 4; ++s) {
        out[s] = V::gather(c.tip_tab + s * 16, c.codes + pat);
      }
    } else {
      const V a0 = V::load(c.planes + 0 * padded + pat);
      const V a1 = V::load(c.planes + 1 * padded + pat);
      const V a2 = V::load(c.planes + 2 * padded + pat);
      const V a3 = V::load(c.planes + 3 * padded + pat);
      for (int s = 0; s < 4; ++s) {
        const double* row = c.p + s * 4;
        V acc = V::broadcast(row[0]) * a0;
        acc = V::madd(V::broadcast(row[1]), a1, acc);
        acc = V::madd(V::broadcast(row[2]), a2, acc);
        acc = V::madd(V::broadcast(row[3]), a3, acc);
        out[s] = acc;
      }
    }
  }

  template <bool ATip, bool BTip>
  static void combine(std::size_t begin, std::size_t end, std::size_t padded,
                      const ClvOperand& a, const ClvOperand& b, double* out) {
    for (std::size_t pat = begin; pat < end; pat += W) {
      V left[4];
      V right[4];
      load_child<ATip>(a, padded, pat, left);
      load_child<BTip>(b, padded, pat, right);
      for (int s = 0; s < 4; ++s) {
        (left[s] * right[s]).store(out + s * padded + pat);
      }
    }
  }

  static void clv_combine(std::size_t begin, std::size_t end,
                          std::size_t padded, const ClvOperand& a,
                          const ClvOperand& b, double* out) {
    const bool a_tip = a.codes != nullptr;
    const bool b_tip = b.codes != nullptr;
    if (a_tip && b_tip) {
      combine<true, true>(begin, end, padded, a, b, out);
    } else if (a_tip) {
      combine<true, false>(begin, end, padded, a, b, out);
    } else if (b_tip) {
      combine<false, true>(begin, end, padded, a, b, out);
    } else {
      combine<false, false>(begin, end, padded, a, b, out);
    }
  }

  static std::uint64_t clv_rescale(std::size_t begin, std::size_t end,
                                   std::size_t padded,
                                   std::size_t num_categories, double* values,
                                   const std::int32_t* a_scale,
                                   const std::int32_t* b_scale,
                                   std::int32_t* out_scale) {
    const V zero = V::zero();
    const V threshold = V::broadcast(kClvScaleThreshold);
    const std::size_t planes = num_categories * 4;
    std::uint64_t rescaled = 0;
    for (std::size_t pat = begin; pat < end; pat += W) {
      V max_entry = V::zero();
      for (std::size_t plane = 0; plane < planes; ++plane) {
        max_entry = V::max(max_entry, V::load(values + plane * padded + pat));
      }
      // Underflowing lanes: 0 < max < threshold. Gap-only and padded-tail
      // patterns have max == 0 and are intentionally excluded.
      const int mask =
          V::lt_mask(zero, max_entry) & V::lt_mask(max_entry, threshold);
      for (int lane = 0; lane < W; ++lane) {
        const std::size_t p = pat + static_cast<std::size_t>(lane);
        std::int32_t scale = 0;
        if (a_scale != nullptr) scale += a_scale[p];
        if (b_scale != nullptr) scale += b_scale[p];
        if ((mask >> lane) & 1) {
          for (std::size_t plane = 0; plane < planes; ++plane) {
            values[plane * padded + p] *= kClvScaleFactor;
          }
          ++scale;
          ++rescaled;
        }
        out_scale[p] = scale;
      }
    }
    return rescaled;
  }

  static void edge_capture(std::size_t padded, const double* a_planes,
                           const double* b_planes, const double* pr,
                           const double* left, double prob, double* coeff) {
    const V prob_v = V::broadcast(prob);
    for (std::size_t pat = 0; pat < padded; pat += W) {
      const V a0 = V::load(a_planes + 0 * padded + pat);
      const V a1 = V::load(a_planes + 1 * padded + pat);
      const V a2 = V::load(a_planes + 2 * padded + pat);
      const V a3 = V::load(a_planes + 3 * padded + pat);
      const V b0 = V::load(b_planes + 0 * padded + pat);
      const V b1 = V::load(b_planes + 1 * padded + pat);
      const V b2 = V::load(b_planes + 2 * padded + pat);
      const V b3 = V::load(b_planes + 3 * padded + pat);
      for (int k = 0; k < 4; ++k) {
        const double* pk = pr + k * 4;
        V u = V::broadcast(pk[0]) * a0;
        u = V::madd(V::broadcast(pk[1]), a1, u);
        u = V::madd(V::broadcast(pk[2]), a2, u);
        u = V::madd(V::broadcast(pk[3]), a3, u);
        u = prob_v * u;
        const double* lk = left + k * 4;
        V v = V::broadcast(lk[0]) * b0;
        v = V::madd(V::broadcast(lk[1]), b1, v);
        v = V::madd(V::broadcast(lk[2]), b2, v);
        v = V::madd(V::broadcast(lk[3]), b3, v);
        (u * v).store(coeff + static_cast<std::size_t>(k) * padded + pat);
      }
    }
  }

  template <bool Accumulate, bool Derivs>
  static void evaluate(std::size_t padded, const double* coeff,
                       const double* e, const double* lam, double* site,
                       double* site_d1, double* site_d2) {
    const V e0 = V::broadcast(e[0]), e1 = V::broadcast(e[1]),
            e2 = V::broadcast(e[2]), e3 = V::broadcast(e[3]);
    // Derivative factors per eigenvalue: d/dt exp(lam_k t) = lam_k * exp,
    // computed in scalar once (identical to the former per-category setup).
    const double l0s = lam[0] * e[0], l1s = lam[1] * e[1], l2s = lam[2] * e[2],
                 l3s = lam[3] * e[3];
    const V l0 = V::broadcast(l0s), l1 = V::broadcast(l1s),
            l2 = V::broadcast(l2s), l3 = V::broadcast(l3s);
    const V q0 = V::broadcast(lam[0] * l0s), q1 = V::broadcast(lam[1] * l1s),
            q2 = V::broadcast(lam[2] * l2s), q3 = V::broadcast(lam[3] * l3s);
    for (std::size_t pat = 0; pat < padded; pat += W) {
      const V c0 = V::load(coeff + 0 * padded + pat);
      const V c1 = V::load(coeff + 1 * padded + pat);
      const V c2 = V::load(coeff + 2 * padded + pat);
      const V c3 = V::load(coeff + 3 * padded + pat);
      V s = c0 * e0;
      s = V::madd(c1, e1, s);
      s = V::madd(c2, e2, s);
      s = V::madd(c3, e3, s);
      if constexpr (Accumulate) s = V::load(site + pat) + s;
      s.store(site + pat);
      if constexpr (Derivs) {
        V g = c0 * l0;
        g = V::madd(c1, l1, g);
        g = V::madd(c2, l2, g);
        g = V::madd(c3, l3, g);
        V h = c0 * q0;
        h = V::madd(c1, q1, h);
        h = V::madd(c2, q2, h);
        h = V::madd(c3, q3, h);
        if constexpr (Accumulate) {
          g = V::load(site_d1 + pat) + g;
          h = V::load(site_d2 + pat) + h;
        }
        g.store(site_d1 + pat);
        h.store(site_d2 + pat);
      }
    }
  }

  static void edge_evaluate(std::size_t padded, const double* coeff,
                            const double* e, const double* lam,
                            bool accumulate, bool derivs, double* site,
                            double* site_d1, double* site_d2) {
    if (derivs) {
      if (accumulate) {
        evaluate<true, true>(padded, coeff, e, lam, site, site_d1, site_d2);
      } else {
        evaluate<false, true>(padded, coeff, e, lam, site, site_d1, site_d2);
      }
    } else {
      if (accumulate) {
        evaluate<true, false>(padded, coeff, e, lam, site, site_d1, site_d2);
      } else {
        evaluate<false, false>(padded, coeff, e, lam, site, site_d1, site_d2);
      }
    }
  }
};

template <int W>
KernelTable make_kernel_table(const char* name, simd::Backend backend) {
  KernelTable table;
  table.name = name;
  table.backend = backend;
  table.width = W;
  table.clv_combine = &Kernels<W>::clv_combine;
  table.clv_rescale = &Kernels<W>::clv_rescale;
  table.edge_capture = &Kernels<W>::edge_capture;
  table.edge_evaluate = &Kernels<W>::edge_evaluate;
  return table;
}

}  // namespace fdml::detail
