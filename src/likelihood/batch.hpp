// Batched multi-edge likelihood evaluation.
//
// fastDNAml's quick-add step scores one candidate insertion edge at a time:
// splice the new taxon in, capture the tip edge, Newton-solve, rip it back
// out. Per candidate that costs a full edge capture whose inputs (the tip
// planes and the shared eigen projection tables) are identical across the
// whole round — only the junction CLV differs. BatchEdgeEvaluator
// restructures the round:
//
//   1. one shared CLV traversal makes every base CLV the K candidates need
//      valid (they are all directions *toward* the candidate edges, so the
//      lazy cache computes each exactly once);
//   2. each candidate's junction CLV is computed into evaluator-owned
//      planes via LikelihoodEngine::combine_children — the same code that
//      would run after a real insertion, so the values are bit-identical —
//      without mutating the tree;
//   3. a single pattern-blocked edge_capture_multi kernel call per rate
//      category projects all K coefficient sets while the shared transition
//      rows and tip planes are hot in cache;
//   4. the K EdgeLikelihood views evaluate out of those still-hot
//      coefficient planes (Newton solves run per candidate, serially).
//
// Determinism contract: view(k).evaluate(t) is bit-identical to what
// engine.edge_likelihood(junction_k, tip).evaluate(t) would return after
// actually inserting candidate k with the same local lengths — the kernels
// perform the same per-edge arithmetic in the same order (edge_capture_multi
// is block-interleaved across edges, but each edge's sequence of operations
// is exactly edge_capture's). The search layer relies on this to keep
// batched candidate scoring bit-identical to the sequential path.
#pragma once

#include <cstddef>
#include <vector>

#include "likelihood/engine.hpp"
#include "util/aligned.hpp"

namespace fdml {

class BatchEdgeEvaluator {
 public:
  /// Arenas grow to the largest batch seen and are then reused; the search
  /// layer chunks candidate rounds at this size to bound memory.
  static constexpr std::size_t kMaxBatch = 32;

  explicit BatchEdgeEvaluator(LikelihoodEngine& engine);

  /// A directed edge of the attached tree, same orientation convention as
  /// LikelihoodEngine::edge_likelihood(u, v).
  struct Edge {
    int u;
    int v;
  };

  /// A candidate insertion point for a new tip: edge (u, v) of the attached
  /// tree is split by a virtual junction with branch lengths `length_u`
  /// (junction -> u) and `length_v` (junction -> v).
  struct Insertion {
    int u = -1;
    int v = -1;
    double length_u = 0.0;
    double length_v = 0.0;
  };

  /// Captures K existing edges in one pattern-blocked pass. Each view(k) is
  /// bit-identical to engine.edge_likelihood(edges[k].u, edges[k].v).
  void capture(const std::vector<Edge>& edges);

  /// Captures the tip<->junction edge of K candidate insertions of `tip`
  /// without mutating the tree. view(k) is oriented as
  /// edge_likelihood(junction, tip) — junction CLV on the 'a' side.
  void capture_insertions(int tip, const std::vector<Insertion>& candidates);

  std::size_t size() const { return count_; }

  /// The k-th captured view. Valid until the next capture on this evaluator
  /// or the next edge_likelihood()/attach()/set_model() on the engine
  /// (coefficient planes are evaluator-owned, but the site accumulators and
  /// exp cache are shared with the engine). Views must be evaluated one at
  /// a time — they share site scratch.
  const EdgeLikelihood& view(std::size_t k) const { return views_[k]; }

 private:
  void ensure_capacity(std::size_t count);
  /// Shared tail of both capture paths: runs edge_capture_multi per
  /// category over the staged a/b plane pointers, finalizes views and
  /// counters, and records the batch-fill histogram sample.
  void project_and_finalize(std::size_t count);

  LikelihoodEngine& engine_;
  std::size_t count_ = 0;
  std::size_t capacity_ = 0;

  // Junction CLVs for capture_insertions: [k][cat][4][padded] planes plus
  // [k][padded] scale counters.
  AlignedVector<double> junction_values_;
  std::vector<std::int32_t> junction_scale_;

  // Captured eigen coefficients: [k][cat][4][padded].
  AlignedVector<double> coeff_;

  // Per-candidate workspaces/views; workspaces differ only in their coeff
  // base (site scratch is the engine's, shared serially).
  std::vector<EdgeLikelihood::Workspace> workspaces_;
  std::vector<EdgeLikelihood> views_;

  // Kernel-call staging: per-edge plane pointers for one category.
  std::vector<const double*> a_planes_;
  std::vector<const double*> b_planes_;
  std::vector<double*> coeff_planes_;
  // Per-edge category-plane bases and scale pointers resolved by capture().
  std::vector<const double*> a_values_;
  std::vector<const double*> b_values_;
  std::vector<const std::int32_t*> a_scales_;
  std::vector<const std::int32_t*> b_scales_;
  std::vector<char> a_cats_;
  std::vector<char> b_cats_;
};

}  // namespace fdml
