#include "likelihood/transition_cache.hpp"

#include <bit>

namespace fdml {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64 finalizer: effective lengths are clustered doubles whose low
// mantissa bits barely vary, so the key needs real mixing before masking.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TransitionCache::TransitionCache(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(slots_.size() - 1) {}

const TransitionCache::Entry& TransitionCache::lookup(const SubstModel& model,
                                                      double effective_length) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(effective_length);
  Entry& entry = slots_[mix(bits) & mask_];
  if (entry.epoch == epoch_ &&
      std::bit_cast<std::uint64_t>(entry.key) == bits) {
    ++hits_;
    return entry;
  }
  ++misses_;
  entry.key = effective_length;
  entry.epoch = epoch_;
  model.transition_and_exp(effective_length, entry.p, entry.expl);
  return entry;
}

void TransitionCache::transition(const SubstModel& model,
                                 double effective_length, Mat4& p) {
  p = lookup(model, effective_length).p;
}

Vec4 TransitionCache::exp_eigen(const SubstModel& model,
                                double effective_length) {
  return lookup(model, effective_length).expl;
}

}  // namespace fdml
