#include "likelihood/transition_cache.hpp"

#include <bit>

namespace fdml {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// splitmix64 finalizer: effective lengths are clustered doubles whose low
// mantissa bits barely vary, so the key needs real mixing before masking.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TransitionCache::TransitionCache(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      set_mask_(slots_.size() / 2 - 1) {}

std::size_t TransitionCache::set_index(double effective_length) const {
  return mix(std::bit_cast<std::uint64_t>(effective_length)) & set_mask_;
}

const TransitionCache::Entry& TransitionCache::lookup(const SubstModel& model,
                                                      double effective_length) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(effective_length);
  Entry* set = &slots_[(mix(bits) & set_mask_) * 2];
  for (int way = 0; way < 2; ++way) {
    Entry& entry = set[way];
    if (entry.epoch == epoch_ &&
        std::bit_cast<std::uint64_t>(entry.key) == bits) {
      ++hits_;
      entry.stamp = ++clock_;
      return entry;
    }
  }
  ++misses_;
  // Victim choice: a stale way (never filled, or filled under an older
  // epoch) is free real estate; with two live ways, evict the LRU one.
  Entry* victim;
  if (set[0].epoch != epoch_) {
    victim = &set[0];
  } else if (set[1].epoch != epoch_) {
    victim = &set[1];
  } else {
    victim = set[0].stamp <= set[1].stamp ? &set[0] : &set[1];
    ++evictions_;
  }
  victim->key = effective_length;
  victim->epoch = epoch_;
  victim->stamp = ++clock_;
  model.transition_and_exp(effective_length, victim->p, victim->expl);
  return *victim;
}

void TransitionCache::transition(const SubstModel& model,
                                 double effective_length, Mat4& p) {
  p = lookup(model, effective_length).p;
}

Vec4 TransitionCache::exp_eigen(const SubstModel& model,
                                double effective_length) {
  return lookup(model, effective_length).expl;
}

}  // namespace fdml
