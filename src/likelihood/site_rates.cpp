#include "likelihood/site_rates.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fdml {

namespace {

// Single-pattern pruning at one rate multiplier: returns the 4-vector of
// conditional likelihoods at `node` seen from `from`, with log-scaling
// folded into `log_scale`.
Vec4 prune_pattern(const Tree& tree, const PatternAlignment& data,
                   const SubstModel& model, std::size_t pattern, double rate,
                   int node, int from, double& log_scale) {
  if (tree.is_tip(node)) {
    const BaseCode code = data.at(static_cast<std::size_t>(node), pattern);
    Vec4 v{};
    for (int s = 0; s < 4; ++s) {
      v[s] = (code & base_from_index(s)) ? 1.0 : 0.0;
    }
    return v;
  }
  Vec4 out{1.0, 1.0, 1.0, 1.0};
  Mat4 p{};
  for (int slot = 0; slot < 3; ++slot) {
    const int child = tree.neighbor(node, slot);
    if (child == Tree::kNoNode || child == from) continue;
    const Vec4 child_clv =
        prune_pattern(tree, data, model, pattern, rate, child, node, log_scale);
    model.transition(tree.slot_length(node, slot) * rate, p);
    for (int i = 0; i < 4; ++i) {
      double sum = 0.0;
      for (int j = 0; j < 4; ++j) sum += p[i][j] * child_clv[j];
      out[i] *= sum;
    }
  }
  const double max_entry = std::max({out[0], out[1], out[2], out[3]});
  if (max_entry > 0.0 && max_entry < 1e-150) {
    for (double& x : out) x *= 1e150;
    log_scale += std::log(1e-150);
  }
  return out;
}

}  // namespace

double pattern_log_likelihood_at_rate(const Tree& tree,
                                      const PatternAlignment& data,
                                      const SubstModel& model,
                                      std::size_t pattern, double rate) {
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) throw std::logic_error("pattern lnl: empty tree");
  double log_scale = 0.0;
  const Vec4 clv =
      prune_pattern(tree, data, model, pattern, rate, root, -1, log_scale);
  const Vec4& pi = model.frequencies();
  double s = 0.0;
  for (int i = 0; i < 4; ++i) s += pi[i] * clv[i];
  return std::log(s) + log_scale;
}

SiteRateResult estimate_site_rates(const Tree& tree, const PatternAlignment& data,
                                   const SubstModel& model,
                                   const SiteRateOptions& options) {
  SiteRateResult result;
  result.pattern_rates.resize(data.num_patterns());

  constexpr double kGolden = 0.6180339887498949;
  for (std::size_t pattern = 0; pattern < data.num_patterns(); ++pattern) {
    auto f = [&](double rate) {
      return pattern_log_likelihood_at_rate(tree, data, model, pattern, rate);
    };
    // Golden-section search on log(rate) — the likelihood is smoother there.
    double lo = std::log(options.min_rate);
    double hi = std::log(options.max_rate);
    double x1 = hi - kGolden * (hi - lo);
    double x2 = lo + kGolden * (hi - lo);
    double f1 = f(std::exp(x1));
    double f2 = f(std::exp(x2));
    while (hi - lo > options.tolerance) {
      if (f1 < f2) {
        lo = x1;
        x1 = x2;
        f1 = f2;
        x2 = lo + kGolden * (hi - lo);
        f2 = f(std::exp(x2));
      } else {
        hi = x2;
        x2 = x1;
        f2 = f1;
        x1 = hi - kGolden * (hi - lo);
        f1 = f(std::exp(x1));
      }
    }
    result.pattern_rates[pattern] = std::exp(0.5 * (lo + hi));
  }

  result.site_rates.resize(data.num_sites());
  for (std::size_t site = 0; site < data.num_sites(); ++site) {
    result.site_rates[site] = result.pattern_rates[data.pattern_of_site(site)];
  }
  return result;
}

double assigned_rates_log_likelihood(const Tree& tree,
                                     const PatternAlignment& data,
                                     const SubstModel& model,
                                     const std::vector<double>& site_rates) {
  if (site_rates.size() != data.num_sites()) {
    throw std::invalid_argument("assigned rates: one rate per site required");
  }
  std::map<std::pair<std::size_t, double>, double> cache;
  double total = 0.0;
  for (std::size_t site = 0; site < data.num_sites(); ++site) {
    const std::size_t pattern = data.pattern_of_site(site);
    const auto key = std::make_pair(pattern, site_rates[site]);
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, pattern_log_likelihood_at_rate(
                                  tree, data, model, pattern, site_rates[site]))
               .first;
    }
    total += it->second;
  }
  return total;
}

RateCategorization categorize_rates(const std::vector<double>& site_rates,
                                    int categories) {
  if (site_rates.empty()) throw std::invalid_argument("categorize_rates: empty");
  if (categories < 1) throw std::invalid_argument("categorize_rates: categories >= 1");
  const auto [lo_it, hi_it] = std::minmax_element(site_rates.begin(), site_rates.end());
  const double lo = std::max(*lo_it, 1e-6);
  const double hi = std::max(*hi_it, lo * (1.0 + 1e-9));

  // Geometric bin edges between lo and hi.
  const std::size_t k = static_cast<std::size_t>(categories);
  std::vector<double> edges(k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    edges[i] = lo * std::pow(hi / lo, static_cast<double>(i) / k);
  }
  std::vector<int> assignment(site_rates.size());
  std::vector<double> sums(k, 0.0);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t s = 0; s < site_rates.size(); ++s) {
    std::size_t bin = 0;
    while (bin + 1 < k && site_rates[s] > edges[bin + 1]) ++bin;
    assignment[s] = static_cast<int>(bin);
    sums[bin] += site_rates[s];
    counts[bin] += 1;
  }
  // Drop empty bins, remapping assignments.
  std::vector<double> rates;
  std::vector<double> probs;
  std::vector<int> remap(k, -1);
  for (std::size_t bin = 0; bin < k; ++bin) {
    if (counts[bin] == 0) continue;
    remap[bin] = static_cast<int>(rates.size());
    rates.push_back(sums[bin] / static_cast<double>(counts[bin]));
    probs.push_back(static_cast<double>(counts[bin]) /
                    static_cast<double>(site_rates.size()));
  }
  for (int& a : assignment) a = remap[static_cast<std::size_t>(a)];
  return RateCategorization{RateModel::user(std::move(rates), std::move(probs)),
                            std::move(assignment)};
}

}  // namespace fdml
