// SIMD kernel layer under the likelihood engine.
//
// The hot loops of Felsenstein pruning — internal-CLV combine, tip
// lookup-table combine, eigen-coefficient edge capture (single and batched),
// and the per-pattern dot of EdgeLikelihood::evaluate — are independent
// across site patterns, so the engine stores CLVs and edge coefficients as
// pattern-plane SoA:
//
//   [category][state][pattern]   (pattern extent padded to kPatternPad)
//
// instead of the former [category][pattern][state] AoS. A kernel then reads
// four *planes* with contiguous vector loads and does purely vertical
// arithmetic (no shuffles); the per-pattern underflow check becomes a
// vector max over planes plus a movemask.
//
// Backends are function-pointer tables. Each table is produced by one
// translation unit compiled for its ISA (kernels_scalar.cpp at W = 1,
// kernels_sse2.cpp at W = 2 with -msse2, kernels_avx2.cpp at W = 4 with
// -mavx2, kernels_avx512.cpp at W = 8 with -mavx512f/dq) from the same
// width-generic bodies in kernels_body.hpp, so the math is written exactly
// once. When the build enables FDML_FAST_MATH, a parallel set of TUs
// (kernels_{avx2,avx512}_fast.cpp, compiled with -mfma and
// -ffp-contract=fast) registers Tier::kFast tables that use hardware FMA;
// backends without a fast TU fall back to their exact table.
// active_kernel_table() resolves simd::active_backend() and
// simd::active_tier() (runtime CPUID + FDML_SIMD / FDML_TIER overrides) to
// a table; the engine captures the table at construction.
//
// Padded-tail contract: callers zero-fill plane tails (patterns in
// [num_patterns, padded)). Kernels process full padded ranges; zero inputs
// produce zero outputs and never trigger rescaling (the check requires a
// strictly positive maximum), so tail lanes are inert by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.hpp"

namespace fdml {

/// Pattern-plane padding in doubles. A multiple of every backend width and
/// a full cache line, so plane starts stay 64-byte aligned for any W.
inline constexpr std::size_t kPatternPad = 8;

/// Patterns per tile of the blocked kernels: one block of every category's
/// output plus the operand blocks stays L1-resident. The engine tiles its
/// CLV sweep by this, and edge_capture_multi interleaves its K edges at
/// this granularity so the whole batch reuses cache-hot operand planes.
/// Must be a multiple of kPatternPad so tile boundaries keep alignment.
inline constexpr std::size_t kPatternBlock = 64;
static_assert(kPatternBlock % kPatternPad == 0);

/// Underflow guard (shared by the kernels and the engine): rescale a
/// pattern by 2^256 whenever its largest CLV entry falls below 2^-256.
inline constexpr double kClvScaleThreshold = 0x1.0p-256;
inline constexpr double kClvScaleFactor = 0x1.0p+256;
/// One rescale step in log space: log(kClvScaleFactor) = 256 ln 2.
/// Log-likelihood paths subtract scale_count * kLogScaleStep.
inline constexpr double kLogScaleStep = 256.0 * 0.6931471805599453;

/// Pattern count below which an auto-resolved AVX-512 backend is demoted to
/// AVX2 (kernel_table_for_patterns): small workloads cannot amortize the
/// frequency drop 512-bit FP triggers on many cores, so the wider vectors
/// only pay for themselves once enough patterns flow through each call.
/// Pinning the backend (FDML_SIMD=avx512 / set_backend) bypasses this.
inline constexpr std::size_t kAvx512MinPatterns = 256;

/// One child of a CLV combine, category-resolved. Exactly one of
/// {codes+tip_tab, p} is consulted: a tip child is combined through its
/// 16-code lookup table, an internal child through a P(t)-row dot with its
/// CLV planes.
struct ClvOperand {
  const double* planes = nullptr;    ///< [4][padded] SoA planes
  const std::uint8_t* codes = nullptr;  ///< per-pattern 4-bit codes (tip only)
  const double* p = nullptr;         ///< 16 row-major P(t) entries (internal)
  const double* tip_tab = nullptr;   ///< [4][16] transposed code table (tip)
};

struct KernelTable {
  const char* name;        ///< backend label ("scalar", "sse2", "avx2", "avx512")
  simd::Backend backend;
  simd::Tier tier;         ///< exact (unfused madd) or fast (hardware FMA)
  int width;               ///< lanes per vector

  /// CLV combine over patterns [begin, end): out[s][pat] = left_s(pat) *
  /// right_s(pat) with each factor a tip-table lookup or a P-row dot.
  /// begin/end are multiples of kPatternPad (end may equal padded).
  void (*clv_combine)(std::size_t begin, std::size_t end, std::size_t padded,
                      const ClvOperand& a, const ClvOperand& b, double* out);

  /// Underflow pass over patterns [begin, end) of a whole CLV (planes at
  /// values + (cat * 4 + s) * padded): combines child scale counters,
  /// rescales underflowing patterns across all categories, writes
  /// out_scale[pat], and returns the number of patterns rescaled.
  std::uint64_t (*clv_rescale)(std::size_t begin, std::size_t end,
                               std::size_t padded, std::size_t num_categories,
                               double* values, const std::int32_t* a_scale,
                               const std::int32_t* b_scale,
                               std::int32_t* out_scale);

  /// Eigen-coefficient capture for one category:
  ///   coeff[k][pat] = (prob * dot4(pr row k, a[.][pat]))
  ///                 * dot4(left row k, b[.][pat])
  /// pr/left are 16 row-major doubles; a/b/coeff are [4][padded] planes.
  void (*edge_capture)(std::size_t padded, const double* a_planes,
                       const double* b_planes, const double* pr,
                       const double* left, double prob, double* coeff);

  /// Batched edge_capture: captures `count` edges for one category in a
  /// single pattern-blocked pass — for each block of kPatternBlock patterns
  /// every edge is processed before moving on, so pr/left and any operand
  /// planes shared between edges are still cache-hot when edge e+1 reads
  /// them. Per-edge arithmetic is identical to edge_capture (the
  /// batched-vs-sequential bit-parity contract): coeff[e] receives exactly
  /// what edge_capture(padded, a_planes[e], b_planes[e], ...) would write.
  void (*edge_capture_multi)(std::size_t padded, std::size_t count,
                             const double* const* a_planes,
                             const double* const* b_planes, const double* pr,
                             const double* left, double prob,
                             double* const* coeff);

  /// Per-pattern 4-coefficient dot for one category (exp(lambda_k r t) is
  /// hoisted into e[] by the caller — evaluate() itself is exp-free per
  /// pattern): site[pat] (+)= sum_k coeff[k][pat] * e[k]; with derivs also
  /// site_d1 via lam[k] * e[k] and site_d2 via lam[k]^2 * e[k].
  void (*edge_evaluate)(std::size_t padded, const double* coeff,
                        const double* e, const double* lam, bool accumulate,
                        bool derivs, double* site, double* site_d1,
                        double* site_d2);
};

/// Table for one (backend, tier) pair, or nullptr if that exact pair was
/// not compiled in (no fallback — use active_kernel_table() or
/// kernel_table_for_patterns() for resolving lookups).
const KernelTable* kernel_table(simd::Backend backend,
                                simd::Tier tier = simd::Tier::kExact);

/// Table for simd::active_backend() at simd::active_tier(). A backend
/// without a compiled fast table falls back to its exact table; an
/// uncompiled backend falls back to scalar (always compiled).
const KernelTable& active_kernel_table();

/// active_kernel_table() with the AVX-512 downclock heuristic applied: an
/// auto-resolved (not pinned) AVX-512 backend is demoted to AVX2 when
/// `num_patterns` < kAvx512MinPatterns. Engines resolve their table through
/// this so a run over a small alignment is not taxed with the 512-bit
/// license frequency drop for kernels too short to repay it.
const KernelTable& kernel_table_for_patterns(std::size_t num_patterns);

/// Every exact-tier table compiled into this binary, scalar first. Entries
/// for backends the running CPU lacks are still returned (callers gate on
/// simd::cpu_supports before executing them). Fast-tier tables are excluded
/// — this is the bit-parity set; query them with kernel_table(b, kFast).
std::vector<const KernelTable*> compiled_kernel_tables();

}  // namespace fdml
