// Rooted, possibly multifurcating tree. Used for Newick parsing, consensus
// trees (which are rarely fully resolved) and visualization layouts.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace fdml {

class Tree;

class GeneralTree {
 public:
  struct Node {
    std::string label;          ///< taxon name for leaves; optional otherwise
    double length = 0.0;        ///< length of the edge to the parent
    double support = std::nan("");  ///< e.g. consensus split frequency
    int parent = -1;
    std::vector<int> children;
  };

  GeneralTree() = default;

  /// Creates the root node; returns its id (always 0).
  int make_root(std::string label = {});

  /// Adds a child of `parent`; returns the new node id.
  int add_child(int parent, std::string label = {}, double length = 0.0);

  int root() const { return root_; }
  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }

  bool is_leaf(int id) const { return node(id).children.empty(); }
  std::size_t leaf_count() const;

  /// Leaf ids in left-to-right order.
  std::vector<int> leaves() const;

  /// Depth-first preorder node ids.
  std::vector<int> preorder() const;
  /// Postorder node ids (children before parents).
  std::vector<int> postorder() const;

  /// Maximum root-to-leaf path length (sum of edge lengths).
  double max_depth() const;

  /// Canonical "pivot" normalization (the viewer feature from the paper):
  /// sorts each node's children by the smallest leaf label beneath them, so
  /// two drawings differing only by branch-order reversals become identical.
  void canonicalize();

  /// Converts an unrooted bifurcating Tree into a rooted view, rooting at
  /// the internal node adjacent to the lowest-numbered tip. `names` maps tip
  /// ids to labels.
  static GeneralTree from_tree(const Tree& tree,
                               const std::vector<std::string>& names);

 private:
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace fdml
