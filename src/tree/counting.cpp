#include "tree/counting.hpp"

#include "util/special.hpp"

namespace fdml {

LogNumber count_unrooted_topologies(int num_taxa) {
  if (num_taxa <= 3) return LogNumber::from_value(1.0);
  return LogNumber::from_log(log_double_factorial(2LL * num_taxa - 5));
}

LogNumber count_rooted_topologies(int num_taxa) {
  if (num_taxa <= 2) return LogNumber::from_value(1.0);
  return LogNumber::from_log(log_double_factorial(2LL * num_taxa - 3));
}

int insertion_points(int taxa_in_tree_after_insert) {
  return 2 * taxa_in_tree_after_insert - 5;
}

}  // namespace fdml
