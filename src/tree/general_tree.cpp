#include "tree/general_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "tree/tree.hpp"

namespace fdml {

int GeneralTree::make_root(std::string label) {
  if (!nodes_.empty()) throw std::logic_error("make_root: tree not empty");
  Node node;
  node.label = std::move(label);
  nodes_.push_back(std::move(node));
  root_ = 0;
  return root_;
}

int GeneralTree::add_child(int parent, std::string label, double length) {
  Node node;
  node.label = std::move(label);
  node.length = length;
  node.parent = parent;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  return id;
}

std::size_t GeneralTree::leaf_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node.children.empty()) ++count;
  }
  return count;
}

std::vector<int> GeneralTree::leaves() const {
  std::vector<int> out;
  for (int id : preorder()) {
    if (is_leaf(id)) out.push_back(id);
  }
  return out;
}

std::vector<int> GeneralTree::preorder() const {
  std::vector<int> order;
  if (empty()) return order;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto& kids = node(id).children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

std::vector<int> GeneralTree::postorder() const {
  std::vector<int> order = preorder();
  std::reverse(order.begin(), order.end());
  return order;
}

double GeneralTree::max_depth() const {
  if (empty()) return 0.0;
  std::vector<double> depth(size(), 0.0);
  double best = 0.0;
  for (int id : preorder()) {
    if (id != root_) {
      depth[static_cast<std::size_t>(id)] =
          depth[static_cast<std::size_t>(node(id).parent)] + node(id).length;
    }
    best = std::max(best, depth[static_cast<std::size_t>(id)]);
  }
  return best;
}

void GeneralTree::canonicalize() {
  if (empty()) return;
  // Smallest leaf label in each subtree, computed bottom-up.
  std::vector<std::string> min_label(size());
  for (int id : postorder()) {
    Node& n = node(id);
    if (n.children.empty()) {
      min_label[static_cast<std::size_t>(id)] = n.label;
      continue;
    }
    std::sort(n.children.begin(), n.children.end(), [&](int a, int b) {
      return min_label[static_cast<std::size_t>(a)] <
             min_label[static_cast<std::size_t>(b)];
    });
    min_label[static_cast<std::size_t>(id)] =
        min_label[static_cast<std::size_t>(n.children.front())];
  }
}

GeneralTree GeneralTree::from_tree(const Tree& tree,
                                   const std::vector<std::string>& names) {
  if (tree.tip_count() < 3) {
    throw std::invalid_argument("from_tree: need at least 3 tips");
  }
  int lowest_tip = -1;
  for (int t = 0; t < tree.num_taxa(); ++t) {
    if (tree.contains(t)) {
      lowest_tip = t;
      break;
    }
  }
  const int root_node = tree.neighbor(lowest_tip, 0);

  GeneralTree out;
  out.make_root();

  // Iterative DFS copying the unrooted tree as rooted at root_node.
  struct Frame {
    int tree_node;
    int tree_from;
    int out_parent;
  };
  std::vector<Frame> stack{{root_node, -1, -1}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    int out_id;
    if (f.out_parent < 0) {
      out_id = out.root();
    } else {
      const double length = tree.length(f.tree_from, f.tree_node);
      std::string label;
      if (tree.is_tip(f.tree_node)) {
        label = names.at(static_cast<std::size_t>(f.tree_node));
      }
      out_id = out.add_child(f.out_parent, std::move(label), length);
    }
    for (int s = 2; s >= 0; --s) {
      const int nbr = tree.neighbor(f.tree_node, s);
      if (nbr == Tree::kNoNode || nbr == f.tree_from) continue;
      stack.push_back({nbr, f.tree_node, out_id});
    }
  }
  return out;
}

}  // namespace fdml
