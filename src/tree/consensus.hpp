// Consensus trees over multiple ML results.
//
// The paper's workflow analyzes tens to thousands of random taxon-addition
// orders and compares the best resulting trees via a consensus (majority
// rule consensus of maximum likelihood trees; Jermiin, Olsen & Easteal
// 1997). Consensus trees are generally multifurcating, so the result is a
// GeneralTree with per-node support = split frequency.
#pragma once

#include <vector>

#include "tree/general_tree.hpp"
#include "tree/splits.hpp"
#include "tree/tree.hpp"

namespace fdml {

struct ConsensusOptions {
  /// A split enters the consensus when its frequency exceeds this threshold.
  /// 0.5 = majority rule; 1.0 - epsilon behaves as strict consensus.
  double threshold = 0.5;
};

struct SplitFrequency {
  Split split;
  double frequency;
};

/// Tallies nontrivial split frequencies across trees (all trees must cover
/// the same taxa). Sorted by descending frequency.
std::vector<SplitFrequency> split_frequencies(const std::vector<Tree>& trees);

/// Majority-rule (or threshold) consensus. Node support values carry the
/// split frequencies. The tree is rooted at the lowest-id taxon's attachment
/// for display purposes.
GeneralTree consensus_tree(const std::vector<Tree>& trees,
                           const std::vector<std::string>& names,
                           const ConsensusOptions& options = {});

/// Strict consensus: only splits present in every input tree.
GeneralTree strict_consensus(const std::vector<Tree>& trees,
                             const std::vector<std::string>& names);

}  // namespace fdml
