#include "tree/consensus.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace fdml {

namespace {

// Mean length of each nontrivial split's edge, across the trees containing
// that split; consensus branch lengths are these means (leaf edges are
// averaged per taxon directly).
struct SplitStats {
  double frequency = 0.0;
  double mean_length = 0.0;
};

void accumulate_split_lengths(const Tree& tree, int node, int from, int ref,
                              const std::vector<std::uint64_t>& full_mask,
                              std::map<std::vector<std::uint64_t>,
                                       std::pair<int, double>>& acc,
                              std::vector<std::uint64_t>& mask_out) {
  std::vector<std::uint64_t> mask(full_mask.size(), 0);
  if (tree.is_tip(node)) {
    mask[static_cast<std::size_t>(node) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(node) % 64);
  } else {
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(node, s);
      if (nbr == Tree::kNoNode || nbr == from) continue;
      std::vector<std::uint64_t> child;
      accumulate_split_lengths(tree, nbr, node, ref, full_mask, acc, child);
      for (std::size_t w = 0; w < mask.size(); ++w) mask[w] |= child[w];
    }
  }
  if (from >= 0) {
    std::vector<std::uint64_t> canon = mask;
    const bool has_ref = (canon[static_cast<std::size_t>(ref) / 64] >>
                          (static_cast<std::size_t>(ref) % 64)) &
                         1;
    if (has_ref) {
      for (std::size_t w = 0; w < canon.size(); ++w) {
        canon[w] = ~canon[w] & full_mask[w];
      }
    }
    int count = 0;
    for (std::uint64_t w : canon) count += __builtin_popcountll(w);
    if (count >= 2 && tree.tip_count() - count >= 2) {
      auto& entry = acc[canon];
      entry.first += 1;
      entry.second += tree.length(from, node);
    }
  }
  mask_out = std::move(mask);
}

}  // namespace

std::vector<SplitFrequency> split_frequencies(const std::vector<Tree>& trees) {
  if (trees.empty()) throw std::invalid_argument("split_frequencies: no trees");
  const auto taxa = trees.front().tips();
  for (const Tree& tree : trees) {
    if (tree.tips() != taxa) {
      throw std::invalid_argument("split_frequencies: taxon sets differ");
    }
  }
  std::map<Split, int> counts;
  for (const Tree& tree : trees) {
    for (const Split& split : tree_splits(tree)) counts[split] += 1;
  }
  std::vector<SplitFrequency> out;
  out.reserve(counts.size());
  for (const auto& [split, count] : counts) {
    out.push_back({split, static_cast<double>(count) / trees.size()});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.frequency > b.frequency;
  });
  return out;
}

GeneralTree consensus_tree(const std::vector<Tree>& trees,
                           const std::vector<std::string>& names,
                           const ConsensusOptions& options) {
  if (trees.empty()) throw std::invalid_argument("consensus_tree: no trees");
  const auto taxa = trees.front().tips();
  const int num_taxa = trees.front().num_taxa();
  const int ref = taxa.front();

  // Tally split frequency and mean edge length.
  const std::size_t words = (static_cast<std::size_t>(num_taxa) + 63) / 64;
  std::vector<std::uint64_t> full_mask(words, 0);
  for (int t : taxa) {
    full_mask[static_cast<std::size_t>(t) / 64] |=
        std::uint64_t{1} << (static_cast<std::size_t>(t) % 64);
  }
  std::map<std::vector<std::uint64_t>, std::pair<int, double>> acc;
  std::map<int, double> leaf_length_sums;
  for (const Tree& tree : trees) {
    const int root = tree.any_internal();
    std::vector<std::uint64_t> scratch;
    accumulate_split_lengths(tree, root, -1, ref, full_mask, acc, scratch);
    for (int t : taxa) leaf_length_sums[t] += tree.length(t, tree.neighbor(t, 0));
  }

  struct Cluster {
    std::vector<std::uint64_t> mask;
    double frequency;
    double mean_length;
    int node_id = -1;
  };
  std::vector<Cluster> clusters;
  for (const auto& [mask, stat] : acc) {
    const double freq = static_cast<double>(stat.first) / trees.size();
    if (freq > options.threshold) {
      clusters.push_back({mask, freq, stat.second / stat.first, -1});
    }
  }
  auto popcount = [](const std::vector<std::uint64_t>& mask) {
    int n = 0;
    for (std::uint64_t w : mask) n += __builtin_popcountll(w);
    return n;
  };
  std::sort(clusters.begin(), clusters.end(), [&](const auto& a, const auto& b) {
    return popcount(a.mask) > popcount(b.mask);
  });

  auto subset = [](const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
    for (std::size_t w = 0; w < a.size(); ++w) {
      if ((a[w] & ~b[w]) != 0) return false;
    }
    return true;
  };

  GeneralTree out;
  out.make_root();
  // Parent of each cluster = smallest selected cluster strictly containing
  // it; clusters are sorted by descending size so scanning backwards from
  // the current index finds the tightest container.
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    int parent = out.root();
    for (std::size_t j = i; j-- > 0;) {
      if (subset(clusters[i].mask, clusters[j].mask) &&
          clusters[i].mask != clusters[j].mask) {
        parent = clusters[j].node_id;
        break;
      }
    }
    clusters[i].node_id = out.add_child(parent, "", clusters[i].mean_length);
    out.node(clusters[i].node_id).support = clusters[i].frequency;
  }
  // Attach leaves to the tightest cluster containing them (root otherwise).
  for (int t : taxa) {
    const double mean_leaf = leaf_length_sums[t] / trees.size();
    if (t == ref) {
      out.add_child(out.root(), names.at(static_cast<std::size_t>(t)), mean_leaf);
      continue;
    }
    int parent = out.root();
    for (std::size_t j = clusters.size(); j-- > 0;) {
      // Smallest cluster containing taxon t: scan from smallest upward.
      const auto& mask = clusters[j].mask;
      if ((mask[static_cast<std::size_t>(t) / 64] >>
           (static_cast<std::size_t>(t) % 64)) &
          1) {
        parent = clusters[j].node_id;
        break;
      }
    }
    out.add_child(parent, names.at(static_cast<std::size_t>(t)), mean_leaf);
  }
  out.canonicalize();
  return out;
}

GeneralTree strict_consensus(const std::vector<Tree>& trees,
                             const std::vector<std::string>& names) {
  ConsensusOptions options;
  options.threshold = 1.0 - 1e-9;
  return consensus_tree(trees, names, options);
}

}  // namespace fdml
