#include "tree/newick.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace fdml {

namespace {

std::string format_length(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

void write_general(const GeneralTree& tree, int id, int precision,
                   std::string& out) {
  const auto& node = tree.node(id);
  if (!node.children.empty()) {
    out.push_back('(');
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) out.push_back(',');
      write_general(tree, node.children[i], precision, out);
    }
    out.push_back(')');
    if (!std::isnan(node.support)) {
      out += format_length(node.support, 6);
    } else {
      out += node.label;
    }
  } else {
    out += node.label;
  }
  if (id != tree.root()) {
    out.push_back(':');
    out += format_length(node.length, precision);
  }
}

void write_unrooted(const Tree& tree, int node, int from,
                    const std::vector<std::string>& names, int precision,
                    std::string& out) {
  if (tree.is_tip(node)) {
    out += names.at(static_cast<std::size_t>(node));
  } else {
    out.push_back('(');
    bool first = true;
    for (int s = 0; s < 3; ++s) {
      const int nbr = tree.neighbor(node, s);
      if (nbr == Tree::kNoNode || nbr == from) continue;
      if (!first) out.push_back(',');
      first = false;
      write_unrooted(tree, nbr, node, names, precision, out);
    }
    out.push_back(')');
  }
  if (from >= 0) {
    out.push_back(':');
    out += format_length(tree.length(from, node), precision);
  }
}

class NewickLexer {
 public:
  explicit NewickLexer(const std::string& text) : text_(text) {}

  char peek() {
    skip();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    skip();
    if (pos_ >= text_.size()) throw std::runtime_error("Newick: unexpected end");
    return text_[pos_++];
  }

  void expect(char c) {
    const char got = take();
    if (got != c) {
      throw std::runtime_error(std::string("Newick: expected '") + c +
                               "' but found '" + got + "'");
    }
  }

  std::string label() {
    skip();
    std::string out;
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      while (pos_ < text_.size()) {
        if (text_[pos_] == '\'') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
            out.push_back('\'');
            pos_ += 2;
          } else {
            ++pos_;
            return out;
          }
        } else {
          out.push_back(text_[pos_++]);
        }
      }
      throw std::runtime_error("Newick: unterminated quoted label");
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '(' || c == ')' || c == ',' || c == ':' || c == ';' ||
          c == '[' || std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

  double number() {
    skip();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) throw std::runtime_error("Newick: expected a number");
    pos_ += static_cast<std::size_t>(end - start);
    return value;
  }

 private:
  void skip() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '[') {
        // Bracketed comment, possibly nested.
        int depth = 0;
        while (pos_ < text_.size()) {
          if (text_[pos_] == '[') ++depth;
          if (text_[pos_] == ']') {
            --depth;
            ++pos_;
            if (depth == 0) break;
            continue;
          }
          ++pos_;
        }
        if (depth != 0) throw std::runtime_error("Newick: unterminated comment");
        continue;
      }
      return;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void parse_clade(NewickLexer& lexer, GeneralTree& tree, int node_id) {
  if (lexer.peek() == '(') {
    lexer.expect('(');
    for (;;) {
      const int child = tree.add_child(node_id);
      parse_clade(lexer, tree, child);
      const char c = lexer.take();
      if (c == ',') continue;
      if (c == ')') break;
      throw std::runtime_error("Newick: expected ',' or ')'");
    }
    // Optional internal label: numeric labels are stored as support.
    const std::string label = lexer.label();
    if (!label.empty()) {
      char* end = nullptr;
      const double support = std::strtod(label.c_str(), &end);
      if (end == label.c_str() + label.size()) {
        tree.node(node_id).support = support;
      } else {
        tree.node(node_id).label = label;
      }
    }
  } else {
    const std::string label = lexer.label();
    if (label.empty()) throw std::runtime_error("Newick: missing leaf label");
    tree.node(node_id).label = label;
  }
  if (lexer.peek() == ':') {
    lexer.expect(':');
    tree.node(node_id).length = lexer.number();
  }
}

}  // namespace

std::string to_newick(const GeneralTree& tree, int precision) {
  if (tree.empty()) return ";";
  std::string out;
  write_general(tree, tree.root(), precision, out);
  out.push_back(';');
  return out;
}

std::string to_newick(const Tree& tree, const std::vector<std::string>& names,
                      int precision) {
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) throw std::invalid_argument("to_newick: empty tree");
  std::string out;
  write_unrooted(tree, root, -1, names, precision, out);
  out.push_back(';');
  return out;
}

GeneralTree parse_newick(const std::string& text) {
  NewickLexer lexer(text);
  GeneralTree tree;
  tree.make_root();
  parse_clade(lexer, tree, tree.root());
  if (lexer.peek() == ';') lexer.expect(';');
  return tree;
}

Tree tree_from_newick(const std::string& text,
                      const std::vector<std::string>& names) {
  const GeneralTree general = parse_newick(text);

  std::map<std::string, int> taxon_of;
  for (std::size_t i = 0; i < names.size(); ++i) {
    taxon_of[names[i]] = static_cast<int>(i);
  }

  Tree tree(static_cast<int>(names.size()));

  // Recursive conversion returning the Tree node id for a GeneralTree clade.
  auto convert = [&](auto&& self, int gt_id) -> int {
    const auto& node = general.node(gt_id);
    if (node.children.empty()) {
      const auto it = taxon_of.find(node.label);
      if (it == taxon_of.end()) {
        throw std::runtime_error("Newick: unknown taxon '" + node.label + "'");
      }
      return it->second;
    }
    if (node.children.size() != 2) {
      throw std::runtime_error("Newick: non-bifurcating internal node");
    }
    const int internal = tree.allocate_internal_node();
    for (int child_gt : node.children) {
      const int child = self(self, child_gt);
      tree.add_edge(internal, child, general.node(child_gt).length);
    }
    return internal;
  };

  const auto& root = general.node(general.root());
  if (root.children.size() == 3) {
    const int center = tree.allocate_internal_node();
    for (int child_gt : root.children) {
      const int child = convert(convert, child_gt);
      tree.add_edge(center, child, general.node(child_gt).length);
    }
  } else if (root.children.size() == 2) {
    // Rooted input: suppress the degree-2 root, fusing its two edges.
    const int a = convert(convert, root.children[0]);
    const int b = convert(convert, root.children[1]);
    const double joined = general.node(root.children[0]).length +
                          general.node(root.children[1]).length;
    tree.add_edge(a, b, std::max(joined, kMinBranchLength));
  } else {
    throw std::runtime_error("Newick: root must have 2 or 3 children");
  }
  tree.check_valid();
  return tree;
}

}  // namespace fdml
