// Counting tree topologies. The paper motivates ML search difficulty with
// the number of unrooted bifurcating trees on n taxa,
// (2n-5)! / ((n-3)! 2^(n-3)) = (2n-5)!! — e.g. 2.8e74 for 50 taxa,
// 1.7e182 for 100, 4.2e284 for 150 (Felsenstein 1978).
#pragma once

#include "util/lognumber.hpp"

namespace fdml {

/// Number of distinct unrooted bifurcating topologies on n labeled taxa:
/// (2n-5)!! for n >= 3; 1 for n <= 3.
LogNumber count_unrooted_topologies(int num_taxa);

/// Number of distinct rooted bifurcating topologies: (2n-3)!!.
LogNumber count_rooted_topologies(int num_taxa);

/// Number of branches a new (i-th) taxon can be inserted into during
/// stepwise addition: 2i-5 (the paper's step 3).
int insertion_points(int taxa_in_tree_after_insert);

}  // namespace fdml
