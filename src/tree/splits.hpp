// Bipartitions (splits), topology hashing, and Robinson–Foulds distance.
//
// Every edge of an unrooted tree bipartitions the taxa. Nontrivial splits
// (both sides >= 2 taxa) characterize the topology: two trees are
// topologically identical iff their split sets are equal. The consensus
// builder, the rearrangement deduplicator, and the tree viewer's
// "topologically different vs merely redrawn" check all run on splits.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace fdml {

/// One side of a bipartition, as a bitset over taxon ids, canonically
/// oriented: the side NOT containing the lowest-numbered taxon present.
class Split {
 public:
  Split(std::vector<std::uint64_t> bits, int num_taxa);

  bool test(int taxon) const {
    return (bits_[static_cast<std::size_t>(taxon) / 64] >>
            (static_cast<std::size_t>(taxon) % 64)) &
           1;
  }
  int count() const;
  const std::vector<std::uint64_t>& bits() const { return bits_; }
  int num_taxa() const { return num_taxa_; }

  /// True if this split's taxon set is a subset of `other`'s.
  bool subset_of(const Split& other) const;
  /// Compatibility: splits are compatible iff they can coexist in one tree.
  bool compatible_with(const Split& other) const;

  auto operator<=>(const Split& other) const { return bits_ <=> other.bits_; }
  bool operator==(const Split& other) const { return bits_ == other.bits_; }

 private:
  std::vector<std::uint64_t> bits_;
  int num_taxa_;
};

/// All nontrivial splits of a tree, sorted. Only taxa present in the tree
/// participate; canonical orientation uses the lowest present taxon.
std::vector<Split> tree_splits(const Tree& tree);

/// Trivial + nontrivial splits (one per edge).
std::vector<Split> tree_splits_all(const Tree& tree);

/// Robinson–Foulds distance: the size of the symmetric difference of the
/// two trees' nontrivial split sets. Trees must cover the same taxa.
int robinson_foulds(const Tree& a, const Tree& b);

/// Normalized RF in [0, 1] (divides by 2(n-3), the maximum).
double robinson_foulds_normalized(const Tree& a, const Tree& b);

/// Order-independent hash of the topology (ignores branch lengths). Used by
/// the search to deduplicate rearrangement candidates — the paper reports
/// (2i-6) *topologically different* trees per default rearrangement round.
std::uint64_t topology_hash(const Tree& tree);

}  // namespace fdml
