// Newick tree serialization.
//
// The parallel runtime serializes candidate topologies as Newick strings
// (the paper's workers exchange "trees, branch lengths, and likelihood
// values"), so the writer supports full double round-trip precision.
#pragma once

#include <string>
#include <vector>

#include "tree/general_tree.hpp"
#include "tree/tree.hpp"

namespace fdml {

/// Serializes a rooted GeneralTree. `precision` is the number of significant
/// digits for branch lengths; 17 guarantees double round-trip. Support
/// values, when present, are written as internal node labels.
std::string to_newick(const GeneralTree& tree, int precision = 10);

/// Serializes an unrooted bifurcating tree as a trifurcation at an internal
/// node. Tip ids are mapped through `names`.
std::string to_newick(const Tree& tree, const std::vector<std::string>& names,
                      int precision = 10);

/// Parses a Newick string into a rooted GeneralTree. Accepts unquoted and
/// single-quoted labels, branch lengths, nested comments in [brackets], and
/// numeric internal labels (stored as support values).
GeneralTree parse_newick(const std::string& text);

/// Parses a Newick string into an unrooted bifurcating Tree over the given
/// taxon namespace. A degree-2 root is suppressed. Throws if the topology is
/// not bifurcating or a leaf label is not in `names`.
Tree tree_from_newick(const std::string& text,
                      const std::vector<std::string>& names);

}  // namespace fdml
