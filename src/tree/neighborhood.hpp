// Enumeration of tree modifications used by the fastDNAml search:
//  * insertion points for stepwise addition (every branch; 2i-5 of them when
//    the i-th taxon goes in), and
//  * subtree rearrangements "crossing" up to k internal vertices (the
//    paper's steps 4 and 5; k=1 yields the classic (2i-6) local
//    rearrangements, larger k searches more thoroughly and — per the paper —
//    improves parallel scalability by putting more work between barriers).
#pragma once

#include <utility>
#include <vector>

#include "tree/tree.hpp"

namespace fdml {

/// One subtree-regraft move: prune the subtree hanging off `junction` on the
/// `subtree_neighbor` side, then reinsert it into edge (target_u, target_v).
struct SprMove {
  int junction;
  int subtree_neighbor;
  int target_u;
  int target_v;
};

/// Every branch of the tree (candidate insertion points for a new taxon).
/// Equivalent to tree.edges(); named for intent at call sites.
std::vector<std::pair<int, int>> insertion_edges(const Tree& tree);

/// All subtree rearrangements that cross between 1 and `max_cross` vertices.
/// For every (junction, subtree) pair, target edges are found by walking
/// outward from the edge that closes when the subtree is pruned, crossing at
/// most `max_cross` vertices. The original position is excluded. Moves can
/// produce duplicate topologies across different subtree choices; the search
/// layer deduplicates by topology hash.
std::vector<SprMove> rearrangement_moves(const Tree& tree, int max_cross);

/// Target edges for rearranging one specific subtree (helper of the above;
/// exposed for tests).
std::vector<std::pair<int, int>> rearrangement_targets(const Tree& tree,
                                                       int junction,
                                                       int subtree_neighbor,
                                                       int max_cross);

}  // namespace fdml
