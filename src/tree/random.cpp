#include "tree/random.hpp"

#include <algorithm>
#include <stdexcept>

namespace fdml {

namespace {

double draw_length(Rng& rng, const RandomTreeOptions& options) {
  const double t = rng.exponential(1.0 / options.mean_branch_length);
  return std::clamp(t, options.min_branch_length, kMaxBranchLength);
}

}  // namespace

Tree random_tree(int num_taxa, Rng& rng, const RandomTreeOptions& options) {
  if (num_taxa < 3) throw std::invalid_argument("random_tree: need >= 3 taxa");
  Tree tree(num_taxa);
  std::vector<int> order(static_cast<std::size_t>(num_taxa));
  for (int t = 0; t < num_taxa; ++t) order[static_cast<std::size_t>(t)] = t;
  rng.shuffle(order);
  tree.make_triplet(order[0], order[1], order[2], draw_length(rng, options),
                    draw_length(rng, options), draw_length(rng, options));
  for (int i = 3; i < num_taxa; ++i) {
    const auto edges = tree.edges();
    const auto& [u, v] = edges[rng.below(edges.size())];
    tree.insert_tip(order[static_cast<std::size_t>(i)], u, v,
                    draw_length(rng, options));
  }
  return tree;
}

Tree random_yule_tree(int num_taxa, Rng& rng, const RandomTreeOptions& options) {
  if (num_taxa < 3) throw std::invalid_argument("random_yule_tree: need >= 3 taxa");
  Tree tree(num_taxa);
  tree.make_triplet(0, 1, 2, draw_length(rng, options), draw_length(rng, options),
                    draw_length(rng, options));
  // Pure birth: each new taxon splits off a uniformly chosen *pendant* edge,
  // i.e. an existing leaf lineage bifurcates.
  for (int tip = 3; tip < num_taxa; ++tip) {
    std::vector<int> extant = tree.tips();
    const int chosen = extant[rng.below(extant.size())];
    const int parent = tree.neighbor(chosen, 0);
    tree.insert_tip(tip, chosen, parent, draw_length(rng, options));
  }
  return tree;
}

}  // namespace fdml
