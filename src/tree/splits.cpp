#include "tree/splits.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace fdml {

namespace {

int lowest_present_taxon(const Tree& tree) {
  for (int t = 0; t < tree.num_taxa(); ++t) {
    if (tree.contains(t)) return t;
  }
  throw std::invalid_argument("splits: empty tree");
}

std::size_t words_for(int num_taxa) {
  return (static_cast<std::size_t>(num_taxa) + 63) / 64;
}

void set_bit(std::vector<std::uint64_t>& bits, int taxon) {
  bits[static_cast<std::size_t>(taxon) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(taxon) % 64);
}

// Collects splits via DFS: the mask of each directed edge (parent -> child)
// is the union of the child's subtree tips.
struct SplitCollector {
  const Tree& tree;
  std::vector<std::uint64_t> full_mask;
  int reference_taxon;
  bool include_trivial;
  std::vector<Split> out;

  std::vector<std::uint64_t> walk(int node, int from) {
    std::vector<std::uint64_t> mask(words_for(tree.num_taxa()), 0);
    if (tree.is_tip(node)) {
      set_bit(mask, node);
    } else {
      for (int s = 0; s < 3; ++s) {
        const int nbr = tree.neighbor(node, s);
        if (nbr == Tree::kNoNode || nbr == from) continue;
        const auto child = walk(nbr, node);
        for (std::size_t w = 0; w < mask.size(); ++w) mask[w] |= child[w];
      }
    }
    if (from >= 0) emit(mask);
    return mask;
  }

  void emit(std::vector<std::uint64_t> mask) {
    // Canonical orientation: complement if the reference taxon is inside.
    const bool has_ref = (mask[static_cast<std::size_t>(reference_taxon) / 64] >>
                          (static_cast<std::size_t>(reference_taxon) % 64)) &
                         1;
    if (has_ref) {
      for (std::size_t w = 0; w < mask.size(); ++w) {
        mask[w] = ~mask[w] & full_mask[w];
      }
    }
    int count = 0;
    for (std::uint64_t w : mask) count += std::popcount(w);
    const int total = tree.tip_count();
    if (!include_trivial && (count < 2 || total - count < 2)) return;
    if (count == 0) return;  // the full split (edge to the reference tip)
    out.emplace_back(std::move(mask), tree.num_taxa());
  }
};

std::vector<Split> collect(const Tree& tree, bool include_trivial) {
  const int ref = lowest_present_taxon(tree);
  SplitCollector collector{tree,
                           std::vector<std::uint64_t>(words_for(tree.num_taxa()), 0),
                           ref,
                           include_trivial,
                           {}};
  for (int t : tree.tips()) set_bit(collector.full_mask, t);
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) return {};
  collector.walk(root, -1);
  std::sort(collector.out.begin(), collector.out.end());
  collector.out.erase(std::unique(collector.out.begin(), collector.out.end()),
                      collector.out.end());
  return std::move(collector.out);
}

}  // namespace

Split::Split(std::vector<std::uint64_t> bits, int num_taxa)
    : bits_(std::move(bits)), num_taxa_(num_taxa) {}

int Split::count() const {
  int n = 0;
  for (std::uint64_t w : bits_) n += std::popcount(w);
  return n;
}

bool Split::subset_of(const Split& other) const {
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    if ((bits_[w] & ~other.bits_[w]) != 0) return false;
  }
  return true;
}

bool Split::compatible_with(const Split& other) const {
  // With both splits oriented away from the reference taxon, compatibility
  // holds iff one side is a subset of the other or they are disjoint.
  bool disjoint = true;
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    if ((bits_[w] & other.bits_[w]) != 0) disjoint = false;
  }
  return disjoint || subset_of(other) || other.subset_of(*this);
}

std::vector<Split> tree_splits(const Tree& tree) { return collect(tree, false); }

std::vector<Split> tree_splits_all(const Tree& tree) { return collect(tree, true); }

int robinson_foulds(const Tree& a, const Tree& b) {
  if (a.tips() != b.tips()) {
    throw std::invalid_argument("robinson_foulds: trees cover different taxa");
  }
  const auto sa = tree_splits(a);
  const auto sb = tree_splits(b);
  std::size_t shared = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<int>(sa.size() + sb.size() - 2 * shared);
}

double robinson_foulds_normalized(const Tree& a, const Tree& b) {
  const int n = a.tip_count();
  const int max_rf = 2 * std::max(0, n - 3);
  if (max_rf == 0) return 0.0;
  return static_cast<double>(robinson_foulds(a, b)) / max_rf;
}

std::uint64_t topology_hash(const Tree& tree) {
  std::uint64_t hash = 0x9e3779b97f4a7c15ULL ^
                       static_cast<std::uint64_t>(tree.tip_count());
  for (const Split& split : tree_splits(tree)) {
    // FNV-1a over the split words, combined order-independently by addition
    // (the split list is already sorted, but addition keeps this robust).
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t w : split.bits()) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (w >> (8 * byte)) & 0xff;
        h *= 1099511628211ULL;
      }
    }
    hash += h;
  }
  return hash;
}

}  // namespace fdml
