#include "tree/tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fdml {

Tree::Tree(int num_taxa) : num_taxa_(num_taxa) {
  if (num_taxa < 3) throw std::invalid_argument("Tree needs capacity >= 3 taxa");
  // Tips [0, T) plus up to T-2 internal nodes.
  nodes_.resize(static_cast<std::size_t>(2 * num_taxa - 2));
  free_internals_.reserve(static_cast<std::size_t>(num_taxa - 2));
  for (int node = max_nodes() - 1; node >= num_taxa_; --node) {
    free_internals_.push_back(node);
  }
}

std::vector<int> Tree::tips() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(tip_count_));
  for (int t = 0; t < num_taxa_; ++t) {
    if (contains(t)) out.push_back(t);
  }
  return out;
}

int Tree::find_slot(int u, int v) const {
  const Node& node = nodes_[u];
  for (int s = 0; s < 3; ++s) {
    if (node.adj[s] == v) return s;
  }
  return -1;
}

double Tree::length(int u, int v) const {
  const int slot = find_slot(u, v);
  if (slot < 0) throw std::logic_error("length: no edge " + std::to_string(u) +
                                       "-" + std::to_string(v));
  return nodes_[u].len[slot];
}

void Tree::set_length(int u, int v, double t) {
  const int su = find_slot(u, v);
  const int sv = find_slot(v, u);
  if (su < 0 || sv < 0) {
    throw std::logic_error("set_length: no edge " + std::to_string(u) + "-" +
                           std::to_string(v));
  }
  nodes_[u].len[su] = t;
  nodes_[v].len[sv] = t;
}

int Tree::allocate_internal() {
  if (free_internals_.empty()) throw std::logic_error("internal node pool exhausted");
  const int node = free_internals_.back();
  free_internals_.pop_back();
  return node;
}

void Tree::free_internal(int node) { free_internals_.push_back(node); }

void Tree::link(int u, int v, double t) {
  for (int* end : {&u, &v}) {
    Node& node = nodes_[*end];
    const int other = (*end == u) ? v : u;
    int slot = -1;
    for (int s = 0; s < 3; ++s) {
      if (node.adj[s] == kNoNode) {
        slot = s;
        break;
      }
    }
    if (slot < 0) throw std::logic_error("link: node has no free slot");
    if (is_tip(*end) && slot != 0) throw std::logic_error("link: tip already linked");
    node.adj[slot] = other;
    node.len[slot] = t;
    ++node.degree;
  }
}

void Tree::unlink(int u, int v) {
  for (const auto& [a, b] : {std::pair{u, v}, std::pair{v, u}}) {
    const int slot = find_slot(a, b);
    if (slot < 0) throw std::logic_error("unlink: missing edge");
    nodes_[a].adj[slot] = kNoNode;
    nodes_[a].len[slot] = 0.0;
    --nodes_[a].degree;
  }
}

int Tree::make_triplet(int a, int b, int c, double la, double lb, double lc) {
  if (tip_count_ != 0) throw std::logic_error("make_triplet: tree not empty");
  for (int tip : {a, b, c}) {
    if (!is_tip(tip)) throw std::invalid_argument("make_triplet: not a tip id");
  }
  const int center = allocate_internal();
  link(a, center, la);
  link(b, center, lb);
  link(c, center, lc);
  tip_count_ = 3;
  return center;
}

int Tree::insert_tip(int tip, int u, int v, double tip_length,
                     double split_fraction) {
  if (!is_tip(tip) || contains(tip)) {
    throw std::invalid_argument("insert_tip: invalid or already-placed tip");
  }
  const double old = length(u, v);
  const int middle = allocate_internal();
  unlink(u, v);
  const double left = std::max(kMinBranchLength, old * split_fraction);
  const double right = std::max(kMinBranchLength, old - old * split_fraction);
  link(u, middle, left);
  link(middle, v, right);
  link(tip, middle, tip_length);
  ++tip_count_;
  return middle;
}

void Tree::remove_tip(int tip) {
  if (!is_tip(tip) || !contains(tip)) throw std::invalid_argument("remove_tip");
  if (tip_count_ <= 3) throw std::logic_error("remove_tip: tree would collapse");
  const int middle = neighbor(tip, 0);
  // Identify middle's other two neighbors.
  int a = kNoNode;
  int b = kNoNode;
  for (int s = 0; s < 3; ++s) {
    const int nbr = nodes_[middle].adj[s];
    if (nbr == tip || nbr == kNoNode) continue;
    (a == kNoNode ? a : b) = nbr;
  }
  const double joined = length(a, middle) + length(middle, b);
  unlink(tip, middle);
  unlink(a, middle);
  unlink(middle, b);
  link(a, b, joined);
  free_internal(middle);
  --tip_count_;
}

Tree::SprHandle Tree::prune_subtree(int junction, int subtree_neighbor) {
  if (is_tip(junction)) throw std::invalid_argument("prune_subtree: junction must be internal");
  if (find_slot(junction, subtree_neighbor) < 0) {
    throw std::invalid_argument("prune_subtree: subtree_neighbor not adjacent");
  }
  SprHandle handle;
  handle.junction = junction;
  handle.subtree = subtree_neighbor;
  for (int s = 0; s < 3; ++s) {
    const int nbr = nodes_[junction].adj[s];
    if (nbr == subtree_neighbor || nbr == kNoNode) continue;
    if (handle.left == kNoNode) {
      handle.left = nbr;
      handle.left_length = nodes_[junction].len[s];
    } else {
      handle.right = nbr;
      handle.right_length = nodes_[junction].len[s];
    }
  }
  unlink(junction, handle.left);
  unlink(junction, handle.right);
  link(handle.left, handle.right, handle.left_length + handle.right_length);
  return handle;
}

Tree::GraftUndo Tree::regraft(const SprHandle& handle, int u, int v,
                              double split_fraction) {
  const double old = length(u, v);
  unlink(u, v);
  const double left = std::max(kMinBranchLength, old * split_fraction);
  const double right = std::max(kMinBranchLength, old - old * split_fraction);
  link(u, handle.junction, left);
  link(handle.junction, v, right);
  return GraftUndo{u, v, old};
}

void Tree::undo_regraft(const SprHandle& handle, const GraftUndo& undo) {
  unlink(undo.u, handle.junction);
  unlink(handle.junction, undo.v);
  link(undo.u, undo.v, undo.original_length);
}

void Tree::regraft_back(const SprHandle& handle) {
  unlink(handle.left, handle.right);
  link(handle.left, handle.junction, handle.left_length);
  link(handle.junction, handle.right, handle.right_length);
}

void Tree::add_edge(int u, int v, double t) {
  for (int end : {u, v}) {
    if (is_tip(end) && !contains(end)) ++tip_count_;
  }
  link(u, v, t);
}

std::vector<std::pair<int, int>> Tree::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(std::max(0, num_edges())));
  for (int u = 0; u < max_nodes(); ++u) {
    for (int s = 0; s < 3; ++s) {
      const int v = nodes_[u].adj[s];
      if (v > u) out.emplace_back(u, v);
    }
  }
  return out;
}

int Tree::num_edges() const {
  return tip_count_ >= 3 ? 2 * tip_count_ - 3 : (tip_count_ == 2 ? 1 : 0);
}

int Tree::any_internal() const {
  for (int node = num_taxa_; node < max_nodes(); ++node) {
    if (contains(node)) return node;
  }
  return kNoNode;
}

void Tree::collect_subtree_tips(int node, int from, std::vector<int>& out) const {
  if (is_tip(node)) {
    out.push_back(node);
    return;
  }
  for (int s = 0; s < 3; ++s) {
    const int nbr = nodes_[node].adj[s];
    if (nbr == kNoNode || nbr == from) continue;
    collect_subtree_tips(nbr, node, out);
  }
}

void Tree::check_valid() const {
  int tips_seen = 0;
  int internals_seen = 0;
  for (int node = 0; node < max_nodes(); ++node) {
    const Node& n = nodes_[node];
    int live = 0;
    for (int s = 0; s < 3; ++s) {
      if (n.adj[s] == kNoNode) continue;
      ++live;
      const int back = find_slot(n.adj[s], node);
      if (back < 0) throw std::logic_error("check_valid: asymmetric adjacency");
      if (nodes_[n.adj[s]].len[back] != n.len[s]) {
        throw std::logic_error("check_valid: asymmetric branch length");
      }
      if (n.len[s] < 0.0) throw std::logic_error("check_valid: negative length");
    }
    if (live != n.degree) throw std::logic_error("check_valid: degree mismatch");
    if (n.degree == 0) continue;
    if (is_tip(node)) {
      if (n.degree != 1) throw std::logic_error("check_valid: tip degree != 1");
      ++tips_seen;
    } else {
      if (n.degree != 3) throw std::logic_error("check_valid: internal degree != 3");
      ++internals_seen;
    }
  }
  if (tips_seen != tip_count_) throw std::logic_error("check_valid: tip count");
  if (tips_seen >= 3 && internals_seen != tips_seen - 2) {
    throw std::logic_error("check_valid: internal node count");
  }
  if (tips_seen >= 3) {
    // Connectivity: walk from one tip, count reachable nodes.
    std::vector<int> stack;
    std::vector<char> seen(static_cast<std::size_t>(max_nodes()), 0);
    int start = -1;
    for (int t = 0; t < num_taxa_; ++t) {
      if (contains(t)) {
        start = t;
        break;
      }
    }
    stack.push_back(start);
    seen[static_cast<std::size_t>(start)] = 1;
    int visited = 0;
    while (!stack.empty()) {
      const int node = stack.back();
      stack.pop_back();
      ++visited;
      for (int s = 0; s < 3; ++s) {
        const int nbr = nodes_[node].adj[s];
        if (nbr == kNoNode || seen[static_cast<std::size_t>(nbr)]) continue;
        seen[static_cast<std::size_t>(nbr)] = 1;
        stack.push_back(nbr);
      }
    }
    if (visited != tips_seen + internals_seen) {
      throw std::logic_error("check_valid: tree is disconnected");
    }
  }
}

}  // namespace fdml
