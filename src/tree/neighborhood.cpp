#include "tree/neighborhood.hpp"

namespace fdml {

namespace {

void walk_targets(const Tree& tree, int node, int from, int skip, int depth,
                  int max_cross, std::vector<std::pair<int, int>>& out) {
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree.neighbor(node, s);
    if (nbr == Tree::kNoNode || nbr == from || nbr == skip) continue;
    out.emplace_back(node, nbr);
    if (!tree.is_tip(nbr) && depth < max_cross) {
      walk_targets(tree, nbr, node, skip, depth + 1, max_cross, out);
    }
  }
}

}  // namespace

std::vector<std::pair<int, int>> insertion_edges(const Tree& tree) {
  return tree.edges();
}

std::vector<std::pair<int, int>> rearrangement_targets(const Tree& tree,
                                                       int junction,
                                                       int subtree_neighbor,
                                                       int max_cross) {
  std::vector<std::pair<int, int>> out;
  if (max_cross < 1) return out;
  // After the prune, junction's other two neighbors a and b become joined by
  // one edge; walking outward from a (resp. b) with junction masked off
  // enumerates the pruned tree's branches, counting crossed vertices.
  for (int s = 0; s < 3; ++s) {
    const int nbr = tree.neighbor(junction, s);
    if (nbr == Tree::kNoNode || nbr == subtree_neighbor) continue;
    if (tree.is_tip(nbr)) continue;
    walk_targets(tree, nbr, junction, junction, 1, max_cross, out);
  }
  return out;
}

std::vector<SprMove> rearrangement_moves(const Tree& tree, int max_cross) {
  std::vector<SprMove> moves;
  for (int j = tree.num_taxa(); j < tree.max_nodes(); ++j) {
    if (!tree.contains(j)) continue;
    for (int s = 0; s < 3; ++s) {
      const int subtree = tree.neighbor(j, s);
      if (subtree == Tree::kNoNode) continue;
      for (const auto& [u, v] :
           rearrangement_targets(tree, j, subtree, max_cross)) {
        moves.push_back({j, subtree, u, v});
      }
    }
  }
  return moves;
}

}  // namespace fdml
