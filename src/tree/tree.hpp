// Unrooted bifurcating phylogenetic tree.
//
// Node ids are stable: tips are 0..num_taxa-1 (whether or not they are
// currently in the tree — stepwise addition grows the tree one tip at a
// time), internal nodes are allocated from num_taxa upward. A tree over n
// tips has n-2 internal nodes and 2n-3 edges. Branch lengths are expected
// substitutions per site, stored symmetrically on both half-edges.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace fdml {

/// Minimum branch length the optimizer and tree operations will produce.
inline constexpr double kMinBranchLength = 1e-8;
/// Maximum branch length (saturation).
inline constexpr double kMaxBranchLength = 64.0;
/// Default length assigned to newly created branches before optimization.
inline constexpr double kDefaultBranchLength = 0.1;

class Tree {
 public:
  static constexpr int kNoNode = -1;

  /// Creates an empty tree with capacity for `num_taxa` tips.
  explicit Tree(int num_taxa);

  int num_taxa() const { return num_taxa_; }
  /// Total node table size (tips + allocatable internals).
  int max_nodes() const { return static_cast<int>(nodes_.size()); }
  bool is_tip(int node) const { return node < num_taxa_; }
  /// Number of tips currently joined into the tree.
  int tip_count() const { return tip_count_; }
  /// All tip ids currently in the tree, ascending.
  std::vector<int> tips() const;

  bool contains(int node) const { return nodes_[node].degree > 0; }
  int degree(int node) const { return nodes_[node].degree; }

  /// Neighbor in adjacency slot 0..2 (kNoNode if the slot is empty).
  int neighbor(int node, int slot) const { return nodes_[node].adj[slot]; }
  /// Length stored on (node, slot).
  double slot_length(int node, int slot) const { return nodes_[node].len[slot]; }
  /// Slot of `v` in `u`'s adjacency, or -1.
  int find_slot(int u, int v) const;
  bool adjacent(int u, int v) const { return find_slot(u, v) >= 0; }

  double length(int u, int v) const;
  void set_length(int u, int v, double t);

  /// Builds the unique 3-taxon topology over tips a, b, c. The tree must be
  /// empty. Returns the central internal node.
  int make_triplet(int a, int b, int c, double la = kDefaultBranchLength,
                   double lb = kDefaultBranchLength,
                   double lc = kDefaultBranchLength);

  /// Splits edge (u, v) with a new internal node m and attaches `tip` to m.
  /// The old length is divided between (u,m) and (m,v) by `split_fraction`.
  /// Returns m.
  int insert_tip(int tip, int u, int v, double tip_length = kDefaultBranchLength,
                 double split_fraction = 0.5);

  /// Removes a tip and its attachment node, fusing the two remaining edges
  /// (lengths add). The tree must keep at least 3 tips.
  void remove_tip(int tip);

  /// A pruned subtree produced by prune_subtree, ready to regraft.
  struct SprHandle {
    int junction = kNoNode;       ///< internal node carried with the subtree
    int subtree = kNoNode;        ///< neighbor of junction on the subtree side
    int left = kNoNode;           ///< one endpoint of the edge closed by the prune
    int right = kNoNode;          ///< other endpoint
    double left_length = 0.0;     ///< old length junction..left
    double right_length = 0.0;    ///< old length junction..right
  };

  /// Detaches the subtree hanging off `junction` on the side of
  /// `subtree_neighbor`. `junction` must be internal; its other two
  /// neighbors are joined by an edge of summed length. The subtree keeps
  /// `junction` as a dangling attachment point.
  SprHandle prune_subtree(int junction, int subtree_neighbor);

  /// Undo record for a trial regraft.
  struct GraftUndo {
    int u = kNoNode;
    int v = kNoNode;
    double original_length = 0.0;
  };

  /// Reinserts a pruned subtree into edge (u, v), splitting it at
  /// `split_fraction`. The handle's junction becomes the new attachment.
  /// Returns the record needed to undo this regraft.
  GraftUndo regraft(const SprHandle& handle, int u, int v,
                    double split_fraction = 0.5);

  /// Detaches the subtree again, restoring the edge split by `regraft`.
  /// Leaves the subtree dangling exactly as after prune_subtree.
  void undo_regraft(const SprHandle& handle, const GraftUndo& undo);

  /// Reattaches a dangling pruned subtree at its original position with the
  /// original lengths (inverse of prune_subtree).
  void regraft_back(const SprHandle& handle);

  /// Every undirected edge once, as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> edges() const;
  /// Number of undirected edges (2 * tips - 3 once >= 2 tips are in).
  int num_edges() const;

  /// An arbitrary internal node of the current tree (kNoNode if none).
  int any_internal() const;

  /// Walks tips of the subtree seen from directed edge (from -> node).
  /// Appends tip ids to `out`.
  void collect_subtree_tips(int node, int from, std::vector<int>& out) const;

  /// Verifies structural invariants (degrees, symmetry of adjacency and
  /// lengths, connectivity, node counts); throws std::logic_error on
  /// violation. Used heavily by tests.
  void check_valid() const;

  // --- Raw construction (used by the Newick parser and by tests) ---

  /// Allocates a fresh internal node id.
  int allocate_internal_node() { return allocate_internal(); }

  /// Adds edge u—v with length t. Joining a previously-absent tip updates
  /// the tip count. The caller is responsible for ending with a valid
  /// bifurcating tree (verify with check_valid()).
  void add_edge(int u, int v, double t);

 private:
  struct Node {
    std::array<int, 3> adj{kNoNode, kNoNode, kNoNode};
    std::array<double, 3> len{0.0, 0.0, 0.0};
    int degree = 0;
  };

  int allocate_internal();
  void free_internal(int node);
  /// Links u and v with length t (fills first free slot on each side).
  void link(int u, int v, double t);
  /// Unlinks the edge u—v.
  void unlink(int u, int v);

  int num_taxa_;
  int tip_count_ = 0;
  std::vector<Node> nodes_;
  std::vector<int> free_internals_;
};

}  // namespace fdml
