#include "durable/vfs.hpp"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace fdml {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// write(2) until done (handles short writes from the kernel).
void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("write " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void write_fd(const std::string& path, const std::uint8_t* data,
              std::size_t size, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path);
  write_all(fd, data, size, path);
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fsync " + path);
  }
  if (::close(fd) != 0) throw_errno("close " + path);
}

class RealVfs final : public Vfs {
 public:
  void write_file(const std::string& path, const std::uint8_t* data,
                  std::size_t size) override {
    write_fd(path, data, size, O_WRONLY | O_CREAT | O_TRUNC);
  }

  void append_file(const std::string& path, const std::uint8_t* data,
                   std::size_t size) override {
    write_fd(path, data, size, O_WRONLY | O_CREAT | O_APPEND);
  }

  std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return std::nullopt;
      throw_errno("open " + path);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("read " + path);
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    ::close(fd);
    return bytes;
  }

  void rename_file(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      throw_errno("rename " + from + " -> " + to);
    }
  }

  void remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("remove " + path);
    }
  }

  bool exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  std::vector<std::string> list_dir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    const std::string where = dir.empty() ? "." : dir;
    for (const auto& entry :
         std::filesystem::directory_iterator(where, ec)) {
      if (entry.is_regular_file(ec)) {
        names.push_back(entry.path().filename().string());
      }
    }
    return names;
  }

  void sync_dir(const std::string& dir) override {
    const std::string where = dir.empty() ? "." : dir;
    const int fd = ::open(where.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno("open dir " + where);
    // Some filesystems refuse fsync on directories; that is not a torn
    // write, so only real I/O errors are fatal.
    if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("fsync dir " + where);
    }
    ::close(fd);
  }
};

}  // namespace

Vfs& real_vfs() {
  static RealVfs vfs;
  return vfs;
}

std::string parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

}  // namespace fdml
