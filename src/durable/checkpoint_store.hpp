// Generational, crash-safe checkpoint storage.
//
// A CheckpointStore owns a family of files around a base path:
//
//   base.gen-<N>   one durable frame per generation N (the numbering truth)
//   base           a convenience copy of the newest generation, so tools
//                  that predate the store (and the v2 text loader) keep
//                  finding a valid checkpoint at the path the user gave
//   base.tmp, base.gen-<N>.tmp   in-flight atomic-commit staging
//
// commit() writes the new generation with tmp + fsync + rename + dir-fsync,
// *then* refreshes `base`, then prunes generations older than `keep`. A
// crash at any point leaves either the old newest generation or the new one
// fully intact — never a torn newest.
//
// recover() walks generations newest-first and returns the first frame that
// validates (magic, version, digest) AND carries the expected fingerprint.
// Torn or corrupt candidates are skipped — that is the rollback; a frame
// that validates but carries a *different* fingerprint is a hard error
// (FingerprintMismatchError): the user pointed a run at checkpoints from a
// different alignment/model, and silently rolling past them would resume
// the wrong search.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "durable/frame.hpp"
#include "durable/vfs.hpp"

namespace fdml {

/// Base class for durable-layer failures that are about state validity
/// (as opposed to std::system_error, which is about the I/O itself).
class DurableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A structurally valid checkpoint exists but belongs to a different
/// dataset/model. Deliberately not skippable by rollback.
class FingerprintMismatchError : public DurableError {
 public:
  FingerprintMismatchError(const std::string& path, std::uint64_t expected,
                           std::uint64_t found)
      : DurableError("checkpoint " + path +
                     " has dataset fingerprint " + std::to_string(found) +
                     " but the loaded alignment/model has " +
                     std::to_string(expected) +
                     " — refusing to resume from a different dataset"),
        path_(path), expected_(expected), found_(found) {}

  const std::string& path() const { return path_; }
  std::uint64_t expected() const { return expected_; }
  std::uint64_t found() const { return found_; }

 private:
  std::string path_;
  std::uint64_t expected_;
  std::uint64_t found_;
};

struct CheckpointStoreOptions {
  /// How many generations to retain. Older ones are pruned after a commit.
  std::uint64_t keep = 3;
};

/// A recovered checkpoint: the validated frame plus where it came from.
struct RecoveredFrame {
  DurableFrame frame;
  std::uint64_t generation = 0;
  std::string path;
};

class CheckpointStore {
 public:
  /// `base_path` is the user-visible checkpoint path; generation files live
  /// beside it. `vfs` may be null (real filesystem).
  CheckpointStore(std::string base_path, CheckpointStoreOptions options = {},
                  Vfs* vfs = nullptr);

  /// Durably writes `payload` as the next generation and returns its
  /// generation number. Throws std::system_error on I/O failure (in which
  /// case the previous newest generation is still intact on disk).
  std::uint64_t commit(std::uint32_t kind, std::uint64_t fingerprint,
                       const std::vector<std::uint8_t>& payload);

  /// Newest generation that decodes cleanly and matches `expected_fingerprint`
  /// (0 = accept any). nullopt when nothing usable exists. Throws
  /// FingerprintMismatchError when the best valid candidate belongs to a
  /// different dataset.
  std::optional<RecoveredFrame> recover(std::uint64_t expected_fingerprint) const;

  /// Largest generation number present on disk (valid or not); 0 when none.
  /// Commit continues from here, so a run never reuses the number of a
  /// generation it could not read.
  std::uint64_t newest_generation() const;

  const std::string& base_path() const { return base_path_; }

 private:
  std::string generation_path(std::uint64_t generation) const;
  /// All on-disk generation numbers, sorted descending.
  std::vector<std::uint64_t> list_generations() const;

  std::string base_path_;
  std::string base_name_;  // filename component of base_path_
  std::string dir_;        // parent directory of base_path_
  CheckpointStoreOptions options_;
  Vfs* vfs_;
};

}  // namespace fdml
