#include "durable/journal.hpp"

#include "durable/frame.hpp"
#include "util/fnv.hpp"
#include "util/packer.hpp"

namespace fdml {

std::uint64_t task_content_digest(const std::string& newick, int focus_taxon,
                                  int smooth_passes) {
  std::uint64_t hash = fnv1a64(newick);
  hash = fnv1a64_u64(static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(focus_taxon)),
                     hash);
  hash = fnv1a64_u64(static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(smooth_passes)),
                     hash);
  return hash;
}

std::uint64_t round_content_key(
    const std::vector<std::uint64_t>& task_digests) {
  std::uint64_t hash = fnv1a64_u64(task_digests.size());
  for (std::uint64_t digest : task_digests) hash = fnv1a64_u64(digest, hash);
  return hash;
}

TaskJournal::TaskJournal(std::string path, Vfs* vfs)
    : path_(std::move(path)), vfs_(vfs) {}

std::uint64_t TaskJournal::index_key(std::uint64_t round_key,
                                     std::uint64_t task_digest) {
  return fnv1a64_u64(task_digest, fnv1a64_u64(round_key));
}

std::size_t TaskJournal::load() {
  entries_.clear();
  index_.clear();
  next_sequence_ = 1;
  Vfs& fs = vfs_or_real(vfs_);
  std::optional<std::vector<std::uint8_t>> bytes;
  try {
    bytes = fs.read_file(path_);
  } catch (const std::exception&) {
    return 0;  // unreadable journal = no replay, never a crash
  }
  if (!bytes.has_value()) return 0;
  std::size_t pos = 0;
  while (pos < bytes->size()) {
    auto frame = decode_frame(bytes->data(), bytes->size(), pos);
    // First bad frame ends the journal: a crash mid-append leaves a torn
    // tail, and everything after it was never durably acknowledged.
    if (!frame.has_value() || frame->kind != kFrameJournalEntry) break;
    try {
      Unpacker unpacker(frame->payload);
      JournalEntry entry;
      entry.round_key = frame->fingerprint;
      entry.task_digest = unpacker.get_u64();
      entry.log_likelihood = unpacker.get_f64();
      entry.newick = unpacker.get_string();
      entry.cpu_seconds = unpacker.get_f64();
      index_[index_key(entry.round_key, entry.task_digest)] = entries_.size();
      entries_.push_back(std::move(entry));
      next_sequence_ = frame->generation + 1;
    } catch (const std::out_of_range&) {
      break;  // payload shorter than the schema expects: treat as torn
    }
  }
  return entries_.size();
}

void TaskJournal::reset() {
  entries_.clear();
  index_.clear();
  next_sequence_ = 1;
  Vfs& fs = vfs_or_real(vfs_);
  fs.remove_file(path_);
}

void TaskJournal::append(const JournalEntry& entry) {
  Packer packer;
  packer.put_u64(entry.task_digest);
  packer.put_f64(entry.log_likelihood);
  packer.put_string(entry.newick);
  packer.put_f64(entry.cpu_seconds);

  DurableFrame frame;
  frame.kind = kFrameJournalEntry;
  frame.fingerprint = entry.round_key;
  frame.generation = next_sequence_;
  frame.payload = packer.take();
  const std::vector<std::uint8_t> bytes = encode_frame(frame);

  Vfs& fs = vfs_or_real(vfs_);
  fs.append_file(path_, bytes.data(), bytes.size());

  ++next_sequence_;
  index_[index_key(entry.round_key, entry.task_digest)] = entries_.size();
  entries_.push_back(entry);
}

const JournalEntry* TaskJournal::find(std::uint64_t round_key,
                                      std::uint64_t task_digest) const {
  const auto it = index_.find(index_key(round_key, task_digest));
  if (it == index_.end()) return nullptr;
  const JournalEntry& entry = entries_[it->second];
  // Guard against an index collision handing back foreign work.
  if (entry.round_key != round_key || entry.task_digest != task_digest) {
    return nullptr;
  }
  return &entry;
}

}  // namespace fdml
