#include "durable/checkpoint_store.hpp"

#include <algorithm>
#include <cstdlib>

namespace fdml {

namespace {

constexpr const char* kGenInfix = ".gen-";

/// Parses the <N> of "<base_name>.gen-<N>"; nullopt for anything else
/// (including the .tmp staging files).
std::optional<std::uint64_t> parse_generation(const std::string& name,
                                              const std::string& base_name) {
  const std::string prefix = base_name + kGenInfix;
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string base_path,
                                 CheckpointStoreOptions options, Vfs* vfs)
    : base_path_(std::move(base_path)), options_(options), vfs_(vfs) {
  if (options_.keep == 0) options_.keep = 1;
  dir_ = parent_dir(base_path_);
  const auto slash = base_path_.find_last_of('/');
  base_name_ = slash == std::string::npos ? base_path_
                                          : base_path_.substr(slash + 1);
}

std::string CheckpointStore::generation_path(std::uint64_t generation) const {
  return base_path_ + kGenInfix + std::to_string(generation);
}

std::vector<std::uint64_t> CheckpointStore::list_generations() const {
  Vfs& fs = vfs_or_real(vfs_);
  std::vector<std::uint64_t> generations;
  for (const std::string& name : fs.list_dir(dir_)) {
    if (auto gen = parse_generation(name, base_name_)) {
      generations.push_back(*gen);
    }
  }
  std::sort(generations.begin(), generations.end(),
            std::greater<std::uint64_t>());
  return generations;
}

std::uint64_t CheckpointStore::newest_generation() const {
  const auto generations = list_generations();
  return generations.empty() ? 0 : generations.front();
}

std::uint64_t CheckpointStore::commit(std::uint32_t kind,
                                      std::uint64_t fingerprint,
                                      const std::vector<std::uint8_t>& payload) {
  Vfs& fs = vfs_or_real(vfs_);
  const std::uint64_t generation = newest_generation() + 1;
  DurableFrame frame;
  frame.kind = kind;
  frame.fingerprint = fingerprint;
  frame.generation = generation;
  frame.payload = payload;
  // The generation file is the truth, so it lands first; refreshing `base`
  // second means a crash between the two leaves the gen file as newest and
  // `base` merely stale — recover() prefers gen files, so nothing is lost.
  write_frame_file_atomic(fs, generation_path(generation), frame);
  write_frame_file_atomic(fs, base_path_, frame);
  if (generation > options_.keep) {
    const std::uint64_t oldest_kept = generation - options_.keep + 1;
    for (std::uint64_t gen : list_generations()) {
      if (gen < oldest_kept) fs.remove_file(generation_path(gen));
    }
  }
  return generation;
}

std::optional<RecoveredFrame> CheckpointStore::recover(
    std::uint64_t expected_fingerprint) const {
  Vfs& fs = vfs_or_real(vfs_);
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (std::uint64_t gen : list_generations()) {
    candidates.emplace_back(gen, generation_path(gen));
  }
  // `base` last: it duplicates the newest generation, but it is also the
  // only candidate for stores written before generations existed.
  candidates.emplace_back(0, base_path_);
  for (const auto& [gen, path] : candidates) {
    auto frame = read_frame_file(fs, path);
    if (!frame.has_value()) continue;  // torn/corrupt/missing: roll back
    if (expected_fingerprint != 0 && frame->fingerprint != expected_fingerprint) {
      throw FingerprintMismatchError(path, expected_fingerprint,
                                     frame->fingerprint);
    }
    RecoveredFrame out;
    out.generation = frame->generation;
    out.frame = std::move(*frame);
    out.path = path;
    return out;
  }
  return std::nullopt;
}

}  // namespace fdml
