// Deterministic filesystem fault injection — the durable layer's analogue
// of ChaosTransport.
//
// FaultVfs wraps a Vfs and applies a seeded schedule of the failure modes a
// hostile filesystem (or a kill -9 at the wrong instant) produces:
//
//   - error:       a mutating op fails with EIO and has no effect
//                  (dying disk; the caller must surface it, not swallow it).
//   - short write: a write/append persists only a seeded prefix of the
//                  bytes, then fails with ENOSPC (full disk mid-write).
//   - crash:       the Nth mutating op applies a *partial* effect — a write
//                  truncated at a seeded byte offset, a rename that may or
//                  may not have happened — and then throws DurableCrash,
//                  modelling the process dying at that exact point. The
//                  test harness treats DurableCrash as the kill -9 moment
//                  and then exercises recovery against the torn state left
//                  on disk.
//
// Every decision is a pure function of (plan seed, 1-based mutating-op
// index), so a failing crash point is replayable from its FaultPlan line
// alone — the same discipline as the message-level chaos harness, extended
// to the filesystem via the fs_* fields of FaultPlan.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "comm/chaos.hpp"
#include "durable/vfs.hpp"

namespace fdml {

/// Thrown by FaultVfs at the scheduled crash point, after the partial
/// effect has been applied. Catching it simulates surviving a kill -9:
/// whatever reached the disk stays, everything else is gone.
class DurableCrash : public std::runtime_error {
 public:
  DurableCrash(std::uint64_t op_index, const std::string& op)
      : std::runtime_error("simulated crash at durable op " +
                           std::to_string(op_index) + " (" + op + ")"),
        op_index_(op_index) {}

  std::uint64_t op_index() const { return op_index_; }

 private:
  std::uint64_t op_index_;
};

class FaultVfs final : public Vfs {
 public:
  FaultVfs(Vfs& inner, FaultPlan plan) : inner_(inner), plan_(plan) {}

  void write_file(const std::string& path, const std::uint8_t* data,
                  std::size_t size) override;
  void append_file(const std::string& path, const std::uint8_t* data,
                   std::size_t size) override;
  std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void sync_dir(const std::string& dir) override;

  /// Mutating ops seen so far. Run once fault-free to learn the op count,
  /// then re-run with fs_crash_at_op = 1..count to crash at every commit
  /// point.
  std::uint64_t mutating_ops() const { return op_index_; }

  /// True once the scheduled crash fired; later mutating ops are swallowed
  /// (a dead process issues no more writes) — read ops keep working so the
  /// post-mortem recovery in the same test process can inspect the disk.
  bool crashed() const { return crashed_; }

 private:
  /// Draws this op's fault decision; throws for error faults. Returns the
  /// op's 1-based index.
  std::uint64_t begin_op(const char* op);
  bool crash_due(std::uint64_t index) const;
  [[noreturn]] void crash_now(std::uint64_t index, const char* op);
  std::uint64_t seeded_below(std::uint64_t index, std::uint64_t bound,
                             std::uint64_t salt) const;

  Vfs& inner_;
  FaultPlan plan_;
  std::uint64_t op_index_ = 0;
  bool crashed_ = false;
};

}  // namespace fdml
