// Filesystem seam for the durable-state layer.
//
// Every byte the runtime persists (checkpoints, the foreman's task journal)
// goes through this interface instead of raw iostreams, for two reasons:
//   1. Durability: the real implementation fsyncs file data on write/append
//      and fsyncs the parent directory after a rename, closing the torn-file
//      and lost-rename windows that a bare ofstream + std::rename leaves
//      open (and it *checks* every return value — a full disk must report
//      failure, not success).
//   2. Fault injection: FaultVfs (fault_vfs.hpp) wraps this interface with a
//      seeded schedule of short writes, I/O errors and crash-at-op
//      truncations, so the recovery paths are tested against the same API
//      the production code uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fdml {

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Creates/truncates `path` with `size` bytes and flushes them to the
  /// device (fsync). Throws std::system_error on any failure.
  virtual void write_file(const std::string& path, const std::uint8_t* data,
                          std::size_t size) = 0;

  /// Appends `size` bytes to `path` (creating it if missing) and flushes
  /// them to the device. Throws std::system_error on any failure.
  virtual void append_file(const std::string& path, const std::uint8_t* data,
                           std::size_t size) = 0;

  /// Whole-file read; nullopt when the file does not exist. Throws
  /// std::system_error on a read error.
  virtual std::optional<std::vector<std::uint8_t>> read_file(
      const std::string& path) = 0;

  /// Atomic rename (replaces `to` if it exists). Throws on failure —
  /// std::rename's ignored return value was exactly the bug this layer
  /// exists to fix.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;

  /// Removes `path`; missing files are not an error.
  virtual void remove_file(const std::string& path) = 0;

  virtual bool exists(const std::string& path) = 0;

  /// Names (not paths) of the regular files in `dir` ("" or "." = cwd).
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;

  /// Flushes directory metadata so a completed rename survives power loss.
  virtual void sync_dir(const std::string& dir) = 0;
};

/// The process-wide real (POSIX) filesystem.
Vfs& real_vfs();

/// `vfs` if non-null, else the real filesystem — the idiom every durable
/// component uses to accept an injected Vfs.
inline Vfs& vfs_or_real(Vfs* vfs) { return vfs != nullptr ? *vfs : real_vfs(); }

/// Parent directory of `path` ("." when it has none) — the directory to
/// sync after renaming into place.
std::string parent_dir(const std::string& path);

}  // namespace fdml
