// The foreman's append-only task journal (write-ahead log).
//
// Every completed TreeTask is appended as one durable frame before its
// result is folded into the round. If the foreman (or the whole process)
// dies mid-round, the revived foreman replays the journal and skips the
// insertions that already finished — on the paper's week-long 50-taxon
// runs, re-evaluating half a round was hours of lost CPU.
//
// Entries are content-addressed, not id-addressed: a revived master resends
// the round with fresh task_ids/round_ids, so identity is a digest over
// what the task *computes* (newick, focus taxon, smooth passes) and the
// round key is a digest over the ordered task digests of the round. The
// same work is recognised no matter how it is renumbered.
//
// On disk the journal is a sequence of durable frames (kind
// kFrameJournalEntry; the frame's fingerprint field carries the round key,
// its generation field the append sequence number). Loading stops at the
// first frame that fails to decode: a torn tail — the expected state after
// a crash mid-append — silently costs exactly the entries that were never
// durably written, nothing more.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "durable/vfs.hpp"

namespace fdml {

/// Digest identifying a task by its computational content. Tasks with the
/// same tree, focus taxon and smoothing settings are the same work.
std::uint64_t task_content_digest(const std::string& newick, int focus_taxon,
                                  int smooth_passes);

/// Digest identifying a round by the ordered content of its tasks.
std::uint64_t round_content_key(const std::vector<std::uint64_t>& task_digests);

/// One completed task, as remembered by the journal.
struct JournalEntry {
  std::uint64_t round_key = 0;
  std::uint64_t task_digest = 0;
  double log_likelihood = 0.0;
  std::string newick;
  double cpu_seconds = 0.0;
};

class TaskJournal {
 public:
  /// `vfs` may be null (real filesystem). Construction does no I/O; call
  /// load() or reset() to bind to the on-disk state.
  TaskJournal(std::string path, Vfs* vfs = nullptr);

  /// Reads existing entries, tolerating a torn tail. Returns the number of
  /// entries recovered. Missing file = empty journal.
  std::size_t load();

  /// Truncates the journal (start of a fresh run).
  void reset();

  /// Durably appends one entry (fsynced before return). Throws
  /// std::system_error on I/O failure.
  void append(const JournalEntry& entry);

  /// The remembered result for (round_key, task_digest), or null.
  const JournalEntry* find(std::uint64_t round_key,
                           std::uint64_t task_digest) const;

  std::size_t size() const { return entries_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Vfs* vfs_;
  std::vector<JournalEntry> entries_;
  /// (round_key, task_digest) -> index into entries_.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::uint64_t next_sequence_ = 1;

  static std::uint64_t index_key(std::uint64_t round_key,
                                 std::uint64_t task_digest);
};

}  // namespace fdml
