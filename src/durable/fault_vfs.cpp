#include "durable/fault_vfs.hpp"

#include <cerrno>
#include <system_error>

#include "util/rng.hpp"

namespace fdml {

namespace {

/// Same lane-mixing discipline as ChaosTransport's decision_seed: the
/// decision for op N depends only on (seed, N), never on timing. The lane
/// constant keeps the fs schedule independent of the message schedule drawn
/// from the same plan seed.
constexpr std::uint64_t kFsLane = 0xd1a8f5ULL;

std::uint64_t fs_decision_seed(std::uint64_t seed, std::uint64_t index,
                               std::uint64_t salt) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * (kFsLane + index * 2654435761ULL + salt);
  return splitmix64_next(state);
}

}  // namespace

std::uint64_t FaultVfs::seeded_below(std::uint64_t index, std::uint64_t bound,
                                     std::uint64_t salt) const {
  if (bound == 0) return 0;
  Rng rng(fs_decision_seed(plan_.seed, index, salt));
  return rng.below(bound);
}

bool FaultVfs::crash_due(std::uint64_t index) const {
  return plan_.fs_crash_at_op != 0 && index >= plan_.fs_crash_at_op;
}

void FaultVfs::crash_now(std::uint64_t index, const char* op) {
  crashed_ = true;
  throw DurableCrash(index, op);
}

std::uint64_t FaultVfs::begin_op(const char* op) {
  const std::uint64_t index = ++op_index_;
  if (crashed_) {
    // The process is dead: nothing further reaches the disk. Throwing again
    // keeps the caller's control flow identical to a first crash.
    throw DurableCrash(index, op);
  }
  if (crash_due(index)) return index;  // the crash applies its own effect
  Rng rng(fs_decision_seed(plan_.seed, index, 0));
  // Fixed draw order, as in ChaosTransport: changing it changes schedules.
  const bool error = rng.uniform() < plan_.fs_error;
  if (error) {
    throw std::system_error(EIO, std::generic_category(),
                            std::string("fault-injected I/O error: ") + op);
  }
  return index;
}

void FaultVfs::write_file(const std::string& path, const std::uint8_t* data,
                          std::size_t size) {
  const std::uint64_t index = begin_op("write");
  if (crash_due(index)) {
    // Torn write: a seeded prefix reaches the disk, then the process dies.
    const std::size_t kept =
        static_cast<std::size_t>(seeded_below(index, size + 1, 1));
    inner_.write_file(path, data, kept);
    crash_now(index, "write");
  }
  Rng rng(fs_decision_seed(plan_.seed, index, 2));
  if (rng.uniform() < plan_.fs_short_write) {
    const std::size_t kept =
        size == 0 ? 0 : static_cast<std::size_t>(seeded_below(index, size, 3));
    inner_.write_file(path, data, kept);
    throw std::system_error(ENOSPC, std::generic_category(),
                            "fault-injected short write: " + path);
  }
  inner_.write_file(path, data, size);
}

void FaultVfs::append_file(const std::string& path, const std::uint8_t* data,
                           std::size_t size) {
  const std::uint64_t index = begin_op("append");
  if (crash_due(index)) {
    const std::size_t kept =
        static_cast<std::size_t>(seeded_below(index, size + 1, 1));
    inner_.append_file(path, data, kept);
    crash_now(index, "append");
  }
  Rng rng(fs_decision_seed(plan_.seed, index, 2));
  if (rng.uniform() < plan_.fs_short_write) {
    const std::size_t kept =
        size == 0 ? 0 : static_cast<std::size_t>(seeded_below(index, size, 3));
    inner_.append_file(path, data, kept);
    throw std::system_error(ENOSPC, std::generic_category(),
                            "fault-injected short append: " + path);
  }
  inner_.append_file(path, data, size);
}

void FaultVfs::rename_file(const std::string& from, const std::string& to) {
  const std::uint64_t index = begin_op("rename");
  if (crash_due(index)) {
    // The crash straddles the rename: a seeded coin decides whether the
    // metadata update reached the disk before the process died.
    if (seeded_below(index, 2, 1) == 1) inner_.rename_file(from, to);
    crash_now(index, "rename");
  }
  inner_.rename_file(from, to);
}

void FaultVfs::remove_file(const std::string& path) {
  const std::uint64_t index = begin_op("remove");
  if (crash_due(index)) {
    if (seeded_below(index, 2, 1) == 1) inner_.remove_file(path);
    crash_now(index, "remove");
  }
  inner_.remove_file(path);
}

void FaultVfs::sync_dir(const std::string& dir) {
  const std::uint64_t index = begin_op("sync_dir");
  if (crash_due(index)) crash_now(index, "sync_dir");  // sync itself is a no-op
  inner_.sync_dir(dir);
}

std::optional<std::vector<std::uint8_t>> FaultVfs::read_file(
    const std::string& path) {
  return inner_.read_file(path);
}

bool FaultVfs::exists(const std::string& path) { return inner_.exists(path); }

std::vector<std::string> FaultVfs::list_dir(const std::string& dir) {
  return inner_.list_dir(dir);
}

}  // namespace fdml
