// Framed durable records: the on-disk unit of the checkpoint store and the
// task journal.
//
// Layout (all integers little-endian):
//
//   +0   magic          8 bytes  "FDMLDUR1"
//   +8   format version u32      (currently 1)
//   +12  kind           u32      application record kind (checkpoint,
//                                journal entry, ...)
//   +16  fingerprint    u64      dataset/model binding (checkpoints) or
//                                round key (journal entries)
//   +24  generation     u64      checkpoint generation / journal sequence
//   +32  payload size   u64
//   +40  payload        N bytes
//   +40+N digest        u64      FNV-1a over bytes [0, 40+N)
//
// The trailing digest makes torn writes, truncations and single-byte
// corruption detectable before any payload parsing runs: decode_frame
// returns nullopt for anything invalid and never throws on malformed input
// (the torn-file corpus test drives every truncation length and every
// single-byte flip through it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "durable/vfs.hpp"

namespace fdml {

inline constexpr std::uint32_t kDurableFormatVersion = 1;

/// Application record kinds carried in the frame header.
inline constexpr std::uint32_t kFrameSearchCheckpoint = 1;
inline constexpr std::uint32_t kFrameJournalEntry = 2;

struct DurableFrame {
  std::uint32_t kind = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t generation = 0;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_frame(const DurableFrame& frame);

/// Decodes one frame starting at `pos`; advances `pos` past it on success.
/// Returns nullopt (leaving `pos` untouched) on a bad magic, truncated
/// header/payload, or digest mismatch — never throws on malformed bytes.
std::optional<DurableFrame> decode_frame(const std::uint8_t* data,
                                         std::size_t size, std::size_t& pos);

/// True when `data` begins with the durable magic (used to tell a framed
/// checkpoint from a legacy plain-text one).
bool looks_like_frame(const std::uint8_t* data, std::size_t size);

/// Commits a single-frame file atomically: write `path`.tmp (fsynced),
/// rename over `path`, fsync the parent directory.
void write_frame_file_atomic(Vfs& vfs, const std::string& path,
                             const DurableFrame& frame);

/// Reads and validates a single-frame file. nullopt when the file is
/// missing, torn, corrupt, or carries trailing garbage.
std::optional<DurableFrame> read_frame_file(Vfs& vfs, const std::string& path);

}  // namespace fdml
