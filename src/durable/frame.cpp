#include "durable/frame.hpp"

#include <cstring>

#include "util/fnv.hpp"

namespace fdml {

namespace {

constexpr char kMagic[8] = {'F', 'D', 'M', 'L', 'D', 'U', 'R', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kDigestSize = 8;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* data) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const DurableFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + frame.payload.size() + kDigestSize);
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(out, kDurableFormatVersion);
  put_u32(out, frame.kind);
  put_u64(out, frame.fingerprint);
  put_u64(out, frame.generation);
  put_u64(out, static_cast<std::uint64_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

bool looks_like_frame(const std::uint8_t* data, std::size_t size) {
  return size >= sizeof(kMagic) &&
         std::memcmp(data, kMagic, sizeof(kMagic)) == 0;
}

std::optional<DurableFrame> decode_frame(const std::uint8_t* data,
                                         std::size_t size, std::size_t& pos) {
  if (pos > size || size - pos < kHeaderSize + kDigestSize) return std::nullopt;
  const std::uint8_t* head = data + pos;
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  if (get_u32(head + 8) != kDurableFormatVersion) return std::nullopt;
  DurableFrame frame;
  frame.kind = get_u32(head + 12);
  frame.fingerprint = get_u64(head + 16);
  frame.generation = get_u64(head + 24);
  const std::uint64_t payload_size = get_u64(head + 32);
  const std::size_t remaining = size - pos - kHeaderSize;
  if (payload_size > remaining || remaining - payload_size < kDigestSize) {
    return std::nullopt;
  }
  const std::size_t body = kHeaderSize + static_cast<std::size_t>(payload_size);
  const std::uint64_t stored = get_u64(head + body);
  if (stored != fnv1a64(head, body)) return std::nullopt;
  frame.payload.assign(head + kHeaderSize, head + body);
  pos += body + kDigestSize;
  return frame;
}

void write_frame_file_atomic(Vfs& vfs, const std::string& path,
                             const DurableFrame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  const std::string tmp = path + ".tmp";
  vfs.write_file(tmp, bytes.data(), bytes.size());
  vfs.rename_file(tmp, path);
  vfs.sync_dir(parent_dir(path));
}

std::optional<DurableFrame> read_frame_file(Vfs& vfs, const std::string& path) {
  std::optional<std::vector<std::uint8_t>> bytes;
  try {
    bytes = vfs.read_file(path);
  } catch (const std::exception&) {
    return std::nullopt;  // an unreadable candidate is as useless as a torn one
  }
  if (!bytes.has_value()) return std::nullopt;
  std::size_t pos = 0;
  auto frame = decode_frame(bytes->data(), bytes->size(), pos);
  if (!frame.has_value() || pos != bytes->size()) return std::nullopt;
  return frame;
}

}  // namespace fdml
