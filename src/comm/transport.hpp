// Transport abstraction and the in-process thread backend.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "comm/message.hpp"
#include "util/channel.hpp"

namespace fdml {

/// One endpoint of a message fabric. Ranks follow the paper's layout:
/// 0 = master, 1 = foreman, 2 = monitor, 3.. = workers.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Sends `payload` to `dest`. Never blocks on the receiver.
  virtual void send(int dest, MessageTag tag,
                    std::vector<std::uint8_t> payload) = 0;

  /// Blocks until a message arrives; nullopt when the fabric is shut down.
  virtual std::optional<Message> recv() = 0;

  /// Blocks up to `timeout`; nullopt on timeout or shutdown.
  virtual std::optional<Message> recv_for(std::chrono::milliseconds timeout) = 0;

  /// True once the fabric has shut down (receivers will never block again).
  virtual bool closed() const = 0;
};

/// In-process fabric: each rank owns a Channel<Message>; endpoints are
/// handed to role threads. Closing the fabric releases all blocked
/// receivers.
class ThreadFabric {
 public:
  explicit ThreadFabric(int size);
  ~ThreadFabric();

  ThreadFabric(const ThreadFabric&) = delete;
  ThreadFabric& operator=(const ThreadFabric&) = delete;

  int size() const { return static_cast<int>(mailboxes_.size()); }

  /// Endpoint for `rank`. Endpoints borrow the fabric; the fabric must
  /// outlive them.
  std::unique_ptr<Transport> endpoint(int rank);

  /// Closes every mailbox (receivers drain then observe shutdown).
  void close();

  /// Total messages and bytes that have crossed the fabric (monitoring).
  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;

 private:
  friend class ThreadEndpoint;

  std::vector<std::unique_ptr<Channel<Message>>> mailboxes_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace fdml
