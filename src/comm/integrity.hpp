// End-to-end payload integrity for the message-passing layer.
//
// The paper's runs spanned flaky, geographically distributed PVM nodes; a
// runtime that survives such fabrics cannot trust that the bytes a worker
// sent are the bytes the foreman receives. Every payload-bearing message is
// therefore sealed with a 64-bit FNV-1a digest appended to the payload;
// receivers verify-and-strip before decoding, and treat a mismatch as a
// malformed message (count + quarantine the sender) rather than a crash.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/message.hpp"
#include "util/fnv.hpp"

namespace fdml {

inline std::uint64_t payload_digest(const std::uint8_t* data, std::size_t size) {
  return fnv1a64(data, size);
}

/// Appends the digest footer (8 bytes, little-endian) to `payload`.
inline void seal_payload(std::vector<std::uint8_t>& payload) {
  const std::uint64_t digest = payload_digest(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    payload.push_back(static_cast<std::uint8_t>(digest >> (8 * i)));
  }
}

/// Verifies and strips the digest footer. Returns false (leaving `payload`
/// unspecified) when the footer is missing or does not match the content.
inline bool open_payload(std::vector<std::uint8_t>& payload) {
  if (payload.size() < 8) return false;
  const std::size_t body = payload.size() - 8;
  std::uint64_t footer = 0;
  for (int i = 0; i < 8; ++i) {
    footer |= static_cast<std::uint64_t>(payload[body + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (footer != payload_digest(payload.data(), body)) return false;
  payload.resize(body);
  return true;
}

/// Tags whose payloads travel sealed. Control tags with empty payloads
/// (hello, shutdown, nack) are exempt.
inline bool tag_is_sealed(MessageTag tag) {
  switch (tag) {
    case MessageTag::kTask:
    case MessageTag::kResult:
    case MessageTag::kRound:
    case MessageTag::kRoundDone:
    case MessageTag::kMonitorEvent:
    case MessageTag::kProgress:
    case MessageTag::kRoundFailed:
    case MessageTag::kGoodbye:
    case MessageTag::kTelemetry:
    case MessageTag::kMetricsReply:
      return true;
    default:
      return false;
  }
}

}  // namespace fdml
