#include "comm/wire.hpp"

#include "comm/integrity.hpp"

namespace fdml {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool valid_kind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(FrameKind::kAnnounce) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kData);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const WireFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderSize + frame.payload.size() + kWireFooterSize);
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.kind));
  out.push_back(static_cast<std::uint8_t>(frame.tag));
  out.push_back(0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(frame.source));
  put_u32(out, static_cast<std::uint32_t>(frame.dest));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u64(out, payload_digest(out.data(), out.size()));
  return out;
}

const char* wire_error_name(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadKind: return "bad_kind";
    case WireError::kOversizedPayload: return "oversized_payload";
    case WireError::kDigestMismatch: return "digest_mismatch";
  }
  return "unknown";
}

bool FrameParser::feed(const std::uint8_t* data, std::size_t size,
                       std::vector<WireFrame>& out) {
  if (error_ != WireError::kNone) return false;
  buffer_.insert(buffer_.end(), data, data + size);
  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kWireHeaderSize) break;
    const std::uint8_t* head = buffer_.data() + consumed_;
    if (get_u32(head) != kWireMagic) {
      error_ = WireError::kBadMagic;
      return false;
    }
    if (head[4] != kWireVersion) {
      error_ = WireError::kBadVersion;
      return false;
    }
    if (!valid_kind(head[5])) {
      error_ = WireError::kBadKind;
      return false;
    }
    // The length prefix is validated against the hard ceiling before it
    // sizes anything: a flipped length byte must not make us buffer (or
    // later allocate) gigabytes waiting for a frame that never closes.
    const std::uint32_t length = get_u32(head + 16);
    if (length > kWireMaxPayload) {
      error_ = WireError::kOversizedPayload;
      return false;
    }
    const std::size_t total = kWireHeaderSize + length + kWireFooterSize;
    if (available < total) break;
    const std::uint64_t digest = get_u64(head + kWireHeaderSize + length);
    if (digest != payload_digest(head, kWireHeaderSize + length)) {
      error_ = WireError::kDigestMismatch;
      return false;
    }
    WireFrame frame;
    frame.kind = static_cast<FrameKind>(head[5]);
    frame.tag = static_cast<MessageTag>(head[6]);
    frame.source = static_cast<int>(get_u32(head + 8));
    frame.dest = static_cast<int>(get_u32(head + 12));
    frame.payload.assign(head + kWireHeaderSize, head + kWireHeaderSize + length);
    out.push_back(std::move(frame));
    consumed_ += total;
    // Compact once the consumed prefix dominates so a long-lived
    // connection's buffer does not grow without bound.
    if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
  }
  return true;
}

}  // namespace fdml
