// Deferred message redelivery for fault injection.
//
// An injected delay must model the *network* holding a message, not the
// sender's thread sleeping — a worker whose send() blocks looks like a
// frozen worker, which is a different fault. DeferredSender owns a delivery
// thread and a due-time queue; faulty transports schedule delayed messages
// here and return to the caller immediately.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "comm/transport.hpp"

namespace fdml {

class DeferredSender {
 public:
  /// `inner` must outlive this object (declare DeferredSender after the
  /// inner transport so it is destroyed — and joined — first).
  explicit DeferredSender(Transport& inner) : inner_(inner) {}

  ~DeferredSender() { stop(/*flush=*/true); }

  DeferredSender(const DeferredSender&) = delete;
  DeferredSender& operator=(const DeferredSender&) = delete;

  /// Queues a message for delivery `delay` from now. Never blocks beyond
  /// the queue lock. The delivery thread is started lazily.
  void schedule(std::chrono::milliseconds delay, int dest, MessageTag tag,
                std::vector<std::uint8_t> payload) {
    {
      std::lock_guard lock(mutex_);
      if (stopped_) return;
      if (!thread_.joinable()) thread_ = std::thread([this] { run(); });
      queue_.push(Pending{Clock::now() + delay, next_sequence_++, dest, tag,
                          std::move(payload)});
    }
    cv_.notify_one();
  }

  /// Drops every queued message (a crashed host's in-transit traffic dies
  /// with it).
  void discard_pending() {
    std::lock_guard lock(mutex_);
    while (!queue_.empty()) queue_.pop();
  }

  std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Stops the delivery thread; with `flush`, messages still queued are
  /// delivered immediately rather than lost.
  void stop(bool flush) {
    std::vector<Pending> leftover;
    {
      std::lock_guard lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
      while (!queue_.empty()) {
        leftover.push_back(queue_.top());
        queue_.pop();
      }
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    if (flush) {
      for (Pending& message : leftover) {
        inner_.send(message.dest, message.tag, std::move(message.payload));
      }
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Clock::time_point due;
    std::uint64_t sequence = 0;  // FIFO among equal due times
    int dest = -1;
    MessageTag tag = MessageTag::kHello;
    std::vector<std::uint8_t> payload;

    bool operator>(const Pending& other) const {
      if (due != other.due) return due > other.due;
      return sequence > other.sequence;
    }
  };

  void run() {
    std::unique_lock lock(mutex_);
    for (;;) {
      if (stopped_) return;
      if (queue_.empty()) {
        cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
        continue;
      }
      const auto due = queue_.top().due;
      if (Clock::now() < due) {
        cv_.wait_until(lock, due);
        continue;
      }
      Pending message = queue_.top();
      queue_.pop();
      lock.unlock();
      inner_.send(message.dest, message.tag, std::move(message.payload));
      lock.lock();
    }
  }

  Transport& inner_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::uint64_t next_sequence_ = 0;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace fdml
