// Fault injection for the runtime's fault-tolerance tests: a Transport
// decorator that drops or delays outbound messages according to caller
// predicates. Wrapping a worker's endpoint simulates the crashed or
// temporarily unreachable workers the paper's timeout/requeue machinery
// exists for (geographically distributed PVM workers, flaky cluster nodes).
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "comm/deferred.hpp"
#include "comm/transport.hpp"

namespace fdml {

class FaultyTransport final : public Transport {
 public:
  /// `drop` returning true swallows an outbound message; `delay` returns a
  /// duration to hold an outbound message before delivery (zero for none).
  /// A delayed message is redelivered by a background thread — the sender
  /// never blocks, so injected latency models the network, not a frozen
  /// worker. Inbound messages are untouched.
  FaultyTransport(std::unique_ptr<Transport> inner,
                  std::function<bool(const Message&)> drop,
                  std::function<std::chrono::milliseconds(const Message&)> delay)
      : inner_(std::move(inner)), drop_(std::move(drop)), delay_(std::move(delay)) {}

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }

  void send(int dest, MessageTag tag, std::vector<std::uint8_t> payload) override {
    Message probe;
    probe.source = rank();
    probe.tag = tag;
    probe.payload = payload;
    if (drop_ && drop_(probe)) {
      ++dropped_;
      return;
    }
    if (delay_) {
      const auto pause = delay_(probe);
      if (pause.count() > 0) {
        deferred_.schedule(pause, dest, tag, std::move(payload));
        return;
      }
    }
    inner_->send(dest, tag, std::move(payload));
  }

  std::optional<Message> recv() override { return inner_->recv(); }
  std::optional<Message> recv_for(std::chrono::milliseconds timeout) override {
    return inner_->recv_for(timeout);
  }
  bool closed() const override { return inner_->closed(); }

  std::uint64_t dropped() const { return dropped_; }

 private:
  std::unique_ptr<Transport> inner_;
  std::function<bool(const Message&)> drop_;
  std::function<std::chrono::milliseconds(const Message&)> delay_;
  std::uint64_t dropped_ = 0;
  /// Declared last: joined (and flushed) before inner_ is destroyed.
  DeferredSender deferred_{*inner_};
};

}  // namespace fdml
