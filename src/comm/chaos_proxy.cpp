#include "comm/chaos_proxy.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

obs::Counter& global_counter(const char* name) {
  return obs::MetricsRegistry::process().counter(name);
}

// Same mixing discipline as ChaosTransport (chaos.cpp): a decision is a pure
// function of (seed, lane, index), never of wall-clock or interleaving.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  return splitmix64_next(state);
}

std::uint64_t decision_seed(std::uint64_t seed, std::uint64_t conn_id,
                            bool inbound, std::uint64_t index) {
  const std::uint64_t lane = conn_id * 2 + (inbound ? 1 : 0);
  return mix64(mix64(seed, lane), index);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)), start_(Clock::now()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("ChaosProxy: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.listen_port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ChaosProxy: cannot bind port " +
                             std::to_string(options_.listen_port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.plan.sock_partition_at_ms != 0 &&
      options_.plan.sock_partition_ms != 0) {
    partition_thread_ = std::thread([this] {
      const auto begin =
          start_ + std::chrono::milliseconds(options_.plan.sock_partition_at_ms);
      const auto end =
          begin + std::chrono::milliseconds(options_.plan.sock_partition_ms);
      std::unique_lock lock(conns_mutex_);
      if (partition_cv_.wait_until(lock, begin, [this] {
            return closing_.load(std::memory_order_acquire);
          })) {
        return;
      }
      lock.unlock();
      in_partition_.store(true, std::memory_order_release);
      obs::instant("chaosproxy", "partition_begin");
      FDML_INFO("chaosproxy") << "partition window open ("
                              << options_.plan.sock_partition_ms << " ms)";
      sever_all();
      lock.lock();
      partition_cv_.wait_until(lock, end, [this] {
        return closing_.load(std::memory_order_acquire);
      });
      in_partition_.store(false, std::memory_order_release);
      obs::instant("chaosproxy", "partition_end");
    });
  }
}

ChaosProxy::~ChaosProxy() { close(); }

bool ChaosProxy::partitioned() const {
  return in_partition_.load(std::memory_order_acquire);
}

int ChaosProxy::dial_target() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = std::to_string(options_.target_port);
  if (::getaddrinfo(options_.target_host.c_str(), port_text.c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    return -1;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0 && ::connect(fd, resolved->ai_addr, resolved->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  return fd;
}

void ChaosProxy::accept_loop() {
  while (!closing_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down
    }
    if (closing_.load(std::memory_order_acquire)) {
      ::close(client);
      break;
    }
    if (partitioned()) {
      // Partition semantics: the network simply is not there. Refusing by
      // abrupt close makes the peer's dialer back off and retry, which is
      // exactly the behavior under test.
      refused_.fetch_add(1, std::memory_order_relaxed);
      global_counter("chaosproxy.refused").add();
      ::close(client);
      continue;
    }
    const int server = dial_target();
    if (server < 0) {
      ::close(client);
      continue;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    global_counter("chaosproxy.connections").add();
    auto conn = std::make_unique<Conn>();
    conn->client_fd = client;
    conn->server_fd = server;
    {
      std::lock_guard lock(conns_mutex_);
      conn->id = ++next_conn_id_;
      conn->pump = std::thread([this, raw = conn.get()] {
        pump_connection(*raw);
      });
      conns_.push_back(std::move(conn));
    }
    reap_finished();
  }
}

bool ChaosProxy::forward_chunk(Conn& conn, bool inbound,
                               std::uint64_t chunk_index, int to_fd,
                               std::uint8_t* data, std::size_t size) {
  chunks_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(size, std::memory_order_relaxed);
  const FaultPlan& plan = options_.plan;
  Rng rng(decision_seed(plan.seed, conn.id, inbound, chunk_index));
  // Fixed draw order (latency, corrupt, close) — changing it would change
  // every seeded schedule, like reordering ChaosTransport's draws would.
  if (plan.sock_latency > 0.0 && rng.uniform() < plan.sock_latency) {
    const auto span = plan.delay_max_ms > plan.delay_min_ms
                          ? plan.delay_max_ms - plan.delay_min_ms
                          : 0;
    const auto hold = plan.delay_min_ms +
                      static_cast<std::uint32_t>(rng.below(span + 1));
    delays_.fetch_add(1, std::memory_order_relaxed);
    global_counter("chaosproxy.delays").add();
    std::this_thread::sleep_for(std::chrono::milliseconds(hold));
  }
  if (plan.sock_corrupt > 0.0 && rng.uniform() < plan.sock_corrupt) {
    const std::uint64_t offset = rng.below(size);
    data[offset] ^= static_cast<std::uint8_t>(
        1u << static_cast<unsigned>(rng.below(8)));
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    global_counter("chaosproxy.corruptions").add();
  }
  if (!write_all(to_fd, data, size)) return false;
  if (plan.sock_close > 0.0 && rng.uniform() < plan.sock_close) {
    closes_.fetch_add(1, std::memory_order_relaxed);
    global_counter("chaosproxy.closes").add();
    obs::instant("chaosproxy", "close_fault", "conn",
                 static_cast<int>(conn.id));
    return false;
  }
  return true;
}

void ChaosProxy::pump_connection(Conn& conn) {
  std::vector<std::uint8_t> buffer(16 * 1024);
  // Per-lane chunk counters: client->server is the "outbound" lane (the
  // peer talking to the hub), server->client the "inbound" one.
  std::uint64_t out_index = 0;
  std::uint64_t in_index = 0;
  while (!closing_.load(std::memory_order_acquire) &&
         !conn.severed.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {conn.client_fd, POLLIN, 0};
    fds[1] = {conn.server_fd, POLLIN, 0};
    const int ready = ::poll(fds, 2, 200);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) break;
    if (ready == 0) continue;
    bool dead = false;
    for (int side = 0; side < 2 && !dead; ++side) {
      if ((fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int from = side == 0 ? conn.client_fd : conn.server_fd;
      const int to = side == 0 ? conn.server_fd : conn.client_fd;
      const ssize_t n = ::recv(from, buffer.data(), buffer.size(), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        dead = true;
        break;
      }
      const bool inbound = side == 1;
      const std::uint64_t index = inbound ? ++in_index : ++out_index;
      if (!forward_chunk(conn, inbound, index, to, buffer.data(),
                         static_cast<std::size_t>(n))) {
        dead = true;
      }
    }
    if (dead) break;
  }
  sever(conn);
}

void ChaosProxy::sever(Conn& conn) {
  if (conn.severed.exchange(true, std::memory_order_acq_rel)) return;
  // Abrupt, both sides: the hub must see the EOF promptly or it would keep
  // believing the old connection is alive and reject the re-announce.
  ::shutdown(conn.client_fd, SHUT_RDWR);
  ::shutdown(conn.server_fd, SHUT_RDWR);
}

void ChaosProxy::sever_all() {
  std::vector<Conn*> live;
  {
    std::lock_guard lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (!conn->severed.load(std::memory_order_acquire)) live.push_back(conn.get());
    }
  }
  for (Conn* conn : live) {
    severed_.fetch_add(1, std::memory_order_relaxed);
    global_counter("chaosproxy.severed").add();
    sever(*conn);
  }
}

void ChaosProxy::reap_finished() {
  // Joins pumps whose connection has been severed; called opportunistically
  // from the accept loop so a long-lived proxy does not accumulate threads.
  std::vector<std::unique_ptr<Conn>> done;
  {
    std::lock_guard lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->severed.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->pump.joinable()) conn->pump.join();
    ::close(conn->client_fd);
    ::close(conn->server_fd);
  }
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.delays = delays_.load(std::memory_order_relaxed);
  s.corruptions = corruptions_.load(std::memory_order_relaxed);
  s.closes = closes_.load(std::memory_order_relaxed);
  s.severed = severed_.load(std::memory_order_relaxed);
  s.refused = refused_.load(std::memory_order_relaxed);
  return s;
}

void ChaosProxy::close() {
  if (closing_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard lock(conns_mutex_);
  }
  partition_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (partition_thread_.joinable()) partition_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  sever_all();
  std::vector<std::unique_ptr<Conn>> all;
  {
    std::lock_guard lock(conns_mutex_);
    all.swap(conns_);
  }
  for (auto& conn : all) {
    if (conn->pump.joinable()) conn->pump.join();
    ::close(conn->client_fd);
    ::close(conn->server_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace fdml
