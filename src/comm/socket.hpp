// Cross-process TCP transport: the first backend of the comm seam that
// actually crosses the process boundary the seam exists for.
//
// Topology is a star, like the paper's PVM runs routing through pvmd: rank 0
// (the master process) listens on a TCP port and routes frames; every other
// rank connects to it, announces itself (kAnnounce -> kWelcome rendezvous
// handshake), and then exchanges length-framed messages (comm/wire.hpp).
// Each side runs one reader thread (robust partial-read loop feeding a
// FrameParser) and per-connection writer threads draining unbounded send
// queues, so Transport::send() never blocks on a slow receiver.
//
// Failure mapping (the PR 2 health machine does the rest):
//   - A peer dying (EOF/ECONNRESET at the hub) marks its route dead; frames
//     to it are dropped and counted. To the foreman the worker simply goes
//     silent, which the adaptive deadline turns into suspect -> quarantine.
//   - The hub dying closes every peer's connection; the peer's reader exits
//     and its mailbox closes, so recv() returns nullopt and the role loop
//     unwinds cleanly (the same "closed mailbox" contract ThreadFabric has).
//   - A malformed byte stream (bad magic, oversized length, digest
//     mismatch) poisons that connection only; it is dropped like a death.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "comm/wire.hpp"
#include "util/channel.hpp"

namespace fdml {

struct SocketOptions {
  /// This process's rank (0 = hub/master; see protocol.hpp rank layout).
  int rank = 0;
  /// Total ranks in the fabric (master + foreman + monitor + workers).
  int size = 0;
  /// Hub address peers connect to. The hub itself binds all interfaces.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Rendezvous budget: peers retry connecting every `connect_retry` until
  /// `connect_timeout` so launch order does not matter.
  std::chrono::milliseconds connect_timeout{15000};
  std::chrono::milliseconds connect_retry{100};
  /// Ceiling on one blocking socket write; a peer that stays unwritable
  /// this long is treated as dead (keeps shutdown from hanging on a stalled
  /// receiver that never drains its TCP buffer).
  std::chrono::milliseconds write_timeout{10000};
  /// Dial backoff cap: connect attempts back off exponentially from
  /// `connect_retry` with jitter, never sleeping longer than this between
  /// knocks (the overall budget stays `connect_timeout`).
  std::chrono::milliseconds connect_retry_max{2000};
  /// Hub-side slow-loris guard: a connection that completes TCP but has not
  /// delivered a full, valid announce within this window is timed out and
  /// closed instead of holding a reader slot forever.
  std::chrono::milliseconds handshake_timeout{5000};
  /// Peer-side reconnect-and-re-admission: when the hub connection drops
  /// (EOF, reset, framing error) and the fabric is not closing, redial and
  /// re-announce under bounded exponential backoff + jitter for up to
  /// `reconnect_budget` per outage instead of closing the mailbox at the
  /// first EOF. The hub re-admits a reconnecting rank whose previous
  /// connection is dead. Off by default: a plain cluster run treats hub
  /// loss as the end of the run.
  bool reconnect = false;
  std::chrono::milliseconds reconnect_backoff{50};
  std::chrono::milliseconds reconnect_backoff_max{2000};
  std::chrono::milliseconds reconnect_budget{10000};
};

/// Live traffic/lifecycle counters (fabric-local; the same values are also
/// published to the process metrics registry under "socket.*").
struct SocketFabricStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t connect_attempts = 0;
  std::uint64_t peer_deaths = 0;
  /// Frames dropped because their destination was dead or never announced
  /// by the time the fabric closed.
  std::uint64_t frames_dropped = 0;
  /// Connections dropped for a malformed byte stream.
  std::uint64_t frame_errors = 0;
  /// Hub: dead ranks accepted back on a fresh connection. Peer: successful
  /// reconnects to the hub after an outage.
  std::uint64_t readmissions = 0;
  /// Hub: connections closed for not completing the announce handshake
  /// within `handshake_timeout` (slow-loris guard).
  std::uint64_t handshake_timeouts = 0;
};

/// One process's endpoint of the TCP fabric. Construct with rank 0 to
/// listen (the constructor returns once the port is bound; peers may then
/// rendezvous at any time) or rank != 0 to connect (the constructor blocks
/// through the announce/welcome handshake and throws on timeout).
class SocketFabric {
 public:
  explicit SocketFabric(SocketOptions options);
  ~SocketFabric();

  SocketFabric(const SocketFabric&) = delete;
  SocketFabric& operator=(const SocketFabric&) = delete;

  int rank() const { return options_.rank; }
  int size() const { return options_.size; }

  /// The local Transport endpoint (one mailbox per process; endpoints
  /// borrow the fabric and must not outlive it).
  std::unique_ptr<Transport> endpoint();

  /// Hub only: blocks until every peer rank has completed the handshake.
  /// False on timeout (some rank never arrived).
  bool wait_ready(std::chrono::milliseconds timeout);

  /// Hub only: blocks until every announced peer has disconnected (their
  /// processes exited) or `timeout` elapsed. Lets the hub keep routing
  /// shutdown traffic until the fabric has actually drained.
  bool wait_peers_gone(std::chrono::milliseconds timeout);

  /// Ranks whose connection has died (EOF / reset / framing error). Hub
  /// only; used by tests and diagnostics.
  std::vector<int> dead_peers() const;

  /// Marks subsequent disconnects as orderly (not counted as peer deaths).
  /// The hub calls this right before broadcasting shutdown so only
  /// unexpected losses show up in stats().peer_deaths.
  void expect_departures() {
    expecting_departures_.store(true, std::memory_order_release);
  }

  SocketFabricStats stats() const;

  /// Flushes send queues, tears down every connection and closes the local
  /// mailbox (receivers drain then observe shutdown). Idempotent.
  void close();

 private:
  friend class SocketEndpoint;

  struct Peer {
    std::atomic<int> fd{-1};
    /// Connection generation, bumped on every (re)connect. A death report
    /// carries the generation it observed; a report for a superseded
    /// connection is a no-op, so a stale write failure on a retired fd can
    /// never kill the route's replacement connection.
    std::atomic<std::uint64_t> generation{0};
    std::atomic<bool> announced{false};
    std::atomic<bool> dead{false};
    /// A connection for this rank is mid-handshake (guarded by conn_mutex_);
    /// a racing announce for the same rank is rejected as a duplicate.
    bool handshaking = false;
    /// Encoded frames awaiting the writer thread. Exists from fabric
    /// construction so traffic to a rank that has not rendezvoused yet is
    /// buffered, then flushed in order when it announces.
    Channel<std::vector<std::uint8_t>> outbound;
    std::thread writer;
  };

  void send_message(int dest, MessageTag tag, std::vector<std::uint8_t> payload);
  void deliver_local(int source, MessageTag tag, std::vector<std::uint8_t> payload);

  void start_hub();
  void accept_loop();
  void hub_connection(int fd);
  void route_frame(WireFrame frame);

  void connect_to_hub();
  /// Knocks on the hub port until `deadline`, backing off exponentially
  /// from `base` (capped at `cap`, jittered). Returns the connected fd or
  /// -1 when the budget ran out or the fabric started closing.
  int dial_hub(std::chrono::steady_clock::time_point deadline,
               std::chrono::milliseconds base, std::chrono::milliseconds cap);
  /// Announce/welcome rendezvous over a freshly dialed fd, feeding
  /// peer_parser_ (data frames riding behind the welcome are delivered).
  bool handshake_with_hub(int fd, std::chrono::steady_clock::time_point deadline);
  /// Redials + re-announces after an outage, within reconnect_budget.
  /// True when a new connection is installed on peers_[0].
  bool reconnect_to_hub();
  void peer_reader_loop();

  void start_writer(Peer& peer);
  void writer_loop(Peer& peer);
  void mark_peer_dead(Peer& peer, std::uint64_t generation, const char* why);
  /// Parks an fd superseded by a reconnect (or a rejected handshake) until
  /// close(): retiring instead of closing means a thread still blocked on
  /// the old descriptor can never race a reused fd number.
  void retire_fd(int fd);

  bool write_all(int fd, const std::uint8_t* data, std::size_t size);

  SocketOptions options_;
  Channel<Message> mailbox_;

  std::atomic<bool> closing_{false};
  std::atomic<bool> expecting_departures_{false};
  std::mutex close_mutex_;
  bool closed_ = false;

  // --- hub state (rank 0) ---
  int listen_fd_ = -1;
  std::thread accept_thread_;
  /// Indexed by rank; [0] unused. Hub: every remote rank. Peer: only
  /// [0] (the hub connection) is live.
  std::vector<std::unique_ptr<Peer>> peers_;
  mutable std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  int announced_count_ = 0;
  int live_count_ = 0;
  std::vector<std::thread> conn_threads_;
  /// Superseded/rejected descriptors awaiting close() (see retire_fd).
  std::vector<int> retired_fds_;

  // --- peer state (rank != 0) ---
  std::thread reader_thread_;
  /// The hub connection's frame parser. Shared between the handshake and
  /// the reader loop: the hub may flush queued data frames right behind the
  /// welcome, and any of them read together with it (same recv()) must not
  /// be lost when the reader takes over mid-stream.
  FrameParser peer_parser_;

  // --- counters ---
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> connect_attempts_{0};
  std::atomic<std::uint64_t> peer_deaths_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> readmissions_{0};
  std::atomic<std::uint64_t> handshake_timeouts_{0};
};

}  // namespace fdml
