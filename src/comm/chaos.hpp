// Deterministic chaos engineering for the parallel runtime.
//
// ChaosTransport grows FaultyTransport's predicate hooks into a seeded,
// scriptable fault injector: drop, delay (deferred redelivery), duplicate,
// reorder, payload corruption, and crash-at-message-N worker death. Every
// fault decision is a pure function of (plan seed, rank, message index), so
// a failing schedule is replayable from its FaultPlan alone — the property
// the chaos test suite leans on to reproduce multi-day-run failures in
// milliseconds.
//
// Semantics, chosen to mirror the real failure modes of the paper's
// geographically distributed PVM deployments:
//   - drop:      the message silently never arrives (lossy link).
//   - delay:     the message arrives late, via a background delivery thread;
//                the sender never blocks (satellite fix over FaultyTransport).
//   - duplicate: the message arrives twice (retransmit storm).
//   - reorder:   the message is held for a short window so later traffic
//                overtakes it (out-of-order fabric).
//   - corrupt:   one payload byte is flipped (bit rot / truncated frame);
//                receivers detect this through the integrity footer.
//   - crash:     after N outbound sends the host dies — further sends are
//                swallowed, pending deliveries are discarded, and receives
//                report shutdown so the role loop exits.
//
// kHello and kShutdown are never faulted: hello loss is modelled by
// crash_after_sends <= 1, and faulting shutdown would only wedge teardown,
// which is not an interesting failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/deferred.hpp"
#include "comm/transport.hpp"

namespace fdml {

/// A serializable chaos schedule: probabilities per fault kind plus the seed
/// that makes the whole schedule reproducible. serialize()/parse() give a
/// single-line `chaos-plan v1 key=value ...` form for logs and CLI flags.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-message probabilities in [0, 1], evaluated independently.
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  /// Injected latency bounds for `delay` faults.
  std::uint32_t delay_min_ms = 1;
  std::uint32_t delay_max_ms = 20;
  /// How long a reordered message is held so later traffic overtakes it.
  std::uint32_t reorder_hold_ms = 10;
  /// Probability that a *received* kTask payload is corrupted (exercises the
  /// worker's NACK path; outbound `corrupt` covers the foreman's guard).
  double task_corrupt = 0.0;
  /// Host death: outbound send number `crash_after_sends` (1-based) and
  /// everything after it is swallowed, and receives report shutdown.
  /// 0 disables. 1 kills the worker before its hello.
  std::uint64_t crash_after_sends = 0;
  /// Filesystem faults (FaultVfs, src/durable/fault_vfs.hpp) — one plan
  /// line replays a failing crash schedule across the message fabric AND
  /// the durable layer. Probability a mutating durable op fails with EIO:
  double fs_error = 0.0;
  /// Probability a durable write persists only a seeded prefix of its
  /// bytes and then fails with ENOSPC.
  double fs_short_write = 0.0;
  /// Process death at the Nth (1-based) mutating durable op: the op takes
  /// partial effect (write truncated at a seeded offset, rename that may or
  /// may not land) and DurableCrash is thrown. 0 disables.
  std::uint64_t fs_crash_at_op = 0;
  /// Socket-layer faults (ChaosProxy, src/comm/chaos_proxy.hpp) — the same
  /// plan line drives a fault-injecting loopback proxy between socket-fabric
  /// peers and the hub. Per-forwarded-chunk probabilities:
  /// hold a chunk for a seeded delay in [delay_min_ms, delay_max_ms]:
  double sock_latency = 0.0;
  /// flip one byte of a chunk (the wire digest turns this into a dropped
  /// connection at the receiver, which then reconnects):
  double sock_corrupt = 0.0;
  /// sever the connection mid-stream (both directions, abrupt):
  double sock_close = 0.0;
  /// Timed transient partition: `sock_partition_ms` after proxy start (0 =
  /// never), every proxied connection is severed and new connects are
  /// refused for `sock_partition_ms` milliseconds.
  std::uint64_t sock_partition_at_ms = 0;
  std::uint64_t sock_partition_ms = 0;

  std::string serialize() const;
  static FaultPlan parse(const std::string& text);
};

/// What happened to one outbound message (for schedule-reproducibility
/// assertions and post-mortem logs).
struct FaultRecord {
  std::uint64_t message_index = 0;  // 1-based outbound send count
  MessageTag tag = MessageTag::kHello;
  bool dropped = false;
  bool duplicated = false;
  bool corrupted = false;
  bool reordered = false;
  std::uint32_t delay_ms = 0;   // 0 = delivered immediately
  std::uint32_t corrupt_offset = 0;

  bool operator==(const FaultRecord&) const = default;
};

/// Aggregate counters, shareable across the transports of a cluster.
struct ChaosTotals {
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> task_corruptions{0};
  std::atomic<std::uint64_t> crashes{0};
  std::atomic<std::uint64_t> swallowed_after_crash{0};
};

class ChaosTransport final : public Transport {
 public:
  /// The fault stream is keyed on `plan.seed` and the inner transport's
  /// rank, so one plan drives a whole cluster while each rank still sees an
  /// independent, reproducible schedule. `totals` is optional.
  ChaosTransport(std::unique_ptr<Transport> inner, FaultPlan plan,
                 std::shared_ptr<ChaosTotals> totals = nullptr);
  ~ChaosTransport() override;

  int rank() const override { return inner_->rank(); }
  int size() const override { return inner_->size(); }

  void send(int dest, MessageTag tag, std::vector<std::uint8_t> payload) override;
  std::optional<Message> recv() override;
  std::optional<Message> recv_for(std::chrono::milliseconds timeout) override;
  bool closed() const override;

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  const FaultPlan& plan() const { return plan_; }

  /// Per-message fault decisions, in outbound send order (thread-safe copy).
  std::vector<FaultRecord> fault_log() const;

 private:
  void crash();
  std::optional<Message> filter_inbound(std::optional<Message> message);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::shared_ptr<ChaosTotals> totals_;
  std::atomic<bool> crashed_{false};
  std::uint64_t send_index_ = 0;  // guarded by log_mutex_
  std::atomic<std::uint64_t> recv_index_{0};
  mutable std::mutex log_mutex_;
  std::vector<FaultRecord> log_;
  /// Declared last: joined (and flushed) before inner_ is destroyed.
  DeferredSender deferred_{*inner_};
};

}  // namespace fdml
