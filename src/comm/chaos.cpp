#include "comm/chaos.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace fdml {

namespace {

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  return splitmix64_next(state);
}

/// The whole point: a fault decision depends only on (seed, rank, direction,
/// message index), never on wall-clock time or thread interleaving.
std::uint64_t decision_seed(std::uint64_t seed, int rank, bool inbound,
                            std::uint64_t index) {
  const std::uint64_t lane =
      static_cast<std::uint64_t>(rank) * 2 + (inbound ? 1 : 0);
  return mix64(mix64(seed, lane), index);
}

void flip_byte(std::vector<std::uint8_t>& payload, Rng& rng,
               std::uint32_t& offset_out) {
  const std::uint64_t offset = rng.below(payload.size());
  const std::uint8_t mask =
      static_cast<std::uint8_t>(1u << static_cast<unsigned>(rng.below(8)));
  payload[static_cast<std::size_t>(offset)] ^= mask;
  offset_out = static_cast<std::uint32_t>(offset);
}

void append_kv(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%.17g", key, value);
  out += buffer;
}

void append_kv(std::string& out, const char* key, std::uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %s=%llu", key,
                static_cast<unsigned long long>(value));
  out += buffer;
}

}  // namespace

std::string FaultPlan::serialize() const {
  std::string out = "chaos-plan v1";
  append_kv(out, "seed", seed);
  append_kv(out, "drop", drop);
  append_kv(out, "dup", duplicate);
  append_kv(out, "corrupt", corrupt);
  append_kv(out, "reorder", reorder);
  append_kv(out, "delay", delay);
  append_kv(out, "delay_min_ms", static_cast<std::uint64_t>(delay_min_ms));
  append_kv(out, "delay_max_ms", static_cast<std::uint64_t>(delay_max_ms));
  append_kv(out, "reorder_hold_ms", static_cast<std::uint64_t>(reorder_hold_ms));
  append_kv(out, "task_corrupt", task_corrupt);
  append_kv(out, "crash_after", crash_after_sends);
  append_kv(out, "fs_error", fs_error);
  append_kv(out, "fs_short_write", fs_short_write);
  append_kv(out, "fs_crash_at_op", fs_crash_at_op);
  append_kv(out, "sock_latency", sock_latency);
  append_kv(out, "sock_corrupt", sock_corrupt);
  append_kv(out, "sock_close", sock_close);
  append_kv(out, "sock_partition_at_ms", sock_partition_at_ms);
  append_kv(out, "sock_partition_ms", sock_partition_ms);
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "chaos-plan" || version != "v1") {
    throw std::runtime_error("FaultPlan: bad header: " + text);
  }
  FaultPlan plan;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("FaultPlan: expected key=value, got " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "seed") plan.seed = std::stoull(value);
      else if (key == "drop") plan.drop = std::stod(value);
      else if (key == "dup" || key == "duplicate") plan.duplicate = std::stod(value);
      else if (key == "corrupt") plan.corrupt = std::stod(value);
      else if (key == "reorder") plan.reorder = std::stod(value);
      else if (key == "delay") plan.delay = std::stod(value);
      else if (key == "delay_min_ms") plan.delay_min_ms = static_cast<std::uint32_t>(std::stoul(value));
      else if (key == "delay_max_ms") plan.delay_max_ms = static_cast<std::uint32_t>(std::stoul(value));
      else if (key == "reorder_hold_ms") plan.reorder_hold_ms = static_cast<std::uint32_t>(std::stoul(value));
      else if (key == "task_corrupt") plan.task_corrupt = std::stod(value);
      else if (key == "crash_after" || key == "crash_after_sends") plan.crash_after_sends = std::stoull(value);
      else if (key == "fs_error") plan.fs_error = std::stod(value);
      else if (key == "fs_short_write") plan.fs_short_write = std::stod(value);
      else if (key == "fs_crash_at_op") plan.fs_crash_at_op = std::stoull(value);
      else if (key == "sock_latency") plan.sock_latency = std::stod(value);
      else if (key == "sock_corrupt") plan.sock_corrupt = std::stod(value);
      else if (key == "sock_close") plan.sock_close = std::stod(value);
      else if (key == "sock_partition_at_ms") plan.sock_partition_at_ms = std::stoull(value);
      else if (key == "sock_partition_ms") plan.sock_partition_ms = std::stoull(value);
      else throw std::runtime_error("FaultPlan: unknown key " + key);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("FaultPlan: bad value for " + key + ": " + value);
    }
  }
  return plan;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner, FaultPlan plan,
                               std::shared_ptr<ChaosTotals> totals)
    : inner_(std::move(inner)), plan_(plan), totals_(std::move(totals)) {}

ChaosTransport::~ChaosTransport() {
  // A crashed host's in-transit traffic died with it; a live one flushes.
  if (crashed()) deferred_.discard_pending();
  deferred_.stop(/*flush=*/!crashed());
}

void ChaosTransport::crash() {
  crashed_.store(true, std::memory_order_release);
  deferred_.discard_pending();
  if (totals_) totals_->crashes.fetch_add(1, std::memory_order_relaxed);
}

void ChaosTransport::send(int dest, MessageTag tag,
                          std::vector<std::uint8_t> payload) {
  if (crashed()) {
    if (totals_) totals_->swallowed_after_crash.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FaultRecord record;
  {
    std::lock_guard lock(log_mutex_);
    record.message_index = ++send_index_;
  }
  record.tag = tag;
  if (plan_.crash_after_sends != 0 &&
      record.message_index >= plan_.crash_after_sends) {
    crash();
    if (totals_) totals_->swallowed_after_crash.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Control tags pass untouched (see header).
  if (tag == MessageTag::kHello || tag == MessageTag::kShutdown) {
    inner_->send(dest, tag, std::move(payload));
    return;
  }

  Rng rng(decision_seed(plan_.seed, rank(), /*inbound=*/false,
                        record.message_index));
  // Fixed draw order — changing it changes every schedule, so don't.
  record.dropped = rng.uniform() < plan_.drop;
  const bool want_corrupt = rng.uniform() < plan_.corrupt;
  record.duplicated = rng.uniform() < plan_.duplicate;
  const bool want_delay = rng.uniform() < plan_.delay;
  const std::uint32_t delay_draw =
      plan_.delay_max_ms > plan_.delay_min_ms
          ? plan_.delay_min_ms +
                static_cast<std::uint32_t>(rng.below(
                    plan_.delay_max_ms - plan_.delay_min_ms + 1))
          : plan_.delay_min_ms;
  record.reordered = rng.uniform() < plan_.reorder;

  if (!record.dropped && want_corrupt && !payload.empty()) {
    flip_byte(payload, rng, record.corrupt_offset);
    record.corrupted = true;
  }
  if (want_delay) {
    record.delay_ms = delay_draw;
  } else if (record.reordered) {
    // Reordering is a short hold: anything sent inside the window overtakes
    // this message in the destination mailbox.
    record.delay_ms = plan_.reorder_hold_ms;
  }

  {
    std::lock_guard lock(log_mutex_);
    log_.push_back(record);
  }
  if (totals_) {
    if (record.dropped) totals_->drops.fetch_add(1, std::memory_order_relaxed);
    if (record.corrupted) totals_->corruptions.fetch_add(1, std::memory_order_relaxed);
    if (record.duplicated) totals_->duplicates.fetch_add(1, std::memory_order_relaxed);
    if (record.reordered) totals_->reorders.fetch_add(1, std::memory_order_relaxed);
    if (want_delay) totals_->delays.fetch_add(1, std::memory_order_relaxed);
  }
  if (record.dropped) return;

  const int copies = record.duplicated ? 2 : 1;
  for (int copy = 0; copy < copies; ++copy) {
    std::vector<std::uint8_t> bytes =
        (copy + 1 == copies) ? std::move(payload) : payload;
    if (record.delay_ms > 0) {
      deferred_.schedule(std::chrono::milliseconds(record.delay_ms), dest, tag,
                         std::move(bytes));
    } else {
      inner_->send(dest, tag, std::move(bytes));
    }
  }
}

std::optional<Message> ChaosTransport::filter_inbound(
    std::optional<Message> message) {
  if (crashed()) return std::nullopt;
  if (!message.has_value() || message->tag != MessageTag::kTask ||
      plan_.task_corrupt <= 0.0 || message->payload.empty()) {
    return message;
  }
  const std::uint64_t index = recv_index_.fetch_add(1, std::memory_order_relaxed) + 1;
  Rng rng(decision_seed(plan_.seed, rank(), /*inbound=*/true, index));
  if (rng.uniform() < plan_.task_corrupt) {
    std::uint32_t offset = 0;
    flip_byte(message->payload, rng, offset);
    if (totals_) totals_->task_corruptions.fetch_add(1, std::memory_order_relaxed);
  }
  return message;
}

std::optional<Message> ChaosTransport::recv() {
  if (crashed()) return std::nullopt;
  return filter_inbound(inner_->recv());
}

std::optional<Message> ChaosTransport::recv_for(std::chrono::milliseconds timeout) {
  if (crashed()) return std::nullopt;
  return filter_inbound(inner_->recv_for(timeout));
}

bool ChaosTransport::closed() const { return crashed() || inner_->closed(); }

std::vector<FaultRecord> ChaosTransport::fault_log() const {
  std::lock_guard lock(log_mutex_);
  return log_;
}

}  // namespace fdml
