// A fault-injecting TCP loopback proxy: the FaultPlan vocabulary applied to
// the socket layer.
//
// ChaosTransport perturbs *messages* inside one process; ChaosProxy perturbs
// *byte streams* between processes, which is where the interesting socket
// failures live: injected latency, flipped bytes (caught by the wire digest,
// surfacing as a dropped connection), mid-stream closes, and timed transient
// partitions. Peers dial the proxy's listen port instead of the hub; each
// accepted connection is paired with a fresh connection to the real hub and
// pumped in both directions, one fault decision per forwarded chunk.
//
// Determinism: every per-chunk decision is a pure function of (plan seed,
// connection index, direction, chunk index) — the same mixing discipline as
// ChaosTransport. Chunk *boundaries* depend on kernel timing, so two runs
// may fault different bytes; what is reproducible is the decision stream
// given the same chunking, and the plan line fully describes the intended
// fault mix for logs and CI.
//
// The partition window (sock_partition_at_ms/_ms) severs every proxied
// connection at its start and refuses new connects until it ends — the
// "transient network partition" the reconnect machinery must ride out.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/chaos.hpp"

namespace fdml {

struct ChaosProxyOptions {
  std::string listen_host = "127.0.0.1";
  /// 0 = pick an ephemeral port; read it back with port().
  std::uint16_t listen_port = 0;
  std::string target_host = "127.0.0.1";
  std::uint16_t target_port = 0;
  /// Only the sock_* fields (and delay_min_ms/delay_max_ms for latency
  /// bounds) are consulted.
  FaultPlan plan;
};

struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delays = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t closes = 0;
  /// Connections severed administratively (sever_all / partition onset).
  std::uint64_t severed = 0;
  /// Connects refused while the partition window was open.
  std::uint64_t refused = 0;
};

class ChaosProxy {
 public:
  /// Binds the listen port and starts proxying. Throws when the listen
  /// socket cannot be bound (the *target* may come up later; each proxied
  /// connection dials it on accept and drops the client if it is down).
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  std::uint16_t port() const { return port_; }

  /// Abruptly severs every live proxied connection (both directions), as a
  /// partition onset does. Deterministic tests use this instead of the
  /// probabilistic sock_close.
  void sever_all();

  /// True while inside the plan's partition window.
  bool partitioned() const;

  ChaosProxyStats stats() const;

  /// Stops accepting, severs everything, joins all pumps. Idempotent.
  void close();

 private:
  struct Conn {
    std::uint64_t id = 0;
    int client_fd = -1;
    int server_fd = -1;
    std::atomic<bool> severed{false};
    std::thread pump;
  };

  void accept_loop();
  void pump_connection(Conn& conn);
  /// Forwards one chunk with the lane's next fault decision applied.
  /// False when the connection should be severed (close fault or dead fd).
  bool forward_chunk(Conn& conn, bool inbound, std::uint64_t chunk_index,
                     int to_fd, std::uint8_t* data, std::size_t size);
  void sever(Conn& conn);
  int dial_target();
  void reap_finished();

  ChaosProxyOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread partition_thread_;
  std::atomic<bool> closing_{false};
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> in_partition_{false};

  mutable std::mutex conns_mutex_;
  std::condition_variable partition_cv_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> closes_{0};
  std::atomic<std::uint64_t> severed_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace fdml
