#include "comm/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace fdml {

namespace {

using Clock = std::chrono::steady_clock;

/// Global traffic counters (whole-process totals; the fabric also keeps its
/// own). Registered lazily, addresses stable for the process lifetime.
obs::Counter& global_counter(const char* name) {
  return obs::MetricsRegistry::process().counter(name);
}

void set_socket_options(int fd, std::chrono::milliseconds write_timeout) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound every blocking write: a receiver that stops draining its TCP
  // buffer must look like a dead peer, not wedge the writer thread forever.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(write_timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((write_timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

std::uint32_t read_u32_payload(const std::vector<std::uint8_t>& payload) {
  if (payload.size() != 4) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(payload[i]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> u32_payload(std::uint32_t v) {
  std::vector<std::uint8_t> payload(4);
  for (int i = 0; i < 4; ++i) payload[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return payload;
}

/// Jittered exponential backoff draw: uniform in [backoff/2, backoff], so a
/// fleet of peers knocked loose by the same outage does not re-dial in
/// lockstep (the thundering-herd classic).
std::chrono::milliseconds jittered(std::chrono::milliseconds backoff, Rng& rng) {
  const auto half = backoff.count() / 2;
  return std::chrono::milliseconds(
      half + static_cast<long long>(rng.below(
                 static_cast<std::uint64_t>(backoff.count() - half + 1))));
}

}  // namespace

/// The Transport face of a SocketFabric: one per-process mailbox, sends
/// routed over TCP (or locally for self-sends).
class SocketEndpoint final : public Transport {
 public:
  explicit SocketEndpoint(SocketFabric& fabric) : fabric_(fabric) {}

  int rank() const override { return fabric_.rank(); }
  int size() const override { return fabric_.size(); }

  void send(int dest, MessageTag tag, std::vector<std::uint8_t> payload) override {
    if (dest < 0 || dest >= fabric_.size()) {
      throw std::out_of_range("socket transport: bad destination rank");
    }
    fabric_.send_message(dest, tag, std::move(payload));
  }

  std::optional<Message> recv() override { return fabric_.mailbox_.recv(); }

  std::optional<Message> recv_for(std::chrono::milliseconds timeout) override {
    return fabric_.mailbox_.recv_for(timeout);
  }

  bool closed() const override { return fabric_.mailbox_.closed(); }

 private:
  SocketFabric& fabric_;
};

SocketFabric::SocketFabric(SocketOptions options) : options_(std::move(options)) {
  if (options_.size < 2) {
    throw std::invalid_argument("SocketFabric: need >= 2 ranks");
  }
  if (options_.rank < 0 || options_.rank >= options_.size) {
    throw std::invalid_argument("SocketFabric: rank out of range");
  }
  if (options_.port == 0) {
    throw std::invalid_argument("SocketFabric: port required");
  }
  peers_.resize(static_cast<std::size_t>(options_.size));
  for (auto& peer : peers_) peer = std::make_unique<Peer>();
  if (options_.rank == 0) {
    start_hub();
  } else {
    connect_to_hub();
  }
}

SocketFabric::~SocketFabric() { close(); }

std::unique_ptr<Transport> SocketFabric::endpoint() {
  return std::make_unique<SocketEndpoint>(*this);
}

// --- shared plumbing ---

bool SocketFabric::write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN here is the SO_SNDTIMEO write timeout: the receiver stopped
    // draining. Everything else (EPIPE, ECONNRESET) is a dead peer.
    return false;
  }
  return true;
}

void SocketFabric::deliver_local(int source, MessageTag tag,
                                 std::vector<std::uint8_t> payload) {
  Message message;
  message.source = source;
  message.tag = tag;
  message.payload = std::move(payload);
  if (!mailbox_.send(std::move(message))) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketFabric::send_message(int dest, MessageTag tag,
                                std::vector<std::uint8_t> payload) {
  if (dest == options_.rank) {
    deliver_local(options_.rank, tag, std::move(payload));
    return;
  }
  WireFrame frame;
  frame.kind = FrameKind::kData;
  frame.source = options_.rank;
  frame.dest = dest;
  frame.tag = tag;
  frame.payload = std::move(payload);
  auto bytes = encode_frame(frame);
  // Non-hub ranks have exactly one route: through the hub.
  Peer& route = options_.rank == 0 ? *peers_[static_cast<std::size_t>(dest)]
                                   : *peers_[0];
  if (route.dead.load(std::memory_order_acquire) ||
      !route.outbound.send(std::move(bytes))) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    global_counter("socket.frames_dropped").add();
  }
}

void SocketFabric::start_writer(Peer& peer) {
  peer.writer = std::thread([this, &peer] { writer_loop(peer); });
}

void SocketFabric::writer_loop(Peer& peer) {
  while (auto bytes = peer.outbound.recv()) {
    // Generation before fd: if a reconnect lands between the two loads the
    // write goes to the fresh connection (fine — the welcome already hit the
    // wire before the fd was installed) and a failure report carrying the
    // stale generation is ignored instead of killing the replacement.
    const std::uint64_t generation = peer.generation.load(std::memory_order_acquire);
    const int fd = peer.fd.load(std::memory_order_acquire);
    if (peer.dead.load(std::memory_order_acquire) || fd < 0) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;  // drain and discard: the connection is gone
    }
    if (!write_all(fd, bytes->data(), bytes->size())) {
      mark_peer_dead(peer, generation, "write failed");
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes->size(), std::memory_order_relaxed);
    global_counter("socket.frames_sent").add();
    global_counter("socket.bytes_sent").add(bytes->size());
  }
}

void SocketFabric::mark_peer_dead(Peer& peer, std::uint64_t generation,
                                  const char* why) {
  {
    std::lock_guard lock(conn_mutex_);
    if (peer.generation.load(std::memory_order_acquire) != generation) {
      return;  // a newer connection owns this route; the report is stale
    }
    if (peer.dead.exchange(true, std::memory_order_acq_rel)) return;
    const int fd = peer.fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (peer.announced.load(std::memory_order_acquire) && live_count_ > 0) {
      --live_count_;
    }
  }
  conn_cv_.notify_all();
  // Orderly departures (peers draining off after a shutdown broadcast, or
  // our own close) are not deaths: peer_deaths must mean unexpected loss so
  // the kill-a-worker CI assertion and the obs counters stay meaningful.
  const bool expected = closing_.load(std::memory_order_acquire) ||
                        expecting_departures_.load(std::memory_order_acquire);
  if (!expected) {
    peer_deaths_.fetch_add(1, std::memory_order_relaxed);
    global_counter("socket.peer_deaths").add();
    obs::instant("socket", "peer_death");
    FDML_WARN("socket") << "rank " << options_.rank << ": peer connection died ("
                        << why << ")";
  }
}

void SocketFabric::retire_fd(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard lock(conn_mutex_);
  retired_fds_.push_back(fd);
}

// --- hub (rank 0) ---

void SocketFabric::start_hub() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("SocketFabric: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("SocketFabric: bind(port " +
                             std::to_string(options_.port) + ") failed: " + error);
  }
  if (::listen(listen_fd_, options_.size) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("SocketFabric: listen() failed: " + error);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketFabric::accept_loop() {
  obs::set_thread_name("socket-accept");
  while (!closing_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_socket_options(fd, options_.write_timeout);
    obs::instant("socket", "accept");
    std::lock_guard lock(conn_mutex_);
    if (closing_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_threads_.emplace_back([this, fd] { hub_connection(fd); });
  }
}

/// Owns one inbound connection: handshake (first frame must announce a
/// valid, unclaimed rank), then route data frames until EOF or a framing
/// error. The fd is shut down on death but only closed at fabric close(),
/// so a racing shutdown can never hit a reused descriptor.
///
/// Two hardenings over the first version:
///   - Slow-loris guard: until the announce completes, reads run against a
///     handshake deadline; a connection that opens TCP and then stalls (or
///     trickles bytes) is timed out and closed instead of holding this
///     thread hostage forever.
///   - Re-admission: an announce for a rank whose previous connection died
///     is accepted as a reconnection (new fd, bumped generation) instead of
///     being rejected as a duplicate — the door a restarted or
///     partition-healed peer walks back in through.
void SocketFabric::hub_connection(int fd) {
  FrameParser parser;
  std::vector<std::uint8_t> buffer(64 * 1024);
  Peer* peer = nullptr;
  std::uint64_t generation = 0;
  const char* why = "eof";
  const auto handshake_deadline = Clock::now() + options_.handshake_timeout;
  for (;;) {
    if (peer == nullptr) {
      const auto now = Clock::now();
      if (now >= handshake_deadline) {
        why = "handshake timeout";
        handshake_timeouts_.fetch_add(1, std::memory_order_relaxed);
        global_counter("socket.handshake_timeouts").add();
        obs::instant("socket", "handshake_timeout");
        FDML_WARN("socket") << "hub: dropping connection that never finished "
                               "its announce";
        break;
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          handshake_deadline - now);
      const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) {
        why = "read error";
        break;
      }
      if (ready == 0) continue;  // loop re-checks the deadline
    }
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      why = "read error";
      break;
    }
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    std::vector<WireFrame> frames;
    if (!parser.feed(buffer.data(), static_cast<std::size_t>(n), frames)) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      global_counter("socket.frame_errors").add();
      obs::instant("socket", "frame_error");
      FDML_WARN("socket") << "hub: dropping connection with malformed stream ("
                          << wire_error_name(parser.error()) << ")";
      why = "framing error";
      break;
    }
    bool fatal = false;
    for (WireFrame& frame : frames) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      global_counter("socket.frames_received").add();
      if (peer == nullptr) {
        // Handshake: the first frame must claim a rank.
        if (frame.kind != FrameKind::kAnnounce || frame.source < 1 ||
            frame.source >= options_.size ||
            read_u32_payload(frame.payload) !=
                static_cast<std::uint32_t>(options_.size)) {
          FDML_WARN("socket") << "hub: rejecting connection with bad announce";
          why = "bad announce";
          fatal = true;
          break;
        }
        Peer& candidate = *peers_[static_cast<std::size_t>(frame.source)];
        // Claim the rank. A live connection (or one mid-handshake) makes
        // this a duplicate; a dead one makes it a re-admission.
        bool readmission = false;
        {
          std::lock_guard lock(conn_mutex_);
          const bool was_announced =
              candidate.announced.load(std::memory_order_acquire);
          const bool was_dead = candidate.dead.load(std::memory_order_acquire);
          if (candidate.handshaking || (was_announced && !was_dead)) {
            why = "duplicate rank";
            fatal = true;
          } else {
            candidate.handshaking = true;
            readmission = was_announced;
          }
        }
        if (fatal) {
          FDML_WARN("socket") << "hub: duplicate announce for rank "
                              << frame.source;
          break;
        }
        // Welcome must hit the wire before the fd is installed: the writer
        // thread (already running on a re-admission) is the only other
        // producer on this route, and it cannot touch the new fd until the
        // install below flips `dead` — so the welcome is always the
        // connection's first outbound frame.
        WireFrame welcome;
        welcome.kind = FrameKind::kWelcome;
        welcome.source = 0;
        welcome.dest = frame.source;
        welcome.payload = u32_payload(static_cast<std::uint32_t>(options_.size));
        const auto bytes = encode_frame(welcome);
        if (!write_all(fd, bytes.data(), bytes.size())) {
          std::lock_guard lock(conn_mutex_);
          candidate.handshaking = false;
          why = "welcome write failed";
          fatal = true;
          break;
        }
        {
          std::lock_guard lock(conn_mutex_);
          candidate.handshaking = false;
          const int old = candidate.fd.exchange(fd, std::memory_order_acq_rel);
          if (old >= 0 && old != fd) retired_fds_.push_back(old);
          generation =
              candidate.generation.fetch_add(1, std::memory_order_acq_rel) + 1;
          candidate.announced.store(true, std::memory_order_release);
          candidate.dead.store(false, std::memory_order_release);
          if (!readmission) ++announced_count_;
          ++live_count_;
        }
        if (!readmission) start_writer(candidate);
        peer = &candidate;
        conn_cv_.notify_all();
        if (readmission) {
          readmissions_.fetch_add(1, std::memory_order_relaxed);
          global_counter("socket.readmissions").add();
          obs::instant("socket", "readmission", "rank", frame.source);
          FDML_INFO("socket") << "hub: rank " << frame.source
                              << " re-admitted on a fresh connection";
        } else {
          obs::instant("socket", "announce", "rank", frame.source);
          FDML_INFO("socket") << "hub: rank " << frame.source << " joined ("
                              << announced_count_ << "/" << (options_.size - 1)
                              << ")";
        }
        continue;
      }
      if (frame.kind != FrameKind::kData) {
        frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      route_frame(std::move(frame));
    }
    if (fatal) break;
  }
  if (peer != nullptr) {
    mark_peer_dead(*peer, generation, why);
  } else {
    retire_fd(fd);
  }
}

void SocketFabric::route_frame(WireFrame frame) {
  if (frame.kind != FrameKind::kData || frame.dest < 0 ||
      frame.dest >= options_.size) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (frame.dest == 0) {
    deliver_local(frame.source, frame.tag, std::move(frame.payload));
    return;
  }
  Peer& route = *peers_[static_cast<std::size_t>(frame.dest)];
  auto bytes = encode_frame(frame);
  if (route.dead.load(std::memory_order_acquire) ||
      !route.outbound.send(std::move(bytes))) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    global_counter("socket.frames_dropped").add();
  }
}

bool SocketFabric::wait_ready(std::chrono::milliseconds timeout) {
  std::unique_lock lock(conn_mutex_);
  return conn_cv_.wait_for(lock, timeout, [&] {
    return announced_count_ >= options_.size - 1;
  });
}

bool SocketFabric::wait_peers_gone(std::chrono::milliseconds timeout) {
  std::unique_lock lock(conn_mutex_);
  return conn_cv_.wait_for(lock, timeout, [&] { return live_count_ == 0; });
}

std::vector<int> SocketFabric::dead_peers() const {
  std::vector<int> dead;
  for (int r = 0; r < options_.size; ++r) {
    const Peer& peer = *peers_[static_cast<std::size_t>(r)];
    if (peer.announced.load(std::memory_order_acquire) &&
        peer.dead.load(std::memory_order_acquire)) {
      dead.push_back(r);
    }
  }
  return dead;
}

// --- peer (rank != 0) ---

/// Knocking loop with bounded exponential backoff + jitter. The first
/// attempt fires immediately; each miss doubles the sleep from `base` up to
/// `cap`, jittered into [sleep/2, sleep] so simultaneously-orphaned peers
/// do not hammer the hub in lockstep. `deadline` is the overall budget
/// (--connect-timeout-ms on the first rendezvous, reconnect_budget later).
int SocketFabric::dial_hub(Clock::time_point deadline,
                           std::chrono::milliseconds base,
                           std::chrono::milliseconds cap) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = std::to_string(options_.port);
  if (::getaddrinfo(options_.host.c_str(), port_text.c_str(), &hints,
                    &resolved) != 0 ||
      resolved == nullptr) {
    throw std::runtime_error("SocketFabric: cannot resolve host " +
                             options_.host);
  }
  Rng rng(static_cast<std::uint64_t>(options_.rank) * 0x9e3779b9ULL +
          connect_attempts_.load(std::memory_order_relaxed) + 1);
  std::chrono::milliseconds backoff = std::max(base, std::chrono::milliseconds(1));
  int fd = -1;
  while (!closing_.load(std::memory_order_acquire)) {
    connect_attempts_.fetch_add(1, std::memory_order_relaxed);
    global_counter("socket.connect_attempts").add();
    obs::instant("socket", "connect_attempt", "rank", options_.rank);
    const int candidate = ::socket(AF_INET, SOCK_STREAM, 0);
    if (candidate >= 0 &&
        ::connect(candidate, resolved->ai_addr, resolved->ai_addrlen) == 0) {
      fd = candidate;
      break;
    }
    if (candidate >= 0) ::close(candidate);
    const auto now = Clock::now();
    if (now >= deadline) break;
    auto sleep = jittered(backoff, rng);
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (sleep > remaining) sleep = remaining;
    std::this_thread::sleep_for(sleep);
    backoff = std::min(backoff * 2, cap);
  }
  ::freeaddrinfo(resolved);
  return fd;
}

/// The announce/welcome rendezvous over a dialed fd. Uses the connection's
/// long-lived parser (peer_parser_): the hub starts flushing queued data
/// frames the moment the welcome is written, so frames that arrive in the
/// same recv() — or a partial one straddling the handoff — must survive
/// into the reader loop. The caller resets the parser first on a
/// reconnect (new connection, new byte stream).
bool SocketFabric::handshake_with_hub(int fd, Clock::time_point deadline) {
  WireFrame announce;
  announce.kind = FrameKind::kAnnounce;
  announce.source = options_.rank;
  announce.dest = 0;
  announce.payload = u32_payload(static_cast<std::uint32_t>(options_.size));
  const auto announce_bytes = encode_frame(announce);
  if (!write_all(fd, announce_bytes.data(), announce_bytes.size())) {
    return false;
  }
  std::vector<std::uint8_t> buffer(4096);
  while (true) {
    const auto now = Clock::now();
    if (now >= deadline) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const int ready = ::poll(&pfd, 1, static_cast<int>(wait.count()) + 1);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n <= 0) return false;
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    std::vector<WireFrame> frames;
    if (!peer_parser_.feed(buffer.data(), static_cast<std::size_t>(n), frames)) {
      return false;
    }
    bool welcomed = false;
    for (WireFrame& frame : frames) {
      if (frame.kind == FrameKind::kWelcome &&
          read_u32_payload(frame.payload) ==
              static_cast<std::uint32_t>(options_.size)) {
        welcomed = true;
        continue;
      }
      // Data already riding behind the welcome: deliver it now, exactly as
      // the reader loop would have.
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      global_counter("socket.frames_received").add();
      if (frame.kind != FrameKind::kData || frame.dest != options_.rank) {
        frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      deliver_local(frame.source, frame.tag, std::move(frame.payload));
    }
    if (welcomed) return true;
  }
}

void SocketFabric::connect_to_hub() {
  obs::Span span("socket", "rendezvous", "rank", options_.rank);
  const auto deadline = Clock::now() + options_.connect_timeout;
  Peer& hub = *peers_[0];
  bool reached_hub = false;
  // A TCP connect that succeeds but whose handshake dies (a lossy path, or
  // the hub mid-restart) is retried like a refused connect: the whole
  // rendezvous shares the connect_timeout budget.
  while (Clock::now() < deadline) {
    const int fd =
        dial_hub(deadline, options_.connect_retry, options_.connect_retry_max);
    if (fd < 0) break;
    reached_hub = true;
    set_socket_options(fd, options_.write_timeout);
    peer_parser_ = FrameParser{};  // each attempt is a fresh byte stream
    if (!handshake_with_hub(fd, deadline)) {
      ::close(fd);
      continue;
    }
    hub.fd.store(fd, std::memory_order_release);
    hub.generation.fetch_add(1, std::memory_order_acq_rel);
    hub.announced.store(true, std::memory_order_release);
    obs::instant("socket", "connected", "rank", options_.rank);
    start_writer(hub);
    reader_thread_ = std::thread([this] { peer_reader_loop(); });
    return;
  }
  if (!reached_hub) {
    throw std::runtime_error(
        "SocketFabric: rank " + std::to_string(options_.rank) +
        " could not reach hub " + options_.host + ":" +
        std::to_string(options_.port) + " within " +
        std::to_string(options_.connect_timeout.count()) + " ms");
  }
  throw std::runtime_error("SocketFabric: rank " +
                           std::to_string(options_.rank) +
                           " handshake failed (no welcome from hub)");
}

/// Post-outage redial: bounded exponential backoff + jitter within
/// reconnect_budget, then a fresh announce/welcome handshake (the hub
/// re-admits us because our old connection is dead there). On success the
/// new fd is installed under the connection lock with a bumped generation,
/// and the writer thread — which kept draining and discarding while the
/// route was dead — simply resumes.
bool SocketFabric::reconnect_to_hub() {
  Peer& hub = *peers_[0];
  const auto deadline = Clock::now() + options_.reconnect_budget;
  while (!closing_.load(std::memory_order_acquire) && Clock::now() < deadline) {
    const int fd = dial_hub(deadline, options_.reconnect_backoff,
                            options_.reconnect_backoff_max);
    if (fd < 0) break;
    set_socket_options(fd, options_.write_timeout);
    peer_parser_ = FrameParser{};  // new connection, new byte stream
    if (!handshake_with_hub(fd, deadline)) {
      // The hub may still think our old connection is alive (it has not
      // seen the EOF yet) and reject the re-announce; retire this attempt
      // and keep knocking until the budget runs out.
      retire_fd(fd);
      continue;
    }
    {
      std::lock_guard lock(conn_mutex_);
      const int old = hub.fd.exchange(fd, std::memory_order_acq_rel);
      if (old >= 0 && old != fd) retired_fds_.push_back(old);
      hub.generation.fetch_add(1, std::memory_order_acq_rel);
      hub.dead.store(false, std::memory_order_release);
    }
    readmissions_.fetch_add(1, std::memory_order_relaxed);
    global_counter("socket.readmissions").add();
    obs::instant("socket", "reconnected", "rank", options_.rank);
    FDML_INFO("socket") << "rank " << options_.rank
                        << ": reconnected to the hub";
    return true;
  }
  return false;
}

void SocketFabric::peer_reader_loop() {
  Peer& hub = *peers_[0];
  std::vector<std::uint8_t> buffer(64 * 1024);
  for (;;) {
    const int fd = hub.fd.load(std::memory_order_acquire);
    const std::uint64_t generation =
        hub.generation.load(std::memory_order_acquire);
    FrameParser& parser = peer_parser_;  // continues the handshake's stream
    const char* why = "eof";
    for (;;) {
      const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        why = "read error";
        break;
      }
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      std::vector<WireFrame> frames;
      if (!parser.feed(buffer.data(), static_cast<std::size_t>(n), frames)) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        global_counter("socket.frame_errors").add();
        why = "framing error";
        break;
      }
      for (WireFrame& frame : frames) {
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        global_counter("socket.frames_received").add();
        if (frame.kind != FrameKind::kData || frame.dest != options_.rank) {
          frames_dropped_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        deliver_local(frame.source, frame.tag, std::move(frame.payload));
      }
    }
    mark_peer_dead(hub, generation, why);
    // Reconnect-and-re-admission: bounded backoff within the outage budget.
    // In-flight frames died with the old connection (the health machine's
    // requeue/ping machinery re-covers them); the mailbox stays open so the
    // role loop only sees a silence, not a shutdown.
    if (closing_.load(std::memory_order_acquire) || !options_.reconnect) break;
    if (!reconnect_to_hub()) break;
  }
  // The hub is gone for good (or we are closing): the fabric is over for
  // this process. Closing the mailbox is what surfaces it — recv() returns
  // nullopt and the role loop unwinds.
  mailbox_.close();
}

// --- teardown ---

void SocketFabric::close() {
  {
    std::lock_guard lock(close_mutex_);
    if (closed_) return;
    closed_ = true;
  }
  closing_.store(true, std::memory_order_release);

  // Flush first: closing an outbound channel lets its writer drain every
  // queued frame (a worker's goodbye, the foreman's last round report)
  // before the socket goes away.
  for (auto& peer : peers_) {
    if (peer) peer->outbound.close();
  }
  for (auto& peer : peers_) {
    if (peer && peer->writer.joinable()) peer->writer.join();
  }

  if (options_.rank == 0) {
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& peer : peers_) {
      const int fd = peer ? peer->fd.load(std::memory_order_acquire) : -1;
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> conns;
    {
      std::lock_guard lock(conn_mutex_);
      conns.swap(conn_threads_);
    }
    for (auto& thread : conns) {
      if (thread.joinable()) thread.join();
    }
    for (auto& peer : peers_) {
      const int fd = peer ? peer->fd.exchange(-1, std::memory_order_acq_rel) : -1;
      if (fd >= 0) ::close(fd);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  } else {
    const int fd = peers_[0]->fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (reader_thread_.joinable()) reader_thread_.join();
    const int closing_fd = peers_[0]->fd.exchange(-1, std::memory_order_acq_rel);
    if (closing_fd >= 0) ::close(closing_fd);
  }
  // Every thread that could have been blocked on a retired descriptor has
  // joined by now; the parked fds can finally be returned to the kernel.
  std::vector<int> retired;
  {
    std::lock_guard lock(conn_mutex_);
    retired.swap(retired_fds_);
  }
  for (const int fd : retired) ::close(fd);
  mailbox_.close();
}

SocketFabricStats SocketFabric::stats() const {
  SocketFabricStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.connect_attempts = connect_attempts_.load(std::memory_order_relaxed);
  s.peer_deaths = peer_deaths_.load(std::memory_order_relaxed);
  s.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  s.readmissions = readmissions_.load(std::memory_order_relaxed);
  s.handshake_timeouts = handshake_timeouts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fdml
