// Wire messages for the parallel runtime.
//
// The paper sequesters every message-passing call behind one interface per
// backend (comm_serial.c / comm_pvm.c / comm_mpi.c) so the program modules
// never see a particular library. This module is that seam: Transport is
// the interface, and backends (in-process threads here; MPI/PVM would slot
// in the same way) implement it.
#pragma once

#include <cstdint>
#include <vector>

namespace fdml {

enum class MessageTag : std::uint8_t {
  kHello = 1,        ///< worker -> foreman: ready for work
  kTask = 2,         ///< foreman -> worker: evaluate this tree
  kResult = 3,       ///< worker -> foreman: optimized tree + lnL
  kRound = 4,        ///< master -> foreman: a round of tasks
  kRoundDone = 5,    ///< foreman -> master: best tree + per-task stats
  kMonitorEvent = 6, ///< foreman -> monitor: instrumentation record
  kShutdown = 7,     ///< master -> everyone: terminate cleanly
  kProgress = 8,     ///< foreman -> master: round liveness heartbeat
  kRoundFailed = 9,  ///< foreman -> master: round cannot complete
  kNack = 10,        ///< worker -> foreman: received task was malformed
  kPing = 11,        ///< foreman -> worker: announce yourself (a revived
                     ///< foreman rebuilding its worker list after a crash)
  kGoodbye = 12,     ///< worker -> foreman: end-of-run report (tasks done,
                     ///< CPU time, kernel counters) sent on shutdown
  // Service-plane tags (src/service/): client <-> fdmld job traffic. These
  // ride the same wire framing but never cross the foreman/worker fabric.
  kSubmit = 13,       ///< client -> service: submit a search job
  kJobAccepted = 14,  ///< service -> client: admitted (payload: job id)
  kJobRejected = 15,  ///< service -> client: shed (payload: reason)
  kJobDone = 16,      ///< service -> client: outcome (tree, lnL, status)
  kStatsQuery = 17,   ///< client -> service: request a metrics snapshot
  kStatsReply = 18,   ///< service -> client: metrics snapshot JSON
  // Telemetry plane (PR 10): periodic per-rank metric deltas ride the
  // fabric to rank 0; scrape clients pull Prometheus text over the
  // service wire.
  kTelemetry = 19,    ///< worker/foreman -> master: periodic MetricsRegistry
                      ///< delta frame (obs/telemetry.hpp codec)
  kMetricsQuery = 20, ///< client -> service: request Prometheus exposition
  kMetricsReply = 21, ///< service -> client: Prometheus text format
};

struct Message {
  int source = -1;
  MessageTag tag = MessageTag::kHello;
  std::vector<std::uint8_t> payload;
};

}  // namespace fdml
