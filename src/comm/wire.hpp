// Length-framed wire encoding for the cross-process socket transport.
//
// Every frame that crosses a TCP connection is:
//
//   offset  0  u32  magic "FDML" (little-endian 0x4C4D4446)
//   offset  4  u8   version (kWireVersion)
//   offset  5  u8   kind (announce / welcome / data)
//   offset  6  u8   message tag (MessageTag, data frames only)
//   offset  7  u8   reserved (0)
//   offset  8  i32  source rank
//   offset 12  i32  destination rank
//   offset 16  u32  payload length
//   offset 20  ...  payload bytes
//   tail       u64  FNV-1a digest over everything above (header + payload)
//
// The codec is pure (no sockets) so the corrupt-wire corpus tests can drive
// it byte by byte: FrameParser is an incremental decoder that accepts
// arbitrary partial reads, and every malformed condition — bad magic, bad
// version, a length prefix beyond kWireMaxPayload, a digest mismatch — is a
// clean WireError instead of a crash or a corruption-sized allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/message.hpp"

namespace fdml {

inline constexpr std::uint32_t kWireMagic = 0x4C4D4446u;  // "FDML"
inline constexpr std::uint8_t kWireVersion = 1;
/// Hard ceiling on a frame's payload. Protocol messages are kilobytes; a
/// length prefix above this is a corrupt or hostile stream, rejected before
/// any allocation is sized by it.
inline constexpr std::uint32_t kWireMaxPayload = 64u << 20;
inline constexpr std::size_t kWireHeaderSize = 20;
inline constexpr std::size_t kWireFooterSize = 8;

enum class FrameKind : std::uint8_t {
  /// First frame on every connection: peer -> hub, announcing its rank.
  kAnnounce = 1,
  /// Hub -> peer reply to an accepted announce; payload is the fabric size
  /// (u32) so both sides agree on the world they joined.
  kWelcome = 2,
  /// A routed Transport message.
  kData = 3,
};

struct WireFrame {
  FrameKind kind = FrameKind::kData;
  int source = -1;
  int dest = -1;
  MessageTag tag = MessageTag::kHello;
  std::vector<std::uint8_t> payload;
};

/// Serializes a frame (header + payload + digest footer).
std::vector<std::uint8_t> encode_frame(const WireFrame& frame);

/// Why a stream was rejected (kept as an enum so tests can assert the
/// parser fails for the *right* reason).
enum class WireError {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadKind,
  kOversizedPayload,
  kDigestMismatch,
};

const char* wire_error_name(WireError error);

/// Incremental frame decoder. Feed it whatever the socket produced — one
/// byte or one megabyte at a time — and it emits complete frames as they
/// close. A malformed stream poisons the parser (framing can no longer be
/// trusted, so the connection must be dropped).
class FrameParser {
 public:
  /// Appends `size` bytes and decodes every complete frame into `out`.
  /// Returns false once the stream is malformed; `error()` says why.
  bool feed(const std::uint8_t* data, std::size_t size,
            std::vector<WireFrame>& out);

  WireError error() const { return error_; }
  /// Bytes buffered awaiting the rest of a frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  WireError error_ = WireError::kNone;
};

}  // namespace fdml
