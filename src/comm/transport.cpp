#include "comm/transport.hpp"

#include <atomic>
#include <stdexcept>

namespace fdml {

class ThreadEndpoint final : public Transport {
 public:
  ThreadEndpoint(ThreadFabric& fabric, int rank) : fabric_(fabric), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return fabric_.size(); }

  void send(int dest, MessageTag tag, std::vector<std::uint8_t> payload) override {
    if (dest < 0 || dest >= fabric_.size()) {
      throw std::out_of_range("transport: bad destination rank");
    }
    fabric_.messages_.fetch_add(1, std::memory_order_relaxed);
    fabric_.bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
    Message message;
    message.source = rank_;
    message.tag = tag;
    message.payload = std::move(payload);
    fabric_.mailboxes_[static_cast<std::size_t>(dest)]->send(std::move(message));
  }

  std::optional<Message> recv() override {
    return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]->recv();
  }

  std::optional<Message> recv_for(std::chrono::milliseconds timeout) override {
    return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]->recv_for(timeout);
  }

  bool closed() const override {
    return fabric_.mailboxes_[static_cast<std::size_t>(rank_)]->closed();
  }

 private:
  ThreadFabric& fabric_;
  int rank_;
};

ThreadFabric::ThreadFabric(int size) {
  if (size < 2) throw std::invalid_argument("ThreadFabric: need >= 2 ranks");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Channel<Message>>());
  }
}

ThreadFabric::~ThreadFabric() { close(); }

std::unique_ptr<Transport> ThreadFabric::endpoint(int rank) {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("ThreadFabric: bad rank");
  }
  return std::make_unique<ThreadEndpoint>(*this, rank);
}

void ThreadFabric::close() {
  for (auto& mailbox : mailboxes_) mailbox->close();
}

std::uint64_t ThreadFabric::messages_sent() const {
  return messages_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadFabric::bytes_sent() const {
  return bytes_.load(std::memory_order_relaxed);
}

}  // namespace fdml
