#include "viz/layout.hpp"

#include <algorithm>
#include <cmath>

namespace fdml {

TreeLayout rectangular_layout(const GeneralTree& tree, bool use_branch_lengths) {
  TreeLayout layout;
  layout.positions.resize(tree.size());
  if (tree.empty()) return layout;

  // x: depth from root.
  for (int id : tree.preorder()) {
    const auto& node = tree.node(id);
    const double step = use_branch_lengths ? node.length : 1.0;
    layout.positions[static_cast<std::size_t>(id)].x =
        id == tree.root()
            ? 0.0
            : layout.positions[static_cast<std::size_t>(node.parent)].x + step;
  }
  // y: leaves at consecutive ranks, internal nodes centered.
  double next_rank = 0.0;
  for (int id : tree.postorder()) {
    auto& point = layout.positions[static_cast<std::size_t>(id)];
    const auto& node = tree.node(id);
    if (node.children.empty()) {
      point.y = next_rank;
      next_rank += 1.0;
    } else {
      double lo = 1e300;
      double hi = -1e300;
      for (int child : node.children) {
        const double y = layout.positions[static_cast<std::size_t>(child)].y;
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
      point.y = 0.5 * (lo + hi);
    }
  }
  for (const auto& point : layout.positions) {
    layout.width = std::max(layout.width, point.x);
    layout.height = std::max(layout.height, point.y);
  }
  return layout;
}

TreeLayout equal_angle_layout(const GeneralTree& tree, bool use_branch_lengths) {
  TreeLayout layout;
  layout.positions.resize(tree.size());
  if (tree.empty()) return layout;

  // Leaf counts per subtree.
  std::vector<int> leaf_count(tree.size(), 0);
  for (int id : tree.postorder()) {
    const auto& node = tree.node(id);
    if (node.children.empty()) {
      leaf_count[static_cast<std::size_t>(id)] = 1;
    } else {
      for (int child : node.children) {
        leaf_count[static_cast<std::size_t>(id)] +=
            leaf_count[static_cast<std::size_t>(child)];
      }
    }
  }

  // Assign each subtree a wedge proportional to its leaves and place each
  // node along the bisector of its wedge, at its branch-length radius.
  struct Wedge {
    int id;
    double from;
    double to;
  };
  std::vector<Wedge> stack{{tree.root(), 0.0, 2.0 * M_PI}};
  layout.positions[static_cast<std::size_t>(tree.root())] = {0.0, 0.0};
  while (!stack.empty()) {
    const Wedge wedge = stack.back();
    stack.pop_back();
    const auto& node = tree.node(wedge.id);
    const auto& origin = layout.positions[static_cast<std::size_t>(wedge.id)];
    double angle = wedge.from;
    const int total =
        std::max(1, leaf_count[static_cast<std::size_t>(wedge.id)]);
    for (int child : node.children) {
      const double share = (wedge.to - wedge.from) *
                           leaf_count[static_cast<std::size_t>(child)] / total;
      const double mid = angle + 0.5 * share;
      const double radius =
          use_branch_lengths ? std::max(tree.node(child).length, 1e-6) : 1.0;
      layout.positions[static_cast<std::size_t>(child)] = {
          origin.x + radius * std::cos(mid), origin.y + radius * std::sin(mid)};
      stack.push_back({child, angle, angle + share});
      angle += share;
    }
  }

  // Normalize to a positive bounding box.
  double min_x = 1e300;
  double min_y = 1e300;
  double max_x = -1e300;
  double max_y = -1e300;
  for (const auto& point : layout.positions) {
    min_x = std::min(min_x, point.x);
    min_y = std::min(min_y, point.y);
    max_x = std::max(max_x, point.x);
    max_y = std::max(max_y, point.y);
  }
  for (auto& point : layout.positions) {
    point.x -= min_x;
    point.y -= min_y;
  }
  layout.width = max_x - min_x;
  layout.height = max_y - min_y;
  return layout;
}

}  // namespace fdml
