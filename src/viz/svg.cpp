#include "viz/svg.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "viz/layout.hpp"

namespace fdml {

namespace {

const char* kTraceColors[] = {"#d62728", "#1f77b4", "#2ca02c", "#ff7f0e",
                              "#9467bd", "#8c564b", "#e377c2", "#17becf"};

std::string escape_xml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

struct PanelGeometry {
  TreeLayout layout;
  double offset_x = 0.0;
  double offset_y = 0.0;
  double scale_x = 1.0;
  double scale_y = 1.0;

  LayoutPoint at(int id) const {
    const auto& p = layout.positions[static_cast<std::size_t>(id)];
    return {offset_x + p.x * scale_x, offset_y + p.y * scale_y};
  }
};

PanelGeometry fit_panel(const GeneralTree& tree, const SvgOptions& options,
                        double offset_x, double offset_y) {
  PanelGeometry geometry;
  geometry.layout = options.radial
                        ? equal_angle_layout(tree, options.use_branch_lengths)
                        : rectangular_layout(tree, options.use_branch_lengths);
  const double usable_w = options.panel_width - 2.0 * options.margin - 70.0;
  const double usable_h = options.panel_height - 2.0 * options.margin;
  geometry.scale_x =
      geometry.layout.width > 0 ? usable_w / geometry.layout.width : 1.0;
  geometry.scale_y =
      geometry.layout.height > 0 ? usable_h / geometry.layout.height : 1.0;
  if (options.radial) {
    // Keep the aspect ratio for radial layouts.
    geometry.scale_x = geometry.scale_y =
        std::min(geometry.scale_x, geometry.scale_y);
  }
  geometry.offset_x = offset_x + options.margin;
  geometry.offset_y = offset_y + options.margin;
  return geometry;
}

void draw_tree(std::ostringstream& svg, const GeneralTree& tree,
               const PanelGeometry& geometry, const SvgOptions& options) {
  for (int id : tree.preorder()) {
    const auto& node = tree.node(id);
    if (id != tree.root()) {
      const LayoutPoint parent = geometry.at(node.parent);
      const LayoutPoint self = geometry.at(id);
      if (options.radial) {
        svg << "<line x1='" << fmt(parent.x) << "' y1='" << fmt(parent.y)
            << "' x2='" << fmt(self.x) << "' y2='" << fmt(self.y)
            << "' stroke='#333' stroke-width='1.2'/>\n";
      } else {
        // Right-angle phylogram: vertical at the parent, then horizontal.
        svg << "<path d='M " << fmt(parent.x) << " " << fmt(parent.y) << " V "
            << fmt(self.y) << " H " << fmt(self.x)
            << "' fill='none' stroke='#333' stroke-width='1.2'/>\n";
      }
    }
    if (node.children.empty()) {
      const LayoutPoint self = geometry.at(id);
      svg << "<text x='" << fmt(self.x + 4) << "' y='" << fmt(self.y + 3)
          << "' font-size='9' font-family='sans-serif'>"
          << escape_xml(node.label) << "</text>\n";
    } else if (options.show_support && !std::isnan(node.support)) {
      const LayoutPoint self = geometry.at(id);
      svg << "<text x='" << fmt(self.x + 2) << "' y='" << fmt(self.y - 2)
          << "' font-size='8' fill='#777' font-family='sans-serif'>"
          << fmt(100.0 * node.support) << "</text>\n";
    }
  }
}

}  // namespace

std::string render_svg(const GeneralTree& tree, const SvgOptions& options) {
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << fmt(options.panel_width) << "' height='" << fmt(options.panel_height)
      << "'>\n";
  const PanelGeometry geometry = fit_panel(tree, options, 0.0, 0.0);
  draw_tree(svg, tree, geometry, options);
  svg << "</svg>\n";
  return svg.str();
}

std::string render_comparison_svg(std::vector<GeneralTree> trees,
                                  const std::vector<std::string>& traced_taxa,
                                  const std::vector<std::string>& titles,
                                  const SvgOptions& options) {
  std::ostringstream svg;
  const double total_width = options.panel_width * trees.size();
  const double total_height = options.panel_height + 18.0;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << fmt(total_width)
      << "' height='" << fmt(total_height) << "'>\n";

  std::vector<PanelGeometry> panels;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    // Pivot normalization: differences that remain are real topology
    // differences, not reversed branch orderings.
    trees[t].canonicalize();
    const double offset_x = options.panel_width * static_cast<double>(t);
    panels.push_back(fit_panel(trees[t], options, offset_x, 16.0));
    if (t < titles.size()) {
      svg << "<text x='" << fmt(offset_x + options.margin) << "' y='12'"
          << " font-size='11' font-family='sans-serif' font-weight='bold'>"
          << escape_xml(titles[t]) << "</text>\n";
    }
    draw_tree(svg, trees[t], panels.back(), options);
  }

  // Taxon traces across panels.
  for (std::size_t k = 0; k < traced_taxa.size(); ++k) {
    const char* color = kTraceColors[k % (sizeof(kTraceColors) / sizeof(char*))];
    std::ostringstream points;
    bool found_any = false;
    for (std::size_t t = 0; t < trees.size(); ++t) {
      for (int id : trees[t].leaves()) {
        if (trees[t].node(id).label != traced_taxa[k]) continue;
        const LayoutPoint p = panels[t].at(id);
        points << fmt(p.x) << "," << fmt(p.y) << " ";
        svg << "<circle cx='" << fmt(p.x) << "' cy='" << fmt(p.y)
            << "' r='3' fill='" << color << "'/>\n";
        found_any = true;
        break;
      }
    }
    if (found_any) {
      svg << "<polyline points='" << points.str() << "' fill='none' stroke='"
          << color << "' stroke-width='1' stroke-dasharray='4 3' opacity='0.7'/>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace fdml
