// Plain-text tree rendering for terminals and logs.
#pragma once

#include <string>

#include "tree/general_tree.hpp"

namespace fdml {

struct AsciiOptions {
  /// Character columns available for the tree body (labels extra).
  int width = 60;
  bool use_branch_lengths = true;
  /// Show support values (e.g. consensus frequencies) at internal nodes.
  bool show_support = false;
};

/// Renders a rooted tree as text art, one leaf per line.
std::string render_ascii(const GeneralTree& tree, const AsciiOptions& options = {});

}  // namespace fdml
