// SVG rendering: single trees and the paper's multi-tree comparison view.
//
// The paper's second viewer application loads "any number of tree files ...
// arranged for direct visual comparison" with the ability to "trace
// individual taxa or groups of taxa across multiple trees" (Figure 5).
// render_comparison_svg reproduces that: one panel per tree, with traced
// taxa connected by colored polylines across panels. Trees are
// canonicalized first (the viewer's subtree "pivot"), so drawings differ
// only where topologies actually differ.
#pragma once

#include <string>
#include <vector>

#include "tree/general_tree.hpp"

namespace fdml {

struct SvgOptions {
  double panel_width = 360.0;
  double panel_height = 300.0;
  double margin = 28.0;
  bool use_branch_lengths = true;
  /// "rect" phylogram or "radial" equal-angle.
  bool radial = false;
  bool show_support = false;
};

/// One tree as a standalone SVG document.
std::string render_svg(const GeneralTree& tree, const SvgOptions& options = {});

/// Side-by-side panels with taxon traces. `traced_taxa` lists leaf labels
/// to connect across panels (each gets a distinct color). `titles` may be
/// empty or one per tree.
std::string render_comparison_svg(std::vector<GeneralTree> trees,
                                  const std::vector<std::string>& traced_taxa,
                                  const std::vector<std::string>& titles = {},
                                  const SvgOptions& options = {});

}  // namespace fdml
