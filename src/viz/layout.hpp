// Planar tree layouts for the viewer. The paper's companion tool converts
// "ASCII-encoded tree files into planar 3D representations"; the geometry
// underneath is a 2D embedding per tree, which these functions compute:
// a rectangular (phylogram) layout for rooted display and the classic
// equal-angle layout for unrooted display.
#pragma once

#include <vector>

#include "tree/general_tree.hpp"

namespace fdml {

struct LayoutPoint {
  double x = 0.0;
  double y = 0.0;
};

struct TreeLayout {
  /// Position per GeneralTree node id.
  std::vector<LayoutPoint> positions;
  double width = 0.0;
  double height = 0.0;
};

/// Rectangular phylogram: x = cumulative branch length from the root,
/// y = leaf rank (internal nodes centered over their children).
/// `use_branch_lengths` false gives a cladogram (unit edge depth).
TreeLayout rectangular_layout(const GeneralTree& tree,
                              bool use_branch_lengths = true);

/// Felsenstein's equal-angle layout: each subtree receives an angular
/// wedge proportional to its leaf count; edges radiate with their lengths.
TreeLayout equal_angle_layout(const GeneralTree& tree,
                              bool use_branch_lengths = true);

}  // namespace fdml
