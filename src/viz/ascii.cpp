#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "viz/layout.hpp"

namespace fdml {

std::string render_ascii(const GeneralTree& tree, const AsciiOptions& options) {
  if (tree.empty()) return "";
  const TreeLayout layout = rectangular_layout(tree, options.use_branch_lengths);
  const int rows = static_cast<int>(std::lround(layout.height)) + 1;
  const double scale =
      layout.width > 0.0 ? (options.width - 1) / layout.width : 0.0;

  auto column = [&](int id) {
    return static_cast<int>(std::lround(
        layout.positions[static_cast<std::size_t>(id)].x * scale));
  };
  auto row = [&](int id) {
    return static_cast<int>(std::lround(
        layout.positions[static_cast<std::size_t>(id)].y * 2.0));
  };

  // Double vertical resolution so internal nodes land between leaf rows.
  std::vector<std::string> canvas(static_cast<std::size_t>(2 * rows),
                                  std::string(static_cast<std::size_t>(options.width) + 2, ' '));

  for (int id : tree.preorder()) {
    const auto& node = tree.node(id);
    const int r = row(id);
    const int c = column(id);
    if (id != tree.root()) {
      const int pc = column(node.parent);
      const int pr = row(node.parent);
      auto& line = canvas[static_cast<std::size_t>(r)];
      for (int x = pc; x < c; ++x) line[static_cast<std::size_t>(x)] = '-';
      if (c >= pc) line[static_cast<std::size_t>(pc)] = '+';
      // Vertical connector at the parent's column.
      const int lo = std::min(r, pr);
      const int hi = std::max(r, pr);
      for (int y = lo + 1; y < hi; ++y) {
        char& cell = canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(pc)];
        if (cell == ' ') cell = '|';
      }
    }
  }
  // Labels after the leaf tips; support values at internal nodes.
  std::string out;
  for (int id : tree.preorder()) {
    const auto& node = tree.node(id);
    const int r = row(id);
    const int c = column(id);
    auto& line = canvas[static_cast<std::size_t>(r)];
    if (node.children.empty()) {
      line.resize(std::max(line.size(), static_cast<std::size_t>(c) + 2), ' ');
      line.replace(static_cast<std::size_t>(c) + 1, node.label.size() + 1,
                   " " + node.label);
    } else if (options.show_support && !std::isnan(node.support)) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f", 100.0 * node.support);
      line.resize(std::max(line.size(), static_cast<std::size_t>(c) + 8), ' ');
      line.replace(static_cast<std::size_t>(c) + 1, std::strlen(buf), buf);
    }
  }
  for (auto& line : canvas) {
    while (!line.empty() && line.back() == ' ') line.pop_back();
    if (!line.empty()) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

}  // namespace fdml
