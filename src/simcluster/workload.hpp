// Analytic workload synthesis and kernel calibration.
//
// Replaying a *recorded* trace is exact but requires running the search.
// For studies beyond what one core can run live (e.g. the paper's
// prediction that scalability falls off at 100-200 processors, examined on
// 150-250 taxa), this module synthesizes traces with the algorithm's exact
// round/task structure — insertion rounds of (2i-5) tasks, rearrangement
// rounds whose candidate counts come from enumerating real rearrangement
// moves on random topologies — and per-task costs from a calibrated kernel
// cost model (cost is linear in sites x branches x smoothing passes, with
// lognormal noise producing the paper's loose synchronization).
#pragma once

#include <cstddef>

#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "search/trace.hpp"
#include "seq/alignment.hpp"
#include "util/rng.hpp"

namespace fdml {

/// Calibrated cost model for one worker task.
struct WorkloadModel {
  /// Seconds per (site x edge x smoothing pass) of a full optimization.
  double full_cost_coefficient = 2e-8;
  /// Seconds per site of a quick-add (3-edge) evaluation.
  double quickadd_cost_coefficient = 6e-8;
  /// Master seconds per generated candidate (topology cloning, hashing).
  double master_cost_per_candidate = 2e-6;
  /// Coefficient of variation of the lognormal task-cost noise (drives
  /// barrier slack; measured traces show ~0.2-0.5).
  double cost_noise_cv = 0.3;
  /// Probability that a rearrangement round finds an improvement and
  /// triggers another round.
  double rearrange_accept_probability = 0.35;
  int quickadd_passes = 2;
  int full_smooth_passes = 8;
  /// Representative wire bytes per task+result pair.
  double bytes_per_task_base = 300.0;
  double bytes_per_task_per_taxon = 30.0;
};

/// Measures the two cost coefficients by timing real evaluations of random
/// trees over `data`, so synthesized traces inherit this machine's kernel
/// speed. `sample_tasks` controls how many timings are averaged.
WorkloadModel calibrate_workload(const PatternAlignment& data,
                                 const SubstModel& model, const RateModel& rates,
                                 int sample_tasks = 4);

/// Synthesizes a full-search trace for `taxa` x `sites` with rearrangement
/// setting `cross` (the paper's "number of vertices crossed").
SearchTrace synthesize_trace(int taxa, std::size_t sites, int cross,
                             const WorkloadModel& model, Rng& rng);

}  // namespace fdml
