#include "simcluster/simulator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace fdml {

namespace {

struct InFlight {
  double arrival;  ///< when the result reaches the foreman
  int worker;
  bool speculative;
  bool operator>(const InFlight& other) const { return arrival > other.arrival; }
};

/// Machine state threaded through rounds.
struct MachineState {
  double foreman_free = 0.0;
  std::vector<double> worker_ready;
};

struct RoundOutcomeSim {
  double first_completion = -1.0;
  double last_completion = 0.0;   ///< foreman time of the round's last result
  double speculative_done = 0.0;  ///< completion time of speculative tasks
  std::size_t speculative_completed = 0;
};

/// Schedules one round (optionally with a speculative tail of next-round
/// tasks) through the foreman/worker pipeline. Task and byte lists for the
/// main round come first; `speculative` tasks are dispatched only to
/// workers that would otherwise idle after the main queue drains.
RoundOutcomeSim run_round_sim(const RoundTrace& round,
                              const RoundTrace* speculative,
                              const SimClusterConfig& config,
                              MachineState& machine) {
  const double overhead = config.message_overhead_seconds;
  const double latency = config.latency_seconds;
  const double inv_bandwidth = 1.0 / config.bandwidth_bytes_per_second;

  auto transfer = [&](const RoundTrace& source, std::size_t task) {
    const double bytes = task < source.task_bytes.size()
                             ? static_cast<double>(source.task_bytes[task]) * 0.5
                             : 256.0;
    return bytes * inv_bandwidth;
  };

  const std::size_t n = round.task_cpu_seconds.size();
  const std::size_t n_spec =
      speculative != nullptr ? speculative->task_cpu_seconds.size() : 0;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight;

  std::size_t next = 0;       // next main task
  std::size_t next_spec = 0;  // next speculative task
  auto dispatch_to = [&](int worker) {
    const bool spec = next >= n;
    if (spec && next_spec >= n_spec) return false;
    const RoundTrace& source = spec ? *speculative : round;
    const std::size_t task = spec ? next_spec++ : next++;
    machine.foreman_free =
        std::max(machine.foreman_free,
                 machine.worker_ready[static_cast<std::size_t>(worker)]) +
        overhead;
    const double start =
        machine.foreman_free + latency + transfer(source, task);
    const double done = start + source.task_cpu_seconds[task];
    in_flight.push({done + latency + transfer(source, task), worker, spec});
    return true;
  };

  for (int w = 0; w < static_cast<int>(machine.worker_ready.size()); ++w) {
    dispatch_to(w);
  }

  RoundOutcomeSim outcome;
  while (!in_flight.empty()) {
    const InFlight flight = in_flight.top();
    in_flight.pop();
    machine.foreman_free = std::max(machine.foreman_free, flight.arrival) + overhead;
    machine.worker_ready[static_cast<std::size_t>(flight.worker)] = flight.arrival;
    if (flight.speculative) {
      outcome.speculative_done =
          std::max(outcome.speculative_done, machine.foreman_free);
      ++outcome.speculative_completed;
    } else {
      if (outcome.first_completion < 0.0) {
        outcome.first_completion = machine.foreman_free;
      }
      outcome.last_completion =
          std::max(outcome.last_completion, machine.foreman_free);
    }
    dispatch_to(flight.worker);
  }
  return outcome;
}

void check_layout(const SimClusterConfig& config) {
  if (config.processors != 1 && config.processors < 4) {
    throw std::invalid_argument(
        "simulate_trace: the instrumented parallel layout needs >= 4 "
        "processors (master, foreman, monitor + workers); use 1 for serial");
  }
}

SimResult simulate_serial(const SearchTrace& trace, const SimClusterConfig& config) {
  SimResult result;
  result.busy_seconds = trace.total_task_seconds();
  double clock = 0.0;
  for (const RoundTrace& round : trace.rounds) {
    const double begin = clock;
    clock += round.master_seconds * config.master_speed;
    for (double cpu : round.task_cpu_seconds) clock += cpu;
    result.round_durations.push_back(clock - begin);
  }
  result.wall_seconds = clock;
  result.worker_utilization = clock > 0.0 ? result.busy_seconds / clock : 0.0;
  result.mean_round_slack_seconds = 0.0;
  return result;
}

/// True when `next` would re-run with a different tree if `current`
/// improved — i.e. speculation across this boundary is discarded on
/// improvement. Improvement is detectable from the trace: an improving
/// rearrangement round is followed by another rearrangement round at the
/// same taxon count.
bool round_improved(const SearchTrace& trace, std::size_t index) {
  if (index + 1 >= trace.rounds.size()) return false;
  const RoundTrace& current = trace.rounds[index];
  const RoundTrace& next = trace.rounds[index + 1];
  return current.kind == RoundKind::kRearrange &&
         next.kind == RoundKind::kRearrange &&
         next.taxa_in_tree == current.taxa_in_tree;
}

}  // namespace

SimResult simulate_trace(const SearchTrace& trace, const SimClusterConfig& config) {
  check_layout(config);
  if (config.processors == 1) return simulate_serial(trace, config);

  SimResult result;
  result.busy_seconds = trace.total_task_seconds();
  const int workers = config.workers();

  double clock = 0.0;
  double total_slack = 0.0;
  std::size_t slack_rounds = 0;
  for (const RoundTrace& round : trace.rounds) {
    const double round_begin = clock;
    MachineState machine;
    machine.foreman_free = clock + round.master_seconds * config.master_speed +
                           config.latency_seconds;
    machine.worker_ready.assign(static_cast<std::size_t>(workers), round_begin);
    const RoundOutcomeSim outcome = run_round_sim(round, nullptr, config, machine);
    if (outcome.first_completion >= 0.0) {
      total_slack += outcome.last_completion - outcome.first_completion;
      ++slack_rounds;
    }
    clock = outcome.last_completion + config.latency_seconds;
    result.round_durations.push_back(clock - round_begin);
  }

  result.wall_seconds = clock;
  result.worker_utilization =
      clock > 0.0 ? result.busy_seconds / (clock * workers) : 0.0;
  result.mean_round_slack_seconds =
      slack_rounds > 0 ? total_slack / static_cast<double>(slack_rounds) : 0.0;
  return result;
}

SpeculativeResult simulate_trace_speculative(const SearchTrace& trace,
                                             const SimClusterConfig& config) {
  check_layout(config);
  SpeculativeResult out;
  if (config.processors == 1) {
    out.sim = simulate_serial(trace, config);
    return out;
  }
  out.sim.busy_seconds = trace.total_task_seconds();
  const int workers = config.workers();

  double clock = 0.0;
  std::size_t index = 0;
  while (index < trace.rounds.size()) {
    const RoundTrace& round = trace.rounds[index];
    const bool can_speculate = round.kind == RoundKind::kRearrange &&
                               index + 1 < trace.rounds.size();
    const RoundTrace* next_round =
        can_speculate ? &trace.rounds[index + 1] : nullptr;

    const double round_begin = clock;
    MachineState machine;
    machine.foreman_free = clock + round.master_seconds * config.master_speed +
                           config.latency_seconds;
    machine.worker_ready.assign(static_cast<std::size_t>(workers), round_begin);
    const RoundOutcomeSim outcome =
        run_round_sim(round, next_round, config, machine);

    if (!can_speculate) {
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
      continue;
    }
    ++out.speculated_rounds;
    if (round_improved(trace, index)) {
      // The tree changed: discard speculative work; next round reruns.
      ++out.wasted_speculations;
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
    } else if (outcome.speculative_completed ==
               next_round->task_cpu_seconds.size()) {
      // Entire next round rode along; both barriers close together.
      clock = std::max(outcome.last_completion, outcome.speculative_done) +
              config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      index += 2;
    } else {
      // Partial speculation is not modeled (workers would need result
      // caching); treat as no speculation for this boundary.
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
    }
  }

  out.sim.wall_seconds = clock;
  out.sim.worker_utilization =
      clock > 0.0 ? out.sim.busy_seconds / (clock * workers) : 0.0;
  return out;
}

SimClusterConfig sp_era_config(int processors, double cpu_slowdown) {
  SimClusterConfig config;
  config.processors = processors;
  config.message_overhead_seconds *= cpu_slowdown;
  config.latency_seconds = 2e-5;               // SP Switch2 class
  config.bandwidth_bytes_per_second = 150e6;   // ~GB/s-class link of the era
  return config;
}

double simulated_speedup(const SearchTrace& trace, const SimClusterConfig& config) {
  SimClusterConfig serial = config;
  serial.processors = 1;
  const double serial_time = simulate_trace(trace, serial).wall_seconds;
  const double parallel_time = simulate_trace(trace, config).wall_seconds;
  return parallel_time > 0.0 ? serial_time / parallel_time : 0.0;
}

}  // namespace fdml
