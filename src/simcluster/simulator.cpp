#include "simcluster/simulator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace fdml {

namespace {

// Virtual tids mirror the live rank layout (comm/transport.hpp) so a
// simulated trace and a live trace read identically in the viewer and in
// trace_report: 0 = master, 1 = foreman, 2 = monitor, 3.. = workers.
constexpr int kSimMasterTid = 0;
constexpr int kSimForemanTid = 1;
constexpr int kSimFirstWorkerTid = 3;

constexpr double kSecondsToNs = 1e9;

void sim_trace_threads(obs::TraceLog* trace, int workers) {
  if (trace == nullptr) return;
  trace->set_thread(kSimMasterTid, "master");
  trace->set_thread(kSimForemanTid, "foreman");
  for (int w = 0; w < workers; ++w) {
    const int tid = kSimFirstWorkerTid + w;
    trace->set_thread(tid, "worker-" + std::to_string(tid));
  }
}

struct InFlight {
  double arrival;  ///< when the result reaches the foreman
  int worker;
  bool speculative;
  std::size_t task = 0;  ///< index within its round (flow-arc binding)
  bool operator>(const InFlight& other) const { return arrival > other.arrival; }
};

/// Machine state threaded through rounds.
struct MachineState {
  double foreman_free = 0.0;
  std::vector<double> worker_ready;
};

struct RoundOutcomeSim {
  double first_completion = -1.0;
  double last_completion = 0.0;   ///< foreman time of the round's last result
  double speculative_done = 0.0;  ///< completion time of speculative tasks
  std::size_t speculative_completed = 0;
};

/// Schedules one round (optionally with a speculative tail of next-round
/// tasks) through the foreman/worker pipeline. Task and byte lists for the
/// main round come first; `speculative` tasks are dispatched only to
/// workers that would otherwise idle after the main queue drains.
RoundOutcomeSim run_round_sim(const RoundTrace& round,
                              const RoundTrace* speculative,
                              const SimClusterConfig& config,
                              MachineState& machine,
                              std::uint64_t round_id = 0,
                              obs::TraceLog* trace = nullptr) {
  const double overhead = config.message_overhead_seconds;
  const double latency = config.latency_seconds;
  const double inv_bandwidth = 1.0 / config.bandwidth_bytes_per_second;

  auto transfer = [&](const RoundTrace& source, std::size_t task) {
    const double bytes = task < source.task_bytes.size()
                             ? static_cast<double>(source.task_bytes[task]) * 0.5
                             : 256.0;
    return bytes * inv_bandwidth;
  };

  const std::size_t n = round.task_cpu_seconds.size();
  const std::size_t n_spec =
      speculative != nullptr ? speculative->task_cpu_seconds.size() : 0;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> in_flight;

  std::size_t next = 0;       // next main task
  std::size_t next_spec = 0;  // next speculative task
  auto dispatch_to = [&](int worker) {
    const bool spec = next >= n;
    if (spec && next_spec >= n_spec) return false;
    const RoundTrace& source = spec ? *speculative : round;
    const std::size_t task = spec ? next_spec++ : next++;
    machine.foreman_free =
        std::max(machine.foreman_free,
                 machine.worker_ready[static_cast<std::size_t>(worker)]) +
        overhead;
    const double start =
        machine.foreman_free + latency + transfer(source, task);
    const double done = start + source.task_cpu_seconds[task];
    in_flight.push(
        {done + latency + transfer(source, task), worker, spec, task});
    if (trace != nullptr && !spec) {
      const std::uint64_t flow = obs::task_flow_id(round_id, task);
      trace->add(kSimForemanTid, obs::Phase::kFlowBegin,
                 machine.foreman_free * kSecondsToNs, "flow", "task", flow);
      auto& depth =
          trace->add(kSimForemanTid, obs::Phase::kCounter,
                     machine.foreman_free * kSecondsToNs, "counter",
                     "queue_depth");
      depth.arg0_name = "value";
      depth.arg0 = static_cast<std::int64_t>(n - next);
      const int tid = kSimFirstWorkerTid + worker;
      auto& begin = trace->add(tid, obs::Phase::kBegin, start * kSecondsToNs,
                               "worker", "task");
      begin.arg0_name = "task";
      begin.arg0 = static_cast<std::int64_t>(task);
      begin.arg1_name = "round";
      begin.arg1 = static_cast<std::int64_t>(round_id);
      trace->add(tid, obs::Phase::kFlowStep, start * kSecondsToNs, "flow",
                 "task", flow);
      trace->add(tid, obs::Phase::kEnd, done * kSecondsToNs, "worker", "task");
    }
    return true;
  };

  for (int w = 0; w < static_cast<int>(machine.worker_ready.size()); ++w) {
    dispatch_to(w);
  }

  RoundOutcomeSim outcome;
  while (!in_flight.empty()) {
    const InFlight flight = in_flight.top();
    in_flight.pop();
    machine.foreman_free = std::max(machine.foreman_free, flight.arrival) + overhead;
    machine.worker_ready[static_cast<std::size_t>(flight.worker)] = flight.arrival;
    if (trace != nullptr && !flight.speculative) {
      trace->add(kSimForemanTid, obs::Phase::kFlowEnd,
                 machine.foreman_free * kSecondsToNs, "flow", "task",
                 obs::task_flow_id(round_id, flight.task));
    }
    if (flight.speculative) {
      outcome.speculative_done =
          std::max(outcome.speculative_done, machine.foreman_free);
      ++outcome.speculative_completed;
    } else {
      if (outcome.first_completion < 0.0) {
        outcome.first_completion = machine.foreman_free;
      }
      outcome.last_completion =
          std::max(outcome.last_completion, machine.foreman_free);
    }
    dispatch_to(flight.worker);
  }
  return outcome;
}

void check_layout(const SimClusterConfig& config) {
  if (config.processors != 1 && config.processors < 4) {
    throw std::invalid_argument(
        "simulate_trace: the instrumented parallel layout needs >= 4 "
        "processors (master, foreman, monitor + workers); use 1 for serial");
  }
}

SimResult simulate_serial(const SearchTrace& trace, const SimClusterConfig& config) {
  SimResult result;
  result.busy_seconds = trace.total_task_seconds();
  if (config.trace != nullptr) {
    config.trace->set_thread(kSimMasterTid, "master");
  }
  double clock = 0.0;
  for (const RoundTrace& round : trace.rounds) {
    const double begin = clock;
    clock += round.master_seconds * config.master_speed;
    for (double cpu : round.task_cpu_seconds) clock += cpu;
    if (config.trace != nullptr) {
      auto& b = config.trace->add(kSimMasterTid, obs::Phase::kBegin,
                                  begin * kSecondsToNs, "search",
                                  round_kind_name(round.kind));
      b.arg0_name = "tasks";
      b.arg0 = static_cast<std::int64_t>(round.task_cpu_seconds.size());
      config.trace->add(kSimMasterTid, obs::Phase::kEnd, clock * kSecondsToNs,
                        "search", round_kind_name(round.kind));
    }
    result.round_durations.push_back(clock - begin);
  }
  result.wall_seconds = clock;
  result.worker_utilization = clock > 0.0 ? result.busy_seconds / clock : 0.0;
  result.mean_round_slack_seconds = 0.0;
  return result;
}

/// True when `next` would re-run with a different tree if `current`
/// improved — i.e. speculation across this boundary is discarded on
/// improvement. Improvement is detectable from the trace: an improving
/// rearrangement round is followed by another rearrangement round at the
/// same taxon count.
bool round_improved(const SearchTrace& trace, std::size_t index) {
  if (index + 1 >= trace.rounds.size()) return false;
  const RoundTrace& current = trace.rounds[index];
  const RoundTrace& next = trace.rounds[index + 1];
  return current.kind == RoundKind::kRearrange &&
         next.kind == RoundKind::kRearrange &&
         next.taxa_in_tree == current.taxa_in_tree;
}

}  // namespace

SimResult simulate_trace(const SearchTrace& trace, const SimClusterConfig& config) {
  check_layout(config);
  if (config.processors == 1) return simulate_serial(trace, config);

  SimResult result;
  result.busy_seconds = trace.total_task_seconds();
  const int workers = config.workers();
  sim_trace_threads(config.trace, workers);

  double clock = 0.0;
  double total_slack = 0.0;
  std::size_t slack_rounds = 0;
  std::uint64_t round_id = 0;
  for (const RoundTrace& round : trace.rounds) {
    ++round_id;
    const double round_begin = clock;
    MachineState machine;
    machine.foreman_free = clock + round.master_seconds * config.master_speed +
                           config.latency_seconds;
    machine.worker_ready.assign(static_cast<std::size_t>(workers), round_begin);
    if (config.trace != nullptr) {
      // Master-side serial slice, then the foreman round span.
      auto& m = config.trace->add(kSimMasterTid, obs::Phase::kBegin,
                                  round_begin * kSecondsToNs, "search",
                                  round_kind_name(round.kind));
      m.arg0_name = "round";
      m.arg0 = static_cast<std::int64_t>(round_id);
      auto& b = config.trace->add(kSimForemanTid, obs::Phase::kBegin,
                                  machine.foreman_free * kSecondsToNs,
                                  "foreman", "round");
      b.arg0_name = "round";
      b.arg0 = static_cast<std::int64_t>(round_id);
      b.arg1_name = "tasks";
      b.arg1 = static_cast<std::int64_t>(round.task_cpu_seconds.size());
    }
    const RoundOutcomeSim outcome =
        run_round_sim(round, nullptr, config, machine, round_id, config.trace);
    if (outcome.first_completion >= 0.0) {
      total_slack += outcome.last_completion - outcome.first_completion;
      ++slack_rounds;
    }
    clock = outcome.last_completion + config.latency_seconds;
    if (config.trace != nullptr) {
      auto& e = config.trace->add(kSimForemanTid, obs::Phase::kEnd,
                                  outcome.last_completion * kSecondsToNs,
                                  "foreman", "round");
      e.arg0_name = "completed";
      e.arg0 = static_cast<std::int64_t>(round.task_cpu_seconds.size());
      config.trace->add(kSimMasterTid, obs::Phase::kEnd, clock * kSecondsToNs,
                        "search", round_kind_name(round.kind));
    }
    result.round_durations.push_back(clock - round_begin);
  }

  if (config.trace != nullptr) config.trace->sort_events();

  result.wall_seconds = clock;
  result.worker_utilization =
      clock > 0.0 ? result.busy_seconds / (clock * workers) : 0.0;
  result.mean_round_slack_seconds =
      slack_rounds > 0 ? total_slack / static_cast<double>(slack_rounds) : 0.0;
  return result;
}

SpeculativeResult simulate_trace_speculative(const SearchTrace& trace,
                                             const SimClusterConfig& config) {
  check_layout(config);
  SpeculativeResult out;
  if (config.processors == 1) {
    out.sim = simulate_serial(trace, config);
    return out;
  }
  out.sim.busy_seconds = trace.total_task_seconds();
  const int workers = config.workers();

  double clock = 0.0;
  std::size_t index = 0;
  while (index < trace.rounds.size()) {
    const RoundTrace& round = trace.rounds[index];
    const bool can_speculate = round.kind == RoundKind::kRearrange &&
                               index + 1 < trace.rounds.size();
    const RoundTrace* next_round =
        can_speculate ? &trace.rounds[index + 1] : nullptr;

    const double round_begin = clock;
    MachineState machine;
    machine.foreman_free = clock + round.master_seconds * config.master_speed +
                           config.latency_seconds;
    machine.worker_ready.assign(static_cast<std::size_t>(workers), round_begin);
    const RoundOutcomeSim outcome =
        run_round_sim(round, next_round, config, machine);

    if (!can_speculate) {
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
      continue;
    }
    ++out.speculated_rounds;
    if (round_improved(trace, index)) {
      // The tree changed: discard speculative work; next round reruns.
      ++out.wasted_speculations;
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
    } else if (outcome.speculative_completed ==
               next_round->task_cpu_seconds.size()) {
      // Entire next round rode along; both barriers close together.
      clock = std::max(outcome.last_completion, outcome.speculative_done) +
              config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      index += 2;
    } else {
      // Partial speculation is not modeled (workers would need result
      // caching); treat as no speculation for this boundary.
      clock = outcome.last_completion + config.latency_seconds;
      out.sim.round_durations.push_back(clock - round_begin);
      ++index;
    }
  }

  out.sim.wall_seconds = clock;
  out.sim.worker_utilization =
      clock > 0.0 ? out.sim.busy_seconds / (clock * workers) : 0.0;
  return out;
}

SimClusterConfig sp_era_config(int processors, double cpu_slowdown) {
  SimClusterConfig config;
  config.processors = processors;
  config.message_overhead_seconds *= cpu_slowdown;
  config.latency_seconds = 2e-5;               // SP Switch2 class
  config.bandwidth_bytes_per_second = 150e6;   // ~GB/s-class link of the era
  return config;
}

double simulated_speedup(const SearchTrace& trace, const SimClusterConfig& config) {
  SimClusterConfig serial = config;
  serial.processors = 1;
  const double serial_time = simulate_trace(trace, serial).wall_seconds;
  const double parallel_time = simulate_trace(trace, config).wall_seconds;
  return parallel_time > 0.0 ? serial_time / parallel_time : 0.0;
}

}  // namespace fdml
