#include "simcluster/workload.hpp"

#include <algorithm>
#include <set>

#include "search/task_evaluator.hpp"
#include "tree/neighborhood.hpp"
#include "tree/newick.hpp"
#include "tree/random.hpp"
#include "tree/splits.hpp"

namespace fdml {

WorkloadModel calibrate_workload(const PatternAlignment& data,
                                 const SubstModel& model, const RateModel& rates,
                                 int sample_tasks) {
  WorkloadModel out;
  TaskEvaluator evaluator(data, model, rates);
  Rng rng(12345);
  const int taxa = static_cast<int>(data.num_taxa());
  const double sites = static_cast<double>(data.num_sites());
  const double edges = static_cast<double>(2 * taxa - 3);

  double full_seconds = 0.0;
  double quick_seconds = 0.0;
  for (int k = 0; k < sample_tasks; ++k) {
    const Tree tree = random_tree(taxa, rng);
    TreeTask full;
    full.task_id = 1;
    full.newick = to_newick(tree, data.names(), 17);
    full.focus_taxon = -1;
    full.smooth_passes = out.full_smooth_passes;
    full_seconds += evaluator.evaluate(full).cpu_seconds;

    TreeTask quick = full;
    quick.focus_taxon = 0;
    quick.smooth_passes = out.quickadd_passes;
    quick_seconds += evaluator.evaluate(quick).cpu_seconds;
  }
  full_seconds /= sample_tasks;
  quick_seconds /= sample_tasks;

  // Smoothing usually converges before the pass cap; attribute the measured
  // time to ~half the nominal pass budget to stay conservative.
  const double effective_passes = 0.5 * out.full_smooth_passes;
  out.full_cost_coefficient =
      std::max(full_seconds / (sites * edges * effective_passes), 1e-12);
  out.quickadd_cost_coefficient = std::max(quick_seconds / sites, 1e-12);
  return out;
}

namespace {

double noisy(double mean, double cv, Rng& rng) {
  return cv > 0.0 ? rng.lognormal_mean_cv(mean, cv) : mean;
}

std::uint64_t task_bytes(int taxa_in_tree, const WorkloadModel& model) {
  return static_cast<std::uint64_t>(model.bytes_per_task_base +
                                    model.bytes_per_task_per_taxon *
                                        taxa_in_tree);
}

}  // namespace

SearchTrace synthesize_trace(int taxa, std::size_t sites, int cross,
                             const WorkloadModel& model, Rng& rng) {
  SearchTrace trace;
  trace.dataset = "synthetic";
  trace.num_taxa = taxa;
  trace.num_sites = sites;
  trace.num_patterns = sites;  // upper bound; costs already folded in
  const double s = static_cast<double>(sites);

  auto full_cost = [&](int taxa_in_tree) {
    const double edges = static_cast<double>(2 * taxa_in_tree - 3);
    return model.full_cost_coefficient * s * edges *
           (0.5 * model.full_smooth_passes);
  };
  auto quick_cost = [&]() { return model.quickadd_cost_coefficient * s; };

  // Reference topology for counting rearrangement candidates: enumerate the
  // real move generator on a random tree of the right size and deduplicate
  // by topology hash, exactly as the search does.
  auto rearrange_task_count = [&](int taxa_in_tree) {
    Tree tree = random_tree(taxa_in_tree, rng);
    std::set<std::uint64_t> seen{topology_hash(tree)};
    std::size_t distinct = 0;
    for (const SprMove& move : rearrangement_moves(tree, cross)) {
      Tree candidate = tree;
      const auto handle =
          candidate.prune_subtree(move.junction, move.subtree_neighbor);
      candidate.regraft(handle, move.target_u, move.target_v);
      if (seen.insert(topology_hash(candidate)).second) ++distinct;
    }
    return distinct;
  };

  // Initial 3-taxon optimization.
  {
    RoundTrace round;
    round.kind = RoundKind::kInitial;
    round.taxa_in_tree = 3;
    round.master_seconds = model.master_cost_per_candidate;
    round.task_cpu_seconds.push_back(noisy(full_cost(3), model.cost_noise_cv, rng));
    round.task_bytes.push_back(task_bytes(3, model));
    trace.rounds.push_back(std::move(round));
  }

  for (int i = 4; i <= taxa; ++i) {
    // Insertion round: 2i-5 quick-add candidates.
    {
      RoundTrace round;
      round.kind = RoundKind::kInsertion;
      round.taxa_in_tree = i;
      const int candidates = 2 * i - 5;
      round.master_seconds = model.master_cost_per_candidate * candidates;
      for (int c = 0; c < candidates; ++c) {
        round.task_cpu_seconds.push_back(noisy(quick_cost(), model.cost_noise_cv, rng));
        round.task_bytes.push_back(task_bytes(i, model));
      }
      trace.rounds.push_back(std::move(round));
    }
    // Winner round: one full smoothing.
    {
      RoundTrace round;
      round.kind = RoundKind::kWinner;
      round.taxa_in_tree = i;
      round.master_seconds = model.master_cost_per_candidate;
      round.task_cpu_seconds.push_back(noisy(full_cost(i), model.cost_noise_cv, rng));
      round.task_bytes.push_back(task_bytes(i, model));
      trace.rounds.push_back(std::move(round));
    }
    // Rearrangement rounds: at least one (which finds no improvement and
    // stops), plus a geometric number of improving rounds before it.
    if (cross > 0) {
      int rounds = 1;
      while (rng.uniform() < model.rearrange_accept_probability) ++rounds;
      for (int r = 0; r < rounds; ++r) {
        RoundTrace round;
        round.kind = RoundKind::kRearrange;
        round.taxa_in_tree = i;
        const std::size_t candidates = rearrange_task_count(i);
        if (candidates == 0) break;
        round.master_seconds =
            model.master_cost_per_candidate * static_cast<double>(candidates);
        for (std::size_t c = 0; c < candidates; ++c) {
          round.task_cpu_seconds.push_back(
              noisy(full_cost(i), model.cost_noise_cv, rng));
          round.task_bytes.push_back(task_bytes(i, model));
        }
        trace.rounds.push_back(std::move(round));
      }
    }
  }
  return trace;
}

}  // namespace fdml
