// Discrete-event simulation of the master/foreman/worker schedule.
//
// The paper measured wall-clock scaling on a 64-CPU RS/6000 SP. This
// container has one core, so the repository reproduces Figures 3 and 4 by
// replaying *real* search traces (per-round task lists with measured CPU
// costs — see SearchTrace) through a discrete-event model of the runtime:
// a serial foreman that pays a per-message handling cost, links with
// latency and bandwidth, and P-3 workers (the other three processors run
// master, foreman and monitor, exactly the paper's accounting — which is
// why 4 processors are *slower* than the serial build). Rounds are
// barriers; the slack between the first and last completion of a round is
// the paper's "loose synchronization".
#pragma once

#include <vector>

#include "search/trace.hpp"

namespace fdml::obs {
struct TraceLog;
}

namespace fdml {

struct SimClusterConfig {
  /// Total processors. 1 simulates the serial program (no runtime
  /// overhead); >= 4 runs the paper's layout with processors-3 workers.
  int processors = 4;
  /// Foreman CPU cost to send or receive one message (MPI-era per-message
  /// handling is tens of microseconds).
  double message_overhead_seconds = 5e-5;
  /// One-way network latency (SP Switch2-class interconnect).
  double latency_seconds = 5e-5;
  /// Link bandwidth (bytes/second) for task and result payloads.
  double bandwidth_bytes_per_second = 100e6;
  /// Multiplier on the master's recorded between-round compute.
  double master_speed = 1.0;
  /// Optional trace sink: the simulator fills it with the same span/flow
  /// vocabulary the live runtime emits (foreman "round" spans, worker
  /// "task" spans, dispatch->execute->accept flow arcs, queue depth), with
  /// *virtual* timestamps — so trace_report and chrome://tracing work
  /// identically on replays and live runs.
  obs::TraceLog* trace = nullptr;

  int workers() const { return processors <= 1 ? 1 : processors - 3; }
};

struct SimResult {
  double wall_seconds = 0.0;
  /// Sum of worker task CPU (invariant across processor counts).
  double busy_seconds = 0.0;
  /// busy / (wall * workers): how well the schedule fills the machine.
  double worker_utilization = 0.0;
  /// Mean over rounds of (last completion - first completion).
  double mean_round_slack_seconds = 0.0;
  std::vector<double> round_durations;
};

/// Replays a trace on the configured machine. processors=1 reduces to the
/// serial sum of all task and master costs.
SimResult simulate_trace(const SearchTrace& trace, const SimClusterConfig& config);

/// Replays a trace with *speculative dispatch* — the feature of Ceron's
/// parallel DNAml the paper plans to study: because a rearrangement round
/// usually fails to improve the tree, the tasks of the following round are
/// usually already known, so idle workers at a rearrangement barrier start
/// on them early. If the round does improve (detected from the trace: an
/// improving round is followed by another rearrangement round at the same
/// taxon count), the speculative work is discarded and the next round runs
/// from scratch. Fills `speculated_rounds` / `wasted_speculations`.
struct SpeculativeResult {
  SimResult sim;
  std::size_t speculated_rounds = 0;
  std::size_t wasted_speculations = 0;
};
SpeculativeResult simulate_trace_speculative(const SearchTrace& trace,
                                             const SimClusterConfig& config);

/// Speedup of `config` relative to the serial (1-processor) replay of the
/// same trace — the paper's Figure 4 metric, "presented in the most
/// conservative fashion possible, using the serial version as the basis".
double simulated_speedup(const SearchTrace& trace, const SimClusterConfig& config);

/// Machine config for an RS/6000-SP-era cluster: CPU-bound costs (message
/// handling) scale with the same slowdown applied to the trace's task
/// costs; wire latency and bandwidth stay physical.
SimClusterConfig sp_era_config(int processors, double cpu_slowdown);

}  // namespace fdml
