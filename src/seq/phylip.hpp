// PHYLIP-format alignment reader/writer.
//
// fastDNAml consumes "a minimal PHYLIP format DNA (or RNA) sequence file":
// a header line with the taxon and site counts, then sequence blocks in
// either interleaved (default) or sequential layout. We accept relaxed
// taxon names (any non-whitespace token) in addition to the strict 10-column
// names of classic PHYLIP.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/alignment.hpp"

namespace fdml {

enum class PhylipLayout {
  kInterleaved,
  kSequential,
  kAuto,  // try interleaved, fall back to sequential
};

/// Parses a PHYLIP file from a stream. Throws std::runtime_error with a
/// descriptive message on malformed input.
Alignment read_phylip(std::istream& in, PhylipLayout layout = PhylipLayout::kAuto);

/// Parses PHYLIP from a string (convenience for tests and embedded data).
Alignment read_phylip_string(const std::string& text,
                             PhylipLayout layout = PhylipLayout::kAuto);

/// Parses a PHYLIP file from disk.
Alignment read_phylip_file(const std::string& path,
                           PhylipLayout layout = PhylipLayout::kAuto);

/// Writes interleaved (or sequential) PHYLIP with 60-character line blocks.
void write_phylip(std::ostream& out, const Alignment& alignment,
                  PhylipLayout layout = PhylipLayout::kInterleaved);

void write_phylip_file(const std::string& path, const Alignment& alignment,
                       PhylipLayout layout = PhylipLayout::kInterleaved);

/// FASTA support (common interchange format for the simulated datasets).
Alignment read_fasta(std::istream& in);
Alignment read_fasta_file(const std::string& path);
void write_fasta(std::ostream& out, const Alignment& alignment);
void write_fasta_file(const std::string& path, const Alignment& alignment);

}  // namespace fdml
