#include "seq/alignment.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace fdml {

void Alignment::add_sequence(std::string name,
                             std::basic_string<BaseCode> codes) {
  if (name.empty()) throw std::invalid_argument("taxon name must be non-empty");
  if (!rows_.empty() && codes.size() != rows_[0].size()) {
    throw std::invalid_argument("sequence length mismatch for taxon " + name);
  }
  if (find_taxon(name) >= 0) {
    throw std::invalid_argument("duplicate taxon name " + name);
  }
  names_.push_back(std::move(name));
  rows_.push_back(std::move(codes));
}

int Alignment::find_taxon(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  return it == names_.end() ? -1 : static_cast<int>(it - names_.begin());
}

Alignment Alignment::subset_taxa(const std::vector<std::size_t>& taxa) const {
  Alignment out;
  for (std::size_t t : taxa) out.add_sequence(names_.at(t), rows_.at(t));
  return out;
}

Alignment Alignment::subset_sites(std::size_t first, std::size_t count) const {
  if (first + count > num_sites()) {
    throw std::out_of_range("subset_sites: range exceeds alignment length");
  }
  Alignment out;
  for (std::size_t t = 0; t < num_taxa(); ++t) {
    out.add_sequence(names_[t], rows_[t].substr(first, count));
  }
  return out;
}

Vec4 Alignment::base_frequencies() const {
  Vec4 counts{};
  for (const auto& row : rows_) {
    for (BaseCode code : row) {
      if (code == kBaseUnknown || code == 0) continue;
      const double share = 1.0 / base_cardinality(code);
      for (int b = 0; b < 4; ++b) {
        if (code & base_from_index(b)) counts[b] += share;
      }
    }
  }
  double total = counts[0] + counts[1] + counts[2] + counts[3];
  if (total <= 0.0) return {0.25, 0.25, 0.25, 0.25};
  for (double& c : counts) c /= total;
  return counts;
}

double Alignment::ambiguous_fraction() const {
  std::size_t ambiguous = 0;
  std::size_t total = 0;
  for (const auto& row : rows_) {
    for (BaseCode code : row) {
      ++total;
      if (!is_unambiguous(code)) ++ambiguous;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(ambiguous) / total;
}

PatternAlignment::PatternAlignment(const Alignment& alignment,
                                   const std::vector<int>& site_weights) {
  num_taxa_ = alignment.num_taxa();
  names_ = alignment.names();
  frequencies_ = alignment.base_frequencies();
  const std::size_t num_sites = alignment.num_sites();
  if (!site_weights.empty() && site_weights.size() != num_sites) {
    throw std::invalid_argument("site weight vector length mismatch");
  }

  std::map<std::basic_string<BaseCode>, std::size_t> pattern_index;
  site_to_pattern_.resize(num_sites);
  std::basic_string<BaseCode> column(num_taxa_, 0);
  for (std::size_t site = 0; site < num_sites; ++site) {
    const int w = site_weights.empty() ? 1 : site_weights[site];
    if (w < 0) throw std::invalid_argument("negative site weight");
    for (std::size_t t = 0; t < num_taxa_; ++t) column[t] = alignment.at(t, site);
    auto [it, inserted] = pattern_index.emplace(column, weights_.size());
    if (inserted) {
      weights_.push_back(0.0);
      codes_.insert(codes_.end(), column.begin(), column.end());
    }
    site_to_pattern_[site] = it->second;
    weights_[it->second] += w;
    total_weight_ += w;
  }

  // Drop zero-weight patterns (all their sites had weight 0).
  std::vector<BaseCode> kept_codes;
  std::vector<double> kept_weights;
  std::vector<std::size_t> remap(weights_.size());
  for (std::size_t p = 0; p < weights_.size(); ++p) {
    if (weights_[p] > 0.0) {
      remap[p] = kept_weights.size();
      kept_weights.push_back(weights_[p]);
      kept_codes.insert(kept_codes.end(), codes_.begin() + p * num_taxa_,
                        codes_.begin() + (p + 1) * num_taxa_);
    } else {
      remap[p] = static_cast<std::size_t>(-1);
    }
  }
  codes_ = std::move(kept_codes);
  weights_ = std::move(kept_weights);
  for (auto& p : site_to_pattern_) p = remap[p];
}

}  // namespace fdml
