#include "seq/phylip.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fdml {

namespace {

struct Header {
  std::size_t num_taxa = 0;
  std::size_t num_sites = 0;
};

Header parse_header(std::istringstream& in) {
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    long long taxa = 0;
    long long sites = 0;
    if (ls >> taxa >> sites) {
      if (taxa < 3) throw std::runtime_error("PHYLIP: need at least 3 taxa");
      if (sites < 1) throw std::runtime_error("PHYLIP: need at least 1 site");
      return {static_cast<std::size_t>(taxa), static_cast<std::size_t>(sites)};
    }
    // Skip leading blank lines only; any other junk is an error.
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (!blank) throw std::runtime_error("PHYLIP: malformed header line: " + line);
  }
  throw std::runtime_error("PHYLIP: missing header");
}

// Appends the sequence characters found in `text` to `row`, ignoring
// whitespace and digits (some files carry position counters). Throws on any
// other invalid character.
void append_sequence_chars(const std::string& text,
                           std::basic_string<BaseCode>& row,
                           std::size_t limit) {
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) ||
        std::isdigit(static_cast<unsigned char>(c))) {
      continue;
    }
    const BaseCode code = char_to_code(c);
    if (code == 0) {
      throw std::runtime_error(std::string("PHYLIP: invalid character '") + c +
                               "' in sequence data");
    }
    if (row.size() >= limit) {
      throw std::runtime_error("PHYLIP: sequence longer than declared length");
    }
    row.push_back(code);
  }
}

Alignment parse_interleaved(std::istringstream& in, const Header& header) {
  std::vector<std::string> names(header.num_taxa);
  std::vector<std::basic_string<BaseCode>> rows(header.num_taxa);

  std::string line;
  std::size_t taxon = 0;
  bool first_block = true;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;

    if (first_block) {
      std::istringstream ls(line);
      std::string name;
      ls >> name;
      names[taxon] = name;
      std::string rest;
      std::getline(ls, rest);
      append_sequence_chars(rest, rows[taxon], header.num_sites);
    } else {
      append_sequence_chars(line, rows[taxon], header.num_sites);
    }
    ++taxon;
    if (taxon == header.num_taxa) {
      taxon = 0;
      first_block = false;
    }
    // Early exit once every row is complete.
    bool done = !first_block;
    for (const auto& row : rows) {
      if (row.size() != header.num_sites) done = false;
    }
    if (done) break;
  }

  Alignment alignment;
  for (std::size_t t = 0; t < header.num_taxa; ++t) {
    if (rows[t].size() != header.num_sites) {
      throw std::runtime_error("PHYLIP: taxon " + names[t] + " has " +
                               std::to_string(rows[t].size()) + " sites, expected " +
                               std::to_string(header.num_sites));
    }
    alignment.add_sequence(names[t], std::move(rows[t]));
  }
  return alignment;
}

Alignment parse_sequential(std::istringstream& in, const Header& header) {
  Alignment alignment;
  for (std::size_t t = 0; t < header.num_taxa; ++t) {
    std::string name;
    if (!(in >> name)) throw std::runtime_error("PHYLIP: missing taxon name");
    std::basic_string<BaseCode> row;
    while (row.size() < header.num_sites) {
      const int c = in.get();
      if (c == EOF) {
        throw std::runtime_error("PHYLIP: unexpected end of file in taxon " + name);
      }
      const char ch = static_cast<char>(c);
      if (std::isspace(static_cast<unsigned char>(ch)) ||
          std::isdigit(static_cast<unsigned char>(ch))) {
        continue;
      }
      const BaseCode code = char_to_code(ch);
      if (code == 0) {
        throw std::runtime_error(std::string("PHYLIP: invalid character '") + ch +
                                 "' in taxon " + name);
      }
      row.push_back(code);
    }
    alignment.add_sequence(name, std::move(row));
  }
  return alignment;
}

}  // namespace

Alignment read_phylip_string(const std::string& text, PhylipLayout layout) {
  if (layout == PhylipLayout::kAuto) {
    try {
      return read_phylip_string(text, PhylipLayout::kInterleaved);
    } catch (const std::exception&) {
      return read_phylip_string(text, PhylipLayout::kSequential);
    }
  }
  std::istringstream in(text);
  const Header header = parse_header(in);
  return layout == PhylipLayout::kInterleaved ? parse_interleaved(in, header)
                                              : parse_sequential(in, header);
}

Alignment read_phylip(std::istream& in, PhylipLayout layout) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_phylip_string(buffer.str(), layout);
}

Alignment read_phylip_file(const std::string& path, PhylipLayout layout) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_phylip(in, layout);
}

void write_phylip(std::ostream& out, const Alignment& alignment,
                  PhylipLayout layout) {
  constexpr std::size_t kBlock = 60;
  const std::size_t n = alignment.num_taxa();
  const std::size_t sites = alignment.num_sites();
  out << " " << n << " " << sites << "\n";

  std::size_t name_width = 10;
  for (std::size_t t = 0; t < n; ++t) {
    name_width = std::max(name_width, alignment.name(t).size() + 1);
  }

  auto emit_name = [&](std::size_t t) {
    std::string name = alignment.name(t);
    name.resize(name_width, ' ');
    out << name;
  };
  auto emit_chunk = [&](std::size_t t, std::size_t from, std::size_t count) {
    for (std::size_t s = from; s < from + count; ++s) {
      out << code_to_char(alignment.at(t, s));
    }
    out << "\n";
  };

  if (layout == PhylipLayout::kSequential) {
    for (std::size_t t = 0; t < n; ++t) {
      emit_name(t);
      out << "\n";
      for (std::size_t from = 0; from < sites; from += kBlock) {
        emit_chunk(t, from, std::min(kBlock, sites - from));
      }
    }
    return;
  }

  for (std::size_t from = 0; from < sites; from += kBlock) {
    const std::size_t count = std::min(kBlock, sites - from);
    for (std::size_t t = 0; t < n; ++t) {
      if (from == 0) {
        emit_name(t);
      } else {
        out << std::string(name_width, ' ');
      }
      emit_chunk(t, from, count);
    }
    if (from + count < sites) out << "\n";
  }
}

void write_phylip_file(const std::string& path, const Alignment& alignment,
                       PhylipLayout layout) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_phylip(out, alignment, layout);
}

Alignment read_fasta(std::istream& in) {
  Alignment alignment;
  std::string line;
  std::string name;
  std::basic_string<BaseCode> row;
  auto flush = [&] {
    if (!name.empty()) alignment.add_sequence(name, std::move(row));
    row.clear();
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      std::istringstream ls(line.substr(1));
      ls >> name;
      if (name.empty()) throw std::runtime_error("FASTA: empty record name");
    } else {
      if (name.empty()) throw std::runtime_error("FASTA: data before first header");
      for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        const BaseCode code = char_to_code(c);
        if (code == 0) {
          throw std::runtime_error(std::string("FASTA: invalid character '") + c + "'");
        }
        row.push_back(code);
      }
    }
  }
  flush();
  if (alignment.num_taxa() == 0) throw std::runtime_error("FASTA: no records");
  return alignment;
}

Alignment read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const Alignment& alignment) {
  constexpr std::size_t kBlock = 70;
  for (std::size_t t = 0; t < alignment.num_taxa(); ++t) {
    out << ">" << alignment.name(t) << "\n";
    const std::size_t sites = alignment.num_sites();
    for (std::size_t from = 0; from < sites; from += kBlock) {
      const std::size_t count = std::min(kBlock, sites - from);
      for (std::size_t s = from; s < from + count; ++s) {
        out << code_to_char(alignment.at(t, s));
      }
      out << "\n";
    }
  }
}

void write_fasta_file(const std::string& path, const Alignment& alignment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_fasta(out, alignment);
}

}  // namespace fdml
