// Dataset fingerprinting for durable run state.
//
// A checkpoint is only meaningful against the alignment it was computed
// from: resuming a 20-taxon search against a different 20-taxon file would
// silently optimize the wrong likelihoods. The fingerprint digests what the
// likelihood machinery actually consumes — taxon names, the site-pattern
// matrix, pattern weights and equilibrium frequencies — so any edit that
// changes the computation changes the fingerprint, while byte-identical
// inputs loaded on any platform agree (the digest runs over the compressed
// pattern form, which is deterministic given the alignment).
#pragma once

#include <cstdint>

#include "seq/alignment.hpp"

namespace fdml {

std::uint64_t alignment_fingerprint(const PatternAlignment& data);

}  // namespace fdml
