#include "seq/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace fdml {

BaseCode char_to_code(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return kBaseA;
    case 'C': return kBaseC;
    case 'G': return kBaseG;
    case 'T':
    case 'U': return kBaseT;
    case 'R': return kBaseA | kBaseG;
    case 'Y': return kBaseC | kBaseT;
    case 'M': return kBaseA | kBaseC;
    case 'K': return kBaseG | kBaseT;
    case 'S': return kBaseC | kBaseG;
    case 'W': return kBaseA | kBaseT;
    case 'H': return kBaseA | kBaseC | kBaseT;
    case 'B': return kBaseC | kBaseG | kBaseT;
    case 'V': return kBaseA | kBaseC | kBaseG;
    case 'D': return kBaseA | kBaseG | kBaseT;
    case 'N':
    case 'X':
    case '?':
    case 'O':
    case '-':
    case '.': return kBaseUnknown;
    default: return 0;
  }
}

char code_to_char(BaseCode code) {
  static constexpr char kTable[16] = {'-', 'A', 'C', 'M', 'G', 'R', 'S', 'V',
                                      'T', 'W', 'Y', 'H', 'K', 'D', 'B', 'N'};
  return kTable[code & 15];
}

std::basic_string<BaseCode> string_to_codes(std::string_view s) {
  std::basic_string<BaseCode> codes;
  codes.reserve(s.size());
  for (char c : s) {
    const BaseCode code = char_to_code(c);
    if (code == 0) {
      throw std::invalid_argument(std::string("invalid sequence character '") +
                                  c + "'");
    }
    codes.push_back(code);
  }
  return codes;
}

std::string codes_to_string(const std::basic_string<BaseCode>& codes) {
  std::string s;
  s.reserve(codes.size());
  for (BaseCode code : codes) s.push_back(code_to_char(code));
  return s;
}

}  // namespace fdml
