// Multiple sequence alignment container and derived statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"
#include "util/linalg.hpp"

namespace fdml {

/// An aligned set of DNA sequences: equal-length rows of base codes.
class Alignment {
 public:
  Alignment() = default;

  /// Appends a sequence row. All rows must have equal length; names must be
  /// unique and non-empty. Throws std::invalid_argument otherwise.
  void add_sequence(std::string name, std::basic_string<BaseCode> codes);

  std::size_t num_taxa() const { return rows_.size(); }
  std::size_t num_sites() const { return rows_.empty() ? 0 : rows_[0].size(); }

  const std::string& name(std::size_t taxon) const { return names_[taxon]; }
  const std::vector<std::string>& names() const { return names_; }

  BaseCode at(std::size_t taxon, std::size_t site) const {
    return rows_[taxon][site];
  }
  const std::basic_string<BaseCode>& row(std::size_t taxon) const {
    return rows_[taxon];
  }

  /// Index of the named taxon, or -1.
  int find_taxon(const std::string& name) const;

  /// Alignment restricted to the given taxon indices (in the given order).
  Alignment subset_taxa(const std::vector<std::size_t>& taxa) const;

  /// Alignment restricted to the site range [first, first+count).
  Alignment subset_sites(std::size_t first, std::size_t count) const;

  /// Empirical base frequencies. Ambiguity codes contribute fractionally to
  /// each compatible base; fully-unknown characters are skipped. This is the
  /// "base composition of the data used as the equilibrium base frequencies"
  /// default that fastDNAml adopted.
  Vec4 base_frequencies() const;

  /// Fraction of characters that are not unambiguous bases.
  double ambiguous_fraction() const;

  bool operator==(const Alignment& other) const {
    return names_ == other.names_ && rows_ == other.rows_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::basic_string<BaseCode>> rows_;
};

/// Site-pattern-compressed view of an alignment. Columns that are identical
/// across all taxa are merged, with a weight equal to the number of merged
/// sites (times any user-supplied site weight). The likelihood of a tree is
/// the weighted sum over patterns, which is what makes ML tractable on
/// alignments with thousands of sites.
class PatternAlignment {
 public:
  /// Compresses `alignment`; optional per-site integer weights (empty means
  /// all 1). Zero-weight sites are dropped.
  explicit PatternAlignment(const Alignment& alignment,
                            const std::vector<int>& site_weights = {});

  std::size_t num_taxa() const { return num_taxa_; }
  std::size_t num_patterns() const { return weights_.size(); }
  std::size_t num_sites() const { return site_to_pattern_.size(); }
  double total_weight() const { return total_weight_; }

  /// Base code of `taxon` in `pattern`.
  BaseCode at(std::size_t taxon, std::size_t pattern) const {
    return codes_[pattern * num_taxa_ + taxon];
  }

  double weight(std::size_t pattern) const { return weights_[pattern]; }
  const std::vector<double>& weights() const { return weights_; }

  /// Pattern index for an original site.
  std::size_t pattern_of_site(std::size_t site) const {
    return site_to_pattern_[site];
  }

  const std::vector<std::string>& names() const { return names_; }
  const Vec4& base_frequencies() const { return frequencies_; }

 private:
  std::size_t num_taxa_ = 0;
  std::vector<std::string> names_;
  std::vector<BaseCode> codes_;  // pattern-major: [pattern][taxon]
  std::vector<double> weights_;
  std::vector<std::size_t> site_to_pattern_;
  double total_weight_ = 0.0;
  Vec4 frequencies_{};
};

}  // namespace fdml
