// Nucleotide alphabet with IUPAC ambiguity codes.
//
// A base code is a 4-bit mask over {A, C, G, T}. Ambiguity codes set several
// bits; gaps and unknowns are treated as fully missing data (all four bits),
// matching fastDNAml's treatment of alignment gaps as missing data.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fdml {

using BaseCode = std::uint8_t;

inline constexpr BaseCode kBaseA = 1;
inline constexpr BaseCode kBaseC = 2;
inline constexpr BaseCode kBaseG = 4;
inline constexpr BaseCode kBaseT = 8;
inline constexpr BaseCode kBaseUnknown = 15;  // N, X, ?, -, .

/// Index (0..3) to single-base code.
constexpr BaseCode base_from_index(int index) {
  return static_cast<BaseCode>(1 << index);
}

/// True when the code represents exactly one base.
constexpr bool is_unambiguous(BaseCode code) {
  return code != 0 && (code & (code - 1)) == 0;
}

/// Number of bases compatible with the code (popcount of low 4 bits).
constexpr int base_cardinality(BaseCode code) {
  int n = 0;
  for (int i = 0; i < 4; ++i) n += (code >> i) & 1;
  return n;
}

/// Maps an input character (case-insensitive; U treated as T) to its code.
/// Returns 0 for characters that are not valid sequence symbols.
BaseCode char_to_code(char c);

/// Canonical character for a code (IUPAC letter; '-' only for code 0).
char code_to_char(BaseCode code);

/// True if the character encodes a valid base or ambiguity symbol.
inline bool is_sequence_char(char c) { return char_to_code(c) != 0; }

/// Converts a string of sequence characters to codes; throws
/// std::invalid_argument on an invalid character.
std::basic_string<BaseCode> string_to_codes(std::string_view s);

/// Converts codes back to their canonical characters.
std::string codes_to_string(const std::basic_string<BaseCode>& codes);

/// Names of the four bases in index order, for reports.
inline constexpr std::array<const char*, 4> kBaseNames = {"A", "C", "G", "T"};

}  // namespace fdml
