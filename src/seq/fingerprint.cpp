#include "seq/fingerprint.hpp"

#include <cstring>

#include "util/fnv.hpp"

namespace fdml {

std::uint64_t alignment_fingerprint(const PatternAlignment& data) {
  std::uint64_t hash = fnv1a64_u64(data.num_taxa());
  hash = fnv1a64_u64(data.num_patterns(), hash);
  hash = fnv1a64_u64(data.num_sites(), hash);
  for (const std::string& name : data.names()) {
    hash = fnv1a64(name, hash);
    hash = fnv1a64_u64(name.size(), hash);  // delimit: {"ab","c"} != {"a","bc"}
  }
  for (std::size_t pattern = 0; pattern < data.num_patterns(); ++pattern) {
    for (std::size_t taxon = 0; taxon < data.num_taxa(); ++taxon) {
      hash ^= static_cast<unsigned char>(data.at(taxon, pattern));
      hash *= kFnv1a64Prime;
    }
    std::uint64_t weight_bits;
    const double weight = data.weight(pattern);
    static_assert(sizeof(weight_bits) == sizeof(weight));
    std::memcpy(&weight_bits, &weight, sizeof(weight_bits));
    hash = fnv1a64_u64(weight_bits, hash);
  }
  for (int i = 0; i < 4; ++i) {
    std::uint64_t bits;
    const double frequency = data.base_frequencies()[i];
    std::memcpy(&bits, &frequency, sizeof(bits));
    hash = fnv1a64_u64(bits, hash);
  }
  return hash;
}

}  // namespace fdml
