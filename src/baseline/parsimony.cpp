#include "baseline/parsimony.hpp"

#include <set>
#include <stdexcept>
#include <vector>

#include "tree/neighborhood.hpp"
#include "tree/splits.hpp"

namespace fdml {

namespace {

// Fitch post-order pass for one pattern: returns the state set at `node`
// seen from `from`, accumulating changes into `changes`.
BaseCode fitch_states(const Tree& tree, const PatternAlignment& data,
                      std::size_t pattern, int node, int from, int& changes) {
  if (tree.is_tip(node)) {
    const BaseCode code = data.at(static_cast<std::size_t>(node), pattern);
    return code == 0 ? kBaseUnknown : code;
  }
  BaseCode intersection = 0x0f;
  BaseCode union_set = 0;
  bool first = true;
  for (int s = 0; s < 3; ++s) {
    const int child = tree.neighbor(node, s);
    if (child == Tree::kNoNode || child == from) continue;
    const BaseCode child_set =
        fitch_states(tree, data, pattern, child, node, changes);
    if (first) {
      intersection = child_set;
      union_set = child_set;
      first = false;
    } else {
      intersection = static_cast<BaseCode>(intersection & child_set);
      union_set = static_cast<BaseCode>(union_set | child_set);
    }
  }
  if (intersection != 0) return intersection;
  ++changes;
  return union_set;
}

}  // namespace

double fitch_score(const Tree& tree, const PatternAlignment& data) {
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) throw std::invalid_argument("fitch_score: empty tree");
  double total = 0.0;
  for (std::size_t pattern = 0; pattern < data.num_patterns(); ++pattern) {
    int changes = 0;
    // Treat the root's own set like an extra union step: run the pass over
    // the whole unrooted tree from the root node.
    (void)fitch_states(tree, data, pattern, root, -1, changes);
    total += data.weight(pattern) * changes;
  }
  return total;
}

ParsimonySearchResult parsimony_search(const PatternAlignment& data,
                                       const ParsimonyOptions& options) {
  const int n = static_cast<int>(data.num_taxa());
  if (n < 3) throw std::invalid_argument("parsimony_search: need >= 3 taxa");
  Rng rng(options.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);

  ParsimonySearchResult result{Tree(n), 0.0, 0};
  Tree& tree = result.tree;
  tree.make_triplet(order[0], order[1], order[2]);

  auto score = [&](const Tree& t) {
    ++result.trees_scored;
    return fitch_score(t, data);
  };

  for (int idx = 3; idx < n; ++idx) {
    const int tip = order[static_cast<std::size_t>(idx)];
    double best_score = 1e300;
    std::pair<int, int> best_edge{-1, -1};
    for (const auto& [u, v] : tree.edges()) {
      Tree candidate = tree;
      candidate.insert_tip(tip, u, v);
      const double s = score(candidate);
      if (s < best_score) {
        best_score = s;
        best_edge = {u, v};
      }
    }
    tree.insert_tip(tip, best_edge.first, best_edge.second);
    result.score = best_score;

    // Local rearrangement, minimizing changes.
    for (int round = 0; round < options.max_rearrange_rounds; ++round) {
      if (options.rearrange_cross < 1) break;
      std::set<std::uint64_t> seen{topology_hash(tree)};
      double round_best = result.score;
      Tree round_tree = tree;
      bool improved = false;
      for (const SprMove& move :
           rearrangement_moves(tree, options.rearrange_cross)) {
        Tree candidate = tree;
        const auto handle =
            candidate.prune_subtree(move.junction, move.subtree_neighbor);
        candidate.regraft(handle, move.target_u, move.target_v);
        if (!seen.insert(topology_hash(candidate)).second) continue;
        const double s = score(candidate);
        if (s < round_best) {
          round_best = s;
          round_tree = candidate;
          improved = true;
        }
      }
      if (!improved) break;
      tree = round_tree;
      result.score = round_best;
    }
  }
  return result;
}

}  // namespace fdml
