#include "baseline/nj.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fdml {

std::vector<std::vector<double>> jc_distance_matrix(const PatternAlignment& data,
                                                    double max_distance) {
  const std::size_t n = data.num_taxa();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double shared = 0.0;
      double mismatch = 0.0;
      for (std::size_t p = 0; p < data.num_patterns(); ++p) {
        const BaseCode ca = data.at(a, p);
        const BaseCode cb = data.at(b, p);
        if (!is_unambiguous(ca) || !is_unambiguous(cb)) continue;
        shared += data.weight(p);
        if (ca != cb) mismatch += data.weight(p);
      }
      double dist = max_distance;
      if (shared > 0.0) {
        const double p = mismatch / shared;
        if (p < 0.749) {
          dist = -0.75 * std::log(1.0 - (4.0 / 3.0) * p);
        }
      }
      d[a][b] = d[b][a] = std::min(dist, max_distance);
    }
  }
  return d;
}

Tree neighbor_joining(const std::vector<std::vector<double>>& distances,
                      int num_taxa) {
  if (num_taxa < 3) throw std::invalid_argument("neighbor_joining: need >= 3 taxa");
  if (distances.size() != static_cast<std::size_t>(num_taxa)) {
    throw std::invalid_argument("neighbor_joining: matrix size mismatch");
  }

  Tree tree(num_taxa);

  // Active cluster list: each entry is a Tree node id; the working distance
  // matrix is indexed by position in `active`.
  std::vector<int> active(static_cast<std::size_t>(num_taxa));
  for (int i = 0; i < num_taxa; ++i) active[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<double>> d = distances;

  while (active.size() > 3) {
    const std::size_t m = active.size();
    // Row sums for the Q criterion.
    std::vector<double> row_sum(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) row_sum[i] += d[i][j];
    }
    // Pick the pair minimizing Q(i,j) = (m-2) d_ij - r_i - r_j.
    std::size_t best_i = 0;
    std::size_t best_j = 1;
    double best_q = 1e300;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const double q = (static_cast<double>(m) - 2.0) * d[i][j] - row_sum[i] -
                         row_sum[j];
        if (q < best_q) {
          best_q = q;
          best_i = i;
          best_j = j;
        }
      }
    }
    // Branch lengths to the new internal node.
    const double dij = d[best_i][best_j];
    double li = 0.5 * dij + (row_sum[best_i] - row_sum[best_j]) /
                                (2.0 * (static_cast<double>(m) - 2.0));
    double lj = dij - li;
    li = std::clamp(li, kMinBranchLength, kMaxBranchLength);
    lj = std::clamp(lj, kMinBranchLength, kMaxBranchLength);

    const int internal = tree.allocate_internal_node();
    tree.add_edge(active[best_i], internal, li);
    tree.add_edge(active[best_j], internal, lj);

    // New distance row (standard NJ reduction).
    std::vector<double> to_new(m, 0.0);
    for (std::size_t k = 0; k < m; ++k) {
      if (k == best_i || k == best_j) continue;
      to_new[k] = 0.5 * (d[best_i][k] + d[best_j][k] - dij);
    }
    // Replace row best_i with the new cluster; delete row best_j.
    active[best_i] = internal;
    for (std::size_t k = 0; k < m; ++k) {
      d[best_i][k] = d[k][best_i] = std::max(0.0, to_new[k]);
    }
    d[best_i][best_i] = 0.0;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(best_j));
    d.erase(d.begin() + static_cast<std::ptrdiff_t>(best_j));
    for (auto& row : d) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(best_j));
    }
  }

  // Join the final three clusters at one internal node with the classic
  // three-point formulas.
  const double d01 = d[0][1];
  const double d02 = d[0][2];
  const double d12 = d[1][2];
  const double l0 = std::clamp(0.5 * (d01 + d02 - d12), kMinBranchLength,
                               kMaxBranchLength);
  const double l1 = std::clamp(0.5 * (d01 + d12 - d02), kMinBranchLength,
                               kMaxBranchLength);
  const double l2 = std::clamp(0.5 * (d02 + d12 - d01), kMinBranchLength,
                               kMaxBranchLength);
  const int center = tree.allocate_internal_node();
  tree.add_edge(active[0], center, l0);
  tree.add_edge(active[1], center, l1);
  tree.add_edge(active[2], center, l2);

  tree.check_valid();
  return tree;
}

Tree neighbor_joining(const PatternAlignment& data) {
  return neighbor_joining(jc_distance_matrix(data),
                          static_cast<int>(data.num_taxa()));
}

}  // namespace fdml
