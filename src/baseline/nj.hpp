// Neighbor joining (Saitou & Nei 1987) over Jukes-Cantor distances: the
// cheap distance-method comparator. The paper's broader point — that
// fastDNAml "permits biologists to compare ML methods with other
// phylogenetic inference methods" — needs those other methods to exist;
// NJ is the standard fast one.
#pragma once

#include <vector>

#include "seq/alignment.hpp"
#include "tree/tree.hpp"

namespace fdml {

/// Pairwise Jukes-Cantor distance matrix: d = -(3/4) ln(1 - (4/3) p) with
/// p the mismatch proportion over unambiguous, shared sites. Saturated
/// pairs (p >= 0.749) are capped at `max_distance`.
std::vector<std::vector<double>> jc_distance_matrix(const PatternAlignment& data,
                                                    double max_distance = 5.0);

/// Builds an unrooted bifurcating NJ tree over all taxa in `data`.
Tree neighbor_joining(const PatternAlignment& data);

/// NJ from an explicit distance matrix (square, symmetric, >= 3 taxa).
Tree neighbor_joining(const std::vector<std::vector<double>>& distances,
                      int num_taxa);

}  // namespace fdml
