// Maximum-parsimony baseline (Fitch 1971).
//
// The paper positions ML against cheaper methods: "Parsimony methods are
// less computationally complex than maximum likelihood methods" (discussing
// Snell et al.'s parallel parsimony). This module provides that comparator:
// the Fitch small-parsimony score and a stepwise-addition parsimony search
// mirroring the ML search's structure, so per-tree cost and result quality
// can be compared head-to-head (bench_ml_vs_parsimony).
#pragma once

#include <cstdint>

#include "seq/alignment.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace fdml {

/// Weighted Fitch parsimony score of a tree (number of state changes,
/// summed over patterns with pattern weights). Ambiguity codes participate
/// as state sets; fully-unknown characters never force a change.
double fitch_score(const Tree& tree, const PatternAlignment& data);

struct ParsimonySearchResult {
  Tree tree;
  double score = 0.0;
  std::size_t trees_scored = 0;
};

struct ParsimonyOptions {
  std::uint64_t seed = 1;
  /// Vertices crossed during rearrangement (same meaning as the ML search).
  int rearrange_cross = 1;
  int max_rearrange_rounds = 64;
};

/// Stepwise-addition + rearrangement search minimizing the Fitch score —
/// structurally the same algorithm as the ML search, with the scorer
/// swapped, which is exactly what makes the cost comparison meaningful.
ParsimonySearchResult parsimony_search(const PatternAlignment& data,
                                       const ParsimonyOptions& options = {});

}  // namespace fdml
