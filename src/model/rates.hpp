// Among-site rate heterogeneity.
//
// fastDNAml adjusts the Markov process "at each sequence position to account
// for differences between loci in propensity to show genetic changes"; its
// companion program DNArates estimates those per-site rates. This module
// provides the category machinery: a RateModel is a small set of rate
// multipliers with probabilities (mean rate 1), covering the uniform model,
// user-defined categories, and the discrete-gamma approximation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fdml {

class RateModel {
 public:
  /// Single rate of 1 (the fastDNAml default when no rates file is given).
  static RateModel uniform();

  /// Discrete-gamma with `categories` equiprobable categories, each carrying
  /// the mean rate of its quantile slice (Yang 1994 "mean" method).
  static RateModel discrete_gamma(double alpha, int categories);

  /// Discrete-gamma plus a proportion of invariant sites (rate-0 category).
  static RateModel gamma_invariant(double alpha, int categories,
                                   double p_invariant);

  /// User-supplied categories (the DNArates workflow). Probabilities are
  /// normalized; rates are rescaled so the mean rate is 1.
  static RateModel user(std::vector<double> rates,
                        std::vector<double> probabilities);

  std::size_t num_categories() const { return rates_.size(); }
  double rate(std::size_t category) const { return rates_[category]; }
  double probability(std::size_t category) const { return probs_[category]; }
  const std::vector<double>& rates() const { return rates_; }
  const std::vector<double>& probabilities() const { return probs_; }
  const std::string& name() const { return name_; }

  /// Mean rate (1 by construction; exposed for tests).
  double mean_rate() const;

 private:
  RateModel(std::string name, std::vector<double> rates,
            std::vector<double> probs);

  std::string name_;
  std::vector<double> rates_;
  std::vector<double> probs_;
};

}  // namespace fdml
