#include "model/simulate.hpp"

#include <cstdio>
#include <stdexcept>

#include "tree/random.hpp"

namespace fdml {

namespace {

int sample_state(const Vec4& distribution, Rng& rng) {
  double pick = rng.uniform();
  for (int s = 0; s < 4; ++s) {
    pick -= distribution[s];
    if (pick <= 0.0) return s;
  }
  return 3;
}

BaseCode ambiguate(int state, Rng& rng) {
  // A partial ambiguity code that covers the true base: add 1..2 extra bases.
  BaseCode code = base_from_index(state);
  const int extra = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < extra; ++i) {
    code |= base_from_index(static_cast<int>(rng.below(4)));
  }
  return code;
}

}  // namespace

Alignment simulate_alignment(const Tree& tree,
                             const std::vector<std::string>& names,
                             const SubstModel& model, const RateModel& rates,
                             const SimulateOptions& options, Rng& rng) {
  if (static_cast<int>(names.size()) < tree.num_taxa()) {
    throw std::invalid_argument("simulate_alignment: not enough names");
  }
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) {
    throw std::invalid_argument("simulate_alignment: tree has no internal node");
  }
  const std::size_t sites = options.num_sites;

  // states[node][site]; evolve by preorder walk from the root.
  std::vector<std::vector<std::uint8_t>> states(
      static_cast<std::size_t>(tree.max_nodes()));
  std::vector<std::size_t> site_category(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    site_category[s] = rng.categorical(rates.probabilities());
  }

  auto& root_states = states[static_cast<std::size_t>(root)];
  root_states.resize(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    root_states[s] = static_cast<std::uint8_t>(sample_state(model.frequencies(), rng));
  }

  struct Frame {
    int node;
    int from;
  };
  std::vector<Frame> stack{{root, -1}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    for (int slot = 0; slot < 3; ++slot) {
      const int child = tree.neighbor(f.node, slot);
      if (child == Tree::kNoNode || child == f.from) continue;
      const double t = tree.length(f.node, child);
      auto& child_states = states[static_cast<std::size_t>(child)];
      child_states.resize(sites);
      const auto& parent_states = states[static_cast<std::size_t>(f.node)];
      // One transition matrix per rate category for this edge.
      std::vector<Mat4> per_category(rates.num_categories());
      for (std::size_t c = 0; c < rates.num_categories(); ++c) {
        model.transition(t * rates.rate(c), per_category[c]);
      }
      for (std::size_t s = 0; s < sites; ++s) {
        const Mat4& matrix = per_category[site_category[s]];
        const int from_state = parent_states[s];
        Vec4 row{matrix[from_state][0], matrix[from_state][1],
                 matrix[from_state][2], matrix[from_state][3]};
        child_states[s] = static_cast<std::uint8_t>(sample_state(row, rng));
      }
      if (!tree.is_tip(child)) stack.push_back({child, f.node});
    }
  }

  Alignment alignment;
  for (int tip : tree.tips()) {
    std::basic_string<BaseCode> row(sites, 0);
    const auto& tip_states = states[static_cast<std::size_t>(tip)];
    for (std::size_t s = 0; s < sites; ++s) {
      const double roll = rng.uniform();
      if (roll < options.missing_fraction) {
        row[s] = kBaseUnknown;
      } else if (roll < options.missing_fraction + options.partial_ambiguity_fraction) {
        row[s] = ambiguate(tip_states[s], rng);
      } else {
        row[s] = base_from_index(tip_states[s]);
      }
    }
    alignment.add_sequence(names.at(static_cast<std::size_t>(tip)), std::move(row));
  }
  return alignment;
}

std::vector<std::string> default_taxon_names(int num_taxa) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_taxa));
  for (int t = 0; t < num_taxa; ++t) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "T%04d", t + 1);
    names.emplace_back(buf);
  }
  return names;
}

Alignment make_paper_like_dataset(int num_taxa, std::size_t num_sites,
                                  std::uint64_t seed, Tree* true_tree) {
  Rng rng(seed);
  RandomTreeOptions tree_options;
  tree_options.mean_branch_length = 0.08;
  Tree tree = random_yule_tree(num_taxa, rng, tree_options);

  // rRNA-like composition (slightly GC-poor) and the fastDNAml default
  // transition/transversion ratio of 2.
  const Vec4 pi{0.28, 0.21, 0.26, 0.25};
  const SubstModel model = SubstModel::f84_from_tstv(pi, 2.0);
  const RateModel rates = RateModel::discrete_gamma(0.7, 4);

  SimulateOptions options;
  options.num_sites = num_sites;
  options.missing_fraction = 0.02;
  options.partial_ambiguity_fraction = 0.005;
  Alignment alignment = simulate_alignment(
      tree, default_taxon_names(num_taxa), model, rates, options, rng);
  if (true_tree != nullptr) *true_tree = std::move(tree);
  return alignment;
}

}  // namespace fdml
