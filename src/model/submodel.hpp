// Time-reversible nucleotide substitution models.
//
// fastDNAml's model is F84 (Felsenstein's DNAml 1984 model; transition /
// transversion bias plus unequal base frequencies). The paper's future-work
// list asks for "more general models of nucleotide change", so this library
// implements the whole reversible family up to GTR through one mechanism:
// build the rate matrix Q, symmetrize it with sqrt(pi), eigendecompose, and
// compute P(t) = exp(Qt) (plus dP/dt and d2P/dt2 for Newton branch-length
// optimization) from the eigensystem.
#pragma once

#include <array>
#include <string>

#include "util/linalg.hpp"

namespace fdml {

/// State order everywhere: A=0, C=1, G=2, T=3.
class SubstModel {
 public:
  /// Jukes–Cantor 1969: equal frequencies, one rate.
  static SubstModel jc69();
  /// Kimura 1980: equal frequencies, transition/transversion ratio kappa.
  static SubstModel k80(double kappa);
  /// Felsenstein 1981: unequal frequencies, one exchangeability.
  static SubstModel f81(const Vec4& pi);
  /// Hasegawa–Kishino–Yano 1985.
  static SubstModel hky85(const Vec4& pi, double kappa);
  /// Felsenstein 1984 — the fastDNAml model. `k` is the F84 transition
  /// parameter (>= 0; k = 0 reduces to F81).
  static SubstModel f84(const Vec4& pi, double k);
  /// F84 parameterized by the expected transition/transversion *ratio*, the
  /// way fastDNAml users specify it (its default ratio is 2.0). Throws if
  /// the ratio is unattainably small for the given frequencies.
  static SubstModel f84_from_tstv(const Vec4& pi, double tstv_ratio);
  /// General time-reversible: exchangeabilities in order
  /// (AC, AG, AT, CG, CT, GT).
  static SubstModel gtr(const Vec4& pi, const std::array<double, 6>& rates);

  const std::string& name() const { return name_; }
  const Vec4& frequencies() const { return pi_; }
  /// Normalized rate matrix (expected substitutions per unit time = 1).
  const Mat4& rate_matrix() const { return q_; }
  const Vec4& eigenvalues() const { return eigenvalues_; }

  /// P(t): probability of state j after time t, starting from i.
  void transition(double t, Mat4& p) const;
  /// P(t) together with its first and second derivatives in t.
  void transition_with_derivs(double t, Mat4& p, Mat4& dp, Mat4& d2p) const;
  /// P(t) plus the eigenvalue exponentials exp(lambda_k t) it was built
  /// from, in one pass (what the likelihood layer's TransitionCache stores).
  void transition_and_exp(double t, Mat4& p, Vec4& expl) const;

  /// Eigenbasis of Q: P(t) = right * diag(exp(lambda t)) * left. Exposed so
  /// the likelihood kernels can project per-site weights into the eigenbasis
  /// once and evaluate lnL(t) as a 4-term exponential sum per site (the
  /// fastDNAml "sumtable" trick) instead of a 16-term P(t) contraction.
  const Mat4& right_eigenvectors() const { return right_; }
  const Mat4& left_eigenvectors() const { return left_; }

  /// Expected transition/transversion ratio implied by the model.
  double tstv_ratio() const;

 private:
  SubstModel(std::string name, const Vec4& pi, const std::array<double, 6>& s);

  std::string name_;
  Vec4 pi_{};
  Mat4 q_{};           // normalized rate matrix
  Vec4 eigenvalues_{};  // of the normalized Q
  Mat4 right_{};        // P(t) = right * diag(exp(lambda t)) * left
  Mat4 left_{};
};

/// Validates and normalizes a frequency vector (positive, sums to 1 within
/// tolerance); throws std::invalid_argument otherwise.
Vec4 normalize_frequencies(const Vec4& pi);

}  // namespace fdml
