// Sequence evolution simulator.
//
// Substitutes for the paper's data source: the European Small-Subunit
// Ribosomal RNA Database alignments (50/101 taxa x 1858 positions, 150 taxa
// x 1269 positions) are not redistributable offline, so benchmarks evolve
// synthetic alignments of the same dimensions down random trees under the
// same F84(+rates) model the inference uses. This keeps every code path and
// the per-round task structure of the search identical to a real analysis.
#pragma once

#include <string>
#include <vector>

#include "model/rates.hpp"
#include "model/submodel.hpp"
#include "seq/alignment.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace fdml {

struct SimulateOptions {
  std::size_t num_sites = 1000;
  /// Fraction of characters replaced with fully-ambiguous 'N' (missing
  /// data), exercising fastDNAml's gaps-as-missing handling.
  double missing_fraction = 0.0;
  /// Fraction of characters replaced with a partial ambiguity code covering
  /// the true base (e.g. R for a simulated A).
  double partial_ambiguity_fraction = 0.0;
};

/// Evolves sequences down `tree` under `model` with per-site rate categories
/// drawn from `rates`. `names[t]` labels tip t. Returns the tip alignment.
Alignment simulate_alignment(const Tree& tree,
                             const std::vector<std::string>& names,
                             const SubstModel& model, const RateModel& rates,
                             const SimulateOptions& options, Rng& rng);

/// Convenience: generates taxon names T0001.. for `num_taxa`.
std::vector<std::string> default_taxon_names(int num_taxa);

/// One-call generator for paper-shaped datasets: random Yule tree +
/// F84(tstv=2) with mild gamma rate heterogeneity and ~2% missing data,
/// shaped like the Microsporidia rRNA study data. Returns the alignment and
/// (via out-param) the true tree it was evolved on.
Alignment make_paper_like_dataset(int num_taxa, std::size_t num_sites,
                                  std::uint64_t seed, Tree* true_tree = nullptr);

}  // namespace fdml
