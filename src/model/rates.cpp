#include "model/rates.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/special.hpp"

namespace fdml {

RateModel::RateModel(std::string name, std::vector<double> rates,
                     std::vector<double> probs)
    : name_(std::move(name)), rates_(std::move(rates)), probs_(std::move(probs)) {
  if (rates_.empty() || rates_.size() != probs_.size()) {
    throw std::invalid_argument("RateModel: rates/probabilities mismatch");
  }
  double total_prob = 0.0;
  for (double p : probs_) {
    if (!(p > 0.0)) throw std::invalid_argument("RateModel: probabilities must be > 0");
    total_prob += p;
  }
  for (double& p : probs_) p /= total_prob;
  double mean = 0.0;
  for (std::size_t c = 0; c < rates_.size(); ++c) {
    if (!(rates_[c] >= 0.0)) throw std::invalid_argument("RateModel: negative rate");
    mean += probs_[c] * rates_[c];
  }
  if (!(mean > 0.0)) throw std::invalid_argument("RateModel: zero mean rate");
  for (double& r : rates_) r /= mean;
}

double RateModel::mean_rate() const {
  double mean = 0.0;
  for (std::size_t c = 0; c < rates_.size(); ++c) mean += probs_[c] * rates_[c];
  return mean;
}

RateModel RateModel::uniform() { return RateModel("uniform", {1.0}, {1.0}); }

RateModel RateModel::discrete_gamma(double alpha, int categories) {
  if (!(alpha > 0.0)) throw std::invalid_argument("discrete_gamma: alpha must be > 0");
  if (categories < 1) throw std::invalid_argument("discrete_gamma: categories must be >= 1");
  const std::size_t k = static_cast<std::size_t>(categories);
  // Gamma(alpha, rate=alpha) has mean 1. Cut the distribution into k
  // equiprobable slices; each category rate is the conditional mean of its
  // slice: k * [P(alpha+1, x_hi) - P(alpha+1, x_lo)] with unit-scale x.
  std::vector<double> cuts(k + 1);
  cuts[0] = 0.0;
  for (std::size_t i = 1; i < k; ++i) {
    cuts[i] = gamma_p_inverse(alpha, static_cast<double>(i) / k);
  }
  cuts[k] = std::numeric_limits<double>::infinity();
  std::vector<double> rates(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double hi = std::isinf(cuts[i + 1]) ? 1.0 : gamma_p(alpha + 1.0, cuts[i + 1]);
    const double lo = cuts[i] == 0.0 ? 0.0 : gamma_p(alpha + 1.0, cuts[i]);
    rates[i] = static_cast<double>(k) * (hi - lo);
  }
  return RateModel("gamma(" + std::to_string(alpha) + ")x" + std::to_string(k),
                   std::move(rates), std::vector<double>(k, 1.0 / k));
}

RateModel RateModel::gamma_invariant(double alpha, int categories,
                                     double p_invariant) {
  if (!(p_invariant >= 0.0 && p_invariant < 1.0)) {
    throw std::invalid_argument("gamma_invariant: p_invariant in [0,1)");
  }
  RateModel gamma = discrete_gamma(alpha, categories);
  std::vector<double> rates;
  std::vector<double> probs;
  rates.push_back(0.0);
  probs.push_back(p_invariant <= 0.0 ? 1e-12 : p_invariant);
  for (std::size_t c = 0; c < gamma.num_categories(); ++c) {
    rates.push_back(gamma.rate(c));
    probs.push_back((1.0 - p_invariant) * gamma.probability(c));
  }
  return RateModel("gamma+I", std::move(rates), std::move(probs));
}

RateModel RateModel::user(std::vector<double> rates,
                          std::vector<double> probabilities) {
  return RateModel("user", std::move(rates), std::move(probabilities));
}

}  // namespace fdml
