#include "model/submodel.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fdml {

Vec4 normalize_frequencies(const Vec4& pi) {
  double total = 0.0;
  for (double f : pi) {
    if (!(f > 0.0)) {
      throw std::invalid_argument("base frequencies must be positive");
    }
    total += f;
  }
  if (std::fabs(total - 1.0) > 0.1) {
    throw std::invalid_argument("base frequencies must sum to ~1");
  }
  Vec4 out = pi;
  for (double& f : out) f /= total;
  return out;
}

SubstModel::SubstModel(std::string name, const Vec4& pi,
                       const std::array<double, 6>& s)
    : name_(std::move(name)), pi_(normalize_frequencies(pi)) {
  for (double rate : s) {
    if (!(rate >= 0.0)) throw std::invalid_argument("exchangeabilities must be >= 0");
  }
  // Assemble Q: q_ij = s_ij * pi_j for i != j; rows sum to zero.
  // Exchangeability order: (AC, AG, AT, CG, CT, GT).
  Mat4 q{};
  const auto pair_rate = [&s](int i, int j) {
    static constexpr int kIndex[4][4] = {{-1, 0, 1, 2},
                                         {0, -1, 3, 4},
                                         {1, 3, -1, 5},
                                         {2, 4, 5, -1}};
    return s[static_cast<std::size_t>(kIndex[i][j])];
  };
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      q[i][j] = pair_rate(i, j) * pi_[j];
      row += q[i][j];
    }
    q[i][i] = -row;
  }
  // Normalize so the expected rate  -sum_i pi_i q_ii  is 1.
  double mu = 0.0;
  for (int i = 0; i < 4; ++i) mu -= pi_[i] * q[i][i];
  if (!(mu > 0.0)) throw std::invalid_argument("degenerate rate matrix");
  for (auto& row : q) {
    for (double& x : row) x /= mu;
  }
  q_ = q;

  // Symmetrize: S = D^(1/2) Q D^(-1/2) with D = diag(pi). S is symmetric for
  // reversible models, so a Jacobi solver applies.
  Vec4 sqrt_pi{};
  Vec4 inv_sqrt_pi{};
  for (int i = 0; i < 4; ++i) {
    sqrt_pi[i] = std::sqrt(pi_[i]);
    inv_sqrt_pi[i] = 1.0 / sqrt_pi[i];
  }
  Mat4 sym{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      sym[i][j] = sqrt_pi[i] * q_[i][j] * inv_sqrt_pi[j];
    }
  }
  // Enforce exact symmetry against rounding before decomposition.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const double avg = 0.5 * (sym[i][j] + sym[j][i]);
      sym[i][j] = avg;
      sym[j][i] = avg;
    }
  }
  Mat4 vectors{};
  jacobi_eigen_symmetric(sym, eigenvalues_, vectors);
  // Q = D^(-1/2) V L V^T D^(1/2):
  //   right_[i][k] = v_ik / sqrt(pi_i),  left_[k][j] = v_jk * sqrt(pi_j).
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 4; ++k) {
      right_[i][k] = vectors[i][k] * inv_sqrt_pi[i];
      left_[k][i] = vectors[i][k] * sqrt_pi[i];
    }
  }
}

void SubstModel::transition(double t, Mat4& p) const {
  Vec4 expl{};
  for (int k = 0; k < 4; ++k) expl[k] = std::exp(eigenvalues_[k] * t);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) sum += right_[i][k] * expl[k] * left_[k][j];
      // Clamp tiny negative values produced by rounding.
      p[i][j] = sum < 0.0 ? 0.0 : sum;
    }
  }
}

void SubstModel::transition_and_exp(double t, Mat4& p, Vec4& expl) const {
  // Must match transition() bit-for-bit (same evaluation order, same clamp):
  // the TransitionCache serves both cached and freshly-built entries and the
  // engine's results may not depend on which path produced them.
  for (int k = 0; k < 4; ++k) expl[k] = std::exp(eigenvalues_[k] * t);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) sum += right_[i][k] * expl[k] * left_[k][j];
      p[i][j] = sum < 0.0 ? 0.0 : sum;
    }
  }
}

void SubstModel::transition_with_derivs(double t, Mat4& p, Mat4& dp,
                                        Mat4& d2p) const {
  Vec4 expl{};
  for (int k = 0; k < 4; ++k) expl[k] = std::exp(eigenvalues_[k] * t);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      double dsum = 0.0;
      double d2sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        const double term = right_[i][k] * expl[k] * left_[k][j];
        sum += term;
        dsum += eigenvalues_[k] * term;
        d2sum += eigenvalues_[k] * eigenvalues_[k] * term;
      }
      p[i][j] = sum < 0.0 ? 0.0 : sum;
      dp[i][j] = dsum;
      d2p[i][j] = d2sum;
    }
  }
}

double SubstModel::tstv_ratio() const {
  // Transitions: A<->G and C<->T.
  const double ts = pi_[0] * q_[0][2] + pi_[2] * q_[2][0] + pi_[1] * q_[1][3] +
                    pi_[3] * q_[3][1];
  double tv = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const bool transition = (i + j == 2) || (i + j == 4 && i != j && i % 2 == 1);
      if (!transition) tv += pi_[i] * q_[i][j];
    }
  }
  return ts / tv;
}

SubstModel SubstModel::jc69() {
  return SubstModel("JC69", {0.25, 0.25, 0.25, 0.25}, {1, 1, 1, 1, 1, 1});
}

SubstModel SubstModel::k80(double kappa) {
  if (!(kappa > 0.0)) throw std::invalid_argument("K80: kappa must be > 0");
  return SubstModel("K80", {0.25, 0.25, 0.25, 0.25},
                    {1, kappa, 1, 1, kappa, 1});
}

SubstModel SubstModel::f81(const Vec4& pi) {
  return SubstModel("F81", pi, {1, 1, 1, 1, 1, 1});
}

SubstModel SubstModel::hky85(const Vec4& pi, double kappa) {
  if (!(kappa > 0.0)) throw std::invalid_argument("HKY85: kappa must be > 0");
  return SubstModel("HKY85", pi, {1, kappa, 1, 1, kappa, 1});
}

SubstModel SubstModel::f84(const Vec4& pi, double k) {
  if (!(k >= 0.0)) throw std::invalid_argument("F84: k must be >= 0");
  const Vec4 f = normalize_frequencies(pi);
  const double pur = f[0] + f[2];  // A + G
  const double pyr = f[1] + f[3];  // C + T
  return SubstModel("F84", f,
                    {1.0, 1.0 + k / pur, 1.0, 1.0, 1.0 + k / pyr, 1.0});
}

SubstModel SubstModel::f84_from_tstv(const Vec4& pi, double tstv_ratio) {
  const Vec4 f = normalize_frequencies(pi);
  const double pur = f[0] + f[2];
  const double pyr = f[1] + f[3];
  const double ag = f[0] * f[2];
  const double ct = f[1] * f[3];
  // Expected transitions 2*(ag*(1+k/pur) + ct*(1+k/pyr)); transversions
  // 2*pur*pyr. Solve ratio for k.
  const double denom = ag / pur + ct / pyr;
  const double k = (tstv_ratio * pur * pyr - ag - ct) / denom;
  if (!(k >= 0.0)) {
    throw std::invalid_argument(
        "F84: transition/transversion ratio below the model's minimum for "
        "these frequencies");
  }
  return f84(f, k);
}

SubstModel SubstModel::gtr(const Vec4& pi, const std::array<double, 6>& rates) {
  return SubstModel("GTR", pi, rates);
}

}  // namespace fdml
