// Time-reversible substitution models over arbitrary state counts, built
// exactly like the 4-state family: assemble Q from exchangeabilities and
// frequencies, normalize to one expected substitution per unit time,
// symmetrize with sqrt(pi), eigendecompose, and read P(t) (plus derivatives
// for Newton branch optimization) off the eigensystem.
#pragma once

#include <string>
#include <vector>

#include "nstate/alphabet.hpp"

namespace fdml {

class GeneralModel {
 public:
  /// Fully general reversible model: `exchangeabilities` is the strict
  /// upper triangle of the symmetric rate-factor matrix, row by row
  /// (n(n-1)/2 values); `frequencies` are the stationary frequencies.
  static GeneralModel reversible(std::string name,
                                 std::vector<double> frequencies,
                                 const std::vector<double>& exchangeabilities);

  /// Poisson model: equal exchangeabilities and equal frequencies — the
  /// n-state Jukes-Cantor. The standard first protein model.
  static GeneralModel poisson(int num_states, std::string name = "Poisson");

  /// Proportional model: equal exchangeabilities, empirical frequencies
  /// (the "F81-like" protein model).
  static GeneralModel proportional(std::vector<double> frequencies,
                                   std::string name = "Proportional");

  /// DNA + gap: F84-style nucleotide exchangeabilities extended with a
  /// fifth "gap" state entered/left at rate factor `indel_rate` relative to
  /// transversions. `gap_frequency` is the stationary gap proportion.
  static GeneralModel dna_with_gap(const std::vector<double>& base_frequencies,
                                   double tstv_k, double gap_frequency,
                                   double indel_rate);

  const std::string& name() const { return name_; }
  int num_states() const { return n_; }
  const std::vector<double>& frequencies() const { return pi_; }
  /// Normalized rate matrix, row-major n*n.
  const std::vector<double>& rate_matrix() const { return q_; }

  /// P(t) into `p` (row-major n*n, resized as needed).
  void transition(double t, std::vector<double>& p) const;
  /// P, dP/dt, d2P/dt2.
  void transition_with_derivs(double t, std::vector<double>& p,
                              std::vector<double>& dp,
                              std::vector<double>& d2p) const;

 private:
  GeneralModel(std::string name, std::vector<double> pi,
               const std::vector<double>& exchangeabilities);

  std::string name_;
  int n_;
  std::vector<double> pi_;
  std::vector<double> q_;
  std::vector<double> eigenvalues_;
  std::vector<double> left_;   // row-major: left_[k*n + j]
  std::vector<double> right_;  // row-major: right_[i*n + k]
};

}  // namespace fdml
