#include "nstate/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fdml {

namespace {
constexpr double kScaleThreshold = 0x1.0p-256;
constexpr double kScaleFactor = 0x1.0p+256;
constexpr double kLogScaleStep = 256.0 * 0.6931471805599453;
}  // namespace

GeneralEngine::GeneralEngine(const StatePatterns& data, GeneralModel model,
                             RateModel rates)
    : data_(data), model_(std::move(model)), rates_(std::move(rates)) {
  if (model_.num_states() != data.alphabet().num_states()) {
    throw std::invalid_argument("GeneralEngine: model/alphabet state mismatch");
  }
}

GeneralEngine::Partial GeneralEngine::compute_partial(int node, int from) const {
  const std::size_t n = static_cast<std::size_t>(model_.num_states());
  const std::size_t patterns = data_.num_patterns();
  const std::size_t cats = rates_.num_categories();
  const std::size_t stride = patterns * n;

  Partial out;
  out.values.assign(cats * stride, 1.0);
  out.scale.assign(patterns, 0);

  if (tree_->is_tip(node)) {
    for (std::size_t p = 0; p < patterns; ++p) {
      const std::uint32_t mask = data_.at(static_cast<std::size_t>(node), p);
      for (std::size_t c = 0; c < cats; ++c) {
        double* v = &out.values[c * stride + p * n];
        for (std::size_t s = 0; s < n; ++s) {
          v[s] = (mask & (std::uint32_t{1} << s)) ? 1.0 : 0.0;
        }
      }
    }
    return out;
  }

  std::vector<double> pmatrix;
  for (int slot = 0; slot < 3; ++slot) {
    const int child = tree_->neighbor(node, slot);
    if (child == Tree::kNoNode || child == from) continue;
    const Partial child_partial = compute_partial(child, node);
    const double t = tree_->slot_length(node, slot);
    for (std::size_t c = 0; c < cats; ++c) {
      model_.transition(t * rates_.rate(c), pmatrix);
      const double* cv = &child_partial.values[c * stride];
      double* ov = &out.values[c * stride];
      for (std::size_t p = 0; p < patterns; ++p) {
        for (std::size_t i = 0; i < n; ++i) {
          double sum = 0.0;
          for (std::size_t j = 0; j < n; ++j) {
            sum += pmatrix[i * n + j] * cv[p * n + j];
          }
          ov[p * n + i] *= sum;
        }
      }
    }
    for (std::size_t p = 0; p < patterns; ++p) {
      out.scale[p] += child_partial.scale[p];
    }
  }

  // Rescale underflowing patterns.
  for (std::size_t p = 0; p < patterns; ++p) {
    double max_entry = 0.0;
    for (std::size_t c = 0; c < cats; ++c) {
      const double* v = &out.values[c * stride + p * n];
      for (std::size_t s = 0; s < n; ++s) max_entry = std::max(max_entry, v[s]);
    }
    if (max_entry > 0.0 && max_entry < kScaleThreshold) {
      for (std::size_t c = 0; c < cats; ++c) {
        double* v = &out.values[c * stride + p * n];
        for (std::size_t s = 0; s < n; ++s) v[s] *= kScaleFactor;
      }
      out.scale[p] += 1;
    }
  }
  return out;
}

GeneralEdgeLikelihood GeneralEngine::edge_likelihood(int u, int v) const {
  if (tree_ == nullptr) throw std::logic_error("GeneralEngine: attach a tree first");
  const std::size_t n = static_cast<std::size_t>(model_.num_states());
  const std::size_t patterns = data_.num_patterns();
  const std::size_t cats = rates_.num_categories();
  const std::size_t stride = patterns * n;

  const Partial a = compute_partial(u, v);
  const Partial b = compute_partial(v, u);

  GeneralEdgeLikelihood f;
  f.model_ = &model_;
  f.rates_ = &rates_;
  f.n_ = model_.num_states();
  f.num_patterns_ = patterns;
  f.weighted_.assign(cats * patterns * n * n, 0.0);
  f.pattern_weights_.resize(patterns);
  for (std::size_t p = 0; p < patterns; ++p) {
    f.pattern_weights_[p] = data_.weight(p);
  }
  const std::vector<double>& pi = model_.frequencies();
  for (std::size_t c = 0; c < cats; ++c) {
    const double prob = rates_.probability(c);
    for (std::size_t p = 0; p < patterns; ++p) {
      const double* av = &a.values[c * stride + p * n];
      const double* bv = &b.values[c * stride + p * n];
      double* w = &f.weighted_[(c * patterns + p) * n * n];
      for (std::size_t i = 0; i < n; ++i) {
        const double lhs = prob * pi[i] * av[i];
        for (std::size_t j = 0; j < n; ++j) w[i * n + j] = lhs * bv[j];
      }
    }
  }
  double offset = 0.0;
  for (std::size_t p = 0; p < patterns; ++p) {
    offset -= data_.weight(p) * (a.scale[p] + b.scale[p]) * kLogScaleStep;
  }
  f.scale_offset_ = offset;
  return f;
}

double GeneralEdgeLikelihood::evaluate(double t, double* d1, double* d2) const {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t cats = rates_->num_categories();
  const bool derivs = d1 != nullptr || d2 != nullptr;

  std::vector<double> site(num_patterns_, 0.0);
  std::vector<double> site_d1;
  std::vector<double> site_d2;
  if (derivs) {
    site_d1.assign(num_patterns_, 0.0);
    site_d2.assign(num_patterns_, 0.0);
  }
  std::vector<double> p;
  std::vector<double> dp;
  std::vector<double> d2p;
  for (std::size_t c = 0; c < cats; ++c) {
    const double rate = rates_->rate(c);
    if (derivs) {
      model_->transition_with_derivs(t * rate, p, dp, d2p);
    } else {
      model_->transition(t * rate, p);
    }
    for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
      const double* w = &weighted_[(c * num_patterns_ + pat) * n * n];
      double s = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      for (std::size_t x = 0; x < n * n; ++x) {
        s += w[x] * p[x];
        if (derivs) {
          s1 += w[x] * dp[x];
          s2 += w[x] * d2p[x];
        }
      }
      site[pat] += s;
      if (derivs) {
        site_d1[pat] += s1 * rate;
        site_d2[pat] += s2 * rate * rate;
      }
    }
  }

  double lnl = scale_offset_;
  double g = 0.0;
  double h = 0.0;
  for (std::size_t pat = 0; pat < num_patterns_; ++pat) {
    const double weight = pattern_weights_[pat];
    const double s = site[pat];
    if (s <= 0.0) {
      lnl += weight * -1e30;
      continue;
    }
    lnl += weight * std::log(s);
    if (derivs) {
      const double r1 = site_d1[pat] / s;
      g += weight * r1;
      h += weight * (site_d2[pat] / s - r1 * r1);
    }
  }
  if (d1 != nullptr) *d1 = g;
  if (d2 != nullptr) *d2 = h;
  return lnl;
}

double GeneralEngine::log_likelihood() const {
  if (tree_ == nullptr) throw std::logic_error("GeneralEngine: attach a tree first");
  const int root = tree_->any_internal();
  const int nbr = tree_->neighbor(root, 0);
  const GeneralEdgeLikelihood f = edge_likelihood(root, nbr);
  return f.evaluate(tree_->length(root, nbr));
}

double GeneralEngine::optimize_edge(Tree& tree, int u, int v) const {
  const GeneralEdgeLikelihood f = edge_likelihood(u, v);
  double lo = kMinBranchLength;
  double hi = kMaxBranchLength;
  double t = std::clamp(tree.length(u, v), lo, hi);
  for (int iter = 0; iter < 30; ++iter) {
    double d1 = 0.0;
    double d2 = 0.0;
    f.evaluate(t, &d1, &d2);
    if (d1 > 0.0) {
      lo = t;
    } else {
      hi = t;
    }
    double next = d2 < 0.0 ? t - d1 / d2 : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    const double change = std::fabs(next - t);
    t = next;
    if (change <= 1e-6 * std::max(t, 1e-3)) break;
  }
  t = std::clamp(t, kMinBranchLength, kMaxBranchLength);
  tree.set_length(u, v, t);
  return t;
}

double GeneralEngine::smooth(Tree& tree, int max_passes) {
  attach(tree);
  for (int pass = 0; pass < max_passes; ++pass) {
    double worst = 0.0;
    for (const auto& [u, v] : tree.edges()) {
      const double before = tree.length(u, v);
      const double after = optimize_edge(tree, u, v);
      worst = std::max(worst, std::fabs(after - before) / std::max(before, 1e-3));
    }
    if (worst < 1e-4) break;
  }
  return log_likelihood();
}

}  // namespace fdml
