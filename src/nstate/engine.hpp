// Felsenstein pruning and branch optimization over a general state count.
//
// Unlike the 4-state engine (which keeps per-directed-edge CLV caches for
// the search's hot path), this engine favors clarity: partials are computed
// post-order per query. It powers the protein and gap-as-state analyses —
// model-exploration workloads, not the inner loop of the parallel search.
#pragma once

#include <cstdint>
#include <vector>

#include "model/rates.hpp"
#include "nstate/data.hpp"
#include "nstate/model.hpp"
#include "tree/tree.hpp"

namespace fdml {

/// 1-D likelihood along one edge (same role as EdgeLikelihood in the core
/// engine). Valid while the engine and tree are unchanged.
class GeneralEdgeLikelihood {
 public:
  double evaluate(double t, double* d1 = nullptr, double* d2 = nullptr) const;

 private:
  friend class GeneralEngine;
  const GeneralModel* model_ = nullptr;
  const RateModel* rates_ = nullptr;
  int n_ = 0;
  std::size_t num_patterns_ = 0;
  // weighted_[((c * P) + p) * n * n + i * n + j] = prob_c pi_i A_i B_j
  std::vector<double> weighted_;
  std::vector<double> pattern_weights_;
  double scale_offset_ = 0.0;
};

class GeneralEngine {
 public:
  /// `data` must outlive the engine; model and rates are copied.
  GeneralEngine(const StatePatterns& data, GeneralModel model, RateModel rates);

  void attach(const Tree& tree) { tree_ = &tree; }
  const Tree* tree() const { return tree_; }

  double log_likelihood() const;
  GeneralEdgeLikelihood edge_likelihood(int u, int v) const;

  /// Newton-with-bracket optimization of one edge; commits the new length.
  double optimize_edge(Tree& tree, int u, int v) const;
  /// Smoothing passes over all edges (attaches the tree); returns the final
  /// log-likelihood.
  double smooth(Tree& tree, int max_passes = 8);

  const StatePatterns& data() const { return data_; }
  const GeneralModel& model() const { return model_; }

 private:
  struct Partial {
    std::vector<double> values;       // [cat][pattern][state]
    std::vector<std::int32_t> scale;  // per pattern
  };
  /// Conditional likelihoods of the subtree at `node` seen from `from`.
  Partial compute_partial(int node, int from) const;

  const StatePatterns& data_;
  GeneralModel model_;
  RateModel rates_;
  const Tree* tree_ = nullptr;
};

}  // namespace fdml
