#include "nstate/simulate.hpp"

#include <stdexcept>

namespace fdml {

StateAlignment simulate_states(const Tree& tree,
                               const std::vector<std::string>& names,
                               const StateAlphabet& alphabet,
                               const GeneralModel& model, const RateModel& rates,
                               std::size_t num_sites, Rng& rng) {
  if (alphabet.num_states() != model.num_states()) {
    throw std::invalid_argument("simulate_states: alphabet/model mismatch");
  }
  const int root = tree.any_internal();
  if (root == Tree::kNoNode) {
    throw std::invalid_argument("simulate_states: empty tree");
  }
  const std::size_t n = static_cast<std::size_t>(model.num_states());

  auto sample = [&](const double* distribution) {
    double pick = rng.uniform();
    for (std::size_t s = 0; s < n; ++s) {
      pick -= distribution[s];
      if (pick <= 0.0) return static_cast<int>(s);
    }
    return static_cast<int>(n - 1);
  };

  std::vector<std::size_t> category(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    category[s] = rng.categorical(rates.probabilities());
  }

  std::vector<std::vector<int>> states(static_cast<std::size_t>(tree.max_nodes()));
  auto& root_states = states[static_cast<std::size_t>(root)];
  root_states.resize(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    root_states[s] = sample(model.frequencies().data());
  }

  struct Frame {
    int node;
    int from;
  };
  std::vector<Frame> stack{{root, -1}};
  std::vector<double> p;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    for (int slot = 0; slot < 3; ++slot) {
      const int child = tree.neighbor(f.node, slot);
      if (child == Tree::kNoNode || child == f.from) continue;
      const double t = tree.length(f.node, child);
      std::vector<std::vector<double>> per_category(rates.num_categories());
      for (std::size_t c = 0; c < rates.num_categories(); ++c) {
        model.transition(t * rates.rate(c), per_category[c]);
      }
      auto& child_states = states[static_cast<std::size_t>(child)];
      child_states.resize(num_sites);
      const auto& parent_states = states[static_cast<std::size_t>(f.node)];
      for (std::size_t s = 0; s < num_sites; ++s) {
        const std::vector<double>& matrix = per_category[category[s]];
        child_states[s] = sample(&matrix[static_cast<std::size_t>(parent_states[s]) * n]);
      }
      if (!tree.is_tip(child)) stack.push_back({child, f.node});
    }
  }

  StateAlignment out(alphabet);
  for (int tip : tree.tips()) {
    std::string row(num_sites, '?');
    for (std::size_t s = 0; s < num_sites; ++s) {
      row[s] = alphabet.symbol(states[static_cast<std::size_t>(tip)][s]);
    }
    out.add_sequence(names.at(static_cast<std::size_t>(tip)), row);
  }
  return out;
}

}  // namespace fdml
