// Sequence simulation under a general model (protein / DNA+gap), used by
// tests and the protein example in place of unavailable real data.
#pragma once

#include "model/rates.hpp"
#include "nstate/data.hpp"
#include "nstate/model.hpp"
#include "tree/tree.hpp"
#include "util/rng.hpp"

namespace fdml {

/// Evolves `num_sites` characters down `tree` under `model` with rate
/// categories from `rates`. Tip rows are labeled names[tip].
StateAlignment simulate_states(const Tree& tree,
                               const std::vector<std::string>& names,
                               const StateAlphabet& alphabet,
                               const GeneralModel& model, const RateModel& rates,
                               std::size_t num_sites, Rng& rng);

}  // namespace fdml
