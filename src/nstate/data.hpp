// Alignment containers over a general StateAlphabet (protein, DNA+gap).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nstate/alphabet.hpp"

namespace fdml {

class StateAlignment {
 public:
  explicit StateAlignment(StateAlphabet alphabet) : alphabet_(std::move(alphabet)) {}

  void add_sequence(std::string name, const std::string& sequence);

  /// Reads FASTA records and encodes them through the alphabet.
  static StateAlignment from_fasta(std::istream& in, StateAlphabet alphabet);

  const StateAlphabet& alphabet() const { return alphabet_; }
  std::size_t num_taxa() const { return rows_.size(); }
  std::size_t num_sites() const { return rows_.empty() ? 0 : rows_[0].size(); }
  const std::string& name(std::size_t taxon) const { return names_[taxon]; }
  const std::vector<std::string>& names() const { return names_; }
  std::uint32_t at(std::size_t taxon, std::size_t site) const {
    return rows_[taxon][site];
  }

  /// Empirical state frequencies (fractional counting for ambiguity codes,
  /// skipping fully-unknown characters) — note that under dna_with_gap this
  /// *counts gaps*, which is the point of the 5-state treatment.
  std::vector<double> state_frequencies() const;

 private:
  StateAlphabet alphabet_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::uint32_t>> rows_;
};

/// Site-pattern compression over state masks.
class StatePatterns {
 public:
  explicit StatePatterns(const StateAlignment& alignment);

  const StateAlphabet& alphabet() const { return alphabet_; }
  std::size_t num_taxa() const { return num_taxa_; }
  std::size_t num_patterns() const { return weights_.size(); }
  std::size_t num_sites() const { return site_to_pattern_.size(); }
  double weight(std::size_t pattern) const { return weights_[pattern]; }
  std::uint32_t at(std::size_t taxon, std::size_t pattern) const {
    return codes_[pattern * num_taxa_ + taxon];
  }
  std::size_t pattern_of_site(std::size_t site) const {
    return site_to_pattern_[site];
  }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& frequencies() const { return frequencies_; }

 private:
  StateAlphabet alphabet_;  // copied: patterns must not dangle off the source
  std::size_t num_taxa_ = 0;
  std::vector<std::string> names_;
  std::vector<std::uint32_t> codes_;
  std::vector<double> weights_;
  std::vector<std::size_t> site_to_pattern_;
  std::vector<double> frequencies_;
};

}  // namespace fdml
