// Generalized state alphabets — the paper's highest-priority future work:
// "incorporating other models of sequence change. This will include protein
// sequences, handling of alignment gaps as another character state (rather
// than the current treatment as missing data), and more general models of
// nucleotide change."
//
// A state symbol maps to a 32-bit mask over up to 32 states; ambiguity
// codes set several bits, unknowns set all. The N-state engine consumes
// these masks directly as tip conditional likelihoods.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace fdml {

class StateAlphabet {
 public:
  /// Plain 4-state DNA (A C G T), gaps as missing — matches the core
  /// engine's treatment; useful for cross-validating the two engines.
  static StateAlphabet dna();

  /// 5-state DNA where '-' is a real character state that substitutions can
  /// enter and leave (the paper's "handling of alignment gaps as another
  /// character state").
  static StateAlphabet dna_with_gap();

  /// 20-state amino acids (ARNDCQEGHILKMFPSTWYV order), with the standard
  /// ambiguity codes B = N/D, Z = Q/E, J = I/L; X, '-', '?', '.' unknown.
  static StateAlphabet protein();

  const std::string& name() const { return name_; }
  int num_states() const { return num_states_; }
  /// Canonical symbol for a pure state index.
  char symbol(int state) const { return symbols_[static_cast<std::size_t>(state)]; }
  /// Mask with every state set.
  std::uint32_t unknown_mask() const { return unknown_mask_; }

  /// Mask for an input character; 0 if invalid.
  std::uint32_t code(char c) const {
    return table_[static_cast<unsigned char>(c)];
  }
  bool is_valid(char c) const { return code(c) != 0; }

  /// Encodes a sequence string; throws std::invalid_argument on bad chars.
  std::vector<std::uint32_t> encode(const std::string& sequence) const;
  /// Decodes masks back to characters (pure states to their symbol;
  /// anything ambiguous to the unknown character).
  std::string decode(const std::vector<std::uint32_t>& codes) const;

 private:
  StateAlphabet(std::string name, std::string symbols, char unknown_char);
  void map(char c, std::uint32_t mask);
  void map_state(char c, int state) { map(c, std::uint32_t{1} << state); }

  std::string name_;
  int num_states_;
  std::string symbols_;
  char unknown_char_;
  std::uint32_t unknown_mask_;
  std::array<std::uint32_t, 256> table_{};
};

}  // namespace fdml
