#include "nstate/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace fdml {

StateAlphabet::StateAlphabet(std::string name, std::string symbols,
                             char unknown_char)
    : name_(std::move(name)),
      num_states_(static_cast<int>(symbols.size())),
      symbols_(std::move(symbols)),
      unknown_char_(unknown_char) {
  if (num_states_ < 2 || num_states_ > 32) {
    throw std::invalid_argument("StateAlphabet: 2..32 states supported");
  }
  unknown_mask_ = num_states_ == 32 ? ~std::uint32_t{0}
                                    : (std::uint32_t{1} << num_states_) - 1;
  for (int s = 0; s < num_states_; ++s) {
    map_state(symbols_[static_cast<std::size_t>(s)], s);
  }
}

void StateAlphabet::map(char c, std::uint32_t mask) {
  table_[static_cast<unsigned char>(std::toupper(static_cast<unsigned char>(c)))] =
      mask;
  table_[static_cast<unsigned char>(std::tolower(static_cast<unsigned char>(c)))] =
      mask;
}

std::vector<std::uint32_t> StateAlphabet::encode(const std::string& sequence) const {
  std::vector<std::uint32_t> out;
  out.reserve(sequence.size());
  for (char c : sequence) {
    const std::uint32_t mask = code(c);
    if (mask == 0) {
      throw std::invalid_argument(std::string("invalid ") + name_ +
                                  " character '" + c + "'");
    }
    out.push_back(mask);
  }
  return out;
}

std::string StateAlphabet::decode(const std::vector<std::uint32_t>& codes) const {
  std::string out;
  out.reserve(codes.size());
  for (std::uint32_t mask : codes) {
    char c = unknown_char_;
    for (int s = 0; s < num_states_; ++s) {
      if (mask == (std::uint32_t{1} << s)) {
        c = symbols_[static_cast<std::size_t>(s)];
        break;
      }
    }
    out.push_back(c);
  }
  return out;
}

StateAlphabet StateAlphabet::dna() {
  StateAlphabet a("dna", "ACGT", 'N');
  a.map('U', 1u << 3);
  a.map('R', (1u << 0) | (1u << 2));
  a.map('Y', (1u << 1) | (1u << 3));
  a.map('M', (1u << 0) | (1u << 1));
  a.map('K', (1u << 2) | (1u << 3));
  a.map('S', (1u << 1) | (1u << 2));
  a.map('W', (1u << 0) | (1u << 3));
  for (char c : {'N', 'X', '?', '-', '.'}) a.map(c, a.unknown_mask());
  return a;
}

StateAlphabet StateAlphabet::dna_with_gap() {
  StateAlphabet a("dna+gap", "ACGT-", '?');
  a.map('U', 1u << 3);
  // Base ambiguities cover bases only — a resolved R is A or G, not a gap.
  a.map('R', (1u << 0) | (1u << 2));
  a.map('Y', (1u << 1) | (1u << 3));
  a.map('M', (1u << 0) | (1u << 1));
  a.map('K', (1u << 2) | (1u << 3));
  a.map('S', (1u << 1) | (1u << 2));
  a.map('W', (1u << 0) | (1u << 3));
  // N = any base (an unreadable residue is still a residue); '?' = truly
  // unknown, could also be a gap.
  const std::uint32_t any_base = (1u << 0) | (1u << 1) | (1u << 2) | (1u << 3);
  a.map('N', any_base);
  a.map('X', any_base);
  for (char c : {'?', '.'}) a.map(c, a.unknown_mask());
  return a;
}

StateAlphabet StateAlphabet::protein() {
  StateAlphabet a("protein", "ARNDCQEGHILKMFPSTWYV", 'X');
  auto state_of = [&](char c) {
    for (int s = 0; s < a.num_states(); ++s) {
      if (a.symbol(s) == c) return s;
    }
    throw std::logic_error("protein alphabet internal error");
  };
  a.map('B', (1u << state_of('N')) | (1u << state_of('D')));
  a.map('Z', (1u << state_of('Q')) | (1u << state_of('E')));
  a.map('J', (1u << state_of('I')) | (1u << state_of('L')));
  for (char c : {'X', '?', '-', '.', '*'}) a.map(c, a.unknown_mask());
  return a;
}

}  // namespace fdml
