#include "nstate/model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/linalg.hpp"

namespace fdml {

GeneralModel::GeneralModel(std::string name, std::vector<double> pi,
                           const std::vector<double>& exchangeabilities)
    : name_(std::move(name)), n_(static_cast<int>(pi.size())), pi_(std::move(pi)) {
  const std::size_t un = static_cast<std::size_t>(n_);
  if (n_ < 2) throw std::invalid_argument("GeneralModel: need >= 2 states");
  if (exchangeabilities.size() != un * (un - 1) / 2) {
    throw std::invalid_argument("GeneralModel: exchangeability count mismatch");
  }
  double total = 0.0;
  for (double f : pi_) {
    if (!(f > 0.0)) throw std::invalid_argument("GeneralModel: frequencies > 0");
    total += f;
  }
  for (double& f : pi_) f /= total;

  // Assemble Q.
  q_.assign(un * un, 0.0);
  std::size_t x = 0;
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = i + 1; j < un; ++j, ++x) {
      const double s = exchangeabilities[x];
      if (!(s >= 0.0)) throw std::invalid_argument("GeneralModel: s >= 0");
      q_[i * un + j] = s * pi_[j];
      q_[j * un + i] = s * pi_[i];
    }
  }
  double mu = 0.0;
  for (std::size_t i = 0; i < un; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < un; ++j) {
      if (j != i) row += q_[i * un + j];
    }
    q_[i * un + i] = -row;
    mu += pi_[i] * row;
  }
  if (!(mu > 0.0)) throw std::invalid_argument("GeneralModel: degenerate Q");
  for (double& v : q_) v /= mu;

  // Symmetrize and decompose.
  std::vector<double> sym(un * un);
  std::vector<double> sqrt_pi(un);
  for (std::size_t i = 0; i < un; ++i) sqrt_pi[i] = std::sqrt(pi_[i]);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = 0; j < un; ++j) {
      sym[i * un + j] = sqrt_pi[i] * q_[i * un + j] / sqrt_pi[j];
    }
  }
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = i + 1; j < un; ++j) {
      const double avg = 0.5 * (sym[i * un + j] + sym[j * un + i]);
      sym[i * un + j] = avg;
      sym[j * un + i] = avg;
    }
  }
  std::vector<double> vectors;
  jacobi_eigen_symmetric_n(sym, n_, eigenvalues_, vectors);
  right_.resize(un * un);
  left_.resize(un * un);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t k = 0; k < un; ++k) {
      right_[i * un + k] = vectors[i * un + k] / sqrt_pi[i];
      left_[k * un + i] = vectors[i * un + k] * sqrt_pi[i];
    }
  }
}

void GeneralModel::transition(double t, std::vector<double>& p) const {
  const std::size_t un = static_cast<std::size_t>(n_);
  p.assign(un * un, 0.0);
  std::vector<double> expl(un);
  for (std::size_t k = 0; k < un; ++k) expl[k] = std::exp(eigenvalues_[k] * t);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t k = 0; k < un; ++k) {
      const double rik = right_[i * un + k] * expl[k];
      for (std::size_t j = 0; j < un; ++j) {
        p[i * un + j] += rik * left_[k * un + j];
      }
    }
    for (std::size_t j = 0; j < un; ++j) {
      if (p[i * un + j] < 0.0) p[i * un + j] = 0.0;
    }
  }
}

void GeneralModel::transition_with_derivs(double t, std::vector<double>& p,
                                          std::vector<double>& dp,
                                          std::vector<double>& d2p) const {
  const std::size_t un = static_cast<std::size_t>(n_);
  p.assign(un * un, 0.0);
  dp.assign(un * un, 0.0);
  d2p.assign(un * un, 0.0);
  std::vector<double> expl(un);
  for (std::size_t k = 0; k < un; ++k) expl[k] = std::exp(eigenvalues_[k] * t);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t k = 0; k < un; ++k) {
      const double rik = right_[i * un + k] * expl[k];
      const double lambda = eigenvalues_[k];
      for (std::size_t j = 0; j < un; ++j) {
        const double term = rik * left_[k * un + j];
        p[i * un + j] += term;
        dp[i * un + j] += lambda * term;
        d2p[i * un + j] += lambda * lambda * term;
      }
    }
    for (std::size_t j = 0; j < un; ++j) {
      if (p[i * un + j] < 0.0) p[i * un + j] = 0.0;
    }
  }
}

GeneralModel GeneralModel::reversible(std::string name,
                                      std::vector<double> frequencies,
                                      const std::vector<double>& exchangeabilities) {
  return GeneralModel(std::move(name), std::move(frequencies), exchangeabilities);
}

GeneralModel GeneralModel::poisson(int num_states, std::string name) {
  const std::size_t un = static_cast<std::size_t>(num_states);
  return GeneralModel(std::move(name),
                      std::vector<double>(un, 1.0 / static_cast<double>(un)),
                      std::vector<double>(un * (un - 1) / 2, 1.0));
}

GeneralModel GeneralModel::proportional(std::vector<double> frequencies,
                                        std::string name) {
  const std::size_t un = frequencies.size();
  return GeneralModel(std::move(name), std::move(frequencies),
                      std::vector<double>(un * (un - 1) / 2, 1.0));
}

GeneralModel GeneralModel::dna_with_gap(const std::vector<double>& base_frequencies,
                                        double tstv_k, double gap_frequency,
                                        double indel_rate) {
  if (base_frequencies.size() != 4) {
    throw std::invalid_argument("dna_with_gap: need 4 base frequencies");
  }
  if (!(gap_frequency > 0.0 && gap_frequency < 1.0)) {
    throw std::invalid_argument("dna_with_gap: gap frequency in (0,1)");
  }
  std::vector<double> pi(5);
  double base_total = 0.0;
  for (double f : base_frequencies) base_total += f;
  for (int b = 0; b < 4; ++b) {
    pi[static_cast<std::size_t>(b)] =
        base_frequencies[static_cast<std::size_t>(b)] / base_total *
        (1.0 - gap_frequency);
  }
  pi[4] = gap_frequency;

  // F84-style exchangeabilities among bases (states ACGT), plus a uniform
  // indel factor to/from the gap state. Upper triangle order for n=5:
  // (AC, AG, AT, A-, CG, CT, C-, GT, G-, T-).
  const double pur = pi[0] + pi[2];
  const double pyr = pi[1] + pi[3];
  const double ag = 1.0 + tstv_k / pur;
  const double ct = 1.0 + tstv_k / pyr;
  const std::vector<double> s{1.0, ag,  1.0, indel_rate, 1.0,
                              ct,  indel_rate, 1.0, indel_rate, indel_rate};
  return GeneralModel("F84+gap", std::move(pi), s);
}

}  // namespace fdml
