#include "nstate/data.hpp"

#include <bit>
#include <cctype>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace fdml {

void StateAlignment::add_sequence(std::string name, const std::string& sequence) {
  if (name.empty()) throw std::invalid_argument("taxon name must be non-empty");
  auto codes = alphabet_.encode(sequence);
  if (!rows_.empty() && codes.size() != rows_[0].size()) {
    throw std::invalid_argument("sequence length mismatch for taxon " + name);
  }
  for (const auto& existing : names_) {
    if (existing == name) {
      throw std::invalid_argument("duplicate taxon name " + name);
    }
  }
  names_.push_back(std::move(name));
  rows_.push_back(std::move(codes));
}

StateAlignment StateAlignment::from_fasta(std::istream& in, StateAlphabet alphabet) {
  StateAlignment out(std::move(alphabet));
  std::string line;
  std::string name;
  std::string sequence;
  auto flush = [&] {
    if (!name.empty()) out.add_sequence(name, sequence);
    sequence.clear();
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      std::istringstream header(line.substr(1));
      header >> name;
      if (name.empty()) throw std::runtime_error("FASTA: empty record name");
    } else {
      if (name.empty()) throw std::runtime_error("FASTA: data before first header");
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) sequence.push_back(c);
      }
    }
  }
  flush();
  if (out.num_taxa() == 0) throw std::runtime_error("FASTA: no records");
  return out;
}

std::vector<double> StateAlignment::state_frequencies() const {
  const int n = alphabet_.num_states();
  std::vector<double> counts(static_cast<std::size_t>(n), 0.0);
  for (const auto& row : rows_) {
    for (std::uint32_t mask : row) {
      if (mask == alphabet_.unknown_mask() || mask == 0) continue;
      const int cardinality = std::popcount(mask);
      const double share = 1.0 / cardinality;
      for (int s = 0; s < n; ++s) {
        if (mask & (std::uint32_t{1} << s)) counts[static_cast<std::size_t>(s)] += share;
      }
    }
  }
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) {
    return std::vector<double>(static_cast<std::size_t>(n), 1.0 / n);
  }
  for (double& c : counts) c /= total;
  // Keep every frequency strictly positive for model construction.
  for (double& c : counts) {
    if (c < 1e-6) c = 1e-6;
  }
  double adjusted = 0.0;
  for (double c : counts) adjusted += c;
  for (double& c : counts) c /= adjusted;
  return counts;
}

StatePatterns::StatePatterns(const StateAlignment& alignment)
    : alphabet_(alignment.alphabet()),
      num_taxa_(alignment.num_taxa()),
      names_(alignment.names()),
      frequencies_(alignment.state_frequencies()) {
  const std::size_t sites = alignment.num_sites();
  std::map<std::vector<std::uint32_t>, std::size_t> index;
  site_to_pattern_.resize(sites);
  std::vector<std::uint32_t> column(num_taxa_);
  for (std::size_t site = 0; site < sites; ++site) {
    for (std::size_t t = 0; t < num_taxa_; ++t) column[t] = alignment.at(t, site);
    auto [it, inserted] = index.emplace(column, weights_.size());
    if (inserted) {
      weights_.push_back(0.0);
      codes_.insert(codes_.end(), column.begin(), column.end());
    }
    site_to_pattern_[site] = it->second;
    weights_[it->second] += 1.0;
  }
}

}  // namespace fdml
