#include "util/log.hpp"

namespace fdml {

namespace detail {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace detail

void set_log_level(LogLevel level) { detail::global_log_level() = level; }

LogLevel log_level() { return detail::global_log_level(); }

}  // namespace fdml
