#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>

#include "util/timer.hpp"

namespace fdml {

namespace detail {

namespace {

std::atomic<LogLevel>& level_cell() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

// Guarded by log_mutex(); empty function means "stderr".
LogSink& sink_cell() {
  static LogSink sink;
  return sink;
}

thread_local std::string t_thread_label;

}  // namespace

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

LogLevel load_log_level() {
  return level_cell().load(std::memory_order_relaxed);
}

std::string format_log_prefix(LogLevel level, std::string_view component) {
  const char* name = "?";
  switch (level) {
    case LogLevel::kDebug: name = "debug"; break;
    case LogLevel::kInfo: name = "info"; break;
    case LogLevel::kWarn: name = "warn"; break;
    case LogLevel::kError: name = "error"; break;
    default: break;
  }
  char stamp[32];
  std::snprintf(stamp, sizeof stamp, "+%.6fs",
                static_cast<double>(monotonic_ns()) * 1e-9);
  std::string prefix;
  prefix.reserve(48 + component.size());
  prefix += '[';
  prefix += name;
  prefix += ' ';
  prefix += stamp;
  if (!t_thread_label.empty()) {
    prefix += ' ';
    prefix += t_thread_label;
  }
  prefix += "] ";
  prefix += component;
  prefix += ": ";
  return prefix;
}

void emit_log_line(LogLevel level, const std::string& line) {
  std::lock_guard lock(log_mutex());
  if (sink_cell()) {
    sink_cell()(level, line);
  } else {
    std::cerr << line << "\n";
  }
}

}  // namespace detail

void set_log_level(LogLevel level) {
  detail::level_cell().store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return detail::load_log_level(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return std::nullopt;
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard lock(detail::log_mutex());
  LogSink previous = std::move(detail::sink_cell());
  detail::sink_cell() = std::move(sink);
  return previous;
}

void set_log_thread_label(std::string label) {
  detail::t_thread_label = std::move(label);
}

const std::string& log_thread_label() { return detail::t_thread_label; }

}  // namespace fdml
